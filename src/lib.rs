//! # qdpm — reproduction of *Q-DPM: An Efficient Model-Free Dynamic Power
//! Management Technique* (Li, Wu, Yao, Yan — DATE 2005)
//!
//! Q-DPM replaces the model-based dynamic power management (DPM) pipeline —
//! workload parameter estimator, mode-switch detector, and offline policy
//! optimizer (classically a linear program) — with a single tabular
//! Q-learning agent that learns its power policy online, per time slice,
//! from its own reinforcement signal.
//!
//! This workspace implements the paper's technique *and* every substrate it
//! is evaluated against:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`core`] (`qdpm-core`) | the Q-DPM agent: Q-table, Watkins learner (Eqn. 3), state encoder, epsilon-greedy exploration; QoS-constrained and Fuzzy extensions |
//! | [`device`] (`qdpm-device`) | power state machines, service models, bounded queues, literature device presets |
//! | [`workload`] (`qdpm-workload`) | synthetic requesters (Bernoulli, MMPP, bursty, Pareto, periodic, traces), piecewise-stationary composition, online estimators & change detection |
//! | [`mdp`] (`qdpm-mdp`) | exact DTMDP compilation of a DPM system, value/policy iteration, average-cost solver, occupation-measure LP on an in-repo simplex |
//! | [`sim`] (`qdpm-sim`) | the discrete-time simulator, baseline power managers (timeouts, oracle, model-based adaptive pipeline), metrics, experiment runners, deterministic parallel grid runner (`sim::parallel`) |
//!
//! # Quickstart
//!
//! ```
//! use qdpm::core::{QDpmAgent, QDpmConfig};
//! use qdpm::device::presets;
//! use qdpm::sim::{SimConfig, Simulator};
//! use qdpm::workload::WorkloadSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let power = presets::three_state_generic();
//! let agent = QDpmAgent::new(&power, QDpmConfig::default())?;
//! let mut sim = Simulator::new(
//!     power.clone(),
//!     presets::default_service(),
//!     WorkloadSpec::bernoulli(0.05)?.build(),
//!     Box::new(agent),
//!     SimConfig::default(),
//! )?;
//! let stats = sim.run(50_000);
//! let p_on = power.state(power.highest_power_state()).power;
//! println!("energy reduction vs always-on: {:.1}%",
//!          100.0 * stats.energy_reduction_vs(p_on));
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! binaries regenerating every figure and table of the paper.

pub use qdpm_core as core;
pub use qdpm_device as device;
pub use qdpm_mdp as mdp;
pub use qdpm_sim as sim;
pub use qdpm_workload as workload;
