//! A tiny hand-rolled binary codec for checkpointable runtime state.
//!
//! The serving daemon (`qdpm-serve`) periodically snapshots every mutable
//! piece of a running simulation — Q-tables, device/queue/timer state,
//! RNG streams, dispatcher cursors, budget accumulators — and must restore
//! them bit-exactly after a crash. The vendored serde shim has no
//! serialization backend, so the checkpoint format is written by hand:
//! little-endian fixed-width scalars appended to a [`StateWriter`] and
//! read back, bounds-checked, by a [`StateReader`]. Writers and readers
//! must agree on field order; framing, versioning and checksumming live
//! one level up (in the checkpoint container), keeping this codec a dumb
//! byte shuttle.

use std::fmt;

/// Error produced by [`StateReader`] when a checkpoint payload does not
/// decode: truncated input or a field whose value cannot be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// The payload ended before the requested field.
    Truncated {
        /// What was being read.
        what: &'static str,
    },
    /// A field decoded to a value the target cannot hold.
    BadValue(String),
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Truncated { what } => {
                write!(f, "state payload truncated while reading {what}")
            }
            StateError::BadValue(msg) => write!(f, "bad state value: {msg}"),
        }
    }
}

impl std::error::Error for StateError {}

/// Append-only little-endian encoder for checkpoint payloads.
#[derive(Debug, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        StateWriter::default()
    }

    /// Consumes the writer and returns the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (checkpoints are
    /// pointer-width-independent).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` by its exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed byte blob.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Bounds-checked little-endian decoder over a checkpoint payload.
#[derive(Debug)]
pub struct StateReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Creates a reader over `data`.
    #[must_use]
    pub fn new(data: &'a [u8]) -> Self {
        StateReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], StateError> {
        if self.remaining() < n {
            return Err(StateError::Truncated { what });
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::Truncated`] when the payload is exhausted.
    pub fn get_u8(&mut self) -> Result<u8, StateError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::Truncated`] when the payload is exhausted.
    pub fn get_u32(&mut self) -> Result<u32, StateError> {
        Ok(u32::from_le_bytes(
            self.take(4, "u32")?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::Truncated`] when the payload is exhausted.
    pub fn get_u64(&mut self) -> Result<u64, StateError> {
        Ok(u64::from_le_bytes(
            self.take(8, "u64")?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `usize` stored as a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::Truncated`] on exhaustion or
    /// [`StateError::BadValue`] when the value exceeds this platform's
    /// `usize`.
    pub fn get_usize(&mut self) -> Result<usize, StateError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| StateError::BadValue(format!("usize field {v} too large")))
    }

    /// Reads an `f64` by its exact bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::Truncated`] when the payload is exhausted.
    pub fn get_f64(&mut self) -> Result<f64, StateError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool (any nonzero byte is rejected rather than coerced).
    ///
    /// # Errors
    ///
    /// Returns [`StateError::Truncated`] on exhaustion or
    /// [`StateError::BadValue`] for a byte other than 0 or 1.
    pub fn get_bool(&mut self) -> Result<bool, StateError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(StateError::BadValue(format!("bool byte {b}"))),
        }
    }

    /// Reads a length-prefixed byte blob.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::Truncated`] when the prefix or blob runs past
    /// the payload.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], StateError> {
        let len = self.get_usize()?;
        self.take(len, "byte blob")
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::Truncated`] on exhaustion or
    /// [`StateError::BadValue`] for invalid UTF-8.
    pub fn get_str(&mut self) -> Result<&'a str, StateError> {
        std::str::from_utf8(self.get_bytes()?)
            .map_err(|e| StateError::BadValue(format!("invalid utf-8 string: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_scalar_kinds() {
        let mut w = StateWriter::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 3);
        w.put_usize(42);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_bool(true);
        w.put_bool(false);
        w.put_bytes(b"blob");
        w.put_str("text");
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_usize().unwrap(), 42);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_bytes().unwrap(), b"blob");
        assert_eq!(r.get_str().unwrap(), "text");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut w = StateWriter::new();
        w.put_u32(1);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert!(r.get_u64().is_err());
        // A failed read consumes nothing.
        assert_eq!(r.get_u32().unwrap(), 1);
        assert!(matches!(
            r.get_u8().unwrap_err(),
            StateError::Truncated { .. }
        ));
    }

    #[test]
    fn bad_bool_and_oversized_blob_are_rejected() {
        let mut r = StateReader::new(&[2]);
        assert!(matches!(r.get_bool().unwrap_err(), StateError::BadValue(_)));
        let mut w = StateWriter::new();
        w.put_u64(1_000_000); // blob length prefix with no blob behind it
        let bytes = w.into_bytes();
        assert!(StateReader::new(&bytes).get_bytes().is_err());
    }
}
