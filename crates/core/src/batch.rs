//! Batched Q-learning over striped row-major storage — the learning core
//! of the structure-of-arrays fleet engine in `qdpm-sim`.
//!
//! A homogeneous cohort of `m` devices runs `m` *independent* Watkins
//! learners that share every hyperparameter (discount, learning-rate
//! schedule, exploration) and table geometry, but keep private Q-values,
//! visit counts, and step counters. [`BatchLearner`] lays those `m`
//! tables out in one flat buffer, device-major, so stepping a cohort in
//! device order walks contiguous memory instead of chasing `m` boxed
//! learners through the heap.
//!
//! Selection and update execute the exact code paths of
//! [`crate::QLearner`] (`learner::select_from_row` /
//! `learner::update_in_place`), so a batched device consumes bit-identical
//! randomness and produces bit-identical Q-values to a standalone learner
//! fed the same observation/reward stream — the property the fleet
//! conformance suite pins.

use rand::Rng;

use crate::learner::{best_in_row, select_from_row, update_in_place};
use crate::{CoreError, Exploration, LearningRate, QTable};

/// `m` independent tabular Q-learners in one striped row-major buffer.
///
/// Device `d`'s table is the contiguous block
/// `q[d * n_states * n_actions ..][.. n_states * n_actions]`, itself
/// row-major in `(state, action)` exactly like [`QTable`]. All devices
/// share one hyperparameter set; per-device state is limited to the flat
/// value/visit/step arrays.
///
/// # Example
///
/// ```
/// use qdpm_core::{BatchLearner, Exploration, LearningRate};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), qdpm_core::CoreError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut batch = BatchLearner::new(
///     16,                              // devices
///     4,                               // states
///     2,                               // actions
///     0.9,                             // discount beta
///     LearningRate::Constant(0.5),
///     Exploration::EpsilonGreedy { epsilon: 0.1 },
/// )?;
/// let a = batch.select_action(3, 0, &[0, 1], &mut rng);
/// batch.update(3, 0, a, 1.0, 1, &[0, 1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BatchLearner {
    n_devices: usize,
    n_states: usize,
    n_actions: usize,
    /// Device-major striped Q-values: `n_devices * n_states * n_actions`.
    q: Vec<f64>,
    /// Visit counters, same layout as `q`.
    visits: Vec<u32>,
    /// Per-device update counters (drive per-device schedules).
    steps: Vec<u64>,
    discount: f64,
    learning_rate: LearningRate,
    exploration: Exploration,
}

impl BatchLearner {
    /// Creates `n_devices` zero-initialized learners with shared
    /// hyperparameters.
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError`] when the discount is outside `[0, 1)` or a
    /// schedule parameter is out of range (same validation as
    /// [`crate::QLearner::new`]).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        n_devices: usize,
        n_states: usize,
        n_actions: usize,
        discount: f64,
        learning_rate: LearningRate,
        exploration: Exploration,
    ) -> Result<Self, CoreError> {
        assert!(
            n_devices > 0 && n_states > 0 && n_actions > 0,
            "batch dimensions must be positive"
        );
        if !(discount.is_finite() && (0.0..1.0).contains(&discount)) {
            return Err(CoreError::BadDiscount(discount));
        }
        learning_rate.validate()?;
        exploration.validate()?;
        let cells = n_devices * n_states * n_actions;
        // Pre-fault the striped buffers at construction: a large
        // `vec![0; n]` is served from demand-zero pages, and without this
        // every first-touch page fault lands inside the first (timed)
        // run. `black_box` keeps the writes from being elided as
        // redundant zero stores.
        let mut q = vec![0.0_f64; cells];
        q.fill(std::hint::black_box(0.0));
        let mut visits = vec![0_u32; cells];
        visits.fill(std::hint::black_box(0));
        Ok(BatchLearner {
            n_devices,
            n_states,
            n_actions,
            q,
            visits,
            steps: vec![0; n_devices],
            discount,
            learning_rate,
            exploration,
        })
    }

    /// Number of devices in the batch.
    #[must_use]
    pub fn n_devices(&self) -> usize {
        self.n_devices
    }

    /// Number of encoded states per device table.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of actions per device table.
    #[must_use]
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// The shared discount factor `beta`.
    #[must_use]
    pub fn discount(&self) -> f64 {
        self.discount
    }

    /// Total updates performed by `device`.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    #[must_use]
    #[inline]
    pub fn steps(&self, device: usize) -> u64 {
        self.steps[device]
    }

    /// First flat index of `device`'s table block.
    #[inline]
    fn block(&self, device: usize) -> usize {
        assert!(
            device < self.n_devices,
            "batch device {device} out of range ({})",
            self.n_devices
        );
        device * self.n_states * self.n_actions
    }

    /// The Q-row of `(device, s)` as a borrowed slice (one value per
    /// action).
    ///
    /// # Panics
    ///
    /// Panics if `device` or `s` is out of range.
    #[must_use]
    #[inline]
    pub fn row(&self, device: usize, s: usize) -> &[f64] {
        assert!(
            s < self.n_states,
            "batch state {s} out of range ({})",
            self.n_states
        );
        let base = self.block(device) + s * self.n_actions;
        &self.q[base..base + self.n_actions]
    }

    /// Selects an action for `device` in state `s` among `legal` —
    /// bit-identical to [`crate::QLearner::select_action`] on a standalone
    /// learner with the same table, step count, and RNG stream.
    ///
    /// # Panics
    ///
    /// Panics if `legal` is empty or any index is out of range.
    pub fn select_action<R: Rng + ?Sized>(
        &self,
        device: usize,
        s: usize,
        legal: &[usize],
        rng: &mut R,
    ) -> usize {
        select_from_row(
            self.row(device, s),
            legal,
            &self.exploration,
            self.steps[device],
            rng,
        )
    }

    /// The purely greedy action of `device` in `s` (no exploration), for
    /// evaluation runs.
    ///
    /// # Panics
    ///
    /// Panics if `legal` is empty or any index is out of range.
    #[must_use]
    pub fn best_action(&self, device: usize, s: usize, legal: &[usize]) -> usize {
        assert!(!legal.is_empty(), "need at least one legal action");
        best_in_row(self.row(device, s), legal)
    }

    /// Applies the paper's Eqn. (3) to `device`'s table for the observed
    /// transition `(s, a) --reward--> (next_s with next_legal)` —
    /// bit-identical to [`crate::QLearner::update`].
    ///
    /// # Panics
    ///
    /// Panics if `next_legal` is empty or any index is out of range.
    #[inline]
    pub fn update(
        &mut self,
        device: usize,
        s: usize,
        a: usize,
        reward: f64,
        next_s: usize,
        next_legal: &[usize],
    ) {
        let start = self.block(device);
        assert!(
            s < self.n_states && a < self.n_actions && next_s < self.n_states,
            "batch index out of range"
        );
        let end = start + self.n_states * self.n_actions;
        update_in_place(
            &mut self.q[start..end],
            &mut self.visits[start..end],
            self.n_actions,
            self.discount,
            &self.learning_rate,
            self.steps[device],
            s,
            a,
            reward,
            next_s,
            next_legal,
        );
        self.steps[device] += 1;
    }

    /// Extracts `device`'s table as a standalone [`QTable`] (values and
    /// visit counts), e.g. for persistence or inspection.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    #[must_use]
    pub fn device_table(&self, device: usize) -> QTable {
        let start = self.block(device);
        let mut table = QTable::new(self.n_states, self.n_actions);
        for s in 0..self.n_states {
            for a in 0..self.n_actions {
                let i = start + s * self.n_actions + a;
                table.set(s, a, self.q[i]);
                table.set_visit_count(s, a, self.visits[i]);
            }
        }
        table
    }

    /// Exact heap footprint of the striped buffers, in bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.q.len() * std::mem::size_of::<f64>()
            + self.visits.len() * std::mem::size_of::<u32>()
            + self.steps.len() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QLearner;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_hyperparameters() {
        assert!(matches!(
            BatchLearner::new(
                2,
                2,
                2,
                1.0,
                LearningRate::default(),
                Exploration::default()
            ),
            Err(CoreError::BadDiscount(_))
        ));
    }

    #[test]
    #[should_panic(expected = "batch device")]
    fn out_of_range_device_panics() {
        let b = BatchLearner::new(
            2,
            2,
            2,
            0.9,
            LearningRate::default(),
            Exploration::default(),
        )
        .unwrap();
        let _ = b.row(2, 0);
    }

    #[test]
    fn devices_are_independent() {
        let mut b = BatchLearner::new(
            3,
            2,
            2,
            0.5,
            LearningRate::Constant(0.25),
            Exploration::EpsilonGreedy { epsilon: 0.0 },
        )
        .unwrap();
        b.update(1, 0, 0, 2.0, 1, &[0, 1]);
        assert_eq!(b.row(0, 0), &[0.0, 0.0]);
        assert_eq!(b.row(2, 0), &[0.0, 0.0]);
        assert!((b.row(1, 0)[0] - 0.5).abs() < 1e-12); // 0.75*0 + 0.25*2
        assert_eq!(b.steps(0), 0);
        assert_eq!(b.steps(1), 1);
    }

    #[test]
    fn device_table_extraction_round_trips() {
        let mut b = BatchLearner::new(
            2,
            2,
            2,
            0.5,
            LearningRate::Constant(0.25),
            Exploration::EpsilonGreedy { epsilon: 0.0 },
        )
        .unwrap();
        b.update(1, 1, 0, -3.0, 0, &[0, 1]);
        let t = b.device_table(1);
        assert_eq!(t.get(1, 0), b.row(1, 1)[0]);
        assert_eq!(t.visits(1, 0), 1);
        assert_eq!(b.device_table(0), QTable::new(2, 2));
    }

    // The tentpole's exactness property: a batch of `m` devices driven
    // through arbitrary (state, reward, legal-set) schedules matches `m`
    // standalone `QLearner`s fed the same schedules and RNG streams —
    // actions, Q-values, and visit counts all bit-exact.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn batch_matches_independent_scalar_learners(
            seed in 0u64..5_000,
            n_devices in 1usize..6,
            explore_kind in 0usize..4,
        ) {
            let n_states = 4usize;
            let n_actions = 3usize;
            let exploration = match explore_kind {
                0 => Exploration::EpsilonGreedy { epsilon: 0.0 },
                1 => Exploration::EpsilonGreedy { epsilon: 0.1 },
                2 => Exploration::EpsilonGreedy { epsilon: 1.0 },
                _ => Exploration::Boltzmann { temperature: 0.7 },
            };
            let rate = LearningRate::VisitDecay { omega: 0.6 };
            let mut batch = BatchLearner::new(
                n_devices, n_states, n_actions, 0.9, rate, exploration,
            ).unwrap();
            let mut scalars: Vec<QLearner> = (0..n_devices)
                .map(|_| {
                    QLearner::new(n_states, n_actions, 0.9, rate, exploration).unwrap()
                })
                .collect();
            // Distinct RNG stream pairs per device; schedule stream drives
            // the (state, reward, legal) sequence identically for both.
            for (d, scalar) in scalars.iter_mut().enumerate() {
                let mut rng_a = StdRng::seed_from_u64(seed.wrapping_add(d as u64));
                let mut rng_b = StdRng::seed_from_u64(seed.wrapping_add(d as u64));
                let mut sched = StdRng::seed_from_u64(seed ^ (d as u64) << 32 | 1);
                let mut s = 0usize;
                for _ in 0..120 {
                    let legal: &[usize] = match crate::rng_util::uniform_index(&mut sched, 3) {
                        0 => &[0, 1, 2],
                        1 => &[1, 2],
                        _ => &[2],
                    };
                    let a_batch = batch.select_action(d, s, legal, &mut rng_a);
                    let a_scalar = scalar.select_action(s, legal, &mut rng_b);
                    prop_assert_eq!(a_batch, a_scalar);
                    let next_s = crate::rng_util::uniform_index(&mut sched, n_states);
                    let reward = crate::rng_util::uniform(&mut sched) * 4.0 - 2.0;
                    batch.update(d, s, a_batch, reward, next_s, &[0, 1, 2]);
                    scalar.update(s, a_scalar, reward, next_s, &[0, 1, 2]);
                    s = next_s;
                }
            }
            for (d, scalar) in scalars.iter().enumerate() {
                prop_assert_eq!(batch.steps(d), scalar.steps());
                let extracted = batch.device_table(d);
                prop_assert_eq!(&extracted, scalar.table());
                for s in 0..n_states {
                    // Bitwise, not approximate: the fleet exactness
                    // contract is f64-bit equality.
                    for a in 0..n_actions {
                        prop_assert_eq!(
                            extracted.get(s, a).to_bits(),
                            scalar.table().get(s, a).to_bits()
                        );
                    }
                }
            }
        }
    }
}
