//! Q-DPM: model-free dynamic power management via tabular Q-learning.
//!
//! This crate is the reproduction of the primary contribution of
//! *Q-DPM: An Efficient Model-Free Dynamic Power Management Technique*
//! (Li, Wu, Yao, Yan — DATE 2005). A [`QDpmAgent`] is a power manager that
//! learns its policy online, by trial, from nothing but its own device's
//! power state machine and per-slice reinforcement — no workload model, no
//! parameter estimator, no mode-switch controller, no offline policy
//! optimization:
//!
//! * [`QTable`] — the `|S| x |A|` table of Eqn. (2), with exact memory
//!   accounting for the paper's "little bit memory space" claim;
//! * [`QLearner`] — Watkins Q-learning implementing Eqn. (3) with
//!   [`LearningRate`] schedules and [`Exploration`] strategies (the
//!   paper's epsilon-greedy plus ablation alternatives);
//! * [`DpmStateEncoder`] / [`Observation`] — what a real PM can see,
//!   mapped onto table rows; the exact configuration reproduces the DTMDP
//!   state space so Fig. 1 convergence *to the analytic optimum* is
//!   attainable;
//! * [`QDpmAgent`] — the full power manager ([`PowerManager`] is the
//!   interface shared with every baseline in `qdpm-sim`);
//! * [`QosQDpmAgent`] — QoS-guaranteed Q-DPM (future-work item 1):
//!   two-timescale constrained Q-learning with an adaptive Lagrange
//!   multiplier;
//! * [`fuzzy`] — Fuzzy Q-DPM (future-work item 2): membership-weighted
//!   Q-learning robust to observation noise;
//! * [`SharedQLearner`] — a cloneable handle letting a fleet of identical
//!   devices learn into one shared Q-table (the `qdpm-sim` fleet layer's
//!   experience pooling).
//!
//! # Example
//!
//! ```
//! use qdpm_core::{PowerManager, QDpmAgent, QDpmConfig, Observation};
//! use qdpm_device::{presets, DeviceMode};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), qdpm_core::CoreError> {
//! let power = presets::three_state_generic();
//! let mut agent = QDpmAgent::new(&power, QDpmConfig::default())?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let obs = Observation {
//!     device_mode: DeviceMode::Operational(power.highest_power_state()),
//!     queue_len: 0,
//!     idle_slices: 12,
//!     sr_mode_hint: None,
//! };
//! let command = agent.decide(&obs, &mut rng);
//! assert!(command.index() < power.n_states());
//! # Ok(())
//! # }
//! ```

mod agent;
mod batch;
mod encoder;
mod error;
pub mod fuzzy;
mod learner;
mod legal;
mod qos;
mod qtable;
pub mod rng_util;
mod schedule;
mod shared;
pub mod state_io;
pub mod variants;

pub use agent::{
    GenericQDpmAgent, PowerManager, QDpmAgent, QDpmConfig, RewardWeights, StepOutcome,
};
pub use batch::BatchLearner;
pub use encoder::{DpmStateEncoder, IdleBuckets, Observation, QueueBuckets, StateEncoder};
pub use error::CoreError;
pub use fuzzy::{FuzzyConfig, FuzzyQDpmAgent, FuzzySet, FuzzyVariable};
pub use learner::{QLearner, StayRun};
pub use legal::{LegalActionTable, TransientModeIndex};
pub use qos::{QosConfig, QosQDpmAgent};
pub use qtable::QTable;
pub use schedule::{Exploration, LearningRate};
pub use shared::SharedQLearner;
pub use state_io::{StateError, StateReader, StateWriter};
pub use variants::{DoubleQLearner, QLambdaLearner, SarsaLearner, TabularLearner};
