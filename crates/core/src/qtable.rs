use serde::{Deserialize, Serialize};

use crate::CoreError;

/// Dense tabular Q-function over `n_states x n_actions`, with per-pair
/// visit counts.
///
/// The paper's efficiency argument rests on this structure: "Q values can
/// be encoded in a `|s| x |a|` table that requires a little bit memory
/// space. Hence, it is feasible to implement Q-DPM on almost any embedded
/// nodes." [`QTable::memory_bytes`] feeds the memory-comparison table (T2).
///
/// By the paper's convention the table stores expected discounted
/// *reinforcement* (reward), so the greedy action is the arg-**max**.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QTable {
    n_states: usize,
    n_actions: usize,
    q: Vec<f64>,
    visits: Vec<u32>,
}

impl QTable {
    /// Creates a zero-initialized table.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(n_states: usize, n_actions: usize) -> Self {
        assert!(
            n_states > 0 && n_actions > 0,
            "table dimensions must be positive"
        );
        QTable {
            n_states,
            n_actions,
            q: vec![0.0; n_states * n_actions],
            visits: vec![0; n_states * n_actions],
        }
    }

    /// Creates a table optimistically initialized to `value` (optimistic
    /// initialization is a standard exploration aid).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn with_initial_value(n_states: usize, n_actions: usize, value: f64) -> Self {
        let mut t = QTable::new(n_states, n_actions);
        t.q.fill(value);
        t
    }

    /// Number of states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of actions.
    #[must_use]
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// Q-value of `(s, a)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn get(&self, s: usize, a: usize) -> f64 {
        self.q[self.idx(s, a)]
    }

    /// Overwrites the Q-value of `(s, a)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn set(&mut self, s: usize, a: usize, value: f64) {
        let i = self.idx(s, a);
        self.q[i] = value;
    }

    /// Visit count of `(s, a)` (incremented by [`QTable::record_visit`]).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn visits(&self, s: usize, a: usize) -> u32 {
        self.visits[self.idx(s, a)]
    }

    /// Increments and returns the visit count of `(s, a)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn record_visit(&mut self, s: usize, a: usize) -> u32 {
        let i = self.idx(s, a);
        self.visits[i] = self.visits[i].saturating_add(1);
        self.visits[i]
    }

    /// Overwrites the visit count of `(s, a)` — the bulk write-back of the
    /// learner's closed-form stay run, which tracks visits in a register.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub(crate) fn set_visit_count(&mut self, s: usize, a: usize, visits: u32) {
        let i = self.idx(s, a);
        self.visits[i] = visits;
    }

    /// The Q-row of state `s`: one value per action, as a borrowed slice.
    ///
    /// This is the allocation-free bulk accessor the hot path iterates
    /// over — bounds are asserted once per row instead of once per action.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn row(&self, s: usize) -> &[f64] {
        assert!(
            s < self.n_states,
            "q-table state {s} out of range ({})",
            self.n_states
        );
        &self.q[s * self.n_actions..(s + 1) * self.n_actions]
    }

    /// The greedy (maximum-Q) action among `legal`, with deterministic
    /// lowest-index tie-breaking.
    ///
    /// # Panics
    ///
    /// Panics if `legal` is empty or contains an out-of-range action.
    #[must_use]
    pub fn best_action(&self, s: usize, legal: &[usize]) -> usize {
        assert!(!legal.is_empty(), "need at least one legal action");
        let row = self.row(s);
        let mut best = legal[0];
        let mut best_q = row[legal[0]];
        for &a in &legal[1..] {
            let q = row[a];
            if q > best_q {
                best_q = q;
                best = a;
            }
        }
        best
    }

    /// `max_b Q(s, b)` over `legal` — the bootstrap target of Eqn. (3).
    ///
    /// # Panics
    ///
    /// Panics if `legal` is empty or contains an out-of-range action.
    #[must_use]
    pub fn max_q(&self, s: usize, legal: &[usize]) -> f64 {
        assert!(!legal.is_empty(), "need at least one legal action");
        let row = self.row(s);
        legal
            .iter()
            .map(|&a| row[a])
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mutable access to the raw row-major value/visit buffers — the
    /// row-slice view the shared learner arithmetic
    /// (`learner::update_in_place`) operates on, letting [`crate::QLearner`]
    /// and [`crate::BatchLearner`] execute the same code path.
    pub(crate) fn cells_mut(&mut self) -> (&mut [f64], &mut [u32]) {
        (&mut self.q, &mut self.visits)
    }

    /// Exact heap footprint of the Q-values and visit counters, in bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.q.len() * std::mem::size_of::<f64>() + self.visits.len() * std::mem::size_of::<u32>()
    }

    /// Resets all values and visit counts to zero.
    pub fn reset(&mut self) {
        self.q.fill(0.0);
        self.visits.fill(0);
    }

    #[inline]
    fn idx(&self, s: usize, a: usize) -> usize {
        assert!(
            s < self.n_states && a < self.n_actions,
            "q-table index ({s}, {a}) out of range ({}, {})",
            self.n_states,
            self.n_actions
        );
        s * self.n_actions + a
    }

    /// Serializes the table to a compact, self-describing binary blob —
    /// the persistence format for warm-starting an embedded node across
    /// reboots (magic + version + dims + values + visit counts + FNV-1a
    /// checksum). No external format crate required.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.q.len() * 8 + self.visits.len() * 4 + 8);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.n_states as u32).to_le_bytes());
        out.extend_from_slice(&(self.n_actions as u32).to_le_bytes());
        for v in &self.q {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.visits {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Deserializes a blob produced by [`QTable::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CorruptTable`] for wrong magic/version,
    /// truncated data, checksum mismatch, or non-finite values.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        let corrupt = |msg: &str| CoreError::CorruptTable(msg.to_string());
        if bytes.len() < 14 + 8 {
            return Err(corrupt("blob too short for header"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if fnv1a(body) != stored {
            return Err(corrupt("checksum mismatch"));
        }
        if &body[..4] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = u16::from_le_bytes(body[4..6].try_into().expect("2 bytes"));
        if version != FORMAT_VERSION {
            return Err(CoreError::CorruptTable(format!(
                "unsupported format version {version}"
            )));
        }
        let n_states = u32::from_le_bytes(body[6..10].try_into().expect("4 bytes")) as usize;
        let n_actions = u32::from_le_bytes(body[10..14].try_into().expect("4 bytes")) as usize;
        if n_states == 0 || n_actions == 0 {
            return Err(corrupt("zero dimension"));
        }
        let n = n_states
            .checked_mul(n_actions)
            .ok_or_else(|| corrupt("dimension overflow"))?;
        let expected = 14 + n * 8 + n * 4;
        if body.len() != expected {
            return Err(CoreError::CorruptTable(format!(
                "payload length {} does not match dims ({n_states} x {n_actions})",
                body.len()
            )));
        }
        let mut q = Vec::with_capacity(n);
        for chunk in body[14..14 + n * 8].chunks_exact(8) {
            let v = f64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            if !v.is_finite() {
                return Err(corrupt("non-finite q-value"));
            }
            q.push(v);
        }
        let mut visits = Vec::with_capacity(n);
        for chunk in body[14 + n * 8..].chunks_exact(4) {
            visits.push(u32::from_le_bytes(chunk.try_into().expect("4 bytes")));
        }
        Ok(QTable {
            n_states,
            n_actions,
            q,
            visits,
        })
    }
}

const MAGIC: &[u8; 4] = b"QDPM";
const FORMAT_VERSION: u16 = 1;

/// FNV-1a over the blob (integrity, not security).
fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let t = QTable::new(3, 2);
        assert_eq!(t.get(2, 1), 0.0);
        assert_eq!(t.visits(0, 0), 0);
    }

    #[test]
    fn optimistic_initialization() {
        let t = QTable::with_initial_value(2, 2, 5.0);
        assert_eq!(t.get(1, 1), 5.0);
    }

    #[test]
    fn set_get_round_trip() {
        let mut t = QTable::new(2, 3);
        t.set(1, 2, -4.5);
        assert_eq!(t.get(1, 2), -4.5);
        assert_eq!(t.get(1, 1), 0.0);
    }

    #[test]
    fn best_action_respects_legal_set() {
        let mut t = QTable::new(1, 3);
        t.set(0, 0, 10.0);
        t.set(0, 1, 5.0);
        t.set(0, 2, 7.0);
        assert_eq!(t.best_action(0, &[0, 1, 2]), 0);
        // Action 0 masked out.
        assert_eq!(t.best_action(0, &[1, 2]), 2);
    }

    #[test]
    fn best_action_breaks_ties_to_lowest_index() {
        let t = QTable::new(1, 3);
        assert_eq!(t.best_action(0, &[1, 2]), 1);
    }

    #[test]
    fn max_q_over_legal() {
        let mut t = QTable::new(1, 3);
        t.set(0, 1, 3.0);
        t.set(0, 2, -1.0);
        assert_eq!(t.max_q(0, &[1, 2]), 3.0);
        assert_eq!(t.max_q(0, &[2]), -1.0);
    }

    #[test]
    fn visits_accumulate() {
        let mut t = QTable::new(1, 1);
        assert_eq!(t.record_visit(0, 0), 1);
        assert_eq!(t.record_visit(0, 0), 2);
        assert_eq!(t.visits(0, 0), 2);
    }

    #[test]
    fn memory_accounting() {
        let t = QTable::new(100, 4);
        assert_eq!(t.memory_bytes(), 400 * 8 + 400 * 4);
    }

    #[test]
    fn reset_clears() {
        let mut t = QTable::new(1, 1);
        t.set(0, 0, 1.0);
        t.record_visit(0, 0);
        t.reset();
        assert_eq!(t.get(0, 0), 0.0);
        assert_eq!(t.visits(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let t = QTable::new(2, 2);
        let _ = t.get(2, 0);
    }

    #[test]
    fn row_exposes_state_values_in_action_order() {
        let mut t = QTable::new(2, 3);
        t.set(1, 0, 1.0);
        t.set(1, 2, -2.0);
        assert_eq!(t.row(1), &[1.0, 0.0, -2.0]);
        assert_eq!(t.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn row_out_of_range_panics() {
        let t = QTable::new(2, 2);
        let _ = t.row(2);
    }

    #[test]
    fn bytes_round_trip() {
        let mut t = QTable::new(3, 2);
        t.set(0, 1, -1.25);
        t.set(2, 0, 7.5);
        t.record_visit(2, 0);
        t.record_visit(2, 0);
        let blob = t.to_bytes();
        let back = QTable::from_bytes(&blob).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.visits(2, 0), 2);
    }

    #[test]
    fn corrupt_blobs_rejected() {
        let t = QTable::new(2, 2);
        let good = t.to_bytes();

        // Truncated.
        assert!(matches!(
            QTable::from_bytes(&good[..10]),
            Err(crate::CoreError::CorruptTable(_))
        ));
        // Bit flip in the payload breaks the checksum.
        let mut flipped = good.clone();
        flipped[20] ^= 0xff;
        assert!(matches!(
            QTable::from_bytes(&flipped),
            Err(crate::CoreError::CorruptTable(_))
        ));
        // Bad magic (with a recomputed checksum) is still rejected.
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        let body_len = bad_magic.len() - 8;
        let sum = super::fnv1a(&bad_magic[..body_len]);
        let tail = bad_magic.len() - 8;
        bad_magic[tail..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            QTable::from_bytes(&bad_magic),
            Err(crate::CoreError::CorruptTable(_))
        ));
        // Empty input.
        assert!(QTable::from_bytes(&[]).is_err());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let t = QTable::new(2, 2);
        let mut blob = t.to_bytes();
        // Claim 3 states without growing the payload; fix the checksum so
        // only the length validation can catch it.
        blob[6..10].copy_from_slice(&3u32.to_le_bytes());
        let body_len = blob.len() - 8;
        let sum = super::fnv1a(&blob[..body_len]);
        let tail = blob.len() - 8;
        blob[tail..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            QTable::from_bytes(&blob),
            Err(crate::CoreError::CorruptTable(_))
        ));
    }
}
