use std::fmt;

/// Errors produced while configuring Q-DPM components.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The discount factor was outside `[0, 1)`.
    BadDiscount(f64),
    /// A learning-rate parameter was out of range.
    BadLearningRate(String),
    /// An exploration parameter was out of range.
    BadExploration(String),
    /// A reward weight was negative or non-finite.
    BadRewardWeight {
        /// Which weight was rejected.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A state encoder was configured with an empty or invalid bucketing.
    BadEncoder(String),
    /// A QoS constraint parameter was invalid.
    BadConstraint(String),
    /// A fuzzy set/variable was malformed.
    BadFuzzy(String),
    /// A serialized Q-table blob failed validation on load.
    CorruptTable(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::BadDiscount(b) => write!(f, "discount factor {b} outside [0, 1)"),
            CoreError::BadLearningRate(msg) => write!(f, "bad learning rate: {msg}"),
            CoreError::BadExploration(msg) => write!(f, "bad exploration: {msg}"),
            CoreError::BadRewardWeight { what, value } => {
                write!(f, "reward weight `{what}` invalid: {value}")
            }
            CoreError::BadEncoder(msg) => write!(f, "bad state encoder: {msg}"),
            CoreError::BadConstraint(msg) => write!(f, "bad qos constraint: {msg}"),
            CoreError::BadFuzzy(msg) => write!(f, "bad fuzzy configuration: {msg}"),
            CoreError::CorruptTable(msg) => write!(f, "corrupt q-table blob: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<CoreError>();
    }

    #[test]
    fn display_contains_value() {
        let e = CoreError::BadDiscount(1.5);
        assert!(e.to_string().contains("1.5"));
    }
}
