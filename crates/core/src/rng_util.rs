//! Small uniform-sampling helpers over `&mut dyn Rng`.

use rand::Rng;

/// Uniform `f64` in `[0, 1)` via the 53-bit mantissa method (kept identical
/// to the workload crate's sampler so seeds behave consistently).
#[inline]
pub(crate) fn uniform(rng: &mut dyn Rng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform index in `[0, n)`.
#[inline]
pub(crate) fn uniform_index(rng: &mut dyn Rng, n: usize) -> usize {
    debug_assert!(n > 0);
    ((uniform(rng) * n as f64) as usize).min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let u = uniform(&mut rng);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_index_in_range() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let i = uniform_index(&mut rng, 5);
            assert!(i < 5);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all indices should appear");
    }
}
