//! Uniform-sampling helpers over any [`Rng`] — the workspace's single
//! canonical sampler.
//!
//! Every crate that draws uniforms (the learners here, the simulation
//! engine and baseline policies in `qdpm-sim`, the request generators in
//! `qdpm-workload`) routes through these two functions, so a fixed seed
//! produces bit-identical streams everywhere. The mapping is pinned by a
//! cross-crate test; changing it invalidates published results.

use rand::Rng;

/// Uniform `f64` in `[0, 1)` via the 53-bit mantissa method (the top 53
/// bits of the raw draw scaled by 2^-53 — dependency-stable and exact).
///
/// Generic (with a `?Sized` bound, so `&mut dyn Rng` callers still work)
/// so monomorphized hot loops get a statically dispatched, inlinable
/// draw; the mapping itself is identical either way.
#[inline]
#[must_use]
pub fn uniform<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform index in `[0, n)` by scaling (bias is negligible for the tiny
/// `n` used in simulation; rejection-free keeps the draw count fixed).
///
/// # Panics
///
/// Debug-asserts `n > 0`.
#[inline]
#[must_use]
pub fn uniform_index<R: Rng + ?Sized>(rng: &mut R, n: usize) -> usize {
    debug_assert!(n > 0);
    ((uniform(rng) * n as f64) as usize).min(n - 1)
}

/// Samples a geometric gap on `{1, 2, ...}` with per-trial success
/// probability `p` by inversion of one [`uniform`] draw: the law of
/// "trials until (and including) the first success" of i.i.d.
/// Bernoulli(`p`) trials. Returns `u64::MAX` for `p <= 0` (no success
/// ever, no draw consumed) and 1 for `p >= 1`.
///
/// This is the primitive behind event skipping: workload generators use
/// it to jump to the next arrival, learners to jump to the next
/// epsilon-greedy exploration event.
#[must_use]
pub fn geometric_gap<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u64 {
    if p <= 0.0 {
        return u64::MAX;
    }
    if p >= 1.0 {
        return 1;
    }
    let u = uniform(rng);
    // Smallest g with 1 - (1-p)^g >= u; ln(1-p) < 0 flips the inequality.
    let g = ((1.0 - u).ln() / (1.0 - p).ln()).floor() + 1.0;
    if g >= u64::MAX as f64 {
        u64::MAX
    } else {
        (g as u64).max(1)
    }
}

/// SplitMix64-style mix of a master value and an index into an
/// independent 64-bit stream member: the finalizer applied to
/// `master + index * golden_gamma` — the same mixing family
/// `SeedableRng::seed_from_u64` uses to expand seeds.
///
/// This is the workspace's one keyed hash: `qdpm_sim::parallel` derives
/// per-cell seeds from it (pinned by a unit test — published sweeps
/// depend on the values) and `qdpm_workload`'s hash-sharded dispatcher
/// assigns arrivals to devices with it. Keeping a single definition keeps
/// those streams from silently de-synchronizing.
#[must_use]
pub fn splitmix64(master: u64, index: u64) -> u64 {
    let mut z = master
        .wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let u = uniform(&mut rng);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn splitmix64_is_pinned() {
        // The values qdpm_sim::parallel::derive_cell_seed publishes.
        assert_eq!(splitmix64(3, 0), 0x1d0b_14e4_db01_8fed);
        assert_eq!(splitmix64(3, 1), 0xb346_6f8a_7b81_a989);
        assert_eq!(splitmix64(7, 0), 0x63cb_e1e4_5932_0dd7);
    }

    #[test]
    fn uniform_index_in_range() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let i = uniform_index(&mut rng, 5);
            assert!(i < 5);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all indices should appear");
    }
}
