use rand::Rng;
use serde::{Deserialize, Serialize};

use qdpm_device::{DeviceMode, PowerModel, PowerStateId};

use crate::state_io::{StateError, StateReader, StateWriter};
use crate::variants::TabularLearner;
use crate::{
    CoreError, DpmStateEncoder, Exploration, LearningRate, LegalActionTable, Observation, QLearner,
    StateEncoder,
};

/// Per-slice outcome reported back to a power manager after its command
/// took effect: the raw ingredients of the reinforcement signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepOutcome {
    /// Energy consumed during the slice (residency + transition share).
    pub energy: f64,
    /// Queue length at the end of the slice.
    pub queue_len: usize,
    /// Requests dropped by a full queue during the slice.
    pub dropped: u32,
    /// Requests completed during the slice.
    pub completed: u32,
    /// Requests that arrived during the slice.
    pub arrivals: u32,
    /// Deadline-tagged requests that completed during the slice *after*
    /// their deadline (0 in untagged workloads, and always 0 during
    /// quiescent stretches — an empty queue has nothing to miss, which is
    /// what keeps event-skip commits exact for deadline-tagged runs).
    pub deadline_misses: u32,
}

/// Weights turning a [`StepOutcome`] into the scalar reinforcement of the
/// paper's Eqn. (3), extended with a deadline term:
/// `reward = -(energy*e + perf*(queue + drop_penalty*drops +
/// deadline_penalty*misses))`.
///
/// This mirrors the cost criteria of the exact DTMDP (energy + weighted
/// performance), so a converged Q-DPM agent and the model-based optimum
/// optimize the same objective. The deadline penalty defaults to `0.0`,
/// which adds an exact floating-point zero for untagged workloads — the
/// reward (and therefore every learned table) is bit-identical to the
/// pre-deadline formula unless a penalty is explicitly configured.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardWeights {
    /// Weight on energy.
    pub energy: f64,
    /// Weight on the performance penalty.
    pub perf: f64,
    /// Extra performance penalty per dropped request.
    pub drop_penalty: f64,
    /// Extra performance penalty per deadline miss (see
    /// [`StepOutcome::deadline_misses`]).
    pub deadline_penalty: f64,
}

impl RewardWeights {
    /// Creates validated weights with no deadline penalty (see
    /// [`RewardWeights::with_deadline_penalty`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadRewardWeight`] for a negative or non-finite
    /// weight.
    pub fn new(energy: f64, perf: f64, drop_penalty: f64) -> Result<Self, CoreError> {
        for (what, v) in [
            ("energy", energy),
            ("perf", perf),
            ("drop_penalty", drop_penalty),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(CoreError::BadRewardWeight { what, value: v });
            }
        }
        Ok(RewardWeights {
            energy,
            perf,
            drop_penalty,
            deadline_penalty: 0.0,
        })
    }

    /// Sets the per-miss deadline penalty.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadRewardWeight`] for a negative or non-finite
    /// penalty.
    pub fn with_deadline_penalty(mut self, deadline_penalty: f64) -> Result<Self, CoreError> {
        if !(deadline_penalty.is_finite() && deadline_penalty >= 0.0) {
            return Err(CoreError::BadRewardWeight {
                what: "deadline_penalty",
                value: deadline_penalty,
            });
        }
        self.deadline_penalty = deadline_penalty;
        Ok(self)
    }

    /// The scalar reward of one slice.
    #[must_use]
    pub fn reward(&self, outcome: &StepOutcome) -> f64 {
        -(self.energy * outcome.energy
            + self.perf
                * (outcome.queue_len as f64
                    + self.drop_penalty * f64::from(outcome.dropped)
                    + self.deadline_penalty * f64::from(outcome.deadline_misses)))
    }
}

impl Default for RewardWeights {
    /// Energy 1.0, perf 0.1, drop penalty 20, no deadline penalty — the
    /// reproduction's standard trade-off (mirrors `CostWeights::default()`
    /// plus the builder's drop penalty).
    fn default() -> Self {
        RewardWeights {
            energy: 1.0,
            perf: 0.1,
            drop_penalty: 20.0,
            deadline_penalty: 0.0,
        }
    }
}

/// A power manager: observes the system each slice and commands a target
/// power state; learning managers also consume the subsequent
/// [`StepOutcome`].
///
/// Implemented by the Q-DPM agents in this crate and by every baseline
/// policy in `qdpm-sim` (timeouts, always-on, the model-based adaptive
/// pipeline, the MDP-optimal controller).
///
/// `Send` is a supertrait so boxed managers (and the simulators owning
/// them) can be driven from worker threads by the parallel experiment
/// runner (`qdpm_sim::parallel`).
pub trait PowerManager: std::fmt::Debug + Send {
    /// Chooses the command for this slice.
    fn decide(&mut self, obs: &Observation, rng: &mut dyn Rng) -> PowerStateId;

    /// Receives the outcome of the slice just simulated and the observation
    /// that opens the next slice. Non-learning policies ignore this.
    fn observe(&mut self, outcome: &StepOutcome, next_obs: &Observation) {
        let _ = (outcome, next_obs);
    }

    /// Event-skip support (`qdpm_sim::EngineMode::EventSkip`): asked at
    /// the start of a quiescent stretch — empty queue, no arrivals for at
    /// least `max` upcoming slices, noise-free observations — how many of
    /// those slices the manager commits to passing without being
    /// consulted.
    ///
    /// Committing `k <= max` slices asserts two things about each of
    /// them: the manager's `decide` would not have changed the slice's
    /// outcome (operational device: it would have commanded the current
    /// state; transitioning device: any command, since commands are
    /// ignored mid-transition), and the manager has itself applied
    /// whatever per-slice bookkeeping its `decide`/`observe` pair would
    /// have performed — the engine calls neither for committed slices.
    /// `per_slice` is the identical outcome every committed slice
    /// produces; `obs` opens the stretch, within which only
    /// `Observation::idle_slices` advances (by 1 per slice).
    ///
    /// Stochastic managers may sample their commitment from `rng` — exact
    /// in distribution but a different draw order than per-slice stepping.
    /// A manager that pre-draws the action *ending* the run must return
    /// exactly that action from its next `decide` without redrawing, or
    /// the run-length law is biased.
    ///
    /// The default commits nothing, making event skipping a strict
    /// per-policy opt-in (managers with per-slice estimators, traces or
    /// per-slice exploration schedules simply keep the default).
    fn commit_quiescent(
        &mut self,
        obs: &Observation,
        per_slice: &StepOutcome,
        max: u64,
        rng: &mut dyn Rng,
    ) -> u64 {
        let _ = (obs, per_slice, max, rng);
        0
    }

    /// Checkpoint support: appends the manager's full mutable state to a
    /// payload (learned tables, pending transitions, internal timers). The
    /// default writes nothing — correct for stateless policies — and is
    /// symmetric with the default [`PowerManager::load_state`], which
    /// reads nothing.
    fn save_state(&self, w: &mut StateWriter) {
        let _ = w;
    }

    /// Checkpoint support: restores state written by
    /// [`PowerManager::save_state`]. Default: reads nothing.
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] when the payload does not decode or a
    /// restored value is out of range for this manager.
    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let _ = r;
        Ok(())
    }

    /// Short display name for reports.
    fn name(&self) -> &str;
}

/// Writes an `Option<usize>` pair-of-fields (`flag`, value) — the framing
/// used by every agent checkpoint in this crate.
pub(crate) fn put_opt_usize(w: &mut StateWriter, v: Option<usize>) {
    w.put_bool(v.is_some());
    w.put_usize(v.unwrap_or(0));
}

/// Reads an `Option<usize>` written by [`put_opt_usize`].
pub(crate) fn get_opt_usize(r: &mut StateReader<'_>) -> Result<Option<usize>, StateError> {
    let some = r.get_bool()?;
    let v = r.get_usize()?;
    Ok(some.then_some(v))
}

/// The Q-DPM power manager (the paper's contribution).
///
/// Wraps a [`QLearner`] with a [`DpmStateEncoder`] and [`RewardWeights`]:
/// each slice it encodes the observation, selects a command epsilon-greedily
/// from the Q-table, and on feedback applies Eqn. (3). There is no workload
/// model, no parameter estimator and no mode-switch controller — policy
/// optimization *is* the per-slice table update, which is what makes the
/// response to parameter variation "almost instant" (Fig. 2) and the
/// per-step cost O(|A|) (bench T3).
///
/// # Example
///
/// ```
/// use qdpm_core::{QDpmAgent, QDpmConfig};
/// use qdpm_device::presets;
///
/// # fn main() -> Result<(), qdpm_core::CoreError> {
/// let power = presets::three_state_generic();
/// let agent = QDpmAgent::new(&power, QDpmConfig::default())?;
/// assert!(agent.table_bytes() < 64 * 1024, "fits a tiny embedded budget");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GenericQDpmAgent<L> {
    learner: L,
    encoder: DpmStateEncoder,
    /// Precomputed per-mode legal-action sets (no per-slice allocation).
    legal: LegalActionTable,
    weights: RewardWeights,
    /// `(state, action)` of the decision awaiting feedback.
    pending: Option<(usize, usize)>,
    /// Action pre-drawn by a quiescent stay run, to be served verbatim by
    /// the next `decide` (see [`PowerManager::commit_quiescent`]).
    deviation: Option<usize>,
    name: String,
}

/// The paper's agent: [`GenericQDpmAgent`] specialized to Watkins
/// one-step Q-learning.
pub type QDpmAgent = GenericQDpmAgent<QLearner>;

/// Configuration of a [`QDpmAgent`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QDpmConfig {
    /// Discount factor `beta` of Eqn. (3).
    pub discount: f64,
    /// Learning-rate schedule (`gamma`).
    pub learning_rate: LearningRate,
    /// Exploration strategy (`epsilon`).
    pub exploration: Exploration,
    /// Reward weights.
    pub weights: RewardWeights,
    /// Queue depth represented exactly in the state encoding.
    pub queue_cap: usize,
    /// Optional idle-time thresholds for the state encoding (empty = idle
    /// time not observed; exact-MDP configuration).
    pub idle_thresholds: Vec<u64>,
}

impl Default for QDpmConfig {
    fn default() -> Self {
        QDpmConfig {
            // A long effective horizon (~100 slices) is needed for the
            // learner to connect low-queue states to the eventual
            // queue-full drop penalties; shorter horizons learn to shed
            // load and sleep through light workloads.
            discount: 0.99,
            learning_rate: LearningRate::default(),
            exploration: Exploration::default(),
            weights: RewardWeights::default(),
            queue_cap: 8,
            idle_thresholds: Vec::new(),
        }
    }
}

impl QDpmAgent {
    /// Creates an agent for the given device.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors from the learner, encoder and
    /// weights.
    pub fn new(power: &PowerModel, config: QDpmConfig) -> Result<Self, CoreError> {
        let encoder = QDpmConfig::encoder_for(&config, power)?;
        let learner = QLearner::new(
            encoder.n_states(),
            power.n_states(),
            config.discount,
            config.learning_rate,
            config.exploration,
        )?;
        Ok(QDpmAgent {
            learner,
            encoder,
            legal: LegalActionTable::new(power),
            weights: config.weights,
            pending: None,
            deviation: None,
            name: "q-dpm".to_string(),
        })
    }

    /// Read access to the learner (Q-table inspection, step counts).
    #[must_use]
    pub fn learner(&self) -> &QLearner {
        &self.learner
    }

    /// Exact Q-table footprint in bytes (table T2's Q-DPM column).
    #[must_use]
    pub fn table_bytes(&self) -> usize {
        self.learner.table().memory_bytes()
    }

    /// Serializes the learned Q-table for persistence (warm-starting an
    /// embedded node across reboots).
    #[must_use]
    pub fn export_table(&self) -> Vec<u8> {
        self.learner.table().to_bytes()
    }

    /// Restores a Q-table exported by [`QDpmAgent::export_table`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CorruptTable`] for a damaged blob or one whose
    /// dimensions do not match this agent's encoder/device.
    pub fn import_table(&mut self, bytes: &[u8]) -> Result<(), CoreError> {
        let table = crate::QTable::from_bytes(bytes)?;
        let current = self.learner.table();
        if table.n_states() != current.n_states() || table.n_actions() != current.n_actions() {
            return Err(CoreError::CorruptTable(format!(
                "table is {}x{}, agent expects {}x{}",
                table.n_states(),
                table.n_actions(),
                current.n_states(),
                current.n_actions()
            )));
        }
        self.learner.replace_table(table);
        Ok(())
    }
}

impl QDpmConfig {
    /// Builds the state encoder this configuration describes.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::BadEncoder`].
    pub fn encoder_for(&self, power: &PowerModel) -> Result<DpmStateEncoder, CoreError> {
        let idle = if self.idle_thresholds.is_empty() {
            crate::IdleBuckets::None
        } else {
            crate::IdleBuckets::Thresholds(self.idle_thresholds.clone())
        };
        DpmStateEncoder::new(
            power,
            crate::QueueBuckets::Exact {
                cap: self.queue_cap,
            },
            idle,
        )
    }
}

impl<L: TabularLearner> GenericQDpmAgent<L> {
    /// Assembles an agent from an explicit learner (SARSA, Double Q,
    /// Q(lambda), ...). The learner must have been sized for
    /// `config.encoder_for(power).n_states()` states and
    /// `power.n_states()` actions.
    ///
    /// # Errors
    ///
    /// Propagates encoder validation errors.
    pub fn with_learner(
        power: &PowerModel,
        config: &QDpmConfig,
        learner: L,
    ) -> Result<Self, CoreError> {
        let encoder = config.encoder_for(power)?;
        let name = format!("q-dpm[{}]", learner.algorithm());
        Ok(GenericQDpmAgent {
            learner,
            encoder,
            legal: LegalActionTable::new(power),
            weights: config.weights,
            pending: None,
            deviation: None,
            name,
        })
    }

    /// Renames the agent (for side-by-side ablation reports).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Read access to the wrapped learner.
    #[must_use]
    pub fn learner_ref(&self) -> &L {
        &self.learner
    }

    /// Legal command targets in the given device mode: stay or any defined
    /// transition when operational; "stay the course" mid-transition.
    ///
    /// Served from the [`LegalActionTable`] precomputed at construction,
    /// so the call is allocation-free.
    #[must_use]
    pub fn legal_actions(&self, mode: DeviceMode) -> &[usize] {
        self.legal.legal(mode)
    }

    /// Learned-table footprint in bytes.
    #[must_use]
    pub fn learner_bytes(&self) -> usize {
        self.learner.memory_bytes()
    }

    /// The reward the agent derives from an outcome (exposed for tests and
    /// the QoS agent).
    #[must_use]
    pub fn reward(&self, outcome: &StepOutcome) -> f64 {
        self.weights.reward(outcome)
    }

    /// The greedy command in `obs` without exploration or learning — used
    /// for frozen-policy evaluation.
    #[must_use]
    pub fn greedy_action(&self, obs: &Observation) -> PowerStateId {
        let s = self.encoder.encode(obs);
        let legal = self.legal.legal(obs.device_mode);
        PowerStateId::from_index(self.learner.best_action(s, legal))
    }
}

impl<L: TabularLearner> PowerManager for GenericQDpmAgent<L> {
    fn decide(&mut self, obs: &Observation, rng: &mut dyn Rng) -> PowerStateId {
        let s = self.encoder.encode(obs);
        // A stay run pre-drew the action ending the quiescent stretch;
        // serve it verbatim (no redraw — see `commit_quiescent`).
        if let Some(a) = self.deviation.take() {
            self.pending = Some((s, a));
            return PowerStateId::from_index(a);
        }
        // Field-level borrow: the legal slice borrows `self.legal` while
        // the learner is borrowed mutably.
        let a = self
            .learner
            .select_action(s, self.legal.legal(obs.device_mode), rng);
        self.pending = Some((s, a));
        PowerStateId::from_index(a)
    }

    fn observe(&mut self, outcome: &StepOutcome, next_obs: &Observation) {
        let Some((s, a)) = self.pending.take() else {
            return; // no decision awaiting feedback
        };
        let reward = self.weights.reward(outcome);
        let next_s = self.encoder.encode(next_obs);
        self.learner
            .update(s, a, reward, next_s, self.legal.legal(next_obs.device_mode));
    }

    fn commit_quiescent(
        &mut self,
        obs: &Observation,
        per_slice: &StepOutcome,
        max: u64,
        rng: &mut dyn Rng,
    ) -> u64 {
        // A pre-drawn deviation (or an unanswered decide) must drain
        // through the per-slice path first.
        if self.deviation.is_some() || self.pending.is_some() {
            return 0;
        }
        if obs.queue_len != 0 {
            return 0;
        }
        let reward = self.weights.reward(per_slice);
        // Mid-transition the decide is pinned to the transition target,
        // so the per-slice decide/observe pairs can be replayed verbatim
        // (shared with the QoS agent).
        if obs.device_mode.is_transitioning() {
            return replay_transient_march(
                &mut self.learner,
                &self.encoder,
                &self.legal,
                obs,
                reward,
                max,
                rng,
            );
        }
        let run = commit_operational_stay(
            &mut self.learner,
            &self.encoder,
            &self.legal,
            obs,
            reward,
            max,
            rng,
        );
        self.deviation = run.deviation;
        run.slices
    }

    fn save_state(&self, w: &mut StateWriter) {
        put_opt_usize(w, self.pending.map(|(s, _)| s));
        put_opt_usize(w, self.pending.map(|(_, a)| a));
        put_opt_usize(w, self.deviation);
        self.learner.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let s = get_opt_usize(r)?;
        let a = get_opt_usize(r)?;
        self.pending = match (s, a) {
            (Some(s), Some(a)) => Some((s, a)),
            (None, None) => None,
            _ => {
                return Err(StateError::BadValue(
                    "half-present pending transition".to_string(),
                ))
            }
        };
        self.deviation = get_opt_usize(r)?;
        self.learner.load_state(r)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// The operational arm of a learning agent's quiescent commitment: caps
/// the window at the encoder's idle-bucket horizon, checks that staying
/// put is a legal action, and delegates to the learner's
/// [`TabularLearner::commit_stay_run`]. Shared by the plain and QoS Q-DPM
/// agents; the caller supplies its own per-slice `reward` and stores the
/// returned deviation for its next decide.
pub(crate) fn commit_operational_stay<L: TabularLearner>(
    learner: &mut L,
    encoder: &DpmStateEncoder,
    legal_table: &LegalActionTable,
    obs: &Observation,
    reward: f64,
    max: u64,
    rng: &mut dyn Rng,
) -> crate::StayRun {
    let DeviceMode::Operational(state) = obs.device_mode else {
        return crate::StayRun::none();
    };
    // The encoded state must be invariant across the whole stretch (idle
    // time is its only moving part).
    let max = max.min(encoder.idle_invariance_horizon(obs.idle_slices));
    if max == 0 {
        return crate::StayRun::none();
    }
    let s = encoder.encode(obs);
    let legal = legal_table.legal(obs.device_mode);
    let stay = state.index();
    if !legal.contains(&stay) {
        return crate::StayRun::none();
    }
    learner.commit_stay_run(s, stay, legal, reward, max, rng)
}

/// Replays the forced decide/observe march through an in-flight
/// transition for a learning agent, committing up to `max` slices (capped
/// at the transition end and the encoder's idle-bucket horizon).
///
/// Mid-transition the legal set is the single "stay the course" action,
/// so each slice's `select_action` is pinned (and consumes no
/// randomness) while the updates walk through the distinct transient
/// states — calling the very learner methods per-slice stepping would,
/// with the same RNG, making the replay bit-exact and stream-identical
/// for every [`TabularLearner`]. Shared by the plain and QoS Q-DPM
/// agents; the caller supplies its own per-slice `reward`.
pub(crate) fn replay_transient_march<L: TabularLearner>(
    learner: &mut L,
    encoder: &DpmStateEncoder,
    legal: &LegalActionTable,
    obs: &Observation,
    reward: f64,
    max: u64,
    rng: &mut dyn Rng,
) -> u64 {
    let DeviceMode::Transitioning {
        from,
        to,
        remaining,
    } = obs.device_mode
    else {
        return 0;
    };
    let k = max
        .min(u64::from(remaining))
        .min(encoder.idle_invariance_horizon(obs.idle_slices));
    for j in 0..k {
        let rem = remaining - j as u32;
        let mode_j = DeviceMode::Transitioning {
            from,
            to,
            remaining: rem,
        };
        let obs_j = Observation {
            device_mode: mode_j,
            queue_len: 0,
            idle_slices: obs.idle_slices + j,
            sr_mode_hint: None,
        };
        let s = encoder.encode(&obs_j);
        let a = learner.select_action(s, legal.legal(mode_j), rng);
        debug_assert_eq!(a, to.index(), "mid-transition decide is forced");
        let next_mode = if rem <= 1 {
            DeviceMode::Operational(to)
        } else {
            DeviceMode::Transitioning {
                from,
                to,
                remaining: rem - 1,
            }
        };
        let next_obs = Observation {
            device_mode: next_mode,
            queue_len: 0,
            idle_slices: obs.idle_slices + j + 1,
            sr_mode_hint: None,
        };
        let next_s = encoder.encode(&next_obs);
        learner.update(s, a, reward, next_s, legal.legal(next_mode));
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdpm_device::presets;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn observation(power: &PowerModel, state: &str, q: usize) -> Observation {
        Observation {
            device_mode: DeviceMode::Operational(power.state_by_name(state).unwrap()),
            queue_len: q,
            idle_slices: 0,
            sr_mode_hint: None,
        }
    }

    #[test]
    fn reward_weights_validate() {
        assert!(RewardWeights::new(1.0, 0.1, 20.0).is_ok());
        assert!(RewardWeights::new(-1.0, 0.1, 0.0).is_err());
        assert!(RewardWeights::new(1.0, f64::INFINITY, 0.0).is_err());
    }

    #[test]
    fn reward_formula_by_hand() {
        let w = RewardWeights::new(1.0, 0.5, 10.0).unwrap();
        let outcome = StepOutcome {
            energy: 2.0,
            queue_len: 3,
            dropped: 1,
            completed: 0,
            arrivals: 1,
            deadline_misses: 0,
        };
        // -(2.0 + 0.5*(3 + 10)) = -8.5
        assert!((w.reward(&outcome) + 8.5).abs() < 1e-12);
    }

    #[test]
    fn legal_actions_by_mode() {
        let power = presets::three_state_generic();
        let agent = QDpmAgent::new(&power, QDpmConfig::default()).unwrap();
        let active = power.state_by_name("active").unwrap();
        let sleep = power.state_by_name("sleep").unwrap();
        assert_eq!(
            agent.legal_actions(DeviceMode::Operational(active)).len(),
            3
        );
        assert_eq!(
            agent.legal_actions(DeviceMode::Transitioning {
                from: active,
                to: sleep,
                remaining: 2
            }),
            vec![sleep.index()]
        );
    }

    #[test]
    fn decide_then_observe_updates_table() {
        let power = presets::three_state_generic();
        let mut agent = QDpmAgent::new(&power, QDpmConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let obs = observation(&power, "active", 0);
        let _ = agent.decide(&obs, &mut rng);
        assert_eq!(agent.learner().steps(), 0);
        let outcome = StepOutcome {
            energy: 1.0,
            queue_len: 0,
            dropped: 0,
            completed: 0,
            arrivals: 0,
            deadline_misses: 0,
        };
        agent.observe(&outcome, &observation(&power, "active", 0));
        assert_eq!(agent.learner().steps(), 1);
    }

    #[test]
    fn observe_without_decide_is_noop() {
        let power = presets::three_state_generic();
        let mut agent = QDpmAgent::new(&power, QDpmConfig::default()).unwrap();
        let outcome = StepOutcome {
            energy: 1.0,
            queue_len: 0,
            dropped: 0,
            completed: 0,
            arrivals: 0,
            deadline_misses: 0,
        };
        agent.observe(&outcome, &observation(&power, "active", 0));
        assert_eq!(agent.learner().steps(), 0);
    }

    #[test]
    fn transitioning_device_forces_stay_the_course() {
        let power = presets::three_state_generic();
        let mut agent = QDpmAgent::new(&power, QDpmConfig::default()).unwrap();
        let active = power.state_by_name("active").unwrap();
        let sleep = power.state_by_name("sleep").unwrap();
        let obs = Observation {
            device_mode: DeviceMode::Transitioning {
                from: active,
                to: sleep,
                remaining: 1,
            },
            queue_len: 2,
            idle_slices: 0,
            sr_mode_hint: None,
        };
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(agent.decide(&obs, &mut rng), sleep);
        }
    }

    #[test]
    fn q_table_is_small() {
        // The paper's memory claim: a 3-state device with queue cap 8
        // needs only 11 * 9 = 99 states x 3 actions.
        let power = presets::three_state_generic();
        let agent = QDpmAgent::new(&power, QDpmConfig::default()).unwrap();
        assert_eq!(agent.table_bytes(), 99 * 3 * (8 + 4));
    }

    /// Learning sanity: with no arrivals ever, the greedy policy from the
    /// active/empty-queue state should eventually head toward lower power.
    #[test]
    fn learns_to_leave_active_when_idle() {
        let power = presets::three_state_generic();
        let mut agent = QDpmAgent::new(
            &power,
            QDpmConfig {
                exploration: Exploration::EpsilonGreedy { epsilon: 0.2 },
                learning_rate: LearningRate::Constant(0.2),
                ..QDpmConfig::default()
            },
        )
        .unwrap();
        let active = power.state_by_name("active").unwrap();
        let mut rng = StdRng::seed_from_u64(9);

        // Hand-rolled tiny environment: device with no arrivals; we only
        // model operational residency (transitions abstracted to one slice)
        // to check the learning direction, not exact optimality.
        let mut mode = DeviceMode::Operational(active);
        for _ in 0..20_000 {
            let obs = Observation {
                device_mode: mode,
                queue_len: 0,
                idle_slices: 0,
                sr_mode_hint: None,
            };
            let cmd = agent.decide(&obs, &mut rng);
            // Instant-transition toy dynamics.
            let next_mode = DeviceMode::Operational(cmd);
            let energy = power.state(cmd).power;
            let outcome = StepOutcome {
                energy,
                queue_len: 0,
                dropped: 0,
                completed: 0,
                arrivals: 0,
                deadline_misses: 0,
            };
            let next_obs = Observation {
                device_mode: next_mode,
                queue_len: 0,
                idle_slices: 0,
                sr_mode_hint: None,
            };
            agent.observe(&outcome, &next_obs);
            mode = next_mode;
        }
        let greedy = agent.greedy_action(&Observation {
            device_mode: DeviceMode::Operational(active),
            queue_len: 0,
            idle_slices: 0,
            sr_mode_hint: None,
        });
        let sleep = power.state_by_name("sleep").unwrap();
        assert_eq!(greedy, sleep, "idle system should learn to sleep");
    }
}
