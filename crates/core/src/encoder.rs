use serde::{Deserialize, Serialize};

use qdpm_device::{DeviceMode, PowerModel};

use crate::legal::TransientModeIndex;
use crate::CoreError;

/// What the power manager can observe at the start of a slice.
///
/// These are exactly the signals a real PM has access to: its own device's
/// mode (the PM is the driver, so the power state machine is known), the
/// service-queue depth, and how long the input has been silent. The hidden
/// requester mode is *not* observable — being model-free about the workload
/// is the paper's whole point — but white-box baselines may receive it via
/// `sr_mode_hint`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Current device mode (operational state or in-flight transition).
    pub device_mode: DeviceMode,
    /// Requests currently waiting in the service queue.
    pub queue_len: usize,
    /// Slices since the last request arrival.
    pub idle_slices: u64,
    /// Hidden requester mode, available only to white-box baselines.
    pub sr_mode_hint: Option<usize>,
}

/// Maps observations onto the dense state indices of a Q-table.
pub trait StateEncoder: std::fmt::Debug {
    /// Number of distinct encoded states.
    fn n_states(&self) -> usize;

    /// Encodes an observation. Must return a value below
    /// [`StateEncoder::n_states`].
    fn encode(&self, obs: &Observation) -> usize;
}

/// How queue depth is quantized by [`DpmStateEncoder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueueBuckets {
    /// One state per depth `0..=cap` (exact; matches the MDP state space).
    Exact {
        /// Maximum depth represented; deeper queues clamp to `cap`.
        cap: usize,
    },
    /// Logarithmic depth buckets `{0}, {1}, {2..3}, {4..7}, ...` capped at
    /// `n` buckets (compact tables for memory-constrained nodes).
    Log {
        /// Number of buckets, at least 2.
        n: usize,
    },
}

impl QueueBuckets {
    fn n_buckets(&self) -> usize {
        match *self {
            QueueBuckets::Exact { cap } => cap + 1,
            QueueBuckets::Log { n } => n,
        }
    }

    fn bucket(&self, len: usize) -> usize {
        match *self {
            QueueBuckets::Exact { cap } => len.min(cap),
            QueueBuckets::Log { n } => {
                if len == 0 {
                    0
                } else {
                    ((usize::BITS - len.leading_zeros()) as usize).min(n - 1)
                }
            }
        }
    }
}

/// How idle time (slices since the last arrival) is quantized.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IdleBuckets {
    /// Idle time is ignored (the exact-MDP-matching configuration for
    /// memoryless workloads).
    None,
    /// Bucket `i` holds idle times in `[thresholds[i-1], thresholds[i])`;
    /// the last bucket is open-ended. Thresholds must be strictly
    /// increasing.
    Thresholds(Vec<u64>),
}

impl IdleBuckets {
    fn n_buckets(&self) -> usize {
        match self {
            IdleBuckets::None => 1,
            IdleBuckets::Thresholds(t) => t.len() + 1,
        }
    }

    fn bucket(&self, idle: u64) -> usize {
        match self {
            IdleBuckets::None => 0,
            // Thresholds are validated strictly increasing, so `idle >= th`
            // is monotone over the vector and the bucket is the partition
            // point — O(log n) instead of the former linear scan.
            IdleBuckets::Thresholds(t) => t.partition_point(|&th| idle >= th),
        }
    }

    /// The largest `k` such that `bucket(idle + k) == bucket(idle)`
    /// (`u64::MAX` when the bucket never changes again).
    fn invariance_horizon(&self, idle: u64) -> u64 {
        match self {
            IdleBuckets::None => u64::MAX,
            IdleBuckets::Thresholds(t) => match t.get(self.bucket(idle)) {
                // The bucket holds until the next threshold: it changes at
                // `idle' >= t[b]`, so it is stable through `t[b] - 1`.
                Some(&next) => next - 1 - idle,
                None => u64::MAX, // open-ended last bucket
            },
        }
    }
}

/// The default Q-DPM state encoder: `device mode x queue bucket x idle
/// bucket`.
///
/// Device modes are enumerated exactly (operational states plus every
/// in-flight transition step), mirroring how the PM — being the device
/// driver — knows its own power state machine. With
/// [`QueueBuckets::Exact`] and [`IdleBuckets::None`] on a memoryless
/// workload, the encoded space coincides with the exact DTMDP state space,
/// which is what lets Fig. 1 show convergence *to* the analytic optimum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DpmStateEncoder {
    /// Dense O(1) device-mode lookup (operational + transient modes, in
    /// the pinned enumeration order).
    modes: TransientModeIndex,
    queue: QueueBuckets,
    idle: IdleBuckets,
}

impl DpmStateEncoder {
    /// Builds an encoder for `power` with the given bucketing.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadEncoder`] for empty/degenerate bucketings.
    pub fn new(
        power: &PowerModel,
        queue: QueueBuckets,
        idle: IdleBuckets,
    ) -> Result<Self, CoreError> {
        match &queue {
            QueueBuckets::Exact { .. } => {}
            QueueBuckets::Log { n } if *n >= 2 => {}
            QueueBuckets::Log { n } => {
                return Err(CoreError::BadEncoder(format!(
                    "log bucketing needs n >= 2, got {n}"
                )))
            }
        }
        if let IdleBuckets::Thresholds(t) = &idle {
            if t.is_empty() || t.windows(2).any(|w| w[0] >= w[1]) {
                return Err(CoreError::BadEncoder(
                    "idle thresholds must be non-empty and strictly increasing".into(),
                ));
            }
        }
        // Transient modes are enumerated exactly like the device walks
        // them; `TransientModeIndex` pins the order and gives O(1) lookup.
        Ok(DpmStateEncoder {
            modes: TransientModeIndex::new(power),
            queue,
            idle,
        })
    }

    /// Convenience constructor matching the exact DTMDP state space of a
    /// memoryless workload: exact queue depths `0..=queue_cap`, no idle
    /// feature.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::BadEncoder`] (cannot occur for this
    /// configuration, kept for API uniformity).
    pub fn exact(power: &PowerModel, queue_cap: usize) -> Result<Self, CoreError> {
        DpmStateEncoder::new(
            power,
            QueueBuckets::Exact { cap: queue_cap },
            IdleBuckets::None,
        )
    }

    /// How many consecutive idle-time increments from `idle` leave the
    /// encoded state unchanged when every other observation field is held
    /// fixed (`u64::MAX` when idle time is unobserved or the last bucket
    /// has been reached). The event-skipping engine must not let an agent
    /// commit a quiescent stretch longer than this, or mid-stretch
    /// Q-updates would land in the wrong row.
    #[must_use]
    pub fn idle_invariance_horizon(&self, idle: u64) -> u64 {
        self.idle.invariance_horizon(idle)
    }
}

impl StateEncoder for DpmStateEncoder {
    fn n_states(&self) -> usize {
        self.modes.n_modes() * self.queue.n_buckets() * self.idle.n_buckets()
    }

    #[inline]
    fn encode(&self, obs: &Observation) -> usize {
        let dev = self.modes.mode_index(obs.device_mode);
        let qb = self.queue.bucket(obs.queue_len);
        let ib = self.idle.bucket(obs.idle_slices);
        (dev * self.queue.n_buckets() + qb) * self.idle.n_buckets() + ib
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use qdpm_device::{presets, PowerStateId};

    fn obs(mode: DeviceMode, q: usize, idle: u64) -> Observation {
        Observation {
            device_mode: mode,
            queue_len: q,
            idle_slices: idle,
            sr_mode_hint: None,
        }
    }

    #[test]
    fn exact_encoder_counts_match_mdp_space() {
        let power = presets::three_state_generic();
        let enc = DpmStateEncoder::exact(&power, 8).unwrap();
        // 11 device modes (3 operational + 8 transient) x 9 queue depths.
        assert_eq!(enc.n_states(), 11 * 9);
    }

    #[test]
    fn encode_is_injective_on_reachable_observations() {
        let power = presets::three_state_generic();
        let enc = DpmStateEncoder::exact(&power, 4).unwrap();
        let mut seen = std::collections::HashSet::new();
        for s in 0..power.n_states() {
            for q in 0..=4 {
                let o = obs(DeviceMode::Operational(PowerStateId::from_index(s)), q, 0);
                let e = enc.encode(&o);
                assert!(e < enc.n_states());
                assert!(seen.insert(e), "collision at ({s}, {q})");
            }
        }
    }

    #[test]
    fn transient_modes_encode_distinctly() {
        let power = presets::three_state_generic();
        let enc = DpmStateEncoder::exact(&power, 2).unwrap();
        let active = power.state_by_name("active").unwrap();
        let sleep = power.state_by_name("sleep").unwrap();
        let t1 = enc.encode(&obs(
            DeviceMode::Transitioning {
                from: active,
                to: sleep,
                remaining: 1,
            },
            0,
            0,
        ));
        let t2 = enc.encode(&obs(
            DeviceMode::Transitioning {
                from: active,
                to: sleep,
                remaining: 2,
            },
            0,
            0,
        ));
        assert_ne!(t1, t2);
    }

    #[test]
    fn queue_clamps_at_cap() {
        let power = presets::three_state_generic();
        let enc = DpmStateEncoder::exact(&power, 3).unwrap();
        let a = DeviceMode::Operational(PowerStateId::from_index(0));
        assert_eq!(enc.encode(&obs(a, 3, 0)), enc.encode(&obs(a, 99, 0)));
    }

    #[test]
    fn log_buckets_group_depths() {
        let qb = QueueBuckets::Log { n: 4 };
        assert_eq!(qb.bucket(0), 0);
        assert_eq!(qb.bucket(1), 1);
        assert_eq!(qb.bucket(2), 2);
        assert_eq!(qb.bucket(3), 2);
        assert_eq!(qb.bucket(4), 3);
        assert_eq!(qb.bucket(1000), 3); // clamped to last bucket
    }

    #[test]
    fn idle_thresholds_bucket_correctly() {
        let ib = IdleBuckets::Thresholds(vec![2, 10]);
        assert_eq!(ib.n_buckets(), 3);
        assert_eq!(ib.bucket(0), 0);
        assert_eq!(ib.bucket(1), 0);
        assert_eq!(ib.bucket(2), 1);
        assert_eq!(ib.bucket(9), 1);
        assert_eq!(ib.bucket(10), 2);
        assert_eq!(ib.bucket(1_000_000), 2);
    }

    #[test]
    fn idle_feature_multiplies_state_count() {
        let power = presets::three_state_generic();
        let plain = DpmStateEncoder::exact(&power, 4).unwrap();
        let with_idle = DpmStateEncoder::new(
            &power,
            QueueBuckets::Exact { cap: 4 },
            IdleBuckets::Thresholds(vec![2, 8]),
        )
        .unwrap();
        assert_eq!(with_idle.n_states(), plain.n_states() * 3);
    }

    #[test]
    fn idle_invariance_horizon_matches_bucket_function() {
        let ib = IdleBuckets::Thresholds(vec![2, 10]);
        for idle in 0..20u64 {
            let h = ib.invariance_horizon(idle);
            if h == u64::MAX {
                assert_eq!(ib.bucket(idle), 2, "open-ended only in the last bucket");
                continue;
            }
            assert_eq!(ib.bucket(idle + h), ib.bucket(idle), "stable through h");
            assert_ne!(ib.bucket(idle + h + 1), ib.bucket(idle), "h is maximal");
        }
        assert_eq!(IdleBuckets::None.invariance_horizon(123), u64::MAX);

        let power = presets::three_state_generic();
        let enc = DpmStateEncoder::new(
            &power,
            QueueBuckets::Exact { cap: 4 },
            IdleBuckets::Thresholds(vec![5]),
        )
        .unwrap();
        assert_eq!(enc.idle_invariance_horizon(0), 4);
        assert_eq!(enc.idle_invariance_horizon(4), 0);
        assert_eq!(enc.idle_invariance_horizon(5), u64::MAX);
        let exact = DpmStateEncoder::exact(&power, 4).unwrap();
        assert_eq!(exact.idle_invariance_horizon(0), u64::MAX);
    }

    #[test]
    fn rejects_bad_configs() {
        let power = presets::three_state_generic();
        assert!(
            DpmStateEncoder::new(&power, QueueBuckets::Log { n: 1 }, IdleBuckets::None).is_err()
        );
        assert!(DpmStateEncoder::new(
            &power,
            QueueBuckets::Exact { cap: 4 },
            IdleBuckets::Thresholds(vec![5, 5])
        )
        .is_err());
        assert!(DpmStateEncoder::new(
            &power,
            QueueBuckets::Exact { cap: 4 },
            IdleBuckets::Thresholds(vec![])
        )
        .is_err());
    }

    /// SplitMix64 finalizer: a tiny deterministic stream for building
    /// random-but-reproducible threshold vectors inside the property test.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The binary-search bucket must agree with the former linear scan
        /// for arbitrary strictly-increasing threshold vectors and probes.
        #[test]
        fn idle_bucket_matches_linear_scan(seed in 0u64..10_000, idle in 0u64..400) {
            let mut state = seed;
            let len = 1 + (splitmix(&mut state) % 8) as usize;
            let mut thresholds = Vec::with_capacity(len);
            let mut acc = 0u64;
            for _ in 0..len {
                acc += 1 + splitmix(&mut state) % 60; // strictly increasing
                thresholds.push(acc);
            }
            let ib = IdleBuckets::Thresholds(thresholds.clone());
            let linear = thresholds.iter().take_while(|&&th| idle >= th).count();
            prop_assert_eq!(ib.bucket(idle), linear);
            prop_assert!(ib.bucket(idle) < ib.n_buckets());
        }
    }
}
