//! QoS-guaranteed Q-DPM: the paper's first future-work item.
//!
//! "There is still a lot of rewarding research remaining to perform, such as
//! QoS guaranteed Q-DPM..." — we implement it as two-timescale constrained
//! Q-learning: the fast timescale runs ordinary Watkins updates on the
//! Lagrangian reward `-(energy + lambda * perf)`, while the slow timescale
//! adapts the multiplier `lambda` toward the smallest value whose greedy
//! policy satisfies the performance target. This is the model-free analogue
//! of the constrained-LP optimum in `qdpm_mdp::lp::lp_solve_constrained`.

use rand::Rng;
use serde::{Deserialize, Serialize};

use qdpm_device::{PowerModel, PowerStateId};

use crate::agent::{get_opt_usize, put_opt_usize};
use crate::state_io::{StateError, StateReader, StateWriter};
use crate::{
    CoreError, DpmStateEncoder, Exploration, LearningRate, LegalActionTable, Observation,
    PowerManager, QLearner, StateEncoder, StepOutcome,
};

/// Configuration of a [`QosQDpmAgent`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosConfig {
    /// Discount factor of the Q-update.
    pub discount: f64,
    /// Learning-rate schedule of the Q-update (fast timescale).
    pub learning_rate: LearningRate,
    /// Exploration strategy.
    pub exploration: Exploration,
    /// Queue depth represented exactly in the state encoding.
    pub queue_cap: usize,
    /// Performance target: long-run average queue length (Little's-law
    /// proxy for latency) the agent must not exceed.
    pub perf_target: f64,
    /// Extra perf units charged per dropped request.
    pub drop_weight: f64,
    /// Multiplier step size (slow timescale).
    pub lambda_step: f64,
    /// Upper clamp on the multiplier.
    pub lambda_max: f64,
    /// Slices per multiplier adjustment.
    pub window: u64,
}

impl Default for QosConfig {
    fn default() -> Self {
        QosConfig {
            discount: 0.99,
            learning_rate: LearningRate::Constant(0.1),
            exploration: Exploration::EpsilonGreedy { epsilon: 0.05 },
            queue_cap: 8,
            perf_target: 1.0,
            drop_weight: 20.0,
            lambda_step: 0.05,
            lambda_max: 50.0,
            window: 200,
        }
    }
}

/// Constrained (QoS-guaranteed) Q-DPM agent.
///
/// Minimizes energy subject to an average-performance bound by learning on
/// the Lagrangian reward and adapting the multiplier online:
/// when the windowed average performance exceeds the target, `lambda`
/// grows (performance matters more); when comfortably below, it shrinks
/// (energy saving resumes).
#[derive(Debug)]
pub struct QosQDpmAgent {
    learner: QLearner,
    encoder: DpmStateEncoder,
    /// Precomputed per-mode legal-action sets (no per-slice allocation).
    legal: LegalActionTable,
    pending: Option<(usize, usize)>,
    /// Action pre-drawn by a quiescent stay run, to be served verbatim by
    /// the next `decide` (see [`PowerManager::commit_quiescent`]).
    deviation: Option<usize>,
    lambda: f64,
    config: QosConfig,
    window_perf: f64,
    window_count: u64,
    name: String,
}

impl QosQDpmAgent {
    /// Creates a QoS agent for the given device.
    ///
    /// # Errors
    ///
    /// Propagates validation errors; additionally rejects a negative
    /// `perf_target`, non-positive `window`, or bad multiplier parameters
    /// via [`CoreError::BadConstraint`].
    pub fn new(power: &PowerModel, config: QosConfig) -> Result<Self, CoreError> {
        if !(config.perf_target.is_finite() && config.perf_target >= 0.0) {
            return Err(CoreError::BadConstraint(format!(
                "perf target {} must be non-negative",
                config.perf_target
            )));
        }
        if config.window == 0 {
            return Err(CoreError::BadConstraint("window must be positive".into()));
        }
        let lambda_ok = |x: f64| x.is_finite() && x > 0.0;
        if !lambda_ok(config.lambda_step) || !lambda_ok(config.lambda_max) {
            return Err(CoreError::BadConstraint(
                "lambda step and max must be positive".into(),
            ));
        }
        let encoder = DpmStateEncoder::exact(power, config.queue_cap)?;
        let learner = QLearner::new(
            encoder.n_states(),
            power.n_states(),
            config.discount,
            config.learning_rate,
            config.exploration,
        )?;
        Ok(QosQDpmAgent {
            learner,
            encoder,
            legal: LegalActionTable::new(power),
            pending: None,
            deviation: None,
            lambda: 1.0,
            config,
            window_perf: 0.0,
            window_count: 0,
            name: "qos-q-dpm".to_string(),
        })
    }

    /// Current Lagrange multiplier.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Closes the adjustment window if it is full: adapts the multiplier
    /// toward the performance target and resets the accumulators. The one
    /// copy of the slow-timescale law, shared by the per-slice `observe`
    /// and the event-skip window replay.
    fn maybe_close_window(&mut self) {
        if self.window_count >= self.config.window {
            let avg = self.window_perf / self.window_count as f64;
            let violation = avg - self.config.perf_target;
            self.lambda = (self.lambda + self.config.lambda_step * violation)
                .clamp(0.0, self.config.lambda_max);
            self.window_perf = 0.0;
            self.window_count = 0;
        }
    }

    /// Replays the slow-timescale window bookkeeping for `slices`
    /// zero-performance slices: the perf accumulator gains nothing, only
    /// the counter advances, possibly across several multiplier
    /// adjustments.
    fn advance_window(&mut self, slices: u64) {
        let mut left = slices;
        while left > 0 {
            let take = left.min(self.config.window - self.window_count);
            self.window_count += take;
            left -= take;
            self.maybe_close_window();
        }
    }

    /// Read access to the learner.
    #[must_use]
    pub fn learner(&self) -> &QLearner {
        &self.learner
    }
}

impl PowerManager for QosQDpmAgent {
    fn decide(&mut self, obs: &Observation, rng: &mut dyn Rng) -> PowerStateId {
        let s = self.encoder.encode(obs);
        // A stay run pre-drew the action ending the quiescent stretch;
        // serve it verbatim (no redraw — see `commit_quiescent`).
        if let Some(a) = self.deviation.take() {
            self.pending = Some((s, a));
            return PowerStateId::from_index(a);
        }
        let a = self
            .learner
            .select_action(s, self.legal.legal(obs.device_mode), rng);
        self.pending = Some((s, a));
        PowerStateId::from_index(a)
    }

    fn observe(&mut self, outcome: &StepOutcome, next_obs: &Observation) {
        let perf = outcome.queue_len as f64 + self.config.drop_weight * f64::from(outcome.dropped);
        // Fast timescale: Lagrangian Q-update.
        if let Some((s, a)) = self.pending.take() {
            let reward = -(outcome.energy + self.lambda * perf);
            let next_s = self.encoder.encode(next_obs);
            self.learner
                .update(s, a, reward, next_s, self.legal.legal(next_obs.device_mode));
        }
        // Slow timescale: multiplier adaptation on windowed performance.
        self.window_perf += perf;
        self.window_count += 1;
        self.maybe_close_window();
    }

    fn commit_quiescent(
        &mut self,
        obs: &Observation,
        per_slice: &StepOutcome,
        max: u64,
        rng: &mut dyn Rng,
    ) -> u64 {
        if self.deviation.is_some() || self.pending.is_some() {
            return 0;
        }
        if obs.queue_len != 0 {
            return 0;
        }
        // Quiescent slices carry zero performance penalty (empty queue, no
        // drops), so the Lagrangian reward reduces to `-energy` and stays
        // constant even when `lambda` adjusts at a window boundary crossed
        // inside the stretch.
        let perf =
            per_slice.queue_len as f64 + self.config.drop_weight * f64::from(per_slice.dropped);
        let reward = -(per_slice.energy + self.lambda * perf);
        // Mid-transition the decide is pinned to the transition target:
        // replay the per-slice decide/observe pairs verbatim (shared with
        // the plain agent; the Lagrangian reward is this agent's own).
        if obs.device_mode.is_transitioning() {
            let k = crate::agent::replay_transient_march(
                &mut self.learner,
                &self.encoder,
                &self.legal,
                obs,
                reward,
                max,
                rng,
            );
            self.advance_window(k);
            return k;
        }
        let run = crate::agent::commit_operational_stay(
            &mut self.learner,
            &self.encoder,
            &self.legal,
            obs,
            reward,
            max,
            rng,
        );
        self.advance_window(run.slices);
        self.deviation = run.deviation;
        run.slices
    }

    fn save_state(&self, w: &mut StateWriter) {
        put_opt_usize(w, self.pending.map(|(s, _)| s));
        put_opt_usize(w, self.pending.map(|(_, a)| a));
        put_opt_usize(w, self.deviation);
        w.put_f64(self.lambda);
        w.put_f64(self.window_perf);
        w.put_u64(self.window_count);
        self.learner.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let s = get_opt_usize(r)?;
        let a = get_opt_usize(r)?;
        self.pending = match (s, a) {
            (Some(s), Some(a)) => Some((s, a)),
            (None, None) => None,
            _ => {
                return Err(StateError::BadValue(
                    "half-present pending transition".to_string(),
                ))
            }
        };
        self.deviation = get_opt_usize(r)?;
        self.lambda = r.get_f64()?;
        self.window_perf = r.get_f64()?;
        self.window_count = r.get_u64()?;
        self.learner.load_state(r)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdpm_device::{presets, DeviceMode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn obs(power: &PowerModel, q: usize) -> Observation {
        Observation {
            device_mode: DeviceMode::Operational(power.highest_power_state()),
            queue_len: q,
            idle_slices: 0,
            sr_mode_hint: None,
        }
    }

    #[test]
    fn validates_constraint_parameters() {
        let power = presets::three_state_generic();
        assert!(QosQDpmAgent::new(
            &power,
            QosConfig {
                perf_target: -1.0,
                ..QosConfig::default()
            }
        )
        .is_err());
        assert!(QosQDpmAgent::new(
            &power,
            QosConfig {
                window: 0,
                ..QosConfig::default()
            }
        )
        .is_err());
        assert!(QosQDpmAgent::new(
            &power,
            QosConfig {
                lambda_step: 0.0,
                ..QosConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn lambda_rises_under_violation() {
        let power = presets::three_state_generic();
        let mut agent = QosQDpmAgent::new(
            &power,
            QosConfig {
                perf_target: 0.5,
                window: 10,
                ..QosConfig::default()
            },
        )
        .unwrap();
        let start = agent.lambda();
        let mut rng = StdRng::seed_from_u64(0);
        // Sustained queue of 5 >> target 0.5 -> lambda must grow.
        for _ in 0..100 {
            let o = obs(&power, 5);
            let _ = agent.decide(&o, &mut rng);
            agent.observe(
                &StepOutcome {
                    energy: 1.0,
                    queue_len: 5,
                    dropped: 0,
                    completed: 0,
                    arrivals: 1,
                    deadline_misses: 0,
                },
                &o,
            );
        }
        assert!(
            agent.lambda() > start,
            "lambda {} should rise",
            agent.lambda()
        );
    }

    #[test]
    fn lambda_falls_when_comfortably_meeting_target() {
        let power = presets::three_state_generic();
        let mut agent = QosQDpmAgent::new(
            &power,
            QosConfig {
                perf_target: 2.0,
                window: 10,
                ..QosConfig::default()
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let o = obs(&power, 0);
            let _ = agent.decide(&o, &mut rng);
            agent.observe(
                &StepOutcome {
                    energy: 1.0,
                    queue_len: 0,
                    dropped: 0,
                    completed: 0,
                    arrivals: 0,
                    deadline_misses: 0,
                },
                &o,
            );
        }
        assert!(
            agent.lambda() < 1.0,
            "lambda {} should fall",
            agent.lambda()
        );
        assert!(agent.lambda() >= 0.0);
    }

    #[test]
    fn lambda_clamped_at_max() {
        let power = presets::three_state_generic();
        let mut agent = QosQDpmAgent::new(
            &power,
            QosConfig {
                perf_target: 0.0,
                window: 1,
                lambda_step: 100.0,
                lambda_max: 5.0,
                ..QosConfig::default()
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let o = obs(&power, 8);
            let _ = agent.decide(&o, &mut rng);
            agent.observe(
                &StepOutcome {
                    energy: 1.0,
                    queue_len: 8,
                    dropped: 1,
                    completed: 0,
                    arrivals: 1,
                    deadline_misses: 0,
                },
                &o,
            );
        }
        assert!((agent.lambda() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn drops_count_into_performance() {
        let power = presets::three_state_generic();
        let mut agent = QosQDpmAgent::new(
            &power,
            QosConfig {
                perf_target: 1.0,
                window: 1,
                drop_weight: 50.0,
                ..QosConfig::default()
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let o = obs(&power, 0);
        let _ = agent.decide(&o, &mut rng);
        let before = agent.lambda();
        agent.observe(
            &StepOutcome {
                energy: 1.0,
                queue_len: 0,
                dropped: 1,
                completed: 0,
                arrivals: 1,
                deadline_misses: 0,
            },
            &o,
        );
        // One drop in a 1-slice window: avg perf 50 >> target.
        assert!(agent.lambda() > before);
    }
}
