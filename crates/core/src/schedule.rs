use serde::{Deserialize, Serialize};

use crate::CoreError;

/// Learning-rate schedule for the Q-update (the `gamma` of the paper's
/// Eqn. 3).
///
/// The paper uses a scalar learning rate; we additionally provide the two
/// standard decaying schedules so the ablation bench can quantify the
/// choice (stochastic-approximation theory wants `sum gamma = inf`,
/// `sum gamma^2 < inf` for exact convergence, while a constant rate tracks
/// nonstationarity better — exactly the trade-off Fig. 1 vs Fig. 2 probes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LearningRate {
    /// Fixed rate in `(0, 1]`: tracks nonstationary environments (Fig. 2).
    Constant(f64),
    /// `rate = c / (c + t)` on the global step count `t`.
    GlobalDecay {
        /// Decay scale `c > 0`.
        c: f64,
    },
    /// `rate = 1 / visits(s, a)^omega` with `omega in (0.5, 1]`: the
    /// classic convergent schedule (Watkins' conditions).
    VisitDecay {
        /// Exponent in `(0.5, 1]`.
        omega: f64,
    },
}

impl LearningRate {
    /// Validates the schedule parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadLearningRate`] for out-of-range parameters.
    pub fn validate(&self) -> Result<(), CoreError> {
        match *self {
            LearningRate::Constant(g) => {
                if !(g.is_finite() && g > 0.0 && g <= 1.0) {
                    return Err(CoreError::BadLearningRate(format!(
                        "constant rate {g} not in (0, 1]"
                    )));
                }
            }
            LearningRate::GlobalDecay { c } => {
                if !(c.is_finite() && c > 0.0) {
                    return Err(CoreError::BadLearningRate(format!("decay scale {c} <= 0")));
                }
            }
            LearningRate::VisitDecay { omega } => {
                if !(omega.is_finite() && omega > 0.5 && omega <= 1.0) {
                    return Err(CoreError::BadLearningRate(format!(
                        "visit exponent {omega} not in (0.5, 1]"
                    )));
                }
            }
        }
        Ok(())
    }

    /// The rate to apply for an update at global step `t` (0-based) when
    /// `(s, a)` has been visited `visits` times (including this one).
    #[must_use]
    #[inline]
    pub fn rate(&self, t: u64, visits: u32) -> f64 {
        match *self {
            LearningRate::Constant(g) => g,
            LearningRate::GlobalDecay { c } => c / (c + t as f64),
            LearningRate::VisitDecay { omega } => 1.0 / f64::from(visits.max(1)).powf(omega),
        }
    }
}

impl Default for LearningRate {
    /// The paper's setting: a constant rate (0.1) so the agent keeps
    /// adapting forever.
    fn default() -> Self {
        LearningRate::Constant(0.1)
    }
}

/// Exploration strategy for action selection.
///
/// The paper prescribes epsilon-greedy: "At each state, with probability
/// \[epsilon\] a random action needs to be taken instead of the action
/// recommended by the Q(s, a)." The decaying variant and Boltzmann
/// (softmax) selection are provided for the ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Exploration {
    /// Uniform-random action with fixed probability `epsilon`.
    EpsilonGreedy {
        /// Exploration probability in `[0, 1]`.
        epsilon: f64,
    },
    /// Epsilon decaying as `max(min_epsilon, epsilon0 * decay^t)`.
    DecayingEpsilon {
        /// Initial epsilon in `[0, 1]`.
        epsilon0: f64,
        /// Per-step multiplicative decay in `(0, 1]`.
        decay: f64,
        /// Floor epsilon in `[0, 1]`.
        min_epsilon: f64,
    },
    /// Boltzmann (softmax) selection with fixed temperature.
    Boltzmann {
        /// Temperature `> 0`; higher is more random.
        temperature: f64,
    },
}

impl Exploration {
    /// Validates the strategy parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadExploration`] for out-of-range parameters.
    pub fn validate(&self) -> Result<(), CoreError> {
        let unit = |x: f64| x.is_finite() && (0.0..=1.0).contains(&x);
        match *self {
            Exploration::EpsilonGreedy { epsilon } => {
                if !unit(epsilon) {
                    return Err(CoreError::BadExploration(format!(
                        "epsilon {epsilon} not in [0, 1]"
                    )));
                }
            }
            Exploration::DecayingEpsilon {
                epsilon0,
                decay,
                min_epsilon,
            } => {
                if !unit(epsilon0) || !unit(min_epsilon) {
                    return Err(CoreError::BadExploration(format!(
                        "epsilon bounds ({epsilon0}, {min_epsilon}) not in [0, 1]"
                    )));
                }
                if !(decay.is_finite() && decay > 0.0 && decay <= 1.0) {
                    return Err(CoreError::BadExploration(format!(
                        "decay {decay} not in (0, 1]"
                    )));
                }
            }
            Exploration::Boltzmann { temperature } => {
                if !(temperature.is_finite() && temperature > 0.0) {
                    return Err(CoreError::BadExploration(format!(
                        "temperature {temperature} must be positive"
                    )));
                }
            }
        }
        Ok(())
    }

    /// The effective epsilon at global step `t` (1.0 means "always
    /// explore"); Boltzmann reports 0 here because it randomizes through
    /// its softmax instead.
    #[must_use]
    #[inline]
    pub fn epsilon_at(&self, t: u64) -> f64 {
        match *self {
            Exploration::EpsilonGreedy { epsilon } => epsilon,
            Exploration::DecayingEpsilon {
                epsilon0,
                decay,
                min_epsilon,
            } => {
                let e = epsilon0 * decay.powf(t as f64);
                e.max(min_epsilon)
            }
            Exploration::Boltzmann { .. } => 0.0,
        }
    }
}

impl Default for Exploration {
    /// The paper's epsilon-greedy with a small fixed epsilon.
    fn default() -> Self {
        Exploration::EpsilonGreedy { epsilon: 0.05 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_validation() {
        assert!(LearningRate::Constant(0.1).validate().is_ok());
        assert!(LearningRate::Constant(1.0).validate().is_ok());
        assert!(LearningRate::Constant(0.0).validate().is_err());
        assert!(LearningRate::Constant(1.1).validate().is_err());
    }

    #[test]
    fn constant_rate_is_constant() {
        let lr = LearningRate::Constant(0.3);
        assert_eq!(lr.rate(0, 1), 0.3);
        assert_eq!(lr.rate(10_000, 99), 0.3);
    }

    #[test]
    fn global_decay_shrinks() {
        let lr = LearningRate::GlobalDecay { c: 100.0 };
        assert!(lr.rate(0, 1) > lr.rate(100, 1));
        assert!((lr.rate(100, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn visit_decay_uses_counts() {
        let lr = LearningRate::VisitDecay { omega: 1.0 };
        assert_eq!(lr.rate(999, 1), 1.0);
        assert_eq!(lr.rate(999, 4), 0.25);
        // Zero visits guarded to 1.
        assert_eq!(lr.rate(0, 0), 1.0);
    }

    #[test]
    fn visit_decay_validation() {
        assert!(LearningRate::VisitDecay { omega: 0.5 }.validate().is_err());
        assert!(LearningRate::VisitDecay { omega: 0.75 }.validate().is_ok());
    }

    #[test]
    fn epsilon_greedy_constant() {
        let e = Exploration::EpsilonGreedy { epsilon: 0.1 };
        assert_eq!(e.epsilon_at(0), 0.1);
        assert_eq!(e.epsilon_at(1_000_000), 0.1);
    }

    #[test]
    fn decaying_epsilon_floors() {
        let e = Exploration::DecayingEpsilon {
            epsilon0: 1.0,
            decay: 0.5,
            min_epsilon: 0.01,
        };
        assert_eq!(e.epsilon_at(0), 1.0);
        assert_eq!(e.epsilon_at(1), 0.5);
        assert_eq!(e.epsilon_at(100), 0.01);
    }

    #[test]
    fn exploration_validation() {
        assert!(Exploration::EpsilonGreedy { epsilon: 1.5 }
            .validate()
            .is_err());
        assert!(Exploration::Boltzmann { temperature: 0.0 }
            .validate()
            .is_err());
        assert!(Exploration::Boltzmann { temperature: 0.5 }
            .validate()
            .is_ok());
        assert!(Exploration::DecayingEpsilon {
            epsilon0: 0.5,
            decay: 0.0,
            min_epsilon: 0.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn defaults_are_paper_settings() {
        assert_eq!(LearningRate::default(), LearningRate::Constant(0.1));
        assert_eq!(
            Exploration::default(),
            Exploration::EpsilonGreedy { epsilon: 0.05 }
        );
    }
}
