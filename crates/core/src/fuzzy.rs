//! Fuzzy Q-DPM: the paper's second future-work item ("Fuzzy Q-DPM in noisy
//! environment").
//!
//! Crisp tabular Q-learning keys its table on exact observations, so
//! measurement noise (a misread queue depth, jittered idle timers) scatters
//! updates across neighbouring states. Fuzzy Q-learning (Glorennec/Jouffe
//! style) instead describes each observation by its *membership* in a small
//! set of overlapping fuzzy cells, evaluates actions by
//! membership-weighted Q-values, and distributes each update over the
//! active cells in proportion to their membership — so noise that shifts an
//! observation slightly only re-weights the same cells rather than landing
//! in a foreign table row.
//!
//! Where this pays off: workloads with *continuous, informative* features —
//! e.g. heavy-tailed interarrivals, where idle time predicts the remaining
//! gap — observed through noisy sensors (bench F4). On small exactly-Markov
//! problems a crisp table is already optimal and fuzzification only adds
//! approximation error; EXPERIMENTS.md records both findings.

use rand::Rng;
use serde::{Deserialize, Serialize};

use qdpm_device::{PowerModel, PowerStateId};

use crate::rng_util::{uniform, uniform_index};
use crate::{
    CoreError, Exploration, LearningRate, LegalActionTable, Observation, PowerManager,
    RewardWeights, StepOutcome,
};

/// A one-dimensional fuzzy set with triangular/shoulder membership.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FuzzySet {
    /// Membership 1 at/below `full`, falling linearly to 0 at `zero`.
    LeftShoulder {
        /// Upper edge of full membership.
        full: f64,
        /// Point where membership reaches 0 (`> full`).
        zero: f64,
    },
    /// Triangle rising from `left` to 1 at `peak`, falling to 0 at `right`.
    Triangle {
        /// Left zero point.
        left: f64,
        /// Peak (membership 1).
        peak: f64,
        /// Right zero point.
        right: f64,
    },
    /// Membership 0 at/below `zero`, rising linearly to 1 at `full`.
    RightShoulder {
        /// Point where membership starts rising.
        zero: f64,
        /// Lower edge of full membership (`> zero`).
        full: f64,
    },
}

impl FuzzySet {
    /// Membership of `x` in this set, in `[0, 1]`.
    #[must_use]
    pub fn membership(&self, x: f64) -> f64 {
        match *self {
            FuzzySet::LeftShoulder { full, zero } => {
                if x <= full {
                    1.0
                } else if x >= zero {
                    0.0
                } else {
                    (zero - x) / (zero - full)
                }
            }
            FuzzySet::Triangle { left, peak, right } => {
                if x <= left || x >= right {
                    0.0
                } else if x <= peak {
                    (x - left) / (peak - left)
                } else {
                    (right - x) / (right - peak)
                }
            }
            FuzzySet::RightShoulder { zero, full } => {
                if x <= zero {
                    0.0
                } else if x >= full {
                    1.0
                } else {
                    (x - zero) / (full - zero)
                }
            }
        }
    }

    fn validate(&self) -> Result<(), CoreError> {
        let ok = match *self {
            FuzzySet::LeftShoulder { full, zero } => full < zero,
            FuzzySet::Triangle { left, peak, right } => left < peak && peak < right,
            FuzzySet::RightShoulder { zero, full } => zero < full,
        };
        if ok {
            Ok(())
        } else {
            Err(CoreError::BadFuzzy(format!(
                "degenerate fuzzy set {self:?}"
            )))
        }
    }
}

/// A fuzzy linguistic variable: an ordered family of fuzzy sets covering a
/// feature's range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzyVariable {
    sets: Vec<FuzzySet>,
}

impl FuzzyVariable {
    /// Creates a variable from at least one set; every set must be
    /// non-degenerate and the family must give positive total membership
    /// somewhere (checked on use).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadFuzzy`] on an empty family or degenerate set.
    pub fn new(sets: Vec<FuzzySet>) -> Result<Self, CoreError> {
        if sets.is_empty() {
            return Err(CoreError::BadFuzzy(
                "variable needs at least one set".into(),
            ));
        }
        for s in &sets {
            s.validate()?;
        }
        Ok(FuzzyVariable { sets })
    }

    /// A standard 3-set cover of `[0, max]`: low / medium / high.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadFuzzy`] when `max <= 0`.
    pub fn low_medium_high(max: f64) -> Result<Self, CoreError> {
        if !(max.is_finite() && max > 0.0) {
            return Err(CoreError::BadFuzzy(format!("max {max} must be positive")));
        }
        FuzzyVariable::new(vec![
            FuzzySet::LeftShoulder {
                full: 0.0,
                zero: max / 2.0,
            },
            FuzzySet::Triangle {
                left: 0.0,
                peak: max / 2.0,
                right: max,
            },
            FuzzySet::RightShoulder {
                zero: max / 2.0,
                full: max,
            },
        ])
    }

    /// Number of sets.
    #[must_use]
    pub fn n_sets(&self) -> usize {
        self.sets.len()
    }

    /// Normalized memberships of `x` (summing to 1; falls back to the
    /// nearest set when `x` is outside every support).
    #[must_use]
    pub fn memberships(&self, x: f64) -> Vec<f64> {
        let mut m: Vec<f64> = self.sets.iter().map(|s| s.membership(x)).collect();
        let total: f64 = m.iter().sum();
        if total > 1e-12 {
            for v in m.iter_mut() {
                *v /= total;
            }
        } else {
            // Outside all supports: snap to the first or last set.
            let idx = if x < 0.0 { 0 } else { m.len() - 1 };
            m.fill(0.0);
            m[idx] = 1.0;
        }
        m
    }

    /// The smallest non-negative integer at and beyond which the
    /// membership vector is constant: every set's upper breakpoint
    /// (left shoulders and triangles have reached 0, right shoulders 1),
    /// rounded up. Feature lookup tables clamp their index here.
    fn saturation_point(&self) -> f64 {
        self.sets
            .iter()
            .map(|s| match *s {
                FuzzySet::LeftShoulder { zero, .. } => zero,
                FuzzySet::Triangle { right, .. } => right,
                FuzzySet::RightShoulder { full, .. } => full,
            })
            .fold(0.0, f64::max)
            .ceil()
            .max(0.0)
    }
}

/// Configuration of a [`FuzzyQDpmAgent`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzyConfig {
    /// Discount factor.
    pub discount: f64,
    /// Learning rate (constant rates suit the fuzzy update).
    pub learning_rate: LearningRate,
    /// Exploration strategy (epsilon-based variants only).
    pub exploration: Exploration,
    /// Reward weights.
    pub weights: RewardWeights,
    /// Fuzzy cover of the queue-depth feature.
    pub queue_var: FuzzyVariable,
    /// Fuzzy cover of the idle-time feature.
    pub idle_var: FuzzyVariable,
}

impl FuzzyConfig {
    /// The standard cover for a queue of capacity `queue_cap`.
    ///
    /// The queue cover is sharp at zero (an `empty` shoulder) because the
    /// sleep/wake decision hinges on empty-vs-nonempty, then coarsens
    /// upward; the idle-time cover spans short..long gaps with wide
    /// overlaps, which is where fuzzy generalization pays off on
    /// heavy-tailed workloads.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadFuzzy`] when `queue_cap == 0`.
    pub fn standard(queue_cap: usize) -> Result<Self, CoreError> {
        if queue_cap == 0 {
            return Err(CoreError::BadFuzzy(
                "queue capacity must be positive".into(),
            ));
        }
        let cap = queue_cap as f64;
        Ok(FuzzyConfig {
            discount: 0.99,
            learning_rate: LearningRate::Constant(0.15),
            exploration: Exploration::EpsilonGreedy { epsilon: 0.05 },
            weights: RewardWeights::default(),
            queue_var: FuzzyVariable::new(vec![
                FuzzySet::LeftShoulder {
                    full: 0.0,
                    zero: 1.0,
                },
                FuzzySet::Triangle {
                    left: 0.0,
                    peak: (cap / 4.0).max(1.0),
                    right: (cap * 0.625).max(2.0),
                },
                FuzzySet::RightShoulder {
                    zero: (cap / 4.0).max(1.0),
                    full: (cap * 0.75).max(2.0),
                },
            ])?,
            idle_var: FuzzyVariable::new(vec![
                FuzzySet::LeftShoulder {
                    full: 1.0,
                    zero: 4.0,
                },
                FuzzySet::Triangle {
                    left: 1.0,
                    peak: 6.0,
                    right: 16.0,
                },
                FuzzySet::Triangle {
                    left: 6.0,
                    peak: 16.0,
                    right: 40.0,
                },
                FuzzySet::RightShoulder {
                    zero: 16.0,
                    full: 40.0,
                },
            ])?,
        })
    }
}

/// Dense lookup table of joint rule strengths, keyed by the integer
/// feature pair `(queue depth, idle slices)` — both are integers at
/// runtime, and beyond each variable's saturation point the memberships
/// are constant, so a finite grid covers every observation exactly.
///
/// Each grid point stores the active `(queue set, idle set)` pairs with
/// their normalized weights, precomputed with the very code
/// ([`FuzzyVariable::memberships`] and the original skip conditions) the
/// per-decide evaluation used — the looked-up weights are bit-identical
/// to re-evaluating the membership functions.
#[derive(Debug, Clone)]
struct JointRuleLut {
    /// Queue depths `0..=q_clamp` have distinct rows; deeper clamps.
    q_clamp: usize,
    /// Idle times `0..=i_clamp` have distinct rows; longer clamps.
    i_clamp: u64,
    /// Rows per queue depth (`i_clamp + 1`).
    i_rows: usize,
    /// CSR-style row offsets into `entries` (one per grid point, +1).
    offsets: Vec<u32>,
    /// `(queue set * n_idle_sets + idle set, weight)` per active pair.
    entries: Vec<(u32, f64)>,
}

impl JointRuleLut {
    /// Grids larger than this fall back to direct evaluation (a fuzzy
    /// cover is a handful of sets over small feature ranges; anything
    /// bigger is a misconfiguration, not a hot path).
    const MAX_POINTS: usize = 1 << 16;

    fn build(queue_var: &FuzzyVariable, idle_var: &FuzzyVariable) -> Option<Self> {
        let q_clamp = queue_var.saturation_point();
        let i_clamp = idle_var.saturation_point();
        if q_clamp >= 4096.0 || i_clamp >= 4096.0 {
            return None;
        }
        let q_clamp = q_clamp as usize;
        let i_clamp_u = i_clamp as u64;
        let i_rows = i_clamp as usize + 1;
        if (q_clamp + 1) * i_rows > Self::MAX_POINTS {
            return None;
        }
        let ni = idle_var.n_sets();
        let mut offsets = Vec::with_capacity((q_clamp + 1) * i_rows + 1);
        let mut entries = Vec::new();
        offsets.push(0u32);
        for q in 0..=q_clamp {
            let qm = queue_var.memberships(q as f64);
            for i in 0..i_rows {
                let im = idle_var.memberships(i as f64);
                // Exactly the original active-cell loop: same order, same
                // skip conditions, same product — bit-identical weights.
                for (qi, &qw) in qm.iter().enumerate() {
                    if qw == 0.0 {
                        continue;
                    }
                    for (ii, &iw) in im.iter().enumerate() {
                        let w = qw * iw;
                        if w > 0.0 {
                            entries.push(((qi * ni + ii) as u32, w));
                        }
                    }
                }
                offsets.push(u32::try_from(entries.len()).ok()?);
            }
        }
        Some(JointRuleLut {
            q_clamp,
            i_clamp: i_clamp_u,
            i_rows,
            offsets,
            entries,
        })
    }

    #[inline]
    fn row(&self, queue_len: usize, idle_slices: u64) -> &[(u32, f64)] {
        let q = queue_len.min(self.q_clamp);
        let i = idle_slices.min(self.i_clamp) as usize;
        let at = q * self.i_rows + i;
        &self.entries[self.offsets[at] as usize..self.offsets[at + 1] as usize]
    }

    fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.entries.len() * std::mem::size_of::<(u32, f64)>()
    }
}

/// Fuzzy Q-DPM agent: fuzzy state over (queue depth, idle time), crisp over
/// device mode.
#[derive(Debug)]
pub struct FuzzyQDpmAgent {
    config: FuzzyConfig,
    /// Q-values per `(device mode, queue set, idle set)` cell and action.
    q: Vec<f64>,
    n_cells: usize,
    n_actions: usize,
    /// Precomputed device-mode index and per-mode legal-action sets.
    legal: LegalActionTable,
    /// Precomputed rule strengths per integer feature pair (`None` only
    /// for covers too large to tabulate; those evaluate directly).
    rules: Option<JointRuleLut>,
    steps: u64,
    pending: Option<PendingFuzzy>,
    /// Recycled cell buffers: the steady-state decide/observe cycle is
    /// allocation-free.
    spare: Vec<(usize, f64)>,
    next_cells_buf: Vec<(usize, f64)>,
    name: String,
}

#[derive(Debug, Clone)]
struct PendingFuzzy {
    cells: Vec<(usize, f64)>,
    action: usize,
}

impl FuzzyQDpmAgent {
    /// Creates a fuzzy agent for the given device.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from the schedules and fuzzy covers.
    pub fn new(power: &PowerModel, config: FuzzyConfig) -> Result<Self, CoreError> {
        if !(config.discount.is_finite() && (0.0..1.0).contains(&config.discount)) {
            return Err(CoreError::BadDiscount(config.discount));
        }
        config.learning_rate.validate()?;
        config.exploration.validate()?;
        let n_op = power.n_states();
        let legal = LegalActionTable::new(power);
        let n_cells = legal.n_modes() * config.queue_var.n_sets() * config.idle_var.n_sets();
        let rules = JointRuleLut::build(&config.queue_var, &config.idle_var);
        Ok(FuzzyQDpmAgent {
            q: vec![0.0; n_cells * n_op],
            n_cells,
            n_actions: n_op,
            legal,
            rules,
            config,
            steps: 0,
            pending: None,
            spare: Vec::new(),
            next_cells_buf: Vec::new(),
            name: "fuzzy-q-dpm".to_string(),
        })
    }

    /// Number of fuzzy cells (rows of the Q-table).
    #[must_use]
    pub fn n_cells(&self) -> usize {
        self.n_cells
    }

    /// Q-table footprint in bytes.
    #[must_use]
    pub fn table_bytes(&self) -> usize {
        self.q.len() * std::mem::size_of::<f64>()
    }

    /// Footprint of the precomputed rule-strength table in bytes (0 when
    /// the cover was too large to tabulate and memberships are evaluated
    /// per decide).
    #[must_use]
    pub fn rule_table_bytes(&self) -> usize {
        self.rules.as_ref().map_or(0, JointRuleLut::memory_bytes)
    }

    /// Writes the active fuzzy cells of an observation (with their
    /// normalized weights) into `out`: one lookup in the precomputed rule
    /// table plus the device-mode offset, no membership evaluation and no
    /// allocation in steady state. The rare untabulated cover evaluates
    /// memberships directly (the original per-decide path).
    fn cells_into(&self, obs: &Observation, out: &mut Vec<(usize, f64)>) {
        out.clear();
        let dev = self.legal.mode_index(obs.device_mode);
        let nq = self.config.queue_var.n_sets();
        let ni = self.config.idle_var.n_sets();
        let base = dev * nq * ni;
        if let Some(rules) = &self.rules {
            for &(rel, w) in rules.row(obs.queue_len, obs.idle_slices) {
                out.push((base + rel as usize, w));
            }
        } else {
            let qm = self.config.queue_var.memberships(obs.queue_len as f64);
            let im = self.config.idle_var.memberships(obs.idle_slices as f64);
            for (qi, &qw) in qm.iter().enumerate() {
                if qw == 0.0 {
                    continue;
                }
                for (ii, &iw) in im.iter().enumerate() {
                    let w = qw * iw;
                    if w > 0.0 {
                        out.push((base + qi * ni + ii, w));
                    }
                }
            }
        }
        debug_assert!(!out.is_empty());
    }

    /// Active fuzzy cells of an observation with their normalized weights
    /// (allocating convenience over [`FuzzyQDpmAgent::cells_into`]; tests
    /// and diagnostics only — the hot path recycles buffers).
    #[cfg(test)]
    fn cells(&self, obs: &Observation) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        self.cells_into(obs, &mut out);
        out
    }

    /// Membership-weighted action value.
    fn q_hat(&self, cells: &[(usize, f64)], a: usize) -> f64 {
        cells
            .iter()
            .map(|&(c, w)| w * self.q[c * self.n_actions + a])
            .sum()
    }
}

impl PowerManager for FuzzyQDpmAgent {
    fn decide(&mut self, obs: &Observation, rng: &mut dyn Rng) -> PowerStateId {
        // Recycle the cell buffer retired by the previous observe.
        let mut cells = std::mem::take(&mut self.spare);
        self.cells_into(obs, &mut cells);
        let legal = self.legal.legal(obs.device_mode);
        let eps = self.config.exploration.epsilon_at(self.steps);
        let a = if legal.len() > 1 && uniform(rng) < eps {
            legal[uniform_index(rng, legal.len())]
        } else {
            *legal
                .iter()
                .max_by(|&&x, &&y| self.q_hat(&cells, x).total_cmp(&self.q_hat(&cells, y)))
                .expect("legal set is non-empty")
        };
        self.pending = Some(PendingFuzzy { cells, action: a });
        PowerStateId::from_index(a)
    }

    fn observe(&mut self, outcome: &StepOutcome, next_obs: &Observation) {
        let Some(pending) = self.pending.take() else {
            return;
        };
        let reward = self.config.weights.reward(outcome);
        let mut next_cells = std::mem::take(&mut self.next_cells_buf);
        self.cells_into(next_obs, &mut next_cells);
        let next_legal = self.legal.legal(next_obs.device_mode);
        let bootstrap = next_legal
            .iter()
            .map(|&b| self.q_hat(&next_cells, b))
            .fold(f64::NEG_INFINITY, f64::max);
        self.next_cells_buf = next_cells;
        let target = reward + self.config.discount * bootstrap;
        let q_taken = self.q_hat(&pending.cells, pending.action);
        let delta = target - q_taken;
        let gamma = self.config.learning_rate.rate(self.steps, 1);
        for &(c, w) in &pending.cells {
            self.q[c * self.n_actions + pending.action] += gamma * w * delta;
        }
        self.steps += 1;
        // Retire the pending buffer for the next decide.
        self.spare = pending.cells;
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdpm_device::{presets, DeviceMode, PowerStateId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn membership_shapes() {
        let tri = FuzzySet::Triangle {
            left: 0.0,
            peak: 5.0,
            right: 10.0,
        };
        assert_eq!(tri.membership(0.0), 0.0);
        assert_eq!(tri.membership(5.0), 1.0);
        assert!((tri.membership(2.5) - 0.5).abs() < 1e-12);
        assert_eq!(tri.membership(10.0), 0.0);

        let ls = FuzzySet::LeftShoulder {
            full: 2.0,
            zero: 6.0,
        };
        assert_eq!(ls.membership(1.0), 1.0);
        assert!((ls.membership(4.0) - 0.5).abs() < 1e-12);
        assert_eq!(ls.membership(7.0), 0.0);

        let rs = FuzzySet::RightShoulder {
            zero: 2.0,
            full: 6.0,
        };
        assert_eq!(rs.membership(1.0), 0.0);
        assert!((rs.membership(4.0) - 0.5).abs() < 1e-12);
        assert_eq!(rs.membership(7.0), 1.0);
    }

    #[test]
    fn degenerate_sets_rejected() {
        assert!(FuzzySet::Triangle {
            left: 1.0,
            peak: 1.0,
            right: 2.0
        }
        .validate()
        .is_err());
        assert!(FuzzyVariable::new(vec![]).is_err());
        assert!(FuzzyVariable::low_medium_high(0.0).is_err());
    }

    #[test]
    fn memberships_normalize() {
        let v = FuzzyVariable::low_medium_high(8.0).unwrap();
        for x in [0.0, 1.0, 3.7, 4.0, 6.2, 8.0, 50.0] {
            let m = v.memberships(x);
            let sum: f64 = m.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "sum {sum} at {x}");
        }
    }

    #[test]
    fn out_of_range_snaps_to_edge_sets() {
        let v = FuzzyVariable::new(vec![FuzzySet::Triangle {
            left: 2.0,
            peak: 3.0,
            right: 4.0,
        }])
        .unwrap();
        assert_eq!(v.memberships(-5.0), vec![1.0]);
        assert_eq!(v.memberships(100.0), vec![1.0]);
    }

    #[test]
    fn agent_cells_cover_observation() {
        let power = presets::three_state_generic();
        let agent = FuzzyQDpmAgent::new(&power, FuzzyConfig::standard(8).unwrap()).unwrap();
        let obs = Observation {
            device_mode: DeviceMode::Operational(power.highest_power_state()),
            queue_len: 3,
            idle_slices: 10,
            sr_mode_hint: None,
        };
        let cells = agent.cells(&obs);
        let total: f64 = cells.iter().map(|&(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(cells.iter().all(|&(c, _)| c < agent.n_cells()));
    }

    #[test]
    fn decide_observe_learns_direction() {
        // Reward shaping: staying in the cheap state must grow its Q-hat.
        let power = presets::three_state_generic();
        let mut agent = FuzzyQDpmAgent::new(&power, FuzzyConfig::standard(8).unwrap()).unwrap();
        let sleep = power.state_by_name("sleep").unwrap();
        let obs = Observation {
            device_mode: DeviceMode::Operational(sleep),
            queue_len: 0,
            idle_slices: 20,
            sr_mode_hint: None,
        };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let _ = agent.decide(&obs, &mut rng);
            agent.observe(
                &StepOutcome {
                    energy: 0.05,
                    queue_len: 0,
                    dropped: 0,
                    completed: 0,
                    arrivals: 0,
                    deadline_misses: 0,
                },
                &obs,
            );
        }
        let cells = agent.cells(&obs);
        // Q of staying asleep should approach -0.05 / (1 - 0.95) = -1.0
        // and beat the (unexplored, still-zero... wake actions get explored
        // too) — just check it's converging near the analytic value.
        let q_stay = agent.q_hat(&cells, sleep.index());
        assert!(q_stay < -0.5, "q_stay {q_stay} should be strongly negative");
        assert!(q_stay > -1.5, "q_stay {q_stay} should approach -1.0");
    }

    /// The LUT satellite's contract: looked-up cells are bit-identical to
    /// evaluating the membership functions directly, for every reachable
    /// integer feature pair (including values beyond the saturation
    /// points, which clamp onto constant rows).
    #[test]
    fn rule_lut_is_bit_identical_to_direct_evaluation() {
        let power = presets::three_state_generic();
        let config = FuzzyConfig::standard(8).unwrap();
        let agent = FuzzyQDpmAgent::new(&power, config.clone()).unwrap();
        assert!(agent.rules.is_some(), "standard cover must tabulate");
        assert!(agent.rule_table_bytes() > 0);
        let nq = config.queue_var.n_sets();
        let ni = config.idle_var.n_sets();
        for mode_state in 0..power.n_states() {
            let mode = DeviceMode::Operational(PowerStateId::from_index(mode_state));
            let dev = agent.legal.mode_index(mode);
            for q in 0..=30usize {
                for idle in (0..=100u64).chain([1_000, 1 << 40]) {
                    let obs = Observation {
                        device_mode: mode,
                        queue_len: q,
                        idle_slices: idle,
                        sr_mode_hint: None,
                    };
                    let got = agent.cells(&obs);
                    // Direct evaluation, replicated verbatim.
                    let qm = config.queue_var.memberships(q as f64);
                    let im = config.idle_var.memberships(idle as f64);
                    let mut want = Vec::new();
                    for (qi, &qw) in qm.iter().enumerate() {
                        if qw == 0.0 {
                            continue;
                        }
                        for (ii, &iw) in im.iter().enumerate() {
                            let w = qw * iw;
                            if w > 0.0 {
                                want.push(((dev * nq + qi) * ni + ii, w));
                            }
                        }
                    }
                    assert_eq!(got.len(), want.len(), "q={q} idle={idle}");
                    for (g, w) in got.iter().zip(&want) {
                        assert_eq!(g.0, w.0, "cell index q={q} idle={idle}");
                        assert_eq!(
                            g.1.to_bits(),
                            w.1.to_bits(),
                            "weight bits q={q} idle={idle}"
                        );
                    }
                }
            }
        }
    }

    /// A cover with an enormous support falls back to direct evaluation
    /// (no multi-megabyte tables behind a config knob).
    #[test]
    fn oversized_cover_skips_the_lut() {
        let power = presets::three_state_generic();
        let mut config = FuzzyConfig::standard(8).unwrap();
        config.idle_var = FuzzyVariable::new(vec![
            FuzzySet::LeftShoulder {
                full: 1.0,
                zero: 1_000_000.0,
            },
            FuzzySet::RightShoulder {
                zero: 1.0,
                full: 1_000_000.0,
            },
        ])
        .unwrap();
        let agent = FuzzyQDpmAgent::new(&power, config).unwrap();
        assert!(agent.rules.is_none());
        assert_eq!(agent.rule_table_bytes(), 0);
        // The direct path still produces normalized covers.
        let obs = Observation {
            device_mode: DeviceMode::Operational(power.highest_power_state()),
            queue_len: 2,
            idle_slices: 500_000,
            sr_mode_hint: None,
        };
        let total: f64 = agent.cells(&obs).iter().map(|&(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fuzzy_table_is_compact() {
        let power = presets::three_state_generic();
        let agent = FuzzyQDpmAgent::new(&power, FuzzyConfig::standard(8).unwrap()).unwrap();
        // 11 device modes x 3 queue sets x 4 idle sets = 132 cells x 3 actions.
        assert_eq!(agent.n_cells(), 132);
        assert_eq!(agent.table_bytes(), 132 * 3 * 8);
    }

    #[test]
    fn noisy_observations_hit_same_cells() {
        // The robustness mechanism: queue 3 vs 4 (a +-1 misread) share
        // cells, just with different weights.
        let power = presets::three_state_generic();
        let agent = FuzzyQDpmAgent::new(&power, FuzzyConfig::standard(8).unwrap()).unwrap();
        let mk = |q: usize| Observation {
            device_mode: DeviceMode::Operational(power.highest_power_state()),
            queue_len: q,
            idle_slices: 0,
            sr_mode_hint: None,
        };
        let c3: std::collections::HashSet<usize> =
            agent.cells(&mk(3)).into_iter().map(|(c, _)| c).collect();
        let c4: std::collections::HashSet<usize> =
            agent.cells(&mk(4)).into_iter().map(|(c, _)| c).collect();
        assert!(!c3.is_disjoint(&c4), "adjacent readings should share cells");
    }
}
