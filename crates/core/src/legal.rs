//! Precomputed legal-action sets and dense device-mode indexing.
//!
//! Every Q-DPM agent needs, twice per slice (in `decide` and `observe`),
//! the sorted set of commands that are legal in the current device mode.
//! Computing it on the fly costs a heap allocation plus a sort on the
//! hottest path of the whole simulator; both are pure functions of the
//! immutable [`PowerModel`], so this module computes them once at agent
//! construction:
//!
//! * [`TransientModeIndex`] — O(1) dense lookup from a
//!   [`DeviceMode`] (operational state or in-flight transition step) to
//!   the contiguous device-mode index used by state encoders, replacing
//!   the former linear scan over the transient-mode list;
//! * [`LegalActionTable`] — one flat action buffer with per-mode offsets,
//!   handing out each mode's sorted legal set as a borrowed `&[usize]`.
//!
//! The enumeration order is pinned to the one `DpmStateEncoder` has always
//! used (operational states first, then for each `from` state, each
//! command target in ascending index order, each remaining-latency step
//! from 1 up), so encoded state indices — and therefore learned tables and
//! published results — are unchanged.

use serde::{Deserialize, Serialize};

use qdpm_device::{DeviceMode, PowerModel, PowerStateId};

/// Dense O(1) index of a power model's device modes: `n_op` operational
/// states followed by every in-flight transition step, in the pinned
/// enumeration order described in the module docs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientModeIndex {
    n_op: usize,
    /// Row-major `(from, to)` -> `(first transient slot, latency)`;
    /// latency 0 marks a command with no multi-slice transient phase.
    spans: Vec<(u32, u32)>,
    n_transient: usize,
}

impl TransientModeIndex {
    /// Enumerates the transient modes of `power`.
    #[must_use]
    pub fn new(power: &PowerModel) -> Self {
        let n_op = power.n_states();
        let mut spans = vec![(0u32, 0u32); n_op * n_op];
        let mut slot = 0u32;
        for from in 0..n_op {
            for to in power.commands_from(PowerStateId::from_index(from)) {
                let spec = power
                    .transition(PowerStateId::from_index(from), to)
                    .expect("commands_from yields defined transitions");
                if spec.latency > 0 {
                    spans[from * n_op + to.index()] = (slot, spec.latency);
                    slot += spec.latency;
                }
            }
        }
        TransientModeIndex {
            n_op,
            spans,
            n_transient: slot as usize,
        }
    }

    /// Number of operational states.
    #[must_use]
    pub fn n_op(&self) -> usize {
        self.n_op
    }

    /// Number of transient (in-flight transition) modes.
    #[must_use]
    pub fn n_transient(&self) -> usize {
        self.n_transient
    }

    /// Total number of device modes (operational + transient).
    #[must_use]
    pub fn n_modes(&self) -> usize {
        self.n_op + self.n_transient
    }

    /// The dense device-mode index of `mode`.
    ///
    /// # Panics
    ///
    /// Panics when the mode does not belong to the indexed power model
    /// (unknown transition or remaining count outside `1..=latency`).
    #[must_use]
    pub fn mode_index(&self, mode: DeviceMode) -> usize {
        match mode {
            DeviceMode::Operational(s) => {
                assert!(s.index() < self.n_op, "unknown operational state {s}");
                s.index()
            }
            DeviceMode::Transitioning {
                from,
                to,
                remaining,
            } => {
                let (base, latency) = self.spans[from.index() * self.n_op + to.index()];
                assert!(
                    remaining >= 1 && remaining <= latency,
                    "unknown transient mode for this power model"
                );
                self.n_op + base as usize + (remaining as usize - 1)
            }
        }
    }
}

/// Precomputed sorted legal-action sets for every device mode, stored as
/// one flat buffer with per-mode offsets.
///
/// Legal commands are: in an operational state, staying put or any defined
/// transition target; mid-transition, only "stay the course" (the target
/// state). Each set is sorted ascending, exactly as the agents' former
/// per-call computation produced. (Deliberately not serde-serializable:
/// the table is cheap to rebuild from the `PowerModel` and its internal
/// offsets/actions invariants are not worth validating on deserialize.)
#[derive(Debug, Clone, PartialEq)]
pub struct LegalActionTable {
    modes: TransientModeIndex,
    /// Flat buffer of action indices, mode-major.
    actions: Vec<usize>,
    /// Per-mode extents into `actions`; `offsets[m]..offsets[m + 1]`.
    offsets: Vec<u32>,
}

impl LegalActionTable {
    /// Precomputes the legal sets of every device mode of `power`.
    #[must_use]
    pub fn new(power: &PowerModel) -> Self {
        let modes = TransientModeIndex::new(power);
        let n_op = modes.n_op();
        let mut actions = Vec::new();
        let mut offsets = Vec::with_capacity(modes.n_modes() + 1);
        offsets.push(0u32);
        let mut scratch = Vec::new();
        for s in 0..n_op {
            let sid = PowerStateId::from_index(s);
            scratch.clear();
            scratch.push(s);
            scratch.extend(power.commands_from(sid).map(PowerStateId::index));
            scratch.sort_unstable();
            actions.extend_from_slice(&scratch);
            offsets.push(u32::try_from(actions.len()).expect("action buffer fits u32"));
        }
        for from in 0..n_op {
            for to in power.commands_from(PowerStateId::from_index(from)) {
                let spec = power
                    .transition(PowerStateId::from_index(from), to)
                    .expect("commands_from yields defined transitions");
                for _ in 0..spec.latency {
                    actions.push(to.index());
                    offsets.push(u32::try_from(actions.len()).expect("action buffer fits u32"));
                }
            }
        }
        LegalActionTable {
            modes,
            actions,
            offsets,
        }
    }

    /// The device-mode index map backing this table.
    #[must_use]
    pub fn modes(&self) -> &TransientModeIndex {
        &self.modes
    }

    /// Total number of device modes.
    #[must_use]
    pub fn n_modes(&self) -> usize {
        self.modes.n_modes()
    }

    /// The dense device-mode index of `mode` (delegates to
    /// [`TransientModeIndex::mode_index`]).
    ///
    /// # Panics
    ///
    /// Panics when the mode does not belong to the indexed power model.
    #[must_use]
    pub fn mode_index(&self, mode: DeviceMode) -> usize {
        self.modes.mode_index(mode)
    }

    /// The sorted legal-action set of `mode`, borrowed from the table.
    ///
    /// # Panics
    ///
    /// Panics when the mode does not belong to the indexed power model.
    #[must_use]
    #[inline]
    pub fn legal(&self, mode: DeviceMode) -> &[usize] {
        self.legal_by_index(self.modes.mode_index(mode))
    }

    /// The sorted legal-action set of the device mode with dense index
    /// `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index >= self.n_modes()`.
    #[must_use]
    pub fn legal_by_index(&self, index: usize) -> &[usize] {
        let start = self.offsets[index] as usize;
        let end = self.offsets[index + 1] as usize;
        &self.actions[start..end]
    }

    /// Heap footprint of the precomputed buffers, in bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.actions.len() * std::mem::size_of::<usize>()
            + self.offsets.len() * std::mem::size_of::<u32>()
            + self.modes.spans.len() * std::mem::size_of::<(u32, u32)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdpm_device::presets;

    /// The former per-call computation, kept verbatim as the reference.
    fn legal_actions_reference(power: &PowerModel, mode: DeviceMode) -> Vec<usize> {
        match mode {
            DeviceMode::Operational(s) => {
                let mut acts = vec![s.index()];
                acts.extend(power.commands_from(s).map(PowerStateId::index));
                acts.sort_unstable();
                acts
            }
            DeviceMode::Transitioning { to, .. } => vec![to.index()],
        }
    }

    /// Every device mode of a model: operational states plus every
    /// `(from, to, remaining)` transient step.
    fn all_modes(power: &PowerModel) -> Vec<DeviceMode> {
        let mut modes = Vec::new();
        for s in 0..power.n_states() {
            modes.push(DeviceMode::Operational(PowerStateId::from_index(s)));
        }
        for from in 0..power.n_states() {
            let fid = PowerStateId::from_index(from);
            for to in power.commands_from(fid) {
                let spec = power.transition(fid, to).unwrap();
                for remaining in 1..=spec.latency {
                    modes.push(DeviceMode::Transitioning {
                        from: fid,
                        to,
                        remaining,
                    });
                }
            }
        }
        modes
    }

    /// The tentpole's correctness property: for every device mode of every
    /// preset power model, the precomputed table equals the old per-call
    /// computation.
    #[test]
    fn table_matches_per_call_computation_on_all_presets() {
        for name in presets::preset_names() {
            let power = presets::by_name(name).unwrap();
            let table = LegalActionTable::new(&power);
            let modes = all_modes(&power);
            assert_eq!(table.n_modes(), modes.len(), "preset {name}");
            for mode in modes {
                assert_eq!(
                    table.legal(mode),
                    legal_actions_reference(&power, mode).as_slice(),
                    "preset {name}, mode {mode:?}"
                );
            }
        }
    }

    #[test]
    fn mode_indices_are_dense_and_ordered() {
        for name in presets::preset_names() {
            let power = presets::by_name(name).unwrap();
            let table = LegalActionTable::new(&power);
            for (expect, mode) in all_modes(&power).into_iter().enumerate() {
                assert_eq!(table.mode_index(mode), expect, "preset {name}");
            }
        }
    }

    #[test]
    fn legal_sets_are_sorted_and_in_range() {
        for name in presets::preset_names() {
            let power = presets::by_name(name).unwrap();
            let table = LegalActionTable::new(&power);
            for m in 0..table.n_modes() {
                let legal = table.legal_by_index(m);
                assert!(!legal.is_empty());
                assert!(legal.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
                assert!(legal.iter().all(|&a| a < power.n_states()));
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown transient mode")]
    fn unknown_transient_mode_panics() {
        let power = presets::three_state_generic();
        let table = LegalActionTable::new(&power);
        let active = power.state_by_name("active").unwrap();
        let sleep = power.state_by_name("sleep").unwrap();
        // `remaining` beyond the transition's latency is not a real mode.
        let _ = table.mode_index(DeviceMode::Transitioning {
            from: active,
            to: sleep,
            remaining: 10_000,
        });
    }

    #[test]
    fn memory_accounting_is_positive_and_small() {
        let power = presets::three_state_generic();
        let table = LegalActionTable::new(&power);
        let bytes = table.memory_bytes();
        assert!(bytes > 0);
        // 11 modes x <=3 actions on a 3-state device: well under 1 KiB.
        assert!(bytes < 1024, "got {bytes}");
    }
}
