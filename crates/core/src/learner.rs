use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::rng_util::{geometric_gap, uniform, uniform_index};
use crate::state_io::{StateError, StateReader, StateWriter};
use crate::{CoreError, Exploration, LearningRate, QTable};

/// Outcome of a learner's closed-form quiescent stay run
/// ([`QLearner::commit_stay_run`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StayRun {
    /// Consecutive slices the learner committed to (and already applied
    /// the per-slice self-loop updates for).
    pub slices: u64,
    /// The action ending the run, pre-drawn during the commitment. The
    /// next `select_action` on the same state **must** return it without
    /// consuming randomness — redrawing would bias the run-length law.
    /// `None` when the run ended at the caller's cap instead.
    pub deviation: Option<usize>,
}

impl StayRun {
    /// An empty commitment (the learner opts out of event skipping).
    #[must_use]
    pub fn none() -> Self {
        StayRun {
            slices: 0,
            deviation: None,
        }
    }
}

/// Watkins Q-learning over a discrete state/action space — the algorithmic
/// core of Q-DPM.
///
/// Implements the paper's Eqn. (3) verbatim (reward convention, so the
/// greedy action is the arg-max):
///
/// ```text
/// Q(s,a) <- (1 - gamma) * Q(s,a) + gamma * ( c(s,a,s') + beta * max_b Q(s',b) )
/// ```
///
/// with `gamma` from a [`LearningRate`] schedule and epsilon-greedy (or
/// Boltzmann) exploration per Section 2 of the paper. The learner is
/// domain-agnostic; `qdpm`'s power-management agents wrap it with a state
/// encoder and a reward definition.
///
/// # Example
///
/// ```
/// use qdpm_core::{Exploration, LearningRate, QLearner};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), qdpm_core::CoreError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut learner = QLearner::new(
///     4,                               // states
///     2,                               // actions
///     0.9,                             // discount beta
///     LearningRate::Constant(0.5),
///     Exploration::EpsilonGreedy { epsilon: 0.1 },
/// )?;
/// let a = learner.select_action(0, &[0, 1], &mut rng);
/// learner.update(0, a, 1.0, 1, &[0, 1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QLearner {
    table: QTable,
    discount: f64,
    learning_rate: LearningRate,
    exploration: Exploration,
    steps: u64,
}

impl QLearner {
    /// Creates a learner with a zero-initialized table.
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError`] when the discount is outside `[0, 1)` or a
    /// schedule parameter is out of range.
    ///
    /// # Panics
    ///
    /// Panics if `n_states` or `n_actions` is zero.
    pub fn new(
        n_states: usize,
        n_actions: usize,
        discount: f64,
        learning_rate: LearningRate,
        exploration: Exploration,
    ) -> Result<Self, CoreError> {
        if !(discount.is_finite() && (0.0..1.0).contains(&discount)) {
            return Err(CoreError::BadDiscount(discount));
        }
        learning_rate.validate()?;
        exploration.validate()?;
        Ok(QLearner {
            table: QTable::new(n_states, n_actions),
            discount,
            learning_rate,
            exploration,
            steps: 0,
        })
    }

    /// The discount factor `beta`.
    #[must_use]
    pub fn discount(&self) -> f64 {
        self.discount
    }

    /// Read access to the Q-table.
    #[must_use]
    pub fn table(&self) -> &QTable {
        &self.table
    }

    /// Total updates performed.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Selects an action in `s` among `legal` — greedy on the Q-table, with
    /// the exploration strategy's randomization.
    ///
    /// # Panics
    ///
    /// Panics if `legal` is empty or contains an out-of-range action.
    pub fn select_action(&self, s: usize, legal: &[usize], rng: &mut dyn Rng) -> usize {
        select_from_row(self.table.row(s), legal, &self.exploration, self.steps, rng)
    }

    /// The purely greedy action (no exploration), for evaluation runs.
    ///
    /// # Panics
    ///
    /// Panics if `legal` is empty or contains an out-of-range action.
    #[must_use]
    pub fn best_action(&self, s: usize, legal: &[usize]) -> usize {
        self.table.best_action(s, legal)
    }

    /// Applies the paper's Eqn. (3) for the observed transition
    /// `(s, a) --reward--> (next_s with next_legal)`.
    ///
    /// # Panics
    ///
    /// Panics if `next_legal` is empty or any index is out of range.
    pub fn update(&mut self, s: usize, a: usize, reward: f64, next_s: usize, next_legal: &[usize]) {
        let n_actions = self.table.n_actions();
        assert!(
            s < self.table.n_states() && a < n_actions && next_s < self.table.n_states(),
            "q-table index out of range"
        );
        let (q, visits) = self.table.cells_mut();
        update_in_place(
            q,
            visits,
            n_actions,
            self.discount,
            &self.learning_rate,
            self.steps,
            s,
            a,
            reward,
            next_s,
            next_legal,
        );
        self.steps += 1;
    }

    /// Simulates up to `max` consecutive quiescent self-loop slices in
    /// state `s` — each slice `select_action(s, legal)` followed by
    /// `update(s, stay, reward, s, legal)` — and commits exactly the
    /// leading slices whose selected action is `stay`, applying their
    /// updates. The run ends at the first slice that would deviate (its
    /// pre-drawn action is returned in [`StayRun::deviation`] and must be
    /// served by the next `select_action` without redrawing) or at `max`.
    ///
    /// Exact in distribution relative to per-slice stepping: exploration
    /// events are jumped to with one [`geometric_gap`] draw (memoryless,
    /// so truncation at `max` is sound), greedy slices are replayed
    /// against cached row maxima (only `Q(s, stay)` changes during the
    /// run), and the per-slice update arithmetic is replicated operation
    /// for operation — a zero-epsilon run is bit-identical to per-slice
    /// stepping. Fewer RNG draws are consumed, so the policy stream
    /// differs whenever epsilon is positive.
    ///
    /// Only a constant epsilon can commit: a decaying schedule qualifies
    /// once it has frozen (reached its floor, or `decay == 1.0`) and
    /// Boltzmann never does (it draws per slice) — otherwise the
    /// commitment is empty and the engine steps per slice.
    ///
    /// # Panics
    ///
    /// Panics if `legal` is empty, does not contain `stay`, or indexes out
    /// of range.
    pub fn commit_stay_run(
        &mut self,
        s: usize,
        stay: usize,
        legal: &[usize],
        reward: f64,
        max: u64,
        rng: &mut dyn Rng,
    ) -> StayRun {
        assert!(legal.contains(&stay), "stay must be a legal action");
        let eps = match self.exploration {
            Exploration::EpsilonGreedy { epsilon } => epsilon,
            // A decaying schedule is committable once it can no longer
            // move: at its floor (or with decay 1.0), epsilon is constant
            // for every future step — exactly, not approximately.
            Exploration::DecayingEpsilon {
                epsilon0,
                decay,
                min_epsilon,
            } => {
                #[allow(clippy::float_cmp)]
                let frozen =
                    decay == 1.0 || epsilon0 * decay.powf(self.steps as f64) <= min_epsilon;
                if frozen {
                    self.exploration.epsilon_at(self.steps)
                } else {
                    return StayRun::none();
                }
            }
            Exploration::Boltzmann { .. } => return StayRun::none(),
        };
        if max == 0 {
            return StayRun::none();
        }
        // Loop invariants: only Q(s, stay) changes during the run.
        // `pre_max`/`post_max` reproduce `best_action`'s first-strict-
        // maximum tie-breaking (entries before/after `stay` in `legal`);
        // their max joins Q(s, stay) to reproduce `max_q`.
        let (mut pre_max, mut post_max) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        {
            let row = self.table.row(s);
            let mut seen_stay = false;
            for &a in legal {
                if a == stay {
                    seen_stay = true;
                } else if seen_stay {
                    post_max = post_max.max(row[a]);
                } else {
                    pre_max = pre_max.max(row[a]);
                }
            }
        }
        let other_max = pre_max.max(post_max);
        let mut q = self.table.get(s, stay);
        let mut visits = self.table.visits(s, stay);
        let mut slices = 0u64;
        let mut deviation = None;
        // Hoist the schedule dispatch: constant and global-decay rates
        // ignore the visit counter, so it can be reconciled once at the
        // end (`saturating_add` per slice == saturated bulk add).
        let (const_gamma, needs_visits) = match self.learning_rate {
            LearningRate::Constant(g) => (Some(g), false),
            LearningRate::GlobalDecay { .. } => (None, false),
            LearningRate::VisitDecay { .. } => (None, true),
        };

        // One slice of `observe`: the self-loop Q-update, arithmetic
        // replicated from `update` against the cached row maxima.
        macro_rules! apply_update {
            () => {{
                let gamma = match const_gamma {
                    Some(g) => g,
                    None => {
                        if needs_visits {
                            visits = visits.saturating_add(1);
                        }
                        self.learning_rate.rate(self.steps, visits)
                    }
                };
                let bootstrap = other_max.max(q);
                let target = reward + self.discount * bootstrap;
                q = (1.0 - gamma) * q + gamma * target;
                self.steps += 1;
                slices += 1;
            }};
        }

        'run: while slices < max {
            // One draw buys the index of the next exploring slice
            // (geometric on {1, 2, ...}); every earlier slice is greedy.
            let explore_in = if legal.len() == 1 {
                u64::MAX
            } else {
                geometric_gap(rng, eps)
            };
            let greedy_budget = explore_in.saturating_sub(1).min(max - slices);
            let mut done = 0u64;
            // Two-slice history for the numeric-cycle fast path.
            let mut q_prev = f64::NAN;
            while done < greedy_budget {
                // The greedy decide: `stay` must win exactly as
                // `best_action` would pick it — strictly above everything
                // scanned before it, not strictly beaten by anything after
                // (NaN-free by construction, so `!(a > b)` here is plain
                // `a <= b`).
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                if q > pre_max && !(post_max > q) {
                    let q_before = q;
                    apply_update!();
                    done += 1;
                    // Numeric-cycle fast path (constant rate only — the
                    // update map is then step-invariant): once the float
                    // iteration reaches its fixed point (`f(q) == q`) or a
                    // rounding 2-cycle (`f(f(q)) == q`), every remaining
                    // greedy slice replays known values and only the
                    // counters advance. Both predecessors already passed
                    // the greedy-decide check.
                    if const_gamma.is_some() {
                        let left = greedy_budget - done;
                        if q.to_bits() == q_before.to_bits() {
                            slices += left;
                            self.steps += left;
                            done = greedy_budget;
                        } else if q.to_bits() == q_prev.to_bits() {
                            slices += left;
                            self.steps += left;
                            done = greedy_budget;
                            if left % 2 == 1 {
                                q = q_before; // odd tail ends on f(q)
                            }
                        }
                    }
                    q_prev = q_before;
                } else {
                    // Deterministic deviation: the conditioned-greedy slice
                    // picks the arg-max, which is no longer `stay`.
                    self.table.set(s, stay, q);
                    deviation = Some(self.table.best_action(s, legal));
                    break 'run;
                }
            }
            if slices >= max {
                break; // exploration event beyond the cap: memoryless, drop
            }
            // The exploring slice draws uniformly over the legal set.
            let a = legal[uniform_index(rng, legal.len())];
            if a == stay {
                apply_update!();
            } else {
                deviation = Some(a);
                break;
            }
        }
        self.table.set(s, stay, q);
        if !needs_visits {
            // Reconcile the untouched counter: per-slice `saturating_add`
            // k times == one saturated bulk add.
            visits = u32::try_from((u64::from(visits)).saturating_add(slices)).unwrap_or(u32::MAX);
        }
        self.table.set_visit_count(s, stay, visits);
        StayRun { slices, deviation }
    }

    /// Resets the table and step counter (schedules keep their parameters).
    pub fn reset(&mut self) {
        self.table.reset();
        self.steps = 0;
    }

    /// Appends the learner's full mutable state — the Q-table blob and the
    /// step counter — to a checkpoint payload. Schedule parameters are
    /// configuration, rebuilt identically by the caller, so they are not
    /// persisted; the step counter *is*, because decay schedules key off it.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_bytes(&self.table.to_bytes());
        w.put_u64(self.steps);
    }

    /// Restores state written by [`QLearner::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] when the payload is truncated, the table
    /// blob fails its own validation, or its dimensions do not match this
    /// learner's.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let table = QTable::from_bytes(r.get_bytes()?)
            .map_err(|e| StateError::BadValue(format!("q-table blob: {e}")))?;
        if (table.n_states(), table.n_actions()) != (self.table.n_states(), self.table.n_actions())
        {
            return Err(StateError::BadValue(format!(
                "q-table dimensions {}x{} do not match learner {}x{}",
                table.n_states(),
                table.n_actions(),
                self.table.n_states(),
                self.table.n_actions()
            )));
        }
        self.table = table;
        self.steps = r.get_u64()?;
        Ok(())
    }

    /// Replaces the Q-table wholesale (warm-start from a persisted blob).
    ///
    /// # Panics
    ///
    /// Panics if the replacement's dimensions differ from the current
    /// table's.
    pub fn replace_table(&mut self, table: QTable) {
        assert_eq!(
            (table.n_states(), table.n_actions()),
            (self.table.n_states(), self.table.n_actions()),
            "replacement table dimensions must match"
        );
        self.table = table;
    }
}

/// Action selection over one borrowed Q-row — the single implementation
/// behind both [`QLearner::select_action`] and
/// [`crate::BatchLearner::select_action`], so the scalar and batched
/// engines consume bit-identical randomness.
///
/// A single legal action is returned without drawing (mid-transition
/// decides must not advance the policy stream). Boltzmann softmax is
/// numerically stabilized and allocation-free; epsilon-greedy draws one
/// uniform for the explore/exploit decision and a second only when
/// exploring.
#[inline]
pub(crate) fn select_from_row<R: Rng + ?Sized>(
    row: &[f64],
    legal: &[usize],
    exploration: &Exploration,
    steps: u64,
    rng: &mut R,
) -> usize {
    assert!(!legal.is_empty(), "need at least one legal action");
    if legal.len() == 1 {
        return legal[0];
    }
    match *exploration {
        Exploration::Boltzmann { temperature } => {
            // Softmax over Q/T, numerically stabilized. Two passes over
            // the Q-row instead of a collected weight vector keep the
            // selection allocation-free; the weights are recomputed in
            // the same order, so the draw is bit-identical to the old
            // collected form.
            let max_q = legal
                .iter()
                .map(|&a| row[a])
                .fold(f64::NEG_INFINITY, f64::max);
            let weight = |a: usize| ((row[a] - max_q) / temperature).exp();
            let total: f64 = legal.iter().map(|&a| weight(a)).sum();
            let mut u = uniform(rng) * total;
            for &a in legal {
                u -= weight(a);
                if u < 0.0 {
                    return a;
                }
            }
            legal[legal.len() - 1]
        }
        _ => {
            let eps = exploration.epsilon_at(steps);
            if uniform(rng) < eps {
                legal[uniform_index(rng, legal.len())]
            } else {
                best_in_row(row, legal)
            }
        }
    }
}

/// [`QTable::best_action`]'s first-strict-maximum scan over a borrowed
/// row (deterministic lowest-index tie-breaking).
#[inline]
pub(crate) fn best_in_row(row: &[f64], legal: &[usize]) -> usize {
    let mut best = legal[0];
    let mut best_q = row[legal[0]];
    for &a in &legal[1..] {
        let q = row[a];
        if q > best_q {
            best_q = q;
            best = a;
        }
    }
    best
}

/// The paper's Eqn. (3) applied in place to a row-major table slice —
/// the single update implementation behind both [`QLearner::update`] and
/// [`crate::BatchLearner::update`]. Operation order (visit increment,
/// rate, bootstrap, blend) replicates the historical `QLearner` body
/// exactly; callers advance their own step counters.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn update_in_place(
    q: &mut [f64],
    visits: &mut [u32],
    n_actions: usize,
    discount: f64,
    learning_rate: &LearningRate,
    steps: u64,
    s: usize,
    a: usize,
    reward: f64,
    next_s: usize,
    next_legal: &[usize],
) {
    assert!(!next_legal.is_empty(), "need at least one legal action");
    let i = s * n_actions + a;
    visits[i] = visits[i].saturating_add(1);
    let gamma = learning_rate.rate(steps, visits[i]);
    let next_row = &q[next_s * n_actions..(next_s + 1) * n_actions];
    let bootstrap = next_legal
        .iter()
        .map(|&b| next_row[b])
        .fold(f64::NEG_INFINITY, f64::max);
    let old = q[i];
    let target = reward + discount * bootstrap;
    q[i] = (1.0 - gamma) * old + gamma * target;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn learner(discount: f64, rate: f64, eps: f64) -> QLearner {
        QLearner::new(
            4,
            2,
            discount,
            LearningRate::Constant(rate),
            Exploration::EpsilonGreedy { epsilon: eps },
        )
        .unwrap()
    }

    #[test]
    fn rejects_bad_discount() {
        assert!(matches!(
            QLearner::new(2, 2, 1.0, LearningRate::default(), Exploration::default()),
            Err(CoreError::BadDiscount(_))
        ));
        assert!(matches!(
            QLearner::new(2, 2, -0.1, LearningRate::default(), Exploration::default()),
            Err(CoreError::BadDiscount(_))
        ));
    }

    #[test]
    fn update_matches_eqn3_by_hand() {
        let mut l = learner(0.5, 0.25, 0.0);
        l.table.set(1, 0, 8.0); // max_b Q(s'=1, b) = 8
        l.table.set(0, 0, 4.0);
        // Q <- (1-0.25)*4 + 0.25*(2 + 0.5*8) = 3 + 0.25*6 = 4.5
        l.update(0, 0, 2.0, 1, &[0, 1]);
        assert!((l.table().get(0, 0) - 4.5).abs() < 1e-12);
        assert_eq!(l.steps(), 1);
    }

    #[test]
    fn zero_epsilon_is_greedy() {
        let mut l = learner(0.9, 0.1, 0.0);
        l.table.set(0, 1, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            assert_eq!(l.select_action(0, &[0, 1], &mut rng), 1);
        }
    }

    #[test]
    fn full_epsilon_explores_both_actions() {
        let mut l = learner(0.9, 0.1, 1.0);
        l.table.set(0, 1, 100.0);
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[l.select_action(0, &[0, 1], &mut rng)] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn single_legal_action_skips_exploration() {
        let l = learner(0.9, 0.1, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(l.select_action(0, &[1], &mut rng), 1);
    }

    #[test]
    fn boltzmann_prefers_higher_q() {
        let mut l = QLearner::new(
            1,
            2,
            0.9,
            LearningRate::default(),
            Exploration::Boltzmann { temperature: 0.5 },
        )
        .unwrap();
        l.table.set(0, 1, 2.0);
        let mut rng = StdRng::seed_from_u64(7);
        let picks_1 = (0..1000)
            .filter(|_| l.select_action(0, &[0, 1], &mut rng) == 1)
            .count();
        // exp(0)/exp(4) ratio: action 1 should dominate but not be exclusive.
        assert!(picks_1 > 900, "picked 1 {picks_1} times");
        assert!(picks_1 < 1000, "boltzmann should still explore");
    }

    /// Q-learning on a known 2-state MDP converges to the optimal Q-values.
    #[test]
    fn converges_on_two_state_chain() {
        // States {0, 1}; action 0 = stay, action 1 = move.
        // Rewards: staying in 1 pays 1, everything else pays 0.
        // beta = 0.5. Optimal: Q*(1,0) = 1/(1-0.5) = 2,
        // Q*(0,1) = 0 + 0.5*2 = 1, Q*(0,0) = 0.5*Q*(0, best) = 0.5*1 = 0.5,
        // Q*(1,1) = 0 + 0.5*1 = ... move from 1 to 0: 0 + 0.5*max_b Q(0,b) = 0.5.
        let mut l = QLearner::new(
            2,
            2,
            0.5,
            LearningRate::VisitDecay { omega: 0.7 },
            Exploration::EpsilonGreedy { epsilon: 0.3 },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut s = 0usize;
        for _ in 0..200_000 {
            let a = l.select_action(s, &[0, 1], &mut rng);
            let next = if a == 0 { s } else { 1 - s };
            let reward = if s == 1 && a == 0 { 1.0 } else { 0.0 };
            l.update(s, a, reward, next, &[0, 1]);
            s = next;
        }
        let t = l.table();
        assert!((t.get(1, 0) - 2.0).abs() < 0.05, "Q(1,0) = {}", t.get(1, 0));
        assert!((t.get(0, 1) - 1.0).abs() < 0.05, "Q(0,1) = {}", t.get(0, 1));
        assert!((t.get(0, 0) - 0.5).abs() < 0.05, "Q(0,0) = {}", t.get(0, 0));
        assert!((t.get(1, 1) - 0.5).abs() < 0.05, "Q(1,1) = {}", t.get(1, 1));
    }

    /// Per-slice reference for the stay run: alternate select/update until
    /// the selection deviates or `max` slices pass. Returns (slices,
    /// deviation).
    fn stay_run_per_slice(
        l: &mut QLearner,
        s: usize,
        stay: usize,
        legal: &[usize],
        reward: f64,
        max: u64,
        rng: &mut StdRng,
    ) -> (u64, Option<usize>) {
        for k in 0..max {
            let a = l.select_action(s, legal, rng);
            if a != stay {
                return (k, Some(a));
            }
            l.update(s, stay, reward, s, legal);
        }
        (max, None)
    }

    #[test]
    fn stay_run_zero_epsilon_is_bit_identical_to_per_slice() {
        for schedule in [
            LearningRate::Constant(0.1),
            LearningRate::GlobalDecay { c: 50.0 },
            LearningRate::VisitDecay { omega: 0.8 },
        ] {
            let build = || {
                let mut l = QLearner::new(
                    3,
                    3,
                    0.95,
                    schedule,
                    Exploration::EpsilonGreedy { epsilon: 0.0 },
                )
                .unwrap();
                // Stay (action 1) starts best; constant entries nearby.
                l.table.set(0, 0, -0.4);
                l.table.set(0, 1, -0.1);
                l.table.set(0, 2, -0.3);
                l
            };
            let mut per = build();
            let mut fast = build();
            let mut rng_a = StdRng::seed_from_u64(1);
            let mut rng_b = StdRng::seed_from_u64(1);
            let legal = [0usize, 1, 2];
            let reward = -0.2;
            let (k_per, dev_per) =
                stay_run_per_slice(&mut per, 0, 1, &legal, reward, 500, &mut rng_a);
            let run = fast.commit_stay_run(0, 1, &legal, reward, 500, &mut rng_b);
            // With eps = 0 nothing is random: the deviation slice (if any)
            // and every Q value must agree exactly.
            assert_eq!(run.slices, k_per, "{schedule:?}");
            assert_eq!(run.deviation, dev_per, "{schedule:?}");
            assert_eq!(per.table(), fast.table(), "{schedule:?}");
            assert_eq!(per.steps(), fast.steps(), "{schedule:?}");
        }
    }

    #[test]
    fn stay_run_detects_greedy_crossing() {
        // Stay's Q drifts toward reward/(1-beta); with a constant rival
        // above that fixed point, the greedy choice eventually flips and
        // the run must stop exactly at the crossing (pinned by the
        // per-slice reference above; here: sanity on the direction).
        let mut l = QLearner::new(
            1,
            2,
            0.5,
            LearningRate::Constant(0.5),
            Exploration::EpsilonGreedy { epsilon: 0.0 },
        )
        .unwrap();
        l.table.set(0, 0, 0.1); // stay
        l.table.set(0, 1, -0.5); // rival, above the fixed point -1.0
        let mut rng = StdRng::seed_from_u64(0);
        let run = l.commit_stay_run(0, 0, &[0, 1], -0.5, 10_000, &mut rng);
        assert_eq!(run.deviation, Some(1), "greedy must flip to the rival");
        assert!(run.slices > 0 && run.slices < 10_000);
        // At the stop point the rival really is the greedy action.
        assert_eq!(l.best_action(0, &[0, 1]), 1);
    }

    #[test]
    fn stay_run_exploration_statistics_match_per_slice() {
        // With eps > 0 the draw order differs, so compare the *law*: mean
        // committed run length over many independent runs.
        let eps = 0.08;
        let runs = 4_000u64;
        let build = || {
            let mut l = QLearner::new(
                1,
                3,
                0.9,
                LearningRate::Constant(0.05),
                Exploration::EpsilonGreedy { epsilon: eps },
            )
            .unwrap();
            // Stay far above rivals: greedy never flips within the cap, so
            // runs end only by exploration (prob eps * 2/3 per slice).
            l.table.set(0, 1, 100.0);
            l
        };
        let mut rng = StdRng::seed_from_u64(7);
        let mut total_fast = 0u64;
        for _ in 0..runs {
            let mut l = build();
            total_fast += l
                .commit_stay_run(0, 1, &[0, 1, 2], -0.1, 100_000, &mut rng)
                .slices;
        }
        let mut total_per = 0u64;
        for _ in 0..runs {
            let mut l = build();
            total_per += stay_run_per_slice(&mut l, 0, 1, &[0, 1, 2], -0.1, 100_000, &mut rng).0;
        }
        let (m_fast, m_per) = (
            total_fast as f64 / runs as f64,
            total_per as f64 / runs as f64,
        );
        let expect = 1.0 / (eps * (2.0 / 3.0)) - 1.0; // slices before the deviating slice
        assert!(
            (m_fast - expect).abs() < 0.06 * expect,
            "fast mean {m_fast} vs analytic {expect}"
        );
        assert!(
            (m_fast - m_per).abs() < 0.06 * expect,
            "fast mean {m_fast} vs per-slice mean {m_per}"
        );
    }

    #[test]
    fn stay_run_opts_out_for_non_constant_exploration() {
        let mut rng = StdRng::seed_from_u64(2);
        for exploration in [
            Exploration::Boltzmann { temperature: 0.5 },
            Exploration::DecayingEpsilon {
                epsilon0: 0.5,
                decay: 0.999,
                min_epsilon: 0.01,
            },
        ] {
            let mut l = QLearner::new(2, 2, 0.9, LearningRate::Constant(0.1), exploration).unwrap();
            let run = l.commit_stay_run(0, 0, &[0, 1], -1.0, 100, &mut rng);
            assert_eq!(run, StayRun::none());
            assert_eq!(l.steps(), 0);
        }
    }

    #[test]
    fn save_load_round_trips_table_and_steps() {
        let mut src = learner(0.9, 0.3, 0.1);
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = 0usize;
        for _ in 0..500 {
            let a = src.select_action(s, &[0, 1], &mut rng);
            let next = (s + a) % 4;
            src.update(s, a, -0.3, next, &[0, 1]);
            s = next;
        }
        let mut w = StateWriter::new();
        src.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut dst = learner(0.9, 0.3, 0.1);
        dst.load_state(&mut StateReader::new(&bytes)).unwrap();
        assert_eq!(dst.table(), src.table());
        assert_eq!(dst.steps(), src.steps());
    }

    #[test]
    fn load_rejects_dimension_mismatch_and_truncation() {
        let src = learner(0.9, 0.3, 0.1);
        let mut w = StateWriter::new();
        src.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut wrong = QLearner::new(
            3,
            3,
            0.9,
            LearningRate::Constant(0.3),
            Exploration::EpsilonGreedy { epsilon: 0.1 },
        )
        .unwrap();
        assert!(wrong.load_state(&mut StateReader::new(&bytes)).is_err());
        let mut same = learner(0.9, 0.3, 0.1);
        assert!(same
            .load_state(&mut StateReader::new(&bytes[..bytes.len() - 4]))
            .is_err());
    }

    #[test]
    fn reset_clears_table_and_steps() {
        let mut l = learner(0.9, 0.5, 0.0);
        l.update(0, 0, 1.0, 0, &[0, 1]);
        l.reset();
        assert_eq!(l.steps(), 0);
        assert_eq!(l.table().get(0, 0), 0.0);
    }
}
