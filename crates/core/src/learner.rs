use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::rng_util::{uniform, uniform_index};
use crate::{CoreError, Exploration, LearningRate, QTable};

/// Watkins Q-learning over a discrete state/action space — the algorithmic
/// core of Q-DPM.
///
/// Implements the paper's Eqn. (3) verbatim (reward convention, so the
/// greedy action is the arg-max):
///
/// ```text
/// Q(s,a) <- (1 - gamma) * Q(s,a) + gamma * ( c(s,a,s') + beta * max_b Q(s',b) )
/// ```
///
/// with `gamma` from a [`LearningRate`] schedule and epsilon-greedy (or
/// Boltzmann) exploration per Section 2 of the paper. The learner is
/// domain-agnostic; `qdpm`'s power-management agents wrap it with a state
/// encoder and a reward definition.
///
/// # Example
///
/// ```
/// use qdpm_core::{Exploration, LearningRate, QLearner};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), qdpm_core::CoreError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut learner = QLearner::new(
///     4,                               // states
///     2,                               // actions
///     0.9,                             // discount beta
///     LearningRate::Constant(0.5),
///     Exploration::EpsilonGreedy { epsilon: 0.1 },
/// )?;
/// let a = learner.select_action(0, &[0, 1], &mut rng);
/// learner.update(0, a, 1.0, 1, &[0, 1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QLearner {
    table: QTable,
    discount: f64,
    learning_rate: LearningRate,
    exploration: Exploration,
    steps: u64,
}

impl QLearner {
    /// Creates a learner with a zero-initialized table.
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError`] when the discount is outside `[0, 1)` or a
    /// schedule parameter is out of range.
    ///
    /// # Panics
    ///
    /// Panics if `n_states` or `n_actions` is zero.
    pub fn new(
        n_states: usize,
        n_actions: usize,
        discount: f64,
        learning_rate: LearningRate,
        exploration: Exploration,
    ) -> Result<Self, CoreError> {
        if !(discount.is_finite() && (0.0..1.0).contains(&discount)) {
            return Err(CoreError::BadDiscount(discount));
        }
        learning_rate.validate()?;
        exploration.validate()?;
        Ok(QLearner {
            table: QTable::new(n_states, n_actions),
            discount,
            learning_rate,
            exploration,
            steps: 0,
        })
    }

    /// The discount factor `beta`.
    #[must_use]
    pub fn discount(&self) -> f64 {
        self.discount
    }

    /// Read access to the Q-table.
    #[must_use]
    pub fn table(&self) -> &QTable {
        &self.table
    }

    /// Total updates performed.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Selects an action in `s` among `legal` — greedy on the Q-table, with
    /// the exploration strategy's randomization.
    ///
    /// # Panics
    ///
    /// Panics if `legal` is empty or contains an out-of-range action.
    pub fn select_action(&self, s: usize, legal: &[usize], rng: &mut dyn Rng) -> usize {
        assert!(!legal.is_empty(), "need at least one legal action");
        if legal.len() == 1 {
            return legal[0];
        }
        match self.exploration {
            Exploration::Boltzmann { temperature } => {
                // Softmax over Q/T, numerically stabilized. Two passes over
                // the Q-row instead of a collected weight vector keep the
                // selection allocation-free; the weights are recomputed in
                // the same order, so the draw is bit-identical to the old
                // collected form.
                let row = self.table.row(s);
                let max_q = legal
                    .iter()
                    .map(|&a| row[a])
                    .fold(f64::NEG_INFINITY, f64::max);
                let weight = |a: usize| ((row[a] - max_q) / temperature).exp();
                let total: f64 = legal.iter().map(|&a| weight(a)).sum();
                let mut u = uniform(rng) * total;
                for &a in legal {
                    u -= weight(a);
                    if u < 0.0 {
                        return a;
                    }
                }
                legal[legal.len() - 1]
            }
            _ => {
                let eps = self.exploration.epsilon_at(self.steps);
                if uniform(rng) < eps {
                    legal[uniform_index(rng, legal.len())]
                } else {
                    self.table.best_action(s, legal)
                }
            }
        }
    }

    /// The purely greedy action (no exploration), for evaluation runs.
    ///
    /// # Panics
    ///
    /// Panics if `legal` is empty or contains an out-of-range action.
    #[must_use]
    pub fn best_action(&self, s: usize, legal: &[usize]) -> usize {
        self.table.best_action(s, legal)
    }

    /// Applies the paper's Eqn. (3) for the observed transition
    /// `(s, a) --reward--> (next_s with next_legal)`.
    ///
    /// # Panics
    ///
    /// Panics if `next_legal` is empty or any index is out of range.
    pub fn update(&mut self, s: usize, a: usize, reward: f64, next_s: usize, next_legal: &[usize]) {
        let visits = self.table.record_visit(s, a);
        let gamma = self.learning_rate.rate(self.steps, visits);
        let bootstrap = self.table.max_q(next_s, next_legal);
        let old = self.table.get(s, a);
        let target = reward + self.discount * bootstrap;
        self.table.set(s, a, (1.0 - gamma) * old + gamma * target);
        self.steps += 1;
    }

    /// Resets the table and step counter (schedules keep their parameters).
    pub fn reset(&mut self) {
        self.table.reset();
        self.steps = 0;
    }

    /// Replaces the Q-table wholesale (warm-start from a persisted blob).
    ///
    /// # Panics
    ///
    /// Panics if the replacement's dimensions differ from the current
    /// table's.
    pub fn replace_table(&mut self, table: QTable) {
        assert_eq!(
            (table.n_states(), table.n_actions()),
            (self.table.n_states(), self.table.n_actions()),
            "replacement table dimensions must match"
        );
        self.table = table;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn learner(discount: f64, rate: f64, eps: f64) -> QLearner {
        QLearner::new(
            4,
            2,
            discount,
            LearningRate::Constant(rate),
            Exploration::EpsilonGreedy { epsilon: eps },
        )
        .unwrap()
    }

    #[test]
    fn rejects_bad_discount() {
        assert!(matches!(
            QLearner::new(2, 2, 1.0, LearningRate::default(), Exploration::default()),
            Err(CoreError::BadDiscount(_))
        ));
        assert!(matches!(
            QLearner::new(2, 2, -0.1, LearningRate::default(), Exploration::default()),
            Err(CoreError::BadDiscount(_))
        ));
    }

    #[test]
    fn update_matches_eqn3_by_hand() {
        let mut l = learner(0.5, 0.25, 0.0);
        l.table.set(1, 0, 8.0); // max_b Q(s'=1, b) = 8
        l.table.set(0, 0, 4.0);
        // Q <- (1-0.25)*4 + 0.25*(2 + 0.5*8) = 3 + 0.25*6 = 4.5
        l.update(0, 0, 2.0, 1, &[0, 1]);
        assert!((l.table().get(0, 0) - 4.5).abs() < 1e-12);
        assert_eq!(l.steps(), 1);
    }

    #[test]
    fn zero_epsilon_is_greedy() {
        let mut l = learner(0.9, 0.1, 0.0);
        l.table.set(0, 1, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            assert_eq!(l.select_action(0, &[0, 1], &mut rng), 1);
        }
    }

    #[test]
    fn full_epsilon_explores_both_actions() {
        let mut l = learner(0.9, 0.1, 1.0);
        l.table.set(0, 1, 100.0);
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[l.select_action(0, &[0, 1], &mut rng)] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn single_legal_action_skips_exploration() {
        let l = learner(0.9, 0.1, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(l.select_action(0, &[1], &mut rng), 1);
    }

    #[test]
    fn boltzmann_prefers_higher_q() {
        let mut l = QLearner::new(
            1,
            2,
            0.9,
            LearningRate::default(),
            Exploration::Boltzmann { temperature: 0.5 },
        )
        .unwrap();
        l.table.set(0, 1, 2.0);
        let mut rng = StdRng::seed_from_u64(7);
        let picks_1 = (0..1000)
            .filter(|_| l.select_action(0, &[0, 1], &mut rng) == 1)
            .count();
        // exp(0)/exp(4) ratio: action 1 should dominate but not be exclusive.
        assert!(picks_1 > 900, "picked 1 {picks_1} times");
        assert!(picks_1 < 1000, "boltzmann should still explore");
    }

    /// Q-learning on a known 2-state MDP converges to the optimal Q-values.
    #[test]
    fn converges_on_two_state_chain() {
        // States {0, 1}; action 0 = stay, action 1 = move.
        // Rewards: staying in 1 pays 1, everything else pays 0.
        // beta = 0.5. Optimal: Q*(1,0) = 1/(1-0.5) = 2,
        // Q*(0,1) = 0 + 0.5*2 = 1, Q*(0,0) = 0.5*Q*(0, best) = 0.5*1 = 0.5,
        // Q*(1,1) = 0 + 0.5*1 = ... move from 1 to 0: 0 + 0.5*max_b Q(0,b) = 0.5.
        let mut l = QLearner::new(
            2,
            2,
            0.5,
            LearningRate::VisitDecay { omega: 0.7 },
            Exploration::EpsilonGreedy { epsilon: 0.3 },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut s = 0usize;
        for _ in 0..200_000 {
            let a = l.select_action(s, &[0, 1], &mut rng);
            let next = if a == 0 { s } else { 1 - s };
            let reward = if s == 1 && a == 0 { 1.0 } else { 0.0 };
            l.update(s, a, reward, next, &[0, 1]);
            s = next;
        }
        let t = l.table();
        assert!((t.get(1, 0) - 2.0).abs() < 0.05, "Q(1,0) = {}", t.get(1, 0));
        assert!((t.get(0, 1) - 1.0).abs() < 0.05, "Q(0,1) = {}", t.get(0, 1));
        assert!((t.get(0, 0) - 0.5).abs() < 0.05, "Q(0,0) = {}", t.get(0, 0));
        assert!((t.get(1, 1) - 0.5).abs() < 0.05, "Q(1,1) = {}", t.get(1, 1));
    }

    #[test]
    fn reset_clears_table_and_steps() {
        let mut l = learner(0.9, 0.5, 0.0);
        l.update(0, 0, 1.0, 0, &[0, 1]);
        l.reset();
        assert_eq!(l.steps(), 0);
        assert_eq!(l.table().get(0, 0), 0.0);
    }
}
