//! A shareable Q-learner handle: one Q-table, many agents.
//!
//! Fleet-scale DPM (the `qdpm-sim` fleet layer) wants a *population* of
//! identical devices to pool their experience into a single Q-table — every
//! device's updates immediately benefit every other device, which is how a
//! datacenter-scale deployment would amortize exploration. The
//! [`SharedQLearner`] is a cloneable handle to one mutex-guarded
//! [`QLearner`]; each clone plugs into its own
//! [`crate::GenericQDpmAgent`] as a [`TabularLearner`].

use std::sync::{Arc, Mutex};

use rand::Rng;

use crate::state_io::{StateError, StateReader, StateWriter};
use crate::variants::TabularLearner;
use crate::{QLearner, StayRun};

/// A cloneable handle to a [`QLearner`] shared by several agents.
///
/// Every trait call locks the learner for its duration, so concurrent use
/// is memory-safe — but **update order is scheduling-dependent across
/// threads**. Deterministic results therefore require that all agents
/// holding clones of one handle run on a single thread (the fleet runner
/// in `qdpm-sim` enforces exactly that by dropping to serial execution
/// when a fleet contains shared-table members).
///
/// # Example
///
/// ```
/// use qdpm_core::{GenericQDpmAgent, QDpmConfig, QLearner, SharedQLearner, StateEncoder};
/// use qdpm_device::presets;
///
/// # fn main() -> Result<(), qdpm_core::CoreError> {
/// let power = presets::three_state_generic();
/// let config = QDpmConfig::default();
/// let encoder = config.encoder_for(&power)?;
/// let shared = SharedQLearner::new(QLearner::new(
///     encoder.n_states(),
///     power.n_states(),
///     config.discount,
///     config.learning_rate,
///     config.exploration,
/// )?);
/// // Two devices learning into the same table.
/// let a = GenericQDpmAgent::with_learner(&power, &config, shared.handle())?;
/// let b = GenericQDpmAgent::with_learner(&power, &config, shared.handle())?;
/// assert_eq!(a.learner_ref().steps(), b.learner_ref().steps());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SharedQLearner {
    inner: Arc<Mutex<QLearner>>,
}

impl SharedQLearner {
    /// Wraps a learner for sharing.
    #[must_use]
    pub fn new(learner: QLearner) -> Self {
        SharedQLearner {
            inner: Arc::new(Mutex::new(learner)),
        }
    }

    /// Another handle to the same underlying table (same as `clone`,
    /// spelled for intent).
    #[must_use]
    pub fn handle(&self) -> Self {
        self.clone()
    }

    /// Number of live handles to this table.
    #[must_use]
    pub fn handles(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// A point-in-time copy of the shared learner (table inspection,
    /// persistence).
    ///
    /// # Panics
    ///
    /// Panics if a previous holder panicked while holding the lock.
    #[must_use]
    pub fn snapshot(&self) -> QLearner {
        self.inner.lock().expect("shared learner poisoned").clone()
    }

    /// Total updates performed on the shared table.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder panicked while holding the lock.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.inner.lock().expect("shared learner poisoned").steps()
    }

    fn with<R>(&self, f: impl FnOnce(&mut QLearner) -> R) -> R {
        f(&mut self.inner.lock().expect("shared learner poisoned"))
    }
}

impl TabularLearner for SharedQLearner {
    fn select_action(&mut self, s: usize, legal: &[usize], rng: &mut dyn Rng) -> usize {
        self.with(|l| l.select_action(s, legal, rng))
    }

    fn best_action(&self, s: usize, legal: &[usize]) -> usize {
        self.with(|l| l.best_action(s, legal))
    }

    fn update(&mut self, s: usize, a: usize, reward: f64, next_s: usize, next_legal: &[usize]) {
        self.with(|l| l.update(s, a, reward, next_s, next_legal));
    }

    fn commit_stay_run(
        &mut self,
        s: usize,
        stay: usize,
        legal: &[usize],
        reward: f64,
        max: u64,
        rng: &mut dyn Rng,
    ) -> StayRun {
        self.with(|l| l.commit_stay_run(s, stay, legal, reward, max, rng))
    }

    fn steps(&self) -> u64 {
        SharedQLearner::steps(self)
    }

    fn save_state(&self, w: &mut StateWriter) {
        self.with(|l| l.save_state(w));
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.with(|l| l.load_state(r))
    }

    fn reset(&mut self) {
        self.with(QLearner::reset);
    }

    fn memory_bytes(&self) -> usize {
        self.with(|l| l.table().memory_bytes())
    }

    fn algorithm(&self) -> &'static str {
        "watkins-q-shared"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Exploration, LearningRate};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn learner() -> QLearner {
        QLearner::new(
            4,
            2,
            0.9,
            LearningRate::Constant(0.5),
            Exploration::EpsilonGreedy { epsilon: 0.0 },
        )
        .unwrap()
    }

    #[test]
    fn handles_share_one_table() {
        let shared = SharedQLearner::new(learner());
        let mut a = shared.handle();
        let mut b = shared.handle();
        assert_eq!(shared.handles(), 3);
        a.update(0, 1, -1.0, 1, &[0, 1]);
        b.update(0, 1, -1.0, 1, &[0, 1]);
        // Both updates landed on the same table.
        assert_eq!(shared.steps(), 2);
        assert_eq!(TabularLearner::steps(&a), 2);
    }

    #[test]
    fn shared_matches_exclusive_learner_bit_for_bit() {
        // Driving a shared handle serially must be arithmetic-identical to
        // driving the plain learner.
        let mut plain = learner();
        let mut shared = SharedQLearner::new(learner());
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        let legal = [0usize, 1];
        for i in 0..200u64 {
            let s = (i % 4) as usize;
            let a1 = plain.select_action(s, &legal, &mut rng_a);
            let a2 = shared.select_action(s, &legal, &mut rng_b);
            assert_eq!(a1, a2);
            let r = -((i % 7) as f64) * 0.25;
            plain.update(s, a1, r, (s + 1) % 4, &legal);
            shared.update(s, a2, r, (s + 1) % 4, &legal);
        }
        assert_eq!(plain, shared.snapshot());
    }

    #[test]
    fn stay_runs_delegate() {
        let mut shared = SharedQLearner::new(learner());
        let mut rng = StdRng::seed_from_u64(1);
        let run = shared.commit_stay_run(0, 0, &[0, 1], -0.5, 100, &mut rng);
        let mut plain = learner();
        let mut rng2 = StdRng::seed_from_u64(1);
        let run2 = plain.commit_stay_run(0, 0, &[0, 1], -0.5, 100, &mut rng2);
        assert_eq!(run, run2);
        assert_eq!(plain, shared.snapshot());
    }

    #[test]
    fn snapshot_is_a_copy() {
        let mut shared = SharedQLearner::new(learner());
        let snap = shared.snapshot();
        shared.update(0, 0, -1.0, 0, &[0, 1]);
        assert_eq!(snap.steps(), 0);
        assert_eq!(shared.steps(), 1);
    }
}
