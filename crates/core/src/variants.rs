//! Alternative tabular learners: SARSA, Double Q-learning, and Watkins
//! Q(lambda) with eligibility traces.
//!
//! The paper commits to Watkins one-step Q-learning for its simplicity;
//! these are the standard drop-in alternatives any follow-up would try, and
//! each addresses a weakness this reproduction measured:
//!
//! * [`SarsaLearner`] — on-policy: values reflect the epsilon-greedy
//!   behavior actually executed, so the online (exploring) cost curve is
//!   optimized directly rather than the greedy target policy;
//! * [`DoubleQLearner`] — two tables with decoupled selection/evaluation,
//!   removing the max-operator's overestimation bias under reward noise;
//! * [`QLambdaLearner`] — Watkins Q(lambda) with replacing eligibility
//!   traces: one reward updates the whole recent state-action trajectory,
//!   which accelerates credit assignment through long uncontrollable
//!   transients (the IBM-HDD's 20-30-slice spin-ups in table T4).
//!
//! All variants implement [`TabularLearner`], the protocol used by
//! [`crate::GenericQDpmAgent`]; the strict alternation
//! `select_action` -> `update` per slice is part of the contract (the
//! simulator guarantees it).

use std::collections::HashMap;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::rng_util::{uniform, uniform_index};
use crate::state_io::{StateError, StateReader, StateWriter};
use crate::{CoreError, Exploration, LearningRate, QLearner, QTable, StayRun};

/// Protocol shared by all tabular learners usable inside a Q-DPM agent.
///
/// The driver must alternate `select_action(s_t, ...)` and
/// `update(s_t, a_t, r_t, s_{t+1}, ...)` once per slice, in that order;
/// on-policy learners (SARSA) rely on it.
///
/// `Send` is a supertrait so a [`crate::GenericQDpmAgent`] wrapping any
/// learner satisfies [`crate::PowerManager`]'s `Send` bound and can run on
/// a worker thread of the parallel experiment runner.
pub trait TabularLearner: std::fmt::Debug + Send {
    /// Chooses an action in `s` among `legal`, applying exploration.
    fn select_action(&mut self, s: usize, legal: &[usize], rng: &mut dyn Rng) -> usize;

    /// The greedy action (no exploration), for frozen-policy evaluation.
    fn best_action(&self, s: usize, legal: &[usize]) -> usize;

    /// Consumes one observed transition.
    fn update(&mut self, s: usize, a: usize, reward: f64, next_s: usize, next_legal: &[usize]);

    /// Event-skip support: commit up to `max` quiescent self-loop slices
    /// in state `s` (see [`QLearner::commit_stay_run`], the only learner
    /// that implements it). The default commits nothing, so every variant
    /// is stepped per slice by the event-skipping engine — on-policy and
    /// trace-based learners have per-slice state the closed form cannot
    /// replay.
    fn commit_stay_run(
        &mut self,
        s: usize,
        stay: usize,
        legal: &[usize],
        reward: f64,
        max: u64,
        rng: &mut dyn Rng,
    ) -> StayRun {
        let _ = (s, stay, legal, reward, max, rng);
        StayRun::none()
    }

    /// Total updates performed.
    fn steps(&self) -> u64;

    /// Checkpoint support: appends the learner's full mutable state to a
    /// payload. The default writes nothing, paired with the default
    /// [`TabularLearner::load_state`] that reads nothing — symmetric, so a
    /// variant without checkpoint support round-trips as a no-op instead
    /// of corrupting the payload framing.
    fn save_state(&self, w: &mut StateWriter) {
        let _ = w;
    }

    /// Checkpoint support: restores state written by
    /// [`TabularLearner::save_state`]. Default: reads nothing.
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] when the payload does not decode.
    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let _ = r;
        Ok(())
    }

    /// Clears learned state.
    fn reset(&mut self);

    /// Heap footprint of the learned tables, in bytes.
    fn memory_bytes(&self) -> usize;

    /// Short display name of the algorithm.
    fn algorithm(&self) -> &'static str;
}

impl TabularLearner for QLearner {
    fn select_action(&mut self, s: usize, legal: &[usize], rng: &mut dyn Rng) -> usize {
        QLearner::select_action(self, s, legal, rng)
    }

    fn best_action(&self, s: usize, legal: &[usize]) -> usize {
        QLearner::best_action(self, s, legal)
    }

    fn update(&mut self, s: usize, a: usize, reward: f64, next_s: usize, next_legal: &[usize]) {
        QLearner::update(self, s, a, reward, next_s, next_legal);
    }

    fn commit_stay_run(
        &mut self,
        s: usize,
        stay: usize,
        legal: &[usize],
        reward: f64,
        max: u64,
        rng: &mut dyn Rng,
    ) -> StayRun {
        QLearner::commit_stay_run(self, s, stay, legal, reward, max, rng)
    }

    fn steps(&self) -> u64 {
        QLearner::steps(self)
    }

    fn save_state(&self, w: &mut StateWriter) {
        QLearner::save_state(self, w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        QLearner::load_state(self, r)
    }

    fn reset(&mut self) {
        QLearner::reset(self);
    }

    fn memory_bytes(&self) -> usize {
        self.table().memory_bytes()
    }

    fn algorithm(&self) -> &'static str {
        "watkins-q"
    }
}

/// On-policy SARSA(0).
///
/// The update target bootstraps on the action the behavior policy
/// *actually selects next* rather than the greedy maximum, so the learned
/// values equal the epsilon-greedy policy's own long-run return. The
/// required next action is captured by deferring each update until the
/// following `select_action` call (the strict alternation contract).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SarsaLearner {
    table: QTable,
    discount: f64,
    learning_rate: LearningRate,
    exploration: Exploration,
    steps: u64,
    /// Transition awaiting its on-policy bootstrap action.
    pending: Option<PendingSarsa>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PendingSarsa {
    s: usize,
    a: usize,
    reward: f64,
    next_s: usize,
}

impl SarsaLearner {
    /// Creates a learner with a zero-initialized table.
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError`] for an invalid discount or schedule.
    pub fn new(
        n_states: usize,
        n_actions: usize,
        discount: f64,
        learning_rate: LearningRate,
        exploration: Exploration,
    ) -> Result<Self, CoreError> {
        if !(discount.is_finite() && (0.0..1.0).contains(&discount)) {
            return Err(CoreError::BadDiscount(discount));
        }
        learning_rate.validate()?;
        exploration.validate()?;
        Ok(SarsaLearner {
            table: QTable::new(n_states, n_actions),
            discount,
            learning_rate,
            exploration,
            steps: 0,
            pending: None,
        })
    }

    /// Read access to the table.
    #[must_use]
    pub fn table(&self) -> &QTable {
        &self.table
    }

    fn apply_pending(&mut self, bootstrap_q: f64) {
        if let Some(p) = self.pending.take() {
            let visits = self.table.record_visit(p.s, p.a);
            let gamma = self.learning_rate.rate(self.steps, visits);
            let old = self.table.get(p.s, p.a);
            let target = p.reward + self.discount * bootstrap_q;
            self.table
                .set(p.s, p.a, (1.0 - gamma) * old + gamma * target);
            self.steps += 1;
        }
    }
}

impl TabularLearner for SarsaLearner {
    fn select_action(&mut self, s: usize, legal: &[usize], rng: &mut dyn Rng) -> usize {
        assert!(!legal.is_empty(), "need at least one legal action");
        let eps = self.exploration.epsilon_at(self.steps);
        let a = if legal.len() > 1 && uniform(rng) < eps {
            legal[uniform_index(rng, legal.len())]
        } else {
            self.table.best_action(s, legal)
        };
        // If a transition is pending and this state continues it, complete
        // the on-policy update with the action just chosen.
        if matches!(&self.pending, Some(p) if p.next_s == s) {
            let q = self.table.get(s, a);
            self.apply_pending(q);
        }
        a
    }

    fn best_action(&self, s: usize, legal: &[usize]) -> usize {
        self.table.best_action(s, legal)
    }

    fn update(&mut self, s: usize, a: usize, reward: f64, next_s: usize, _next_legal: &[usize]) {
        // Flush any stale pending transition (e.g. after an external reset
        // of the environment) with its own greedy bootstrap as a fallback
        // (max over the full action set, straight off the Q-row).
        if let Some(p) = &self.pending {
            if p.next_s != s {
                let q = self
                    .table
                    .row(p.next_s)
                    .iter()
                    .copied()
                    .fold(f64::NEG_INFINITY, f64::max);
                self.apply_pending(q);
            }
        }
        self.pending = Some(PendingSarsa {
            s,
            a,
            reward,
            next_s,
        });
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn reset(&mut self) {
        self.table.reset();
        self.steps = 0;
        self.pending = None;
    }

    fn memory_bytes(&self) -> usize {
        self.table.memory_bytes()
    }

    fn algorithm(&self) -> &'static str {
        "sarsa"
    }
}

/// Tiny deterministic PRNG so Double Q's coin flips stay reproducible
/// without threading the caller's RNG through `update`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        ((z ^ (z >> 31)) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Double Q-learning (van Hasselt): two tables, decoupled action selection
/// and evaluation.
///
/// Each update flips a fair coin: table A is updated toward
/// `r + beta * Q_B(s', argmax_a Q_A(s', a))` (or symmetrically), removing
/// the single-max overestimation bias that plain Q-learning exhibits under
/// stochastic rewards — relevant here because DPM rewards mix stochastic
/// queue/drop penalties into every slice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DoubleQLearner {
    a: QTable,
    b: QTable,
    discount: f64,
    learning_rate: LearningRate,
    exploration: Exploration,
    steps: u64,
    coin: SplitMix64,
}

impl DoubleQLearner {
    /// Creates a learner with two zero-initialized tables.
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError`] for an invalid discount or schedule.
    pub fn new(
        n_states: usize,
        n_actions: usize,
        discount: f64,
        learning_rate: LearningRate,
        exploration: Exploration,
    ) -> Result<Self, CoreError> {
        if !(discount.is_finite() && (0.0..1.0).contains(&discount)) {
            return Err(CoreError::BadDiscount(discount));
        }
        learning_rate.validate()?;
        exploration.validate()?;
        Ok(DoubleQLearner {
            a: QTable::new(n_states, n_actions),
            b: QTable::new(n_states, n_actions),
            discount,
            learning_rate,
            exploration,
            steps: 0,
            coin: SplitMix64(0x5eed_5eed_5eed_5eed),
        })
    }

    /// Mean of the two tables' values at `(s, a)` (the acting estimate).
    #[must_use]
    pub fn combined_q(&self, s: usize, a: usize) -> f64 {
        0.5 * (self.a.get(s, a) + self.b.get(s, a))
    }

    fn combined_best(&self, s: usize, legal: &[usize]) -> usize {
        assert!(!legal.is_empty(), "need at least one legal action");
        let mut best = legal[0];
        let mut best_q = self.combined_q(s, legal[0]);
        for &a in &legal[1..] {
            let q = self.combined_q(s, a);
            if q > best_q {
                best_q = q;
                best = a;
            }
        }
        best
    }
}

impl TabularLearner for DoubleQLearner {
    fn select_action(&mut self, s: usize, legal: &[usize], rng: &mut dyn Rng) -> usize {
        assert!(!legal.is_empty(), "need at least one legal action");
        let eps = self.exploration.epsilon_at(self.steps);
        if legal.len() > 1 && uniform(rng) < eps {
            legal[uniform_index(rng, legal.len())]
        } else {
            self.combined_best(s, legal)
        }
    }

    fn best_action(&self, s: usize, legal: &[usize]) -> usize {
        self.combined_best(s, legal)
    }

    fn update(&mut self, s: usize, a: usize, reward: f64, next_s: usize, next_legal: &[usize]) {
        let flip = self.coin.next_f64() < 0.5;
        let (upd, eval) = if flip {
            (&mut self.a, &self.b)
        } else {
            (&mut self.b, &self.a)
        };
        // argmax on the updated table, value from the other.
        let mut best = next_legal[0];
        let mut best_q = upd.get(next_s, next_legal[0]);
        for &cand in &next_legal[1..] {
            let q = upd.get(next_s, cand);
            if q > best_q {
                best_q = q;
                best = cand;
            }
        }
        let bootstrap = eval.get(next_s, best);
        let visits = upd.record_visit(s, a);
        let gamma = self.learning_rate.rate(self.steps, visits);
        let old = upd.get(s, a);
        let target = reward + self.discount * bootstrap;
        upd.set(s, a, (1.0 - gamma) * old + gamma * target);
        self.steps += 1;
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn reset(&mut self) {
        self.a.reset();
        self.b.reset();
        self.steps = 0;
    }

    fn memory_bytes(&self) -> usize {
        self.a.memory_bytes() + self.b.memory_bytes()
    }

    fn algorithm(&self) -> &'static str {
        "double-q"
    }
}

/// Watkins Q(lambda) with replacing eligibility traces.
///
/// Each update propagates the TD error over every recently visited
/// state-action pair, weighted by an exponentially decaying trace
/// (`beta * lambda` per slice). Per Watkins' variant, traces are cut
/// whenever the taken action was exploratory, keeping the off-policy
/// target sound. Traces are stored sparsely and culled below `1e-4`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QLambdaLearner {
    table: QTable,
    discount: f64,
    lambda: f64,
    learning_rate: LearningRate,
    exploration: Exploration,
    steps: u64,
    traces: HashMap<(usize, usize), f64>,
}

impl QLambdaLearner {
    /// Creates a learner; `lambda` in `[0, 1)` controls the trace decay
    /// (`0` reduces exactly to one-step Q-learning).
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError`] for invalid discount, lambda, or schedule.
    pub fn new(
        n_states: usize,
        n_actions: usize,
        discount: f64,
        lambda: f64,
        learning_rate: LearningRate,
        exploration: Exploration,
    ) -> Result<Self, CoreError> {
        if !(discount.is_finite() && (0.0..1.0).contains(&discount)) {
            return Err(CoreError::BadDiscount(discount));
        }
        if !(lambda.is_finite() && (0.0..1.0).contains(&lambda)) {
            return Err(CoreError::BadLearningRate(format!(
                "trace decay lambda {lambda} not in [0, 1)"
            )));
        }
        learning_rate.validate()?;
        exploration.validate()?;
        Ok(QLambdaLearner {
            table: QTable::new(n_states, n_actions),
            discount,
            lambda,
            learning_rate,
            exploration,
            steps: 0,
            traces: HashMap::new(),
        })
    }

    /// Read access to the table.
    #[must_use]
    pub fn table(&self) -> &QTable {
        &self.table
    }

    /// Number of live eligibility traces.
    #[must_use]
    pub fn n_traces(&self) -> usize {
        self.traces.len()
    }
}

impl TabularLearner for QLambdaLearner {
    fn select_action(&mut self, s: usize, legal: &[usize], rng: &mut dyn Rng) -> usize {
        assert!(!legal.is_empty(), "need at least one legal action");
        let eps = self.exploration.epsilon_at(self.steps);
        if legal.len() > 1 && uniform(rng) < eps {
            legal[uniform_index(rng, legal.len())]
        } else {
            self.table.best_action(s, legal)
        }
    }

    fn best_action(&self, s: usize, legal: &[usize]) -> usize {
        self.table.best_action(s, legal)
    }

    fn update(&mut self, s: usize, a: usize, reward: f64, next_s: usize, next_legal: &[usize]) {
        let visits = self.table.record_visit(s, a);
        let gamma = self.learning_rate.rate(self.steps, visits);
        let bootstrap = self.table.max_q(next_s, next_legal);
        let delta = reward + self.discount * bootstrap - self.table.get(s, a);

        // Replacing trace for the visited pair.
        self.traces.insert((s, a), 1.0);
        // Propagate the TD error along the trace, decay, and cull — all
        // in place, no per-update scratch allocation.
        let decay = self.discount * self.lambda;
        for (&(ts, ta), e) in self.traces.iter_mut() {
            let q = self.table.get(ts, ta);
            self.table.set(ts, ta, q + gamma * delta * *e);
            *e *= decay;
        }
        self.traces.retain(|_, e| *e >= 1e-4);
        // Watkins cut: if the action was exploratory (not greedy in s),
        // the off-policy backup chain is broken — drop all traces. Greedy
        // w.r.t. the full action set (lowest-index tie-break, matching
        // `QTable::best_action`); legality is the caller's concern and
        // exploratory moves are rare.
        let row = self.table.row(s);
        let mut greedy = 0;
        for (cand, &q) in row.iter().enumerate().skip(1) {
            if q > row[greedy] {
                greedy = cand;
            }
        }
        if a != greedy {
            self.traces.clear();
        }
        self.steps += 1;
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn reset(&mut self) {
        self.table.reset();
        self.traces.clear();
        self.steps = 0;
    }

    fn memory_bytes(&self) -> usize {
        self.table.memory_bytes() + self.traces.len() * std::mem::size_of::<((usize, usize), f64)>()
    }

    fn algorithm(&self) -> &'static str {
        "q-lambda"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Shared two-state chain: staying in state 1 pays 1, else 0; beta 0.5.
    /// Optimal Q*(1, stay) = 2 (see learner.rs for the derivation).
    fn train(learner: &mut dyn TabularLearner, steps: u64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = 0usize;
        for _ in 0..steps {
            let a = learner.select_action(s, &[0, 1], &mut rng);
            let next = if a == 0 { s } else { 1 - s };
            let reward = if s == 1 && a == 0 { 1.0 } else { 0.0 };
            learner.update(s, a, reward, next, &[0, 1]);
            s = next;
        }
    }

    #[test]
    fn sarsa_learns_the_chain() {
        let mut l = SarsaLearner::new(
            2,
            2,
            0.5,
            LearningRate::VisitDecay { omega: 0.7 },
            Exploration::EpsilonGreedy { epsilon: 0.2 },
        )
        .unwrap();
        train(&mut l, 150_000, 3);
        // On-policy values are perturbed by exploration, but the greedy
        // ranking must be right: stay in 1 beats leaving.
        assert!(l.table().get(1, 0) > l.table().get(1, 1));
        assert!(
            l.table().get(1, 0) > 1.0,
            "Q(1,stay) = {}",
            l.table().get(1, 0)
        );
        assert_eq!(l.best_action(1, &[0, 1]), 0);
        assert_eq!(l.algorithm(), "sarsa");
    }

    #[test]
    fn double_q_learns_the_chain() {
        let mut l = DoubleQLearner::new(
            2,
            2,
            0.5,
            LearningRate::VisitDecay { omega: 0.7 },
            Exploration::EpsilonGreedy { epsilon: 0.3 },
        )
        .unwrap();
        train(&mut l, 200_000, 5);
        assert!(
            (l.combined_q(1, 0) - 2.0).abs() < 0.1,
            "Q(1,0) = {}",
            l.combined_q(1, 0)
        );
        assert_eq!(l.best_action(1, &[0, 1]), 0);
        assert_eq!(l.algorithm(), "double-q");
    }

    #[test]
    fn q_lambda_learns_the_chain() {
        let mut l = QLambdaLearner::new(
            2,
            2,
            0.5,
            0.8,
            LearningRate::VisitDecay { omega: 0.7 },
            Exploration::EpsilonGreedy { epsilon: 0.3 },
        )
        .unwrap();
        train(&mut l, 200_000, 7);
        assert!(
            (l.table().get(1, 0) - 2.0).abs() < 0.15,
            "Q(1,0) = {}",
            l.table().get(1, 0)
        );
        assert_eq!(l.best_action(1, &[0, 1]), 0);
    }

    #[test]
    fn q_lambda_zero_matches_one_step_q() {
        // lambda = 0 must reduce to plain Watkins: identical tables after
        // identical experience.
        let mut ql = QLambdaLearner::new(
            3,
            2,
            0.9,
            0.0,
            LearningRate::Constant(0.2),
            Exploration::EpsilonGreedy { epsilon: 0.0 },
        )
        .unwrap();
        let mut q = QLearner::new(
            3,
            2,
            0.9,
            LearningRate::Constant(0.2),
            Exploration::EpsilonGreedy { epsilon: 0.0 },
        )
        .unwrap();
        let transitions = [
            (0usize, 1usize, 1.0f64, 1usize),
            (1, 0, -0.5, 2),
            (2, 1, 0.25, 0),
            (0, 0, 0.0, 0),
            (0, 1, 1.0, 1),
        ];
        for &(s, a, r, ns) in &transitions {
            TabularLearner::update(&mut ql, s, a, r, ns, &[0, 1]);
            TabularLearner::update(&mut q, s, a, r, ns, &[0, 1]);
        }
        for s in 0..3 {
            for a in 0..2 {
                assert!(
                    (ql.table().get(s, a) - q.table().get(s, a)).abs() < 1e-12,
                    "divergence at ({s},{a})"
                );
            }
        }
    }

    #[test]
    fn q_lambda_traces_accumulate_and_cull() {
        let mut l = QLambdaLearner::new(
            4,
            2,
            0.9,
            0.9,
            LearningRate::Constant(0.1),
            Exploration::EpsilonGreedy { epsilon: 0.0 },
        )
        .unwrap();
        // Greedy chain of updates (all actions greedy since table is 0 and
        // tie-break picks action 0).
        TabularLearner::update(&mut l, 0, 0, 0.0, 1, &[0, 1]);
        TabularLearner::update(&mut l, 1, 0, 0.0, 2, &[0, 1]);
        TabularLearner::update(&mut l, 2, 0, 1.0, 3, &[0, 1]);
        assert!(l.n_traces() >= 3, "traces {}", l.n_traces());
        // The reward at (2,0) should have propagated back to (0,0).
        assert!(l.table().get(0, 0) > 0.0, "trace propagation failed");
        assert!(l.table().get(1, 0) > l.table().get(0, 0));
    }

    #[test]
    fn q_lambda_validates_lambda() {
        assert!(QLambdaLearner::new(
            2,
            2,
            0.9,
            1.0,
            LearningRate::default(),
            Exploration::default()
        )
        .is_err());
        assert!(QLambdaLearner::new(
            2,
            2,
            0.9,
            -0.1,
            LearningRate::default(),
            Exploration::default()
        )
        .is_err());
    }

    #[test]
    fn double_q_is_deterministic_given_seeds() {
        let mk = || {
            DoubleQLearner::new(
                2,
                2,
                0.5,
                LearningRate::Constant(0.2),
                Exploration::EpsilonGreedy { epsilon: 0.1 },
            )
            .unwrap()
        };
        let mut l1 = mk();
        let mut l2 = mk();
        train(&mut l1, 10_000, 9);
        train(&mut l2, 10_000, 9);
        assert_eq!(l1.combined_q(1, 0), l2.combined_q(1, 0));
    }

    #[test]
    fn memory_accounting_scales() {
        let q = QLearner::new(10, 3, 0.9, LearningRate::default(), Exploration::default()).unwrap();
        let d = DoubleQLearner::new(10, 3, 0.9, LearningRate::default(), Exploration::default())
            .unwrap();
        assert_eq!(d.memory_bytes(), 2 * TabularLearner::memory_bytes(&q));
    }

    #[test]
    fn sarsa_defers_and_flushes_updates() {
        let mut l = SarsaLearner::new(
            2,
            2,
            0.5,
            LearningRate::Constant(0.5),
            Exploration::EpsilonGreedy { epsilon: 0.0 },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        // update() alone defers...
        TabularLearner::update(&mut l, 0, 0, 1.0, 1, &[0, 1]);
        assert_eq!(l.steps(), 0);
        // ...the next select in the continuation state completes it.
        let _ = l.select_action(1, &[0, 1], &mut rng);
        assert_eq!(l.steps(), 1);
        assert!(l.table().get(0, 0) > 0.0);
    }
}
