//! Ahead-of-time fault planning and failure-aware retry.
//!
//! The failure domain must obey the same determinism contract as the
//! arrival stream: a fault-injected run is **bit-exact** across engine
//! modes (per-slice vs event-skipping) and across thread counts. Both
//! properties fall out of the same trick the workload split uses — plan
//! everything *ahead of* simulation from seeded, per-device SplitMix64
//! streams, so no fault decision ever reads simulation state or thread
//! timing:
//!
//! * a [`FaultInjector`] is the sampler spec (per-slice crash / fail-stop /
//!   straggle probabilities and the shape of each fault);
//! * [`FaultInjector::plan`] materializes a [`FaultPlan`] — one sorted
//!   `Vec<FaultEvent>` per device over a fixed horizon. The per-device
//!   stream is indexed by `(device, slice)`, so skipping busy slices never
//!   shifts any other device's draws;
//! * a [`RetryQueue`] holds arrivals harvested off a crashed device and
//!   re-dispatches them after a deterministic slice-count backoff, with a
//!   bounded attempt budget; exhaustion sheds with a typed
//!   [`ShedReason`].
//!
//! [`FaultKind`], [`FaultEvent`] and the device-side [`FaultState`](qdpm_device::FaultState)
//! live in `qdpm-device`; this module re-exports the planning-relevant
//! types so fleet code can name them from one place.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

pub use qdpm_device::{FaultEvent, FaultKind};

use qdpm_core::rng_util::splitmix64;
use qdpm_core::state_io::{StateError, StateReader, StateWriter};

use crate::{Step, WorkloadError};

/// Why an arrival was shed (dropped by the coordination layer rather than
/// at a device queue's admission control).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedReason {
    /// A rack power budget left no device able to absorb the arrival.
    PowerBudget,
    /// Every device in the fleet was down.
    NoHealthyDevice,
    /// A stranded arrival exhausted its retry budget.
    RetryBudgetExhausted,
}

impl ShedReason {
    /// Short display name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ShedReason::PowerBudget => "power-budget",
            ShedReason::NoHealthyDevice => "no-healthy-device",
            ShedReason::RetryBudgetExhausted => "retry-budget-exhausted",
        }
    }
}

/// Seeded sampler spec for ahead-of-time fault planning.
///
/// All rates are per-slice probabilities in `[0, 1]`; their sum must not
/// exceed 1 (each candidate slice draws one uniform and compares it against
/// cumulative thresholds: crash, then fail-stop, then straggle). A device
/// with an active fault draws no new fault until the window expires, and a
/// fail-stop ends its schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultInjector {
    /// Per-slice probability of a transient crash.
    pub crash_rate: f64,
    /// Downtime of a transient crash, in slices (clamped to at least 1).
    pub crash_down: u64,
    /// Per-slice probability of a permanent fail-stop.
    pub fail_stop_rate: f64,
    /// Per-slice probability of a straggler window opening.
    pub straggle_rate: f64,
    /// Straggler service-opportunity divisor (clamped to at least 1).
    pub straggle_slowdown: u64,
    /// Straggler window length, in slices.
    pub straggle_window: u64,
    /// Energy a down device draws per slice.
    pub down_power: f64,
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector {
            crash_rate: 0.0,
            crash_down: 250,
            fail_stop_rate: 0.0,
            straggle_rate: 0.0,
            straggle_slowdown: 4,
            straggle_window: 500,
            down_power: 0.0,
        }
    }
}

impl FaultInjector {
    /// Validates the rates and shapes.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidProbability`] when any rate is not a
    /// probability, and [`WorkloadError::InvalidFaultSpec`] when the rates
    /// sum past 1 or the down power is non-finite or negative.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        for (what, rate) in [
            ("crash rate", self.crash_rate),
            ("fail-stop rate", self.fail_stop_rate),
            ("straggle rate", self.straggle_rate),
        ] {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(WorkloadError::InvalidProbability { what, value: rate });
            }
        }
        let total = self.crash_rate + self.fail_stop_rate + self.straggle_rate;
        if total > 1.0 {
            return Err(WorkloadError::InvalidFaultSpec(format!(
                "fault rates sum to {total}, past 1"
            )));
        }
        if !self.down_power.is_finite() || self.down_power < 0.0 {
            return Err(WorkloadError::InvalidFaultSpec(format!(
                "down power {} must be finite and non-negative",
                self.down_power
            )));
        }
        Ok(())
    }

    /// Whether this spec can ever produce a fault.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.crash_rate > 0.0 || self.fail_stop_rate > 0.0 || self.straggle_rate > 0.0
    }

    /// Materializes the fault schedule for `n_devices` devices over
    /// `horizon` slices.
    ///
    /// Device `i`'s stream is salted with `splitmix64(seed, i)` (the
    /// `derive_cell_seed` idiom) and indexed by absolute slice, so the plan
    /// is independent of engine mode, thread count, and every other
    /// device's faults. Onsets start at slice 1 — slice 0 is the
    /// conventional "fleet starts healthy" boundary.
    #[must_use]
    pub fn plan(&self, n_devices: usize, horizon: u64, seed: u64) -> FaultPlan {
        let crash_t = self.crash_rate;
        let stop_t = crash_t + self.fail_stop_rate;
        let straggle_t = stop_t + self.straggle_rate;
        let mut per_device = Vec::with_capacity(n_devices);
        for device in 0..n_devices {
            let device_seed = splitmix64(seed, device as u64);
            let mut events = Vec::new();
            if self.is_active() {
                let mut busy_until = 0u64;
                for at in 1..horizon {
                    if at < busy_until {
                        continue;
                    }
                    let word = splitmix64(device_seed, at);
                    let u = (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    if u < crash_t {
                        let down_for = self.crash_down.max(1);
                        events.push(FaultEvent {
                            at,
                            kind: FaultKind::TransientCrash {
                                down_for,
                                down_power: self.down_power,
                            },
                        });
                        busy_until = at.saturating_add(down_for);
                    } else if u < stop_t {
                        events.push(FaultEvent {
                            at,
                            kind: FaultKind::FailStop {
                                down_power: self.down_power,
                            },
                        });
                        break;
                    } else if u < straggle_t {
                        events.push(FaultEvent {
                            at,
                            kind: FaultKind::Straggler {
                                slowdown: self.straggle_slowdown.max(1),
                                window: self.straggle_window,
                            },
                        });
                        busy_until = at.saturating_add(self.straggle_window);
                    }
                }
            }
            per_device.push(events);
        }
        FaultPlan { per_device }
    }
}

/// A materialized fault schedule: per-device, slice-sorted fault events.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    per_device: Vec<Vec<FaultEvent>>,
}

impl FaultPlan {
    /// An empty plan for `n_devices` devices (no faults anywhere).
    #[must_use]
    pub fn empty(n_devices: usize) -> Self {
        FaultPlan {
            per_device: vec![Vec::new(); n_devices],
        }
    }

    /// Number of devices planned for.
    #[must_use]
    pub fn n_devices(&self) -> usize {
        self.per_device.len()
    }

    /// Device `i`'s schedule, slice-sorted.
    #[must_use]
    pub fn device(&self, i: usize) -> &[FaultEvent] {
        &self.per_device[i]
    }

    /// Consumes the plan into its per-device schedules.
    #[must_use]
    pub fn into_schedules(self) -> Vec<Vec<FaultEvent>> {
        self.per_device
    }

    /// Whether any device has any fault scheduled.
    #[must_use]
    pub fn any(&self) -> bool {
        self.per_device.iter().any(|d| !d.is_empty())
    }

    /// Total scheduled fault events across the fleet.
    #[must_use]
    pub fn total_events(&self) -> usize {
        self.per_device.iter().map(Vec::len).sum()
    }
}

/// One batch of stranded arrivals awaiting re-dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryJob {
    /// How many arrivals this batch carries (all stranded together on the
    /// same device at the same slice).
    pub jobs: u32,
    /// Redispatch attempts already consumed.
    pub attempt: u32,
    /// First slice at which the batch may be re-dispatched.
    pub ready_at: Step,
}

/// Bounded-budget retry of arrivals stranded on a failed device, with
/// deterministic slice-count backoff.
///
/// Each harvested batch waits `backoff_base` slices before its first
/// re-dispatch attempt, and `backoff_base << attempt` before each
/// subsequent one; after `budget` failed attempts the batch is shed with
/// [`ShedReason::RetryBudgetExhausted`]. All waits are slice counts derived
/// from configuration — no randomness, no wall-clock — so retry timing is
/// bit-exact across engine modes and thread counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryQueue {
    jobs: VecDeque<RetryJob>,
    budget: u32,
    backoff_base: u64,
    enqueued: u64,
    redispatched: u64,
    dropped: u64,
}

impl RetryQueue {
    /// Creates a retry queue allowing `budget` re-dispatch attempts per
    /// batch with a base backoff of `backoff_base` slices (both clamped to
    /// at least 1).
    #[must_use]
    pub fn new(budget: u32, backoff_base: u64) -> Self {
        RetryQueue {
            jobs: VecDeque::new(),
            budget: budget.max(1),
            backoff_base: backoff_base.max(1),
            enqueued: 0,
            redispatched: 0,
            dropped: 0,
        }
    }

    /// Enqueues `count` arrivals stranded at slice `now`; they become
    /// eligible for re-dispatch after the base backoff.
    pub fn push(&mut self, count: u32, now: Step) {
        if count == 0 {
            return;
        }
        self.enqueued += u64::from(count);
        self.jobs.push_back(RetryJob {
            jobs: count,
            attempt: 0,
            ready_at: now.saturating_add(self.backoff_base),
        });
    }

    /// Removes and returns the first batch eligible at slice `now`, in
    /// queue order.
    pub fn pop_ready(&mut self, now: Step) -> Option<RetryJob> {
        let idx = self.jobs.iter().position(|j| j.ready_at <= now)?;
        self.jobs.remove(idx)
    }

    /// Records a successful re-dispatch of `job`.
    pub fn mark_redispatched(&mut self, job: &RetryJob) {
        self.redispatched += u64::from(job.jobs);
    }

    /// A popped batch found no healthy target: consumes one attempt and
    /// either re-queues it with doubled backoff (returns `true`) or sheds
    /// it when the budget is exhausted (returns `false`, counting the
    /// drop).
    pub fn requeue(&mut self, mut job: RetryJob, now: Step) -> bool {
        job.attempt += 1;
        if job.attempt >= self.budget {
            self.dropped += u64::from(job.jobs);
            return false;
        }
        let backoff = self
            .backoff_base
            .saturating_mul(1u64.checked_shl(job.attempt).unwrap_or(u64::MAX).max(1));
        job.ready_at = now.saturating_add(backoff);
        self.jobs.push_back(job);
        true
    }

    /// Earliest slice at which any queued batch becomes eligible.
    #[must_use]
    pub fn next_ready(&self) -> Option<Step> {
        self.jobs.iter().map(|j| j.ready_at).min()
    }

    /// Arrivals currently waiting for re-dispatch.
    #[must_use]
    pub fn pending(&self) -> u64 {
        self.jobs.iter().map(|j| u64::from(j.jobs)).sum()
    }

    /// Lifetime arrivals pushed into the retry queue.
    #[must_use]
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Lifetime arrivals successfully re-dispatched.
    #[must_use]
    pub fn redispatched(&self) -> u64 {
        self.redispatched
    }

    /// Lifetime arrivals shed after exhausting the retry budget.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Serializes the queue contents and counters (configuration —
    /// budget and backoff — is rebuilt from config, not checkpointed).
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_usize(self.jobs.len());
        for job in &self.jobs {
            w.put_u32(job.jobs);
            w.put_u32(job.attempt);
            w.put_u64(job.ready_at);
        }
        w.put_u64(self.enqueued);
        w.put_u64(self.redispatched);
        w.put_u64(self.dropped);
    }

    /// Restores queue contents and counters saved by
    /// [`RetryQueue::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] on truncated or malformed payloads.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let len = r.get_usize()?;
        let mut jobs = VecDeque::with_capacity(len);
        for _ in 0..len {
            let count = r.get_u32()?;
            let attempt = r.get_u32()?;
            let ready_at = r.get_u64()?;
            jobs.push_back(RetryJob {
                jobs: count,
                attempt,
                ready_at,
            });
        }
        self.jobs = jobs;
        self.enqueued = r.get_u64()?;
        self.redispatched = r.get_u64()?;
        self.dropped = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crashy() -> FaultInjector {
        FaultInjector {
            crash_rate: 0.001,
            crash_down: 50,
            fail_stop_rate: 0.0002,
            straggle_rate: 0.002,
            straggle_slowdown: 3,
            straggle_window: 100,
            down_power: 0.05,
        }
    }

    #[test]
    fn plan_is_deterministic_and_per_device_independent() {
        let spec = crashy();
        let a = spec.plan(8, 20_000, 77);
        let b = spec.plan(8, 20_000, 77);
        assert_eq!(a, b, "same seed, same plan");
        // Growing the fleet does not disturb existing devices' streams.
        let wider = spec.plan(12, 20_000, 77);
        for i in 0..8 {
            assert_eq!(a.device(i), wider.device(i), "device {i} stream shifted");
        }
        // A different seed produces a different plan somewhere.
        let c = spec.plan(8, 20_000, 78);
        assert_ne!(a, c);
    }

    #[test]
    fn plan_respects_windows_and_fail_stop_finality() {
        let plan = crashy().plan(16, 100_000, 1234);
        assert!(plan.any(), "rates this high must fire somewhere");
        for i in 0..plan.n_devices() {
            let events = plan.device(i);
            let mut busy_until = 0u64;
            for (k, e) in events.iter().enumerate() {
                assert!(e.at >= 1, "onsets start at slice 1");
                assert!(e.at >= busy_until, "device {i} event {k} overlaps");
                match e.kind {
                    FaultKind::TransientCrash { down_for, .. } => {
                        busy_until = e.at + down_for;
                    }
                    FaultKind::Straggler { window, .. } => busy_until = e.at + window,
                    FaultKind::FailStop { .. } => {
                        assert_eq!(k, events.len() - 1, "fail-stop must be terminal");
                    }
                }
            }
        }
    }

    #[test]
    fn zero_rates_plan_nothing() {
        let plan = FaultInjector::default().plan(4, 50_000, 42);
        assert!(!plan.any());
        assert_eq!(plan.total_events(), 0);
    }

    #[test]
    fn injector_validation_rejects_bad_rates() {
        let mut f = FaultInjector::default();
        assert!(f.validate().is_ok());
        f.crash_rate = 1.5;
        assert!(f.validate().is_err());
        f.crash_rate = 0.6;
        f.straggle_rate = 0.6;
        assert!(f.validate().is_err(), "rates summing past 1 are rejected");
        f.straggle_rate = 0.0;
        f.down_power = -1.0;
        assert!(f.validate().is_err());
    }

    #[test]
    fn retry_backoff_doubles_and_budget_sheds() {
        let mut q = RetryQueue::new(3, 4);
        q.push(5, 100);
        assert_eq!(q.pending(), 5);
        assert_eq!(q.next_ready(), Some(104));
        assert!(q.pop_ready(103).is_none(), "not eligible before backoff");
        let job = q.pop_ready(104).expect("eligible at ready_at");
        assert_eq!(job.jobs, 5);
        // No healthy target: requeue with doubled backoff.
        assert!(q.requeue(job, 104));
        assert_eq!(q.next_ready(), Some(104 + 8));
        let job = q.pop_ready(112).unwrap();
        assert!(q.requeue(job, 112));
        assert_eq!(q.next_ready(), Some(112 + 16));
        let job = q.pop_ready(128).unwrap();
        // Third failed attempt exhausts the budget of 3.
        assert!(!q.requeue(job, 128));
        assert_eq!(q.dropped(), 5);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn retry_queue_round_trips_through_state_io() {
        let mut q = RetryQueue::new(5, 2);
        q.push(3, 10);
        q.push(1, 12);
        let job = q.pop_ready(12).unwrap();
        q.mark_redispatched(&job);
        let mut w = StateWriter::new();
        q.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = RetryQueue::new(5, 2);
        restored.load_state(&mut StateReader::new(&bytes)).unwrap();
        assert_eq!(q, restored);
        assert_eq!(restored.redispatched(), 3);
    }
}
