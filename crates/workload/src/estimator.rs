//! Online workload estimators and change detection.
//!
//! These are the components of the *model-based* adaptive DPM pipeline that
//! the paper argues Q-DPM makes unnecessary: "existing methods need to detect
//! parameter change, perform [estimation], and then perform time consuming
//! policy optimization". The model-based baseline in `qdpm-sim` is assembled
//! from a [`RateEstimator`] (sliding-window ML estimate of the Bernoulli
//! arrival probability), and a [`PageHinkley`] mode-switch detector; its
//! costs are exactly the overheads Fig. 2 and benches T1/T3 quantify.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// Sliding-window maximum-likelihood estimator of a per-slice arrival rate.
///
/// Keeps the last `window` slices of arrival indicators; the estimate is the
/// window mean (the ML estimator of a Bernoulli parameter). The window length
/// trades estimation noise against tracking lag — the tension the paper's
/// introduction describes for model-based methods.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateEstimator {
    window: usize,
    buf: VecDeque<u32>,
    sum: u64,
}

impl RateEstimator {
    /// Creates an estimator over the last `window` slices (at least 1).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    #[must_use]
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be at least 1");
        RateEstimator {
            window,
            buf: VecDeque::with_capacity(window),
            sum: 0,
        }
    }

    /// Feeds one slice's arrival count.
    pub fn observe(&mut self, arrivals: u32) {
        if self.buf.len() == self.window {
            let old = self.buf.pop_front().expect("non-empty at capacity");
            self.sum -= u64::from(old);
        }
        self.buf.push_back(arrivals);
        self.sum += u64::from(arrivals);
    }

    /// Current rate estimate (window mean); 0 before any observation.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        if self.buf.is_empty() {
            0.0
        } else {
            self.sum as f64 / self.buf.len() as f64
        }
    }

    /// Number of slices currently in the window.
    #[must_use]
    pub fn fill(&self) -> usize {
        self.buf.len()
    }

    /// Whether the window has filled once (estimates are full-precision).
    #[must_use]
    pub fn warmed_up(&self) -> bool {
        self.buf.len() == self.window
    }

    /// Clears all state.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.sum = 0;
    }

    /// Approximate heap footprint, for the memory-comparison table (T2).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.window * std::mem::size_of::<u32>() + std::mem::size_of::<Self>()
    }
}

/// Exponentially-weighted moving-average rate estimator: cheaper than a
/// window but with an equivalent lag/variance trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EwmaRateEstimator {
    alpha: f64,
    value: f64,
    seen: bool,
}

impl EwmaRateEstimator {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is out of `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1]"
        );
        EwmaRateEstimator {
            alpha,
            value: 0.0,
            seen: false,
        }
    }

    /// Feeds one slice's arrival count.
    pub fn observe(&mut self, arrivals: u32) {
        let x = f64::from(arrivals);
        if self.seen {
            self.value += self.alpha * (x - self.value);
        } else {
            self.value = x;
            self.seen = true;
        }
    }

    /// Current estimate; 0 before any observation.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        self.value
    }

    /// Clears all state.
    pub fn reset(&mut self) {
        self.value = 0.0;
        self.seen = false;
    }
}

/// Page–Hinkley change detector over a Bernoulli-ish stream.
///
/// Tracks the cumulative deviation of observations from their running mean
/// and signals a change when the deviation drifts more than `threshold` from
/// its running extremum. `delta` desensitizes the test to noise. This is the
/// "mode-switch controller" role in the model-based pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PageHinkley {
    delta: f64,
    threshold: f64,
    count: u64,
    mean: f64,
    cum_up: f64,
    min_up: f64,
    cum_down: f64,
    max_down: f64,
}

impl PageHinkley {
    /// Creates a detector. `delta` is the tolerated drift per observation,
    /// `threshold` the alarm level on the cumulative statistic.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is negative or non-finite.
    #[must_use]
    pub fn new(delta: f64, threshold: f64) -> Self {
        assert!(delta.is_finite() && delta >= 0.0, "delta must be >= 0");
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "threshold must be > 0"
        );
        PageHinkley {
            delta,
            threshold,
            count: 0,
            mean: 0.0,
            cum_up: 0.0,
            min_up: 0.0,
            cum_down: 0.0,
            max_down: 0.0,
        }
    }

    /// Feeds one observation; returns `true` when a change is detected, at
    /// which point the detector resets itself for the next epoch.
    pub fn observe(&mut self, x: f64) -> bool {
        self.count += 1;
        self.mean += (x - self.mean) / self.count as f64;
        // Upward test: x rising above the historical mean.
        self.cum_up += x - self.mean - self.delta;
        self.min_up = self.min_up.min(self.cum_up);
        // Downward test: x falling below the historical mean.
        self.cum_down += x - self.mean + self.delta;
        self.max_down = self.max_down.max(self.cum_down);

        let alarm = (self.cum_up - self.min_up) > self.threshold
            || (self.max_down - self.cum_down) > self.threshold;
        if alarm {
            self.reset();
        }
        alarm
    }

    /// Number of observations since the last reset/alarm.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.count
    }

    /// Clears all state (also happens automatically on alarm).
    pub fn reset(&mut self) {
        self.count = 0;
        self.mean = 0.0;
        self.cum_up = 0.0;
        self.min_up = 0.0;
        self.cum_down = 0.0;
        self.max_down = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_estimator_tracks_mean() {
        let mut est = RateEstimator::new(4);
        assert_eq!(est.estimate(), 0.0);
        for &a in &[1, 0, 1, 0] {
            est.observe(a);
        }
        assert!(est.warmed_up());
        assert!((est.estimate() - 0.5).abs() < 1e-12);
        // Slide: push four 1s; estimate becomes 1.
        for _ in 0..4 {
            est.observe(1);
        }
        assert!((est.estimate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn window_partial_fill_uses_actual_count() {
        let mut est = RateEstimator::new(10);
        est.observe(1);
        est.observe(1);
        assert!((est.estimate() - 1.0).abs() < 1e-12);
        assert_eq!(est.fill(), 2);
        assert!(!est.warmed_up());
    }

    #[test]
    #[should_panic(expected = "window must be at least 1")]
    fn window_zero_panics() {
        let _ = RateEstimator::new(0);
    }

    #[test]
    fn window_reset() {
        let mut est = RateEstimator::new(3);
        est.observe(1);
        est.reset();
        assert_eq!(est.estimate(), 0.0);
        assert_eq!(est.fill(), 0);
    }

    #[test]
    fn ewma_converges_geometrically() {
        let mut est = EwmaRateEstimator::new(0.5);
        est.observe(1);
        assert_eq!(est.estimate(), 1.0);
        est.observe(0);
        assert!((est.estimate() - 0.5).abs() < 1e-12);
        est.observe(0);
        assert!((est.estimate() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn ewma_rejects_bad_alpha() {
        let _ = EwmaRateEstimator::new(0.0);
    }

    #[test]
    fn page_hinkley_flags_rate_jump() {
        let mut ph = PageHinkley::new(0.005, 5.0);
        // Stable low-rate phase: no alarms.
        let mut alarms = 0;
        for i in 0..500 {
            if ph.observe(f64::from(u8::from(i % 20 == 0))) {
                alarms += 1;
            }
        }
        assert_eq!(alarms, 0, "false alarm during stationary phase");
        // Jump to high rate: alarm within a few hundred slices.
        let mut detected_after = None;
        for i in 0..400 {
            if ph.observe(f64::from(u8::from(i % 2 == 0))) {
                detected_after = Some(i);
                break;
            }
        }
        let lag = detected_after.expect("change never detected");
        assert!(lag < 100, "detection lag {lag} too large");
    }

    #[test]
    fn page_hinkley_detects_rate_drop() {
        let mut ph = PageHinkley::new(0.005, 5.0);
        for i in 0..500 {
            assert!(!ph.observe(f64::from(u8::from(i % 2 == 0))));
        }
        let mut detected = false;
        for _ in 0..400 {
            if ph.observe(0.0) {
                detected = true;
                break;
            }
        }
        assert!(detected, "drop never detected");
    }

    #[test]
    fn page_hinkley_resets_after_alarm() {
        let mut ph = PageHinkley::new(0.0, 0.5);
        for _ in 0..10 {
            ph.observe(0.0);
        }
        let mut fired = false;
        for _ in 0..50 {
            if ph.observe(1.0) {
                fired = true;
                break;
            }
        }
        assert!(fired);
        assert_eq!(ph.observations(), 0);
    }
}
