//! Continuously drifting workloads.
//!
//! The paper's motivation goes beyond step changes: "in most real world
//! systems parameters are undertaking continuous varying, and the varying
//! behavior needs to be rapidly tracked". These generators never settle:
//! a [`SinusoidalRate`] sweeps the arrival probability smoothly (diurnal
//! load), a [`RandomWalkRate`] wanders it stochastically. Against them the
//! model-based pipeline's detect→estimate→re-solve loop is permanently
//! behind, which is experiment F5 of the reproduction.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::generators::uniform;
use crate::{RequestGenerator, Step, WorkloadError};

/// Bernoulli arrivals whose rate follows a sinusoid:
/// `p(t) = base + amplitude * sin(2*pi*t / period)`, clamped to `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SinusoidalRate {
    base: f64,
    amplitude: f64,
    period: Step,
    t: Step,
}

impl SinusoidalRate {
    /// Creates the generator. `base` must lie in `[0, 1]`, `amplitude`
    /// must be non-negative, and `period` positive. The instantaneous rate
    /// is clamped, so `base ± amplitude` may exceed the unit interval.
    ///
    /// # Errors
    ///
    /// Returns a [`WorkloadError`] on out-of-range parameters.
    pub fn new(base: f64, amplitude: f64, period: Step) -> Result<Self, WorkloadError> {
        if !(base.is_finite() && (0.0..=1.0).contains(&base)) {
            return Err(WorkloadError::InvalidProbability {
                what: "base rate",
                value: base,
            });
        }
        if !(amplitude.is_finite() && amplitude >= 0.0) {
            return Err(WorkloadError::InvalidProbability {
                what: "amplitude",
                value: amplitude,
            });
        }
        if period == 0 {
            return Err(WorkloadError::ZeroPeriod);
        }
        Ok(SinusoidalRate {
            base,
            amplitude,
            period,
            t: 0,
        })
    }

    /// The instantaneous arrival probability at the current slice.
    #[must_use]
    pub fn current_rate(&self) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * (self.t as f64) / (self.period as f64);
        (self.base + self.amplitude * phase.sin()).clamp(0.0, 1.0)
    }
}

impl RequestGenerator for SinusoidalRate {
    fn next_arrivals(&mut self, rng: &mut dyn Rng) -> u32 {
        let p = self.current_rate();
        self.t += 1;
        u32::from(uniform(rng) < p)
    }

    fn mean_rate(&self) -> Option<f64> {
        // Exact when base +- amplitude stays inside [0, 1] (the sinusoid
        // averages out); approximate otherwise because of clamping.
        Some(self.base)
    }

    fn reset(&mut self) {
        self.t = 0;
    }
}

/// Bernoulli arrivals whose rate performs a bounded random walk:
/// every slice the rate moves by a uniform draw in `[-step, +step]` and
/// reflects off `[min, max]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomWalkRate {
    rate: f64,
    start: f64,
    step: f64,
    min: f64,
    max: f64,
}

impl RandomWalkRate {
    /// Creates the generator with starting rate `start`, per-slice step
    /// bound `step`, and reflecting bounds `0 <= min < max <= 1`.
    ///
    /// # Errors
    ///
    /// Returns a [`WorkloadError`] on out-of-range parameters.
    pub fn new(start: f64, step: f64, min: f64, max: f64) -> Result<Self, WorkloadError> {
        if !(min.is_finite() && max.is_finite() && 0.0 <= min && min < max && max <= 1.0) {
            return Err(WorkloadError::DimensionMismatch(format!(
                "walk bounds [{min}, {max}] must satisfy 0 <= min < max <= 1"
            )));
        }
        if !(start.is_finite() && (min..=max).contains(&start)) {
            return Err(WorkloadError::InvalidProbability {
                what: "start rate",
                value: start,
            });
        }
        if !(step.is_finite() && step > 0.0 && step < max - min) {
            return Err(WorkloadError::InvalidProbability {
                what: "walk step",
                value: step,
            });
        }
        Ok(RandomWalkRate {
            rate: start,
            start,
            step,
            min,
            max,
        })
    }

    /// The instantaneous arrival probability.
    #[must_use]
    pub fn current_rate(&self) -> f64 {
        self.rate
    }
}

impl RequestGenerator for RandomWalkRate {
    fn next_arrivals(&mut self, rng: &mut dyn Rng) -> u32 {
        let arrived = u32::from(uniform(rng) < self.rate);
        // Reflecting random walk on the rate.
        let delta = (uniform(rng) * 2.0 - 1.0) * self.step;
        let mut next = self.rate + delta;
        if next > self.max {
            next = 2.0 * self.max - next;
        }
        if next < self.min {
            next = 2.0 * self.min - next;
        }
        self.rate = next.clamp(self.min, self.max);
        arrived
    }

    fn mean_rate(&self) -> Option<f64> {
        // The stationary distribution of a reflected uniform walk is
        // uniform on [min, max].
        Some(0.5 * (self.min + self.max))
    }

    fn reset(&mut self) {
        self.rate = self.start;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sinusoid_validates() {
        assert!(SinusoidalRate::new(0.5, 0.3, 100).is_ok());
        assert!(SinusoidalRate::new(1.5, 0.3, 100).is_err());
        assert!(SinusoidalRate::new(0.5, -0.1, 100).is_err());
        assert!(SinusoidalRate::new(0.5, 0.3, 0).is_err());
    }

    #[test]
    fn sinusoid_rate_oscillates() {
        let mut g = SinusoidalRate::new(0.5, 0.4, 100).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut rates = Vec::new();
        for _ in 0..100 {
            rates.push(g.current_rate());
            g.next_arrivals(&mut rng);
        }
        let max = rates.iter().cloned().fold(f64::MIN, f64::max);
        let min = rates.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 0.85, "peak {max}");
        assert!(min < 0.15, "trough {min}");
        // Quarter period peak.
        assert!(
            (rates[25] - 0.9).abs() < 0.01,
            "rate at t=25: {}",
            rates[25]
        );
    }

    #[test]
    fn sinusoid_empirical_mean_matches_base() {
        let mut g = SinusoidalRate::new(0.3, 0.2, 1000).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200_000;
        let total: u32 = (0..n).map(|_| g.next_arrivals(&mut rng)).sum();
        let rate = f64::from(total) / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn sinusoid_clamps_to_unit_interval() {
        let mut g = SinusoidalRate::new(0.9, 0.5, 40).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..80 {
            let r = g.current_rate();
            assert!((0.0..=1.0).contains(&r), "rate {r}");
            g.next_arrivals(&mut rng);
        }
    }

    #[test]
    fn walk_validates() {
        assert!(RandomWalkRate::new(0.2, 0.01, 0.0, 0.5).is_ok());
        assert!(RandomWalkRate::new(0.6, 0.01, 0.0, 0.5).is_err());
        assert!(RandomWalkRate::new(0.2, 0.0, 0.0, 0.5).is_err());
        assert!(RandomWalkRate::new(0.2, 0.6, 0.0, 0.5).is_err());
        assert!(RandomWalkRate::new(0.2, 0.01, 0.5, 0.4).is_err());
    }

    #[test]
    fn walk_stays_in_bounds() {
        let mut g = RandomWalkRate::new(0.25, 0.02, 0.05, 0.45).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50_000 {
            g.next_arrivals(&mut rng);
            let r = g.current_rate();
            assert!((0.05..=0.45).contains(&r), "rate {r} escaped bounds");
        }
    }

    #[test]
    fn walk_actually_moves() {
        let mut g = RandomWalkRate::new(0.25, 0.02, 0.05, 0.45).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for _ in 0..50_000 {
            g.next_arrivals(&mut rng);
            lo = lo.min(g.current_rate());
            hi = hi.max(g.current_rate());
        }
        assert!(hi - lo > 0.2, "walk range [{lo}, {hi}] too narrow");
    }

    #[test]
    fn reset_restores_start() {
        let mut g = RandomWalkRate::new(0.25, 0.02, 0.05, 0.45).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            g.next_arrivals(&mut rng);
        }
        g.reset();
        assert_eq!(g.current_rate(), 0.25);

        let mut s = SinusoidalRate::new(0.5, 0.4, 100).unwrap();
        for _ in 0..30 {
            s.next_arrivals(&mut rng);
        }
        s.reset();
        assert_eq!(s.current_rate(), 0.5);
    }
}
