use serde::{Deserialize, Serialize};

/// Streaming summary of a workload's interarrival structure.
///
/// Accumulates per-slice arrival indicators and reports count, mean rate,
/// and the empirical distribution of idle-gap lengths — the quantity that
/// decides whether timeout-style policies can win (long gaps) or not.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InterarrivalStats {
    slices: u64,
    arrivals: u64,
    current_gap: u64,
    gaps: Vec<u64>,
}

impl InterarrivalStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        InterarrivalStats::default()
    }

    /// Feeds one slice's arrival count.
    pub fn observe(&mut self, arrivals: u32) {
        self.slices += 1;
        if arrivals > 0 {
            self.arrivals += u64::from(arrivals);
            self.gaps.push(self.current_gap);
            self.current_gap = 0;
        } else {
            self.current_gap += 1;
        }
    }

    /// Slices observed so far.
    #[must_use]
    pub fn slices(&self) -> u64 {
        self.slices
    }

    /// Total requests observed.
    #[must_use]
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Empirical mean arrivals per slice.
    #[must_use]
    pub fn mean_rate(&self) -> f64 {
        if self.slices == 0 {
            0.0
        } else {
            self.arrivals as f64 / self.slices as f64
        }
    }

    /// Completed idle gaps (slices of silence preceding each arrival).
    #[must_use]
    pub fn gaps(&self) -> &[u64] {
        &self.gaps
    }

    /// Mean completed idle-gap length in slices.
    #[must_use]
    pub fn mean_gap(&self) -> f64 {
        if self.gaps.is_empty() {
            0.0
        } else {
            self.gaps.iter().sum::<u64>() as f64 / self.gaps.len() as f64
        }
    }

    /// The `q`-quantile (0..=1) of completed gap lengths, by nearest-rank.
    #[must_use]
    pub fn gap_quantile(&self, q: f64) -> Option<u64> {
        if self.gaps.is_empty() {
            return None;
        }
        let mut sorted = self.gaps.clone();
        sorted.sort_unstable();
        let rank = ((q.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank])
    }

    /// Fraction of completed gaps strictly longer than `threshold` slices —
    /// an upper bound on how often a timeout of that length pays off.
    #[must_use]
    pub fn fraction_gaps_above(&self, threshold: u64) -> f64 {
        if self.gaps.is_empty() {
            return 0.0;
        }
        self.gaps.iter().filter(|&&g| g > threshold).count() as f64 / self.gaps.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(pattern: &[u32]) -> InterarrivalStats {
        let mut s = InterarrivalStats::new();
        for &a in pattern {
            s.observe(a);
        }
        s
    }

    #[test]
    fn counts_and_rate() {
        let s = feed(&[0, 0, 1, 0, 1, 1, 0, 0, 0, 1]);
        assert_eq!(s.slices(), 10);
        assert_eq!(s.arrivals(), 4);
        assert!((s.mean_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn gap_accounting() {
        // Arrivals at indices 2, 4, 5, 9: gaps 2, 1, 0, 3.
        let s = feed(&[0, 0, 1, 0, 1, 1, 0, 0, 0, 1]);
        assert_eq!(s.gaps(), &[2, 1, 0, 3]);
        assert!((s.mean_gap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let s = feed(&[0, 0, 1, 0, 1, 1, 0, 0, 0, 1]);
        assert_eq!(s.gap_quantile(0.0), Some(0));
        assert_eq!(s.gap_quantile(1.0), Some(3));
        // sorted gaps 0,1,2,3 -> rank round(0.5 * 3) = 2 -> value 2.
        assert_eq!(s.gap_quantile(0.5), Some(2));
    }

    #[test]
    fn quantile_empty_is_none() {
        let s = InterarrivalStats::new();
        assert_eq!(s.gap_quantile(0.5), None);
        assert_eq!(s.mean_gap(), 0.0);
        assert_eq!(s.mean_rate(), 0.0);
    }

    #[test]
    fn fraction_above_threshold() {
        let s = feed(&[0, 0, 1, 0, 1, 1, 0, 0, 0, 1]);
        // gaps 2,1,0,3: above 1 -> {2,3} = 0.5.
        assert!((s.fraction_gaps_above(1) - 0.5).abs() < 1e-12);
        assert_eq!(s.fraction_gaps_above(10), 0.0);
    }
}
