//! Synthetic and trace-driven request workloads for the Q-DPM reproduction.
//!
//! The Q-DPM paper drives its simulations with "synthetic input", stationary
//! for Fig. 1 and piecewise-stationary ("temporarily stationary synthetic
//! input" with marked switching points) for Fig. 2. This crate implements the
//! *Service Requester* (SR) side of the DPM system model:
//!
//! * [`RequestGenerator`] — the per-slice arrival sampling contract;
//! * stationary generators: [`BernoulliArrivals`], [`MmppArrivals`]
//!   (Markov-modulated), [`OnOffArrivals`] (bursty), [`ParetoArrivals`]
//!   (heavy-tailed interarrivals), [`PeriodicArrivals`];
//! * [`TraceReplay`] and [`TraceRecorder`] for deterministic replay;
//! * [`PiecewiseStationary`] — segments of stationary workloads with explicit
//!   switch points (the Fig. 2 driver);
//! * [`WorkloadDispatcher`] / [`SparseTrace`] / [`DeviceSnapshot`] —
//!   fleet-scale dispatch: one aggregate stream strictly partitioned across
//!   N devices, either precomputed as sparse per-device traces (state-blind
//!   round-robin, least-loaded, hash-sharded) or routed online against live
//!   device snapshots (join-shortest-queue, sleep-aware);
//! * [`WorkloadSpec`] — a serde-serializable description that both builds a
//!   generator and, when the workload is Markovian, exports the exact
//!   [`MarkovArrivalModel`] consumed by the model-based optimal baseline;
//! * [`DeadlineSpec`] / [`DeadlineStats`] — deadline-tagged requests: each
//!   arrival draws a relative deadline (deterministically, outside the
//!   simulation RNG streams) and the ledger classifies every tagged
//!   request as met, missed, dropped, requeued, or lost;
//! * online estimators ([`RateEstimator`], [`EwmaRateEstimator`]) and a
//!   change detector ([`PageHinkley`]) used by the model-based adaptive
//!   pipeline that Q-DPM is compared against.
//!
//! # Example
//!
//! ```
//! use qdpm_workload::{RequestGenerator, WorkloadSpec};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut gen = WorkloadSpec::bernoulli(0.2).unwrap().build();
//! let arrivals: u32 = (0..1000).map(|_| gen.next_arrivals(&mut rng)).sum();
//! assert!(arrivals > 120 && arrivals < 280); // ~200 expected
//! ```

mod deadline;
mod dispatch;
mod drift;
mod error;
mod estimator;
pub mod fault;
mod generators;
mod markov;
mod piecewise;
mod spec;
mod stats;
mod trace;

use rand::Rng;

pub use deadline::{DeadlineSpec, DeadlineStats};
pub use dispatch::{
    CohortArrivals, DeviceSnapshot, DispatchPolicy, GroupedSplit, SparseTrace, WorkloadDispatcher,
};
pub use drift::{RandomWalkRate, SinusoidalRate};
pub use error::WorkloadError;
pub use estimator::{EwmaRateEstimator, PageHinkley, RateEstimator};
pub use fault::{
    FaultEvent, FaultInjector, FaultKind, FaultPlan, RetryJob, RetryQueue, ShedReason,
};
pub use generators::{
    BernoulliArrivals, MmppArrivals, OnOffArrivals, ParetoArrivals, PeriodicArrivals,
};
pub use markov::MarkovArrivalModel;
pub use piecewise::{PiecewiseStationary, Segment};
pub use spec::{MmppMode, WorkloadSpec};
pub use stats::InterarrivalStats;
pub use trace::{TraceRecorder, TraceReplay};

/// Discrete simulation time, measured in slices since the start of a run.
pub type Step = u64;

/// Result of fast-forwarding a generator across a run of request-free
/// slices (see [`RequestGenerator::next_arrival_gap`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalGap {
    /// The next `empty` slices carry no arrivals and the slice after them
    /// carries `count >= 1` arrivals; the generator advanced past all
    /// `empty + 1` slices.
    Arrival {
        /// Number of leading arrival-free slices (possibly 0).
        empty: u64,
        /// Arrivals in the slice that ends the gap (at least 1).
        count: u32,
    },
    /// No arrival within the requested window: the generator advanced
    /// exactly `advanced` arrival-free slices (`advanced <= limit`; a
    /// segmented generator may stop early at an internal boundary).
    Quiet {
        /// Arrival-free slices consumed.
        advanced: u64,
    },
}

/// Per-slice request source: the Service Requester of the DPM system model.
///
/// Implementations sample the number of arrivals for the current slice and
/// then advance their internal state (e.g. the hidden Markov mode). Sampling
/// uses an externally supplied RNG so an entire simulation can share one
/// seeded stream.
///
/// `Send` is a supertrait so boxed generators (and the simulators owning
/// them) can be moved onto the worker threads of the parallel experiment
/// runner in `qdpm-sim`.
pub trait RequestGenerator: std::fmt::Debug + Send {
    /// Samples the number of requests arriving in the current slice, then
    /// advances the generator's internal state by one slice.
    fn next_arrivals(&mut self, rng: &mut dyn Rng) -> u32;

    /// Index of the generator's current hidden mode, for white-box policies
    /// and diagnostics. Single-mode generators return 0.
    fn mode(&self) -> usize {
        0
    }

    /// Number of hidden modes (1 for memoryless generators).
    fn n_modes(&self) -> usize {
        1
    }

    /// Fast-forwards the generator to the next arrival, up to `limit`
    /// slices ahead — the primitive behind the event-skipping simulation
    /// engine (`qdpm_sim::EngineMode::EventSkip`).
    ///
    /// Semantically equivalent to calling [`RequestGenerator::next_arrivals`]
    /// until it returns a positive count or `limit` slices elapse, and the
    /// default implementation does exactly that (bit-identical RNG stream
    /// to per-slice stepping). Generators with a closed-form interarrival
    /// law override it with a direct gap draw — exact in *distribution*
    /// but using fewer RNG draws, so the stream differs from per-slice
    /// stepping (callers that require bit-identical streams must step per
    /// slice).
    ///
    /// `limit == 0` returns [`ArrivalGap::Quiet`] with nothing consumed.
    fn next_arrival_gap(&mut self, rng: &mut dyn Rng, limit: u64) -> ArrivalGap {
        for empty in 0..limit {
            let count = self.next_arrivals(rng);
            if count > 0 {
                return ArrivalGap::Arrival { empty, count };
            }
        }
        ArrivalGap::Quiet { advanced: limit }
    }

    /// Long-run mean arrivals per slice, when analytically defined.
    fn mean_rate(&self) -> Option<f64>;

    /// Checkpoint support: appends the generator's resumable position (a
    /// trace cursor, a recorded gap position) to a payload. The default
    /// writes nothing, symmetric with the default
    /// [`RequestGenerator::load_state`] — correct for generators whose
    /// entire evolution lives in the RNG stream the caller checkpoints
    /// separately.
    fn save_state(&self, w: &mut qdpm_core::StateWriter) {
        let _ = w;
    }

    /// Checkpoint support: restores a position written by
    /// [`RequestGenerator::save_state`]. Default: reads nothing.
    ///
    /// # Errors
    ///
    /// Returns a [`qdpm_core::StateError`] when the payload does not
    /// decode or the restored position is out of range.
    fn load_state(
        &mut self,
        r: &mut qdpm_core::StateReader<'_>,
    ) -> Result<(), qdpm_core::StateError> {
        let _ = r;
        Ok(())
    }

    /// Restores the generator to its initial state.
    fn reset(&mut self);
}

// The geometric gap draw shared with the learners (one inversion draw for
// "slices until the next Bernoulli success") lives with the other canonical
// samplers in `qdpm_core::rng_util`; re-exported here because it is the
// natural vocabulary of workload gap sampling.
pub use qdpm_core::rng_util::geometric_gap;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        fn assert_obj(_: &dyn RequestGenerator) {}
        let gen = BernoulliArrivals::new(0.5).unwrap();
        assert_obj(&gen);
    }
}
