use serde::{Deserialize, Serialize};

use crate::generators::{
    BernoulliArrivals, MmppArrivals, OnOffArrivals, ParetoArrivals, PeriodicArrivals,
};
use crate::{
    MarkovArrivalModel, RandomWalkRate, RequestGenerator, SinusoidalRate, TraceReplay,
    WorkloadError,
};

/// One mode of an MMPP workload spec.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MmppMode {
    /// Arrival probability while the chain is in this mode.
    pub arrival_prob: f64,
}

/// Declarative, serializable description of a stationary workload.
///
/// A spec plays two roles:
///
/// 1. [`WorkloadSpec::build`] instantiates the runtime [`RequestGenerator`]
///    that drives the simulator (the "synthetic input" of the paper);
/// 2. [`WorkloadSpec::markov_model`] exports, for Markovian specs, the exact
///    arrival model used by `qdpm-mdp` to derive the model-known optimal
///    policy — the analytic baseline of Fig. 1.
///
/// Non-Markovian specs (Pareto, periodic, trace) return `None` from
/// [`WorkloadSpec::markov_model`]; against them only model-free and
/// heuristic policies can be compared exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// Memoryless arrivals with fixed probability.
    Bernoulli {
        /// Per-slice arrival probability.
        p: f64,
    },
    /// Markov-modulated arrivals.
    Mmpp {
        /// Row-major row-stochastic mode transition matrix.
        transition: Vec<f64>,
        /// Per-mode arrival settings.
        modes: Vec<MmppMode>,
    },
    /// Bursty on/off arrivals.
    OnOff {
        /// Per-slice probability of leaving the on mode.
        p_on_to_off: f64,
        /// Per-slice probability of leaving the off mode.
        p_off_to_on: f64,
        /// Arrival probability while on.
        p_arrival_on: f64,
    },
    /// Heavy-tailed Pareto interarrival gaps.
    Pareto {
        /// Tail index (`> 1`).
        alpha: f64,
        /// Minimum gap in slices (`>= 1`).
        xm: f64,
    },
    /// Deterministic period with optional jitter.
    Periodic {
        /// Slices between arrivals.
        period: u64,
        /// Uniform jitter bound (`< period`).
        jitter: u64,
    },
    /// Replay of a recorded arrival trace (loops at the end).
    Trace {
        /// Arrival counts per slice.
        arrivals: Vec<u32>,
    },
    /// Continuously drifting rate: sinusoidal sweep (diurnal load).
    Sinusoidal {
        /// Mean arrival probability.
        base: f64,
        /// Swing around the mean (clamped into `[0, 1]`).
        amplitude: f64,
        /// Slices per full cycle.
        period: u64,
    },
    /// Continuously drifting rate: bounded reflecting random walk.
    RandomWalk {
        /// Starting arrival probability.
        start: f64,
        /// Per-slice step bound.
        step: f64,
        /// Lower reflecting bound.
        min: f64,
        /// Upper reflecting bound.
        max: f64,
    },
}

impl WorkloadSpec {
    /// Bernoulli spec with validation.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidProbability`] when `p` is out of range.
    pub fn bernoulli(p: f64) -> Result<Self, WorkloadError> {
        BernoulliArrivals::new(p)?;
        Ok(WorkloadSpec::Bernoulli { p })
    }

    /// Two-mode MMPP spec: a slow mode and a fast mode with symmetric
    /// per-slice switching probability `p_switch`.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from the underlying generator.
    pub fn two_mode_mmpp(p_slow: f64, p_fast: f64, p_switch: f64) -> Result<Self, WorkloadError> {
        let transition = vec![1.0 - p_switch, p_switch, p_switch, 1.0 - p_switch];
        MmppArrivals::new(transition.clone(), vec![p_slow, p_fast])?;
        Ok(WorkloadSpec::Mmpp {
            transition,
            modes: vec![
                MmppMode {
                    arrival_prob: p_slow,
                },
                MmppMode {
                    arrival_prob: p_fast,
                },
            ],
        })
    }

    /// Builds the runtime generator for this spec.
    ///
    /// # Panics
    ///
    /// Panics if the spec was hand-constructed with invalid parameters
    /// (specs built through the checked constructors are always valid).
    #[must_use]
    pub fn build(&self) -> Box<dyn RequestGenerator> {
        match self {
            WorkloadSpec::Bernoulli { p } => {
                Box::new(BernoulliArrivals::new(*p).expect("validated spec"))
            }
            WorkloadSpec::Mmpp { transition, modes } => Box::new(
                MmppArrivals::new(
                    transition.clone(),
                    modes.iter().map(|m| m.arrival_prob).collect(),
                )
                .expect("validated spec"),
            ),
            WorkloadSpec::OnOff {
                p_on_to_off,
                p_off_to_on,
                p_arrival_on,
            } => Box::new(
                OnOffArrivals::new(*p_on_to_off, *p_off_to_on, *p_arrival_on)
                    .expect("validated spec"),
            ),
            WorkloadSpec::Pareto { alpha, xm } => {
                Box::new(ParetoArrivals::new(*alpha, *xm).expect("validated spec"))
            }
            WorkloadSpec::Periodic { period, jitter } => {
                Box::new(PeriodicArrivals::new(*period, *jitter).expect("validated spec"))
            }
            WorkloadSpec::Trace { arrivals } => {
                Box::new(TraceReplay::new(arrivals.clone()).expect("validated spec"))
            }
            WorkloadSpec::Sinusoidal {
                base,
                amplitude,
                period,
            } => Box::new(SinusoidalRate::new(*base, *amplitude, *period).expect("validated spec")),
            WorkloadSpec::RandomWalk {
                start,
                step,
                min,
                max,
            } => Box::new(RandomWalkRate::new(*start, *step, *min, *max).expect("validated spec")),
        }
    }

    /// The exact Markov arrival model, when this workload is Markovian.
    #[must_use]
    pub fn markov_model(&self) -> Option<MarkovArrivalModel> {
        match self {
            WorkloadSpec::Bernoulli { p } => MarkovArrivalModel::bernoulli(*p).ok(),
            WorkloadSpec::Mmpp { transition, modes } => MarkovArrivalModel::new(
                transition.clone(),
                modes.iter().map(|m| m.arrival_prob).collect(),
            )
            .ok(),
            WorkloadSpec::OnOff {
                p_on_to_off,
                p_off_to_on,
                p_arrival_on,
            } => MarkovArrivalModel::new(
                vec![
                    1.0 - p_off_to_on,
                    *p_off_to_on,
                    *p_on_to_off,
                    1.0 - p_on_to_off,
                ],
                vec![0.0, *p_arrival_on],
            )
            .ok(),
            WorkloadSpec::Pareto { .. }
            | WorkloadSpec::Periodic { .. }
            | WorkloadSpec::Trace { .. }
            | WorkloadSpec::Sinusoidal { .. }
            | WorkloadSpec::RandomWalk { .. } => None,
        }
    }

    /// Long-run mean arrivals per slice, when analytically defined.
    #[must_use]
    pub fn mean_rate(&self) -> Option<f64> {
        self.build().mean_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bernoulli_spec_round_trip() {
        let spec = WorkloadSpec::bernoulli(0.25).unwrap();
        assert_eq!(spec.mean_rate(), Some(0.25));
        let model = spec.markov_model().unwrap();
        assert_eq!(model.n_modes(), 1);
        assert_eq!(model.arrival_prob[0], 0.25);
    }

    #[test]
    fn bernoulli_spec_validates() {
        assert!(WorkloadSpec::bernoulli(2.0).is_err());
    }

    #[test]
    fn two_mode_mmpp_spec() {
        let spec = WorkloadSpec::two_mode_mmpp(0.02, 0.5, 0.05).unwrap();
        let model = spec.markov_model().unwrap();
        assert_eq!(model.n_modes(), 2);
        // Symmetric switching -> stationary 50/50 -> mean (0.02+0.5)/2.
        assert!((model.mean_rate() - 0.26).abs() < 1e-9);
    }

    #[test]
    fn onoff_markov_model_matches_generator() {
        let spec = WorkloadSpec::OnOff {
            p_on_to_off: 0.1,
            p_off_to_on: 0.05,
            p_arrival_on: 0.8,
        };
        let model = spec.markov_model().unwrap();
        let gen_rate = spec.mean_rate().unwrap();
        assert!((model.mean_rate() - gen_rate).abs() < 1e-9);
    }

    #[test]
    fn non_markovian_specs_export_no_model() {
        assert!(WorkloadSpec::Pareto {
            alpha: 2.0,
            xm: 3.0
        }
        .markov_model()
        .is_none());
        assert!(WorkloadSpec::Periodic {
            period: 5,
            jitter: 0
        }
        .markov_model()
        .is_none());
        assert!(WorkloadSpec::Trace { arrivals: vec![1] }
            .markov_model()
            .is_none());
    }

    #[test]
    fn built_generator_runs() {
        let spec = WorkloadSpec::two_mode_mmpp(0.0, 1.0, 0.5).unwrap();
        let mut gen = spec.build();
        let mut rng = StdRng::seed_from_u64(3);
        let total: u32 = (0..100).map(|_| gen.next_arrivals(&mut rng)).sum();
        assert!(total > 0);
    }

    #[test]
    fn trace_spec_builds() {
        let spec = WorkloadSpec::Trace {
            arrivals: vec![1, 0, 0],
        };
        let mut gen = spec.build();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(gen.next_arrivals(&mut rng), 1);
        assert_eq!(gen.next_arrivals(&mut rng), 0);
    }
}
