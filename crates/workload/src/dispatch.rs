//! Splitting one aggregate arrival stream across a fleet of devices.
//!
//! The fleet layer in `qdpm-sim` models a service population (millions of
//! users) as a *single* aggregate [`RequestGenerator`] whose arrivals are
//! assigned to individual devices by a [`WorkloadDispatcher`]. The split is
//! a strict partition — every aggregate arrival lands on exactly one
//! device, none are invented — which the fleet conservation property tests
//! in `qdpm-sim` pin.
//!
//! Dispatch happens *ahead of* simulation: [`WorkloadDispatcher::split`]
//! materializes one [`SparseTrace`] per device over a fixed horizon, so the
//! per-device simulations stay embarrassingly parallel (no cross-device
//! coupling at run time) and deterministic (the assignment depends only on
//! the aggregate stream and the dispatch policy, never on simulation
//! scheduling).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{ArrivalGap, RequestGenerator, WorkloadError};

/// How a [`WorkloadDispatcher`] assigns each aggregate arrival to a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Arrival `i` goes to device `i mod n` (in arrival order, across
    /// slices).
    RoundRobin,
    /// Each arrival goes to the device with the smallest *nominal backlog*:
    /// the count of requests assigned to it so far minus a unit-rate drain
    /// (each device sheds at most one outstanding request per slice, the
    /// single-server queue's best case). Ties rotate fairly: among the
    /// minimal-backlog devices, the one at or after a moving cursor wins —
    /// without the rotation, any stream sparser than one arrival per slice
    /// has all backlogs pinned at zero and every arrival would land on
    /// device 0. The drain is a deterministic stand-in for the actual
    /// stochastic service process — the dispatcher never inspects live
    /// queues, so the split stays precomputable and device-independent.
    LeastLoaded,
    /// Arrival `i` goes to device `splitmix64(salt, i) mod n` — a
    /// stateless, salted shard assignment (the fleet analog of consistent
    /// hashing on a request key).
    HashSharded {
        /// Salt mixed into the per-arrival hash.
        salt: u64,
    },
}

impl DispatchPolicy {
    /// Short display name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::LeastLoaded => "least-loaded",
            DispatchPolicy::HashSharded { .. } => "hash-sharded",
        }
    }

    /// All policy kinds with default parameters, for sweep harnesses and
    /// the fleet conformance suite.
    #[must_use]
    pub fn all() -> Vec<DispatchPolicy> {
        vec![
            DispatchPolicy::RoundRobin,
            DispatchPolicy::LeastLoaded,
            DispatchPolicy::HashSharded { salt: 0 },
        ]
    }
}

// The workspace's one keyed SplitMix64 hash (shared with the parallel
// runner's per-cell seed derivation), used here for stateless shard
// hashing.
use qdpm_core::rng_util::splitmix64;

/// Assigns the arrivals of an aggregate stream to `n` devices, slice by
/// slice, under a [`DispatchPolicy`].
///
/// The dispatcher is deterministic: given the same aggregate per-slice
/// counts it produces the same assignment, independent of anything the
/// devices do. Its only state is the policy's own (round-robin cursor,
/// nominal backlogs, arrival sequence number).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadDispatcher {
    policy: DispatchPolicy,
    n_devices: usize,
    /// Next device for round-robin assignment.
    cursor: usize,
    /// Aggregate arrivals assigned so far (the hash-shard key).
    seq: u64,
    /// Nominal per-device backlog for least-loaded assignment.
    backlog: Vec<u64>,
}

impl WorkloadDispatcher {
    /// Creates a dispatcher over `n_devices` devices.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::EmptyFleet`] when `n_devices` is zero.
    pub fn new(policy: DispatchPolicy, n_devices: usize) -> Result<Self, WorkloadError> {
        if n_devices == 0 {
            return Err(WorkloadError::EmptyFleet);
        }
        Ok(WorkloadDispatcher {
            policy,
            n_devices,
            cursor: 0,
            seq: 0,
            backlog: vec![0; n_devices],
        })
    }

    /// The dispatch policy.
    #[must_use]
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// Number of devices arrivals are split across.
    #[must_use]
    pub fn n_devices(&self) -> usize {
        self.n_devices
    }

    /// Assigns one slice's `count` aggregate arrivals across the devices,
    /// writing per-device counts into `assign` (zeroed first). The sum of
    /// `assign` always equals `count` — a strict partition.
    ///
    /// # Panics
    ///
    /// Panics if `assign.len() != n_devices`.
    pub fn dispatch_slice(&mut self, count: u32, assign: &mut [u32]) {
        assert_eq!(
            assign.len(),
            self.n_devices,
            "assignment buffer must have one slot per device"
        );
        assign.fill(0);
        for _ in 0..count {
            let target = match self.policy {
                DispatchPolicy::RoundRobin => {
                    let t = self.cursor;
                    self.cursor = (self.cursor + 1) % self.n_devices;
                    t
                }
                DispatchPolicy::LeastLoaded => {
                    // Smallest backlog; ties rotate via the cursor (cyclic
                    // distance from it breaks the tie) so an all-quiet
                    // fleet spreads arrivals instead of piling device 0.
                    let n = self.n_devices;
                    let cursor = self.cursor;
                    let t = self
                        .backlog
                        .iter()
                        .enumerate()
                        .min_by_key(|&(i, &b)| (b, (i + n - cursor % n) % n))
                        .map(|(i, _)| i)
                        .expect("dispatcher has at least one device");
                    self.backlog[t] += 1;
                    self.cursor = (t + 1) % n;
                    t
                }
                DispatchPolicy::HashSharded { salt } => {
                    (splitmix64(salt, self.seq) % self.n_devices as u64) as usize
                }
            };
            self.seq += 1;
            assign[target] += 1;
        }
        if self.policy == DispatchPolicy::LeastLoaded {
            // End of slice: nominal unit-rate drain.
            for b in &mut self.backlog {
                *b = b.saturating_sub(1);
            }
        }
    }

    /// Applies the end-of-slice bookkeeping of `slices` arrival-free
    /// slices in one step (for [`DispatchPolicy::LeastLoaded`], the
    /// nominal unit-rate drain; the other policies are stateless across
    /// quiet slices). `saturating_sub` makes the bulk drain exactly equal
    /// to `slices` repeated [`WorkloadDispatcher::dispatch_slice`]`(0, ..)`
    /// calls.
    pub fn advance_quiet(&mut self, slices: u64) {
        if self.policy == DispatchPolicy::LeastLoaded && slices > 0 {
            for b in &mut self.backlog {
                *b = b.saturating_sub(slices);
            }
        }
    }

    /// Draws `slices` slices from `aggregate` and splits them into one
    /// [`SparseTrace`] per device over that horizon. The returned traces
    /// partition the aggregate stream: summed per slice they reproduce the
    /// aggregate counts exactly, and the assignment is identical to
    /// driving [`WorkloadDispatcher::dispatch_slice`] slice by slice
    /// (quiet slices drain via [`WorkloadDispatcher::advance_quiet`]).
    pub fn split(
        &mut self,
        aggregate: &mut dyn RequestGenerator,
        rng: &mut dyn Rng,
        slices: u64,
    ) -> Vec<SparseTrace> {
        let mut events: Vec<Vec<(u64, u32)>> = vec![Vec::new(); self.n_devices];
        let mut assign = vec![0u32; self.n_devices];
        let mut quiet = 0u64;
        for now in 0..slices {
            let count = aggregate.next_arrivals(rng);
            if count == 0 {
                quiet += 1;
                continue;
            }
            self.advance_quiet(quiet);
            quiet = 0;
            self.dispatch_slice(count, &mut assign);
            for (device, &c) in assign.iter().enumerate() {
                if c > 0 {
                    events[device].push((now, c));
                }
            }
        }
        self.advance_quiet(quiet);
        events
            .into_iter()
            .map(|ev| SparseTrace::new(ev, slices).expect("split emits sorted in-horizon events"))
            .collect()
    }

    /// Restores the dispatcher's initial state.
    pub fn reset(&mut self) {
        self.cursor = 0;
        self.seq = 0;
        self.backlog.fill(0);
    }
}

/// A non-looping arrival trace stored sparsely as `(slice, count)` events
/// over a fixed horizon — the per-device output of a fleet dispatch.
///
/// Beyond the horizon the trace is quiet forever (unlike [`crate::TraceReplay`],
/// which wraps around); fleet simulations run exactly the horizon, so the
/// tail is never observed. [`RequestGenerator::next_arrival_gap`] is
/// overridden with an exact, randomness-free jump to the next event, so
/// the event-skipping engine is *bit-exact* against per-slice stepping on
/// these traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseTrace {
    /// `(slice, count)` events, strictly increasing in slice, counts >= 1.
    events: Vec<(u64, u32)>,
    /// Slices the trace is defined over; events all land before it.
    horizon: u64,
    /// Next event index.
    pos: usize,
    /// Current slice.
    now: u64,
}

impl SparseTrace {
    /// Creates a sparse trace from sorted events over `horizon` slices.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::UnsortedEvents`] when slices are not
    /// strictly increasing, a count is zero, or an event lies at or beyond
    /// the horizon.
    pub fn new(events: Vec<(u64, u32)>, horizon: u64) -> Result<Self, WorkloadError> {
        let mut last: Option<u64> = None;
        for &(slice, count) in &events {
            if count == 0 || slice >= horizon || last.is_some_and(|l| slice <= l) {
                return Err(WorkloadError::UnsortedEvents { slice, count });
            }
            last = Some(slice);
        }
        Ok(SparseTrace {
            events,
            horizon,
            pos: 0,
            now: 0,
        })
    }

    /// The horizon (slices the trace is defined over).
    #[must_use]
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// The `(slice, count)` events.
    #[must_use]
    pub fn events(&self) -> &[(u64, u32)] {
        &self.events
    }

    /// Total arrivals across the horizon.
    #[must_use]
    pub fn total_arrivals(&self) -> u64 {
        self.events.iter().map(|&(_, c)| u64::from(c)).sum()
    }

    /// Expands to a dense per-slice count vector of horizon length (for
    /// consumers that need random access, e.g. the clairvoyant oracle).
    /// Costs `O(horizon)` memory — intended for test- and report-sized
    /// horizons, not million-slice fleets.
    #[must_use]
    pub fn to_dense(&self) -> Vec<u32> {
        let mut dense = vec![0u32; usize::try_from(self.horizon).expect("horizon fits usize")];
        for &(slice, count) in &self.events {
            dense[usize::try_from(slice).expect("event within horizon")] = count;
        }
        dense
    }
}

impl RequestGenerator for SparseTrace {
    fn next_arrivals(&mut self, _rng: &mut dyn Rng) -> u32 {
        let count = match self.events.get(self.pos) {
            Some(&(slice, count)) if slice == self.now => {
                self.pos += 1;
                count
            }
            _ => 0,
        };
        self.now += 1;
        count
    }

    fn next_arrival_gap(&mut self, _rng: &mut dyn Rng, limit: u64) -> ArrivalGap {
        // Exact, randomness-free: identical arrival sequence to per-slice
        // stepping, no RNG consumed either way.
        match self.events.get(self.pos) {
            Some(&(slice, count)) if slice - self.now < limit => {
                let empty = slice - self.now;
                self.now = slice + 1;
                self.pos += 1;
                ArrivalGap::Arrival { empty, count }
            }
            _ => {
                self.now += limit;
                ArrivalGap::Quiet { advanced: limit }
            }
        }
    }

    fn mean_rate(&self) -> Option<f64> {
        if self.horizon == 0 {
            return None;
        }
        Some(self.total_arrivals() as f64 / self.horizon as f64)
    }

    fn reset(&mut self) {
        self.pos = 0;
        self.now = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BernoulliArrivals, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn replayed(traces: &[SparseTrace], slices: u64) -> Vec<Vec<u32>> {
        let mut rng = StdRng::seed_from_u64(0);
        traces
            .iter()
            .map(|t| {
                let mut t = t.clone();
                (0..slices).map(|_| t.next_arrivals(&mut rng)).collect()
            })
            .collect()
    }

    #[test]
    fn zero_devices_rejected() {
        assert_eq!(
            WorkloadDispatcher::new(DispatchPolicy::RoundRobin, 0).unwrap_err(),
            WorkloadError::EmptyFleet
        );
    }

    #[test]
    fn round_robin_cycles_across_slices() {
        let mut d = WorkloadDispatcher::new(DispatchPolicy::RoundRobin, 3).unwrap();
        let mut a = vec![0u32; 3];
        d.dispatch_slice(4, &mut a);
        assert_eq!(a, vec![2, 1, 1]);
        d.dispatch_slice(2, &mut a);
        // Cursor carried over: next arrivals land on devices 1 and 2.
        assert_eq!(a, vec![0, 1, 1]);
    }

    #[test]
    fn least_loaded_prefers_emptiest_and_drains() {
        let mut d = WorkloadDispatcher::new(DispatchPolicy::LeastLoaded, 2).unwrap();
        let mut a = vec![0u32; 2];
        // Burst of 3: device 0 gets 2 (ties break low), device 1 gets 1.
        d.dispatch_slice(3, &mut a);
        assert_eq!(a, vec![2, 1]);
        // After the unit drain backlogs are [1, 0]: next arrival goes to 1.
        d.dispatch_slice(1, &mut a);
        assert_eq!(a, vec![0, 1]);
    }

    #[test]
    fn hash_sharded_is_stateless_in_position_but_keyed_by_seq() {
        let mut d = WorkloadDispatcher::new(DispatchPolicy::HashSharded { salt: 7 }, 4).unwrap();
        let mut a = vec![0u32; 4];
        d.dispatch_slice(100, &mut a);
        let first: u32 = a.iter().sum();
        assert_eq!(first, 100);
        // A different salt shards differently.
        let mut d2 = WorkloadDispatcher::new(DispatchPolicy::HashSharded { salt: 8 }, 4).unwrap();
        let mut b = vec![0u32; 4];
        d2.dispatch_slice(100, &mut b);
        assert_ne!(a, b, "salts must change the assignment");
    }

    #[test]
    fn split_partitions_the_aggregate_stream() {
        for policy in DispatchPolicy::all() {
            let slices = 500u64;
            let mut gen = BernoulliArrivals::new(0.4).unwrap();
            let mut rng = StdRng::seed_from_u64(11);
            let mut d = WorkloadDispatcher::new(policy, 3).unwrap();
            let traces = d.split(&mut gen, &mut rng, slices);

            // Re-draw the identical aggregate stream.
            let mut gen2 = BernoulliArrivals::new(0.4).unwrap();
            let mut rng2 = StdRng::seed_from_u64(11);
            let aggregate: Vec<u32> = (0..slices).map(|_| gen2.next_arrivals(&mut rng2)).collect();

            let per_device = replayed(&traces, slices);
            for (t, agg) in (0..slices as usize).map(|t| (t, aggregate[t])) {
                let sum: u32 = per_device.iter().map(|d| d[t]).sum();
                assert_eq!(sum, agg, "{}: slice {t} not partitioned", policy.name());
            }
        }
    }

    #[test]
    fn split_matches_slice_by_slice_dispatch() {
        // Bursts followed by long quiet gaps, so the least-loaded drain
        // actually has backlog to shed across the gaps.
        let pattern = vec![5u32, 0, 0, 2, 0, 0, 0, 0, 3, 0, 1, 0, 0, 0, 0, 4];
        let slices = 400u64;
        for policy in DispatchPolicy::all() {
            let mut gen = crate::TraceReplay::new(pattern.clone()).unwrap();
            let mut rng = StdRng::seed_from_u64(77);
            let mut d = WorkloadDispatcher::new(policy, 4).unwrap();
            let traces = d.split(&mut gen, &mut rng, slices);
            let via_split = replayed(&traces, slices);

            let mut gen2 = crate::TraceReplay::new(pattern.clone()).unwrap();
            let mut rng2 = StdRng::seed_from_u64(77);
            let mut d2 = WorkloadDispatcher::new(policy, 4).unwrap();
            let mut assign = vec![0u32; 4];
            let mut manual = vec![vec![0u32; slices as usize]; 4];
            for t in 0..slices as usize {
                let count = gen2.next_arrivals(&mut rng2);
                d2.dispatch_slice(count, &mut assign);
                for (device, row) in manual.iter_mut().enumerate() {
                    row[t] = assign[device];
                }
            }
            assert_eq!(via_split, manual, "{}", policy.name());
        }
    }

    #[test]
    fn advance_quiet_equals_repeated_empty_slices() {
        let mut bulk = WorkloadDispatcher::new(DispatchPolicy::LeastLoaded, 3).unwrap();
        let mut step = bulk.clone();
        let mut assign = vec![0u32; 3];
        bulk.dispatch_slice(7, &mut assign);
        step.dispatch_slice(7, &mut assign);
        bulk.advance_quiet(5);
        for _ in 0..5 {
            step.dispatch_slice(0, &mut assign);
        }
        assert_eq!(bulk, step);
    }

    #[test]
    fn sparse_trace_validates() {
        assert!(SparseTrace::new(vec![(0, 1), (5, 2)], 10).is_ok());
        assert!(SparseTrace::new(vec![(5, 1), (5, 2)], 10).is_err()); // duplicate
        assert!(SparseTrace::new(vec![(5, 1), (3, 2)], 10).is_err()); // unsorted
        assert!(SparseTrace::new(vec![(5, 0)], 10).is_err()); // zero count
        assert!(SparseTrace::new(vec![(10, 1)], 10).is_err()); // beyond horizon
        assert!(SparseTrace::new(vec![], 10).is_ok()); // all-quiet is fine
    }

    #[test]
    fn sparse_trace_replays_and_is_quiet_past_horizon() {
        let mut t = SparseTrace::new(vec![(1, 2), (3, 1)], 5).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let seq: Vec<u32> = (0..8).map(|_| t.next_arrivals(&mut rng)).collect();
        assert_eq!(seq, vec![0, 2, 0, 1, 0, 0, 0, 0]);
        t.reset();
        assert_eq!(t.next_arrivals(&mut rng), 0);
        assert_eq!(t.next_arrivals(&mut rng), 2);
    }

    #[test]
    fn sparse_trace_gap_matches_per_slice_stepping_exactly() {
        let trace = SparseTrace::new(vec![(2, 1), (3, 2), (40, 1)], 64).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        // Walk via gaps with varying limits and mirror per-slice.
        let mut via_gap = trace.clone();
        let mut via_step = trace.clone();
        let mut gap_seq = Vec::new();
        let mut consumed = 0u64;
        for limit in [1u64, 2, 5, 64, 7, 64] {
            match via_gap.next_arrival_gap(&mut rng, limit) {
                ArrivalGap::Arrival { empty, count } => {
                    gap_seq.extend(std::iter::repeat_n(0, empty as usize));
                    gap_seq.push(count);
                    consumed += empty + 1;
                }
                ArrivalGap::Quiet { advanced } => {
                    gap_seq.extend(std::iter::repeat_n(0, advanced as usize));
                    consumed += advanced;
                }
            }
        }
        let step_seq: Vec<u32> = (0..consumed)
            .map(|_| via_step.next_arrivals(&mut rng))
            .collect();
        assert_eq!(gap_seq, step_seq);
    }

    #[test]
    fn sparse_trace_mean_rate_and_dense() {
        let t = SparseTrace::new(vec![(0, 1), (7, 3)], 8).unwrap();
        assert_eq!(t.total_arrivals(), 4);
        assert!((t.mean_rate().unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(t.to_dense(), vec![1, 0, 0, 0, 0, 0, 0, 3]);
    }

    #[test]
    fn split_of_spec_built_generator_runs() {
        let mut gen = WorkloadSpec::two_mode_mmpp(0.05, 0.6, 0.01)
            .unwrap()
            .build();
        let mut rng = StdRng::seed_from_u64(5);
        let mut d = WorkloadDispatcher::new(DispatchPolicy::LeastLoaded, 8).unwrap();
        let traces = d.split(gen.as_mut(), &mut rng, 2_000);
        assert_eq!(traces.len(), 8);
        let total: u64 = traces.iter().map(SparseTrace::total_arrivals).sum();
        assert!(total > 0);
    }
}
