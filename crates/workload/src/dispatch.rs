//! Splitting one aggregate arrival stream across a fleet of devices.
//!
//! The fleet layer in `qdpm-sim` models a service population (millions of
//! users) as a *single* aggregate [`RequestGenerator`] whose arrivals are
//! assigned to individual devices by a [`WorkloadDispatcher`]. The split is
//! a strict partition — every aggregate arrival lands on exactly one
//! device, none are invented — which the fleet conservation property tests
//! in `qdpm-sim` pin.
//!
//! Dispatch comes in two flavours:
//!
//! * **state-blind** policies ([`DispatchPolicy::is_state_blind`]) route
//!   from dispatcher-internal state only, so the whole assignment can be
//!   precomputed: [`WorkloadDispatcher::split`] materializes one
//!   [`SparseTrace`] per device over a fixed horizon and the per-device
//!   simulations stay embarrassingly parallel;
//! * **state-aware** policies ([`DispatchPolicy::JoinShortestQueue`],
//!   [`DispatchPolicy::SleepAware`]) read live [`DeviceSnapshot`]s —
//!   real queue depths and power modes — through
//!   [`WorkloadDispatcher::route_slice`], so routing reacts to what the
//!   devices are actually doing. The fleet engine in `qdpm-sim` feeds
//!   snapshots refreshed at every arrival slice, which keeps the
//!   assignment deterministic (it depends only on the aggregate stream
//!   and the simulated device states, never on thread scheduling).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{ArrivalGap, RequestGenerator, WorkloadError};

/// What a state-aware dispatch policy sees of one device when routing an
/// arrival: the live queue depth and a coarse view of the power mode.
///
/// The fleet engine refreshes snapshots from the simulated devices at every
/// arrival slice; [`WorkloadDispatcher::route_slice`] then mutates them as
/// it assigns arrivals (incrementing `queue_len`, marking routed sleepers
/// `waking`) so that several arrivals in one slice spread out instead of
/// all piling onto the pre-slice minimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceSnapshot {
    /// Requests currently queued on the device.
    pub queue_len: usize,
    /// Whether the device is resident in a state that can serve requests.
    pub awake: bool,
    /// Whether the device is mid-transition *toward* a serving state (it
    /// will be able to serve soon without a fresh wake command).
    pub waking: bool,
    /// Whether the device is down (faulted): serving nothing and unable to
    /// accept a wake command. State-aware policies route around down
    /// devices whenever any healthy device exists.
    pub down: bool,
}

impl DeviceSnapshot {
    /// Whether the device can absorb work without a wake command: either
    /// serving now or already on its way up — and not down.
    #[must_use]
    pub fn available(&self) -> bool {
        !self.down && (self.awake || self.waking)
    }
}

/// How a [`WorkloadDispatcher`] assigns each aggregate arrival to a device.
///
/// The first three policies are *state-blind*: they route from
/// dispatcher-internal state only and support ahead-of-time
/// [`WorkloadDispatcher::split`]. [`DispatchPolicy::JoinShortestQueue`] and
/// [`DispatchPolicy::SleepAware`] are *state-aware*: they read live
/// [`DeviceSnapshot`]s via [`WorkloadDispatcher::route_slice`] and cannot
/// be precomputed.
///
/// # Example
///
/// Online routing against live snapshots — the sleep-aware policy
/// consolidates load onto the awake device until its queue reaches the
/// spill threshold:
///
/// ```
/// use qdpm_workload::{DeviceSnapshot, DispatchPolicy, WorkloadDispatcher};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut d = WorkloadDispatcher::new(DispatchPolicy::SleepAware { spill: 2 }, 3)?;
/// let mut snaps = vec![
///     DeviceSnapshot { queue_len: 0, awake: true, waking: false, down: false },
///     DeviceSnapshot { queue_len: 0, awake: false, waking: false, down: false },
///     DeviceSnapshot { queue_len: 0, awake: false, waking: false, down: false },
/// ];
/// let mut assign = vec![0u32; 3];
/// // Three arrivals: two consolidate onto awake device 0; the third sees
/// // its queue at the spill threshold and wakes a sleeping device.
/// d.route_slice(3, &mut snaps, &mut assign);
/// assert_eq!(assign, vec![2, 1, 0]);
/// assert!(snaps[1].waking, "the routed sleeper is now waking");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Arrival `i` goes to device `i mod n` (in arrival order, across
    /// slices).
    RoundRobin,
    /// Each arrival goes to the device with the smallest *nominal backlog*:
    /// the count of requests assigned to it so far minus a unit-rate drain
    /// (each device sheds at most one outstanding request per slice, the
    /// single-server queue's best case). Ties rotate fairly: among the
    /// minimal-backlog devices, the one at or after a moving cursor wins —
    /// without the rotation, any stream sparser than one arrival per slice
    /// has all backlogs pinned at zero and every arrival would land on
    /// device 0. The drain is a deterministic stand-in for the actual
    /// stochastic service process — the dispatcher never inspects live
    /// queues, so the split stays precomputable and device-independent.
    LeastLoaded,
    /// Arrival `i` goes to device `splitmix64(salt, i) mod n` — a
    /// stateless, salted shard assignment (the fleet analog of consistent
    /// hashing on a request key).
    HashSharded {
        /// Salt mixed into the per-arrival hash.
        salt: u64,
    },
    /// State-aware: each arrival joins the device with the shortest *live*
    /// queue (ties rotate via the cursor, like
    /// [`DispatchPolicy::LeastLoaded`]). Routed arrivals increment the
    /// snapshot's queue so same-slice arrivals spread. Requires
    /// [`WorkloadDispatcher::route_slice`].
    JoinShortestQueue,
    /// State-aware and wake-avoiding: arrivals consolidate onto the
    /// shortest-queued device that is awake or already waking, spilling to
    /// a sleeping device (waking it) only when every available device's
    /// queue has reached `spill`; when the whole fleet is asleep, one
    /// sleeper is woken and the slice's load consolidates onto it.
    /// Requires [`WorkloadDispatcher::route_slice`].
    SleepAware {
        /// Queue depth at which load spills from available devices onto a
        /// sleeping one (0 never consolidates: any sleeper beats any
        /// queue).
        spill: usize,
    },
}

impl DispatchPolicy {
    /// Short display name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::LeastLoaded => "least-loaded",
            DispatchPolicy::HashSharded { .. } => "hash-sharded",
            DispatchPolicy::JoinShortestQueue => "join-shortest-queue",
            DispatchPolicy::SleepAware { .. } => "sleep-aware",
        }
    }

    /// Whether the policy routes without looking at device state, so the
    /// whole assignment can be precomputed by
    /// [`WorkloadDispatcher::split`]. State-aware policies
    /// ([`DispatchPolicy::JoinShortestQueue`],
    /// [`DispatchPolicy::SleepAware`]) must be driven online through
    /// [`WorkloadDispatcher::route_slice`].
    #[must_use]
    pub fn is_state_blind(&self) -> bool {
        !matches!(
            self,
            DispatchPolicy::JoinShortestQueue | DispatchPolicy::SleepAware { .. }
        )
    }

    /// All policy kinds with default parameters, for sweep harnesses and
    /// the fleet conformance suite. State-blind policies come first, in
    /// [`DispatchPolicy::state_blind`] order.
    #[must_use]
    pub fn all() -> Vec<DispatchPolicy> {
        let mut all = DispatchPolicy::state_blind();
        all.extend(DispatchPolicy::state_aware());
        all
    }

    /// The state-blind policy kinds (precomputable via
    /// [`WorkloadDispatcher::split`]).
    #[must_use]
    pub fn state_blind() -> Vec<DispatchPolicy> {
        vec![
            DispatchPolicy::RoundRobin,
            DispatchPolicy::LeastLoaded,
            DispatchPolicy::HashSharded { salt: 0 },
        ]
    }

    /// The state-aware policy kinds (online-only, via
    /// [`WorkloadDispatcher::route_slice`]), with default parameters.
    #[must_use]
    pub fn state_aware() -> Vec<DispatchPolicy> {
        vec![
            DispatchPolicy::JoinShortestQueue,
            DispatchPolicy::SleepAware { spill: 4 },
        ]
    }
}

// The workspace's one keyed SplitMix64 hash (shared with the parallel
// runner's per-cell seed derivation), used here for stateless shard
// hashing.
use qdpm_core::rng_util::splitmix64;

/// Assigns the arrivals of an aggregate stream to `n` devices, slice by
/// slice, under a [`DispatchPolicy`].
///
/// The dispatcher is deterministic: given the same aggregate per-slice
/// counts it produces the same assignment, independent of anything the
/// devices do. Its only state is the policy's own (round-robin cursor,
/// nominal backlogs, arrival sequence number).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadDispatcher {
    policy: DispatchPolicy,
    n_devices: usize,
    /// Next device for round-robin assignment.
    cursor: usize,
    /// Aggregate arrivals assigned so far (the hash-shard key).
    seq: u64,
    /// Nominal per-device backlog for least-loaded assignment.
    backlog: Vec<u64>,
}

impl WorkloadDispatcher {
    /// Creates a dispatcher over `n_devices` devices.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::EmptyFleet`] when `n_devices` is zero.
    pub fn new(policy: DispatchPolicy, n_devices: usize) -> Result<Self, WorkloadError> {
        if n_devices == 0 {
            return Err(WorkloadError::EmptyFleet);
        }
        Ok(WorkloadDispatcher {
            policy,
            n_devices,
            cursor: 0,
            seq: 0,
            backlog: vec![0; n_devices],
        })
    }

    /// The dispatch policy.
    #[must_use]
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// Number of devices arrivals are split across.
    #[must_use]
    pub fn n_devices(&self) -> usize {
        self.n_devices
    }

    /// Assigns one slice's `count` aggregate arrivals across the devices,
    /// writing per-device counts into `assign` (zeroed first). The sum of
    /// `assign` always equals `count` — a strict partition.
    ///
    /// # Panics
    ///
    /// Panics if `assign.len() != n_devices`, or if the policy is
    /// state-aware (use [`WorkloadDispatcher::route_slice`] instead).
    pub fn dispatch_slice(&mut self, count: u32, assign: &mut [u32]) {
        assert!(
            self.policy.is_state_blind(),
            "{} is state-aware: dispatch it online via route_slice",
            self.policy.name()
        );
        self.route_inner(count, None, assign);
    }

    /// Assigns one slice's `count` aggregate arrivals across the devices
    /// using the live [`DeviceSnapshot`]s, writing per-device counts into
    /// `assign` (zeroed first). The sum of `assign` always equals `count`.
    ///
    /// For state-blind policies the assignment is identical to
    /// [`WorkloadDispatcher::dispatch_slice`] (snapshots are ignored), so
    /// an online fleet run with a state-blind dispatcher reproduces the
    /// precomputed split exactly. State-aware policies read and *mutate*
    /// the snapshots: each routed arrival increments its target's
    /// `queue_len`, and a routed sleeper is marked `waking`, so several
    /// arrivals within one slice spread out deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `assign.len() != n_devices` or
    /// `snapshots.len() != n_devices`.
    pub fn route_slice(
        &mut self,
        count: u32,
        snapshots: &mut [DeviceSnapshot],
        assign: &mut [u32],
    ) {
        assert_eq!(
            snapshots.len(),
            self.n_devices,
            "snapshot buffer must have one slot per device"
        );
        self.route_inner(count, Some(snapshots), assign);
    }

    /// The shared per-slice routing body. `snapshots` is `None` only on
    /// the state-blind [`WorkloadDispatcher::dispatch_slice`] path.
    fn route_inner(
        &mut self,
        count: u32,
        mut snapshots: Option<&mut [DeviceSnapshot]>,
        assign: &mut [u32],
    ) {
        assert_eq!(
            assign.len(),
            self.n_devices,
            "assignment buffer must have one slot per device"
        );
        assign.fill(0);
        let n = self.n_devices;
        for _ in 0..count {
            // Cyclic distance from the rotating cursor — the shared
            // tie-breaker that spreads minimum-ties fairly instead of
            // piling them onto device 0.
            let cursor = self.cursor;
            let cyc = move |i: usize| (i + n - cursor % n) % n;
            let target = match self.policy {
                DispatchPolicy::RoundRobin => {
                    let t = self.cursor;
                    self.cursor = (self.cursor + 1) % n;
                    t
                }
                DispatchPolicy::LeastLoaded => {
                    // Smallest nominal backlog; ties rotate via the cursor.
                    let t = self
                        .backlog
                        .iter()
                        .enumerate()
                        .min_by_key(|&(i, &b)| (b, cyc(i)))
                        .map(|(i, _)| i)
                        .expect("dispatcher has at least one device");
                    self.backlog[t] += 1;
                    self.cursor = (t + 1) % n;
                    t
                }
                DispatchPolicy::HashSharded { salt } => {
                    (splitmix64(salt, self.seq) % n as u64) as usize
                }
                DispatchPolicy::JoinShortestQueue => {
                    let snaps = snapshots
                        .as_deref_mut()
                        .expect("state-aware policy routed without snapshots");
                    // Down devices are skipped whenever any healthy device
                    // exists; with the whole fleet down the assignment
                    // stays total (the coordinator sheds before routing).
                    let t = snaps
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| !s.down)
                        .min_by_key(|&(i, s)| (s.queue_len, cyc(i)))
                        .or_else(|| {
                            snaps
                                .iter()
                                .enumerate()
                                .min_by_key(|&(i, s)| (s.queue_len, cyc(i)))
                        })
                        .map(|(i, _)| i)
                        .expect("dispatcher has at least one device");
                    snaps[t].queue_len += 1;
                    self.cursor = (t + 1) % n;
                    t
                }
                DispatchPolicy::SleepAware { spill } => {
                    let snaps = snapshots
                        .as_deref_mut()
                        .expect("state-aware policy routed without snapshots");
                    let best_available = snaps
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| s.available())
                        .min_by_key(|&(i, s)| (s.queue_len, cyc(i)))
                        .map(|(i, _)| i);

                    // Sleepers worth waking exclude down devices — a wake
                    // command cannot revive a faulted member.
                    let first_sleeper = || {
                        snaps
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| !s.available() && !s.down)
                            .min_by_key(|&(i, _)| cyc(i))
                            .map(|(i, _)| i)
                    };
                    let t = match best_available {
                        // Consolidate onto the best available device until
                        // its queue hits the spill threshold; then wake
                        // the next sleeper instead.
                        Some(b) if snaps[b].queue_len < spill => b,
                        Some(b) => first_sleeper().unwrap_or(b),
                        // Whole fleet asleep: wake one. With every device
                        // down the assignment stays total by falling back
                        // to the cursor-nearest device (the coordinator
                        // sheds before routing in that case).
                        None => first_sleeper().unwrap_or_else(|| {
                            snaps
                                .iter()
                                .enumerate()
                                .min_by_key(|&(i, _)| cyc(i))
                                .map(|(i, _)| i)
                                .expect("dispatcher has at least one device")
                        }),
                    };
                    snaps[t].queue_len += 1;
                    if !snaps[t].awake {
                        snaps[t].waking = true;
                    }
                    self.cursor = (t + 1) % n;
                    t
                }
            };
            self.seq += 1;
            assign[target] += 1;
        }
        if self.policy == DispatchPolicy::LeastLoaded {
            // End of slice: nominal unit-rate drain.
            for b in &mut self.backlog {
                *b = b.saturating_sub(1);
            }
        }
    }

    /// Applies the end-of-slice bookkeeping of `slices` arrival-free
    /// slices in one step (for [`DispatchPolicy::LeastLoaded`], the
    /// nominal unit-rate drain; the other policies are stateless across
    /// quiet slices). `saturating_sub` makes the bulk drain exactly equal
    /// to `slices` repeated [`WorkloadDispatcher::dispatch_slice`]`(0, ..)`
    /// calls.
    pub fn advance_quiet(&mut self, slices: u64) {
        if self.policy == DispatchPolicy::LeastLoaded && slices > 0 {
            for b in &mut self.backlog {
                *b = b.saturating_sub(slices);
            }
        }
    }

    /// Draws `slices` slices from `aggregate` and splits them into one
    /// [`SparseTrace`] per device over that horizon. The returned traces
    /// partition the aggregate stream: summed per slice they reproduce the
    /// aggregate counts exactly, and the assignment is identical to
    /// driving [`WorkloadDispatcher::dispatch_slice`] slice by slice
    /// (quiet slices drain via [`WorkloadDispatcher::advance_quiet`]).
    ///
    /// # Panics
    ///
    /// Panics if the policy is state-aware — those assignments depend on
    /// live device state and cannot be precomputed; drive them online via
    /// [`WorkloadDispatcher::route_slice`].
    pub fn split(
        &mut self,
        aggregate: &mut dyn RequestGenerator,
        rng: &mut dyn Rng,
        slices: u64,
    ) -> Vec<SparseTrace> {
        let mut events: Vec<Vec<(u64, u32)>> = vec![Vec::new(); self.n_devices];
        let mut assign = vec![0u32; self.n_devices];
        let mut quiet = 0u64;
        for now in 0..slices {
            let count = aggregate.next_arrivals(rng);
            if count == 0 {
                quiet += 1;
                continue;
            }
            self.advance_quiet(quiet);
            quiet = 0;
            self.dispatch_slice(count, &mut assign);
            for (device, &c) in assign.iter().enumerate() {
                if c > 0 {
                    events[device].push((now, c));
                }
            }
        }
        self.advance_quiet(quiet);
        events
            .into_iter()
            .map(|ev| SparseTrace::new(ev, slices).expect("split emits sorted in-horizon events"))
            .collect()
    }

    /// Restores the dispatcher's initial state.
    pub fn reset(&mut self) {
        self.cursor = 0;
        self.seq = 0;
        self.backlog.fill(0);
    }

    /// Checkpoint support: appends the routing cursor, arrival sequence
    /// number, and nominal backlogs to a payload (pairs with
    /// [`WorkloadDispatcher::load_state`]).
    pub fn save_state(&self, w: &mut qdpm_core::StateWriter) {
        w.put_usize(self.cursor);
        w.put_u64(self.seq);
        w.put_usize(self.backlog.len());
        for &b in &self.backlog {
            w.put_u64(b);
        }
    }

    /// Checkpoint support: restores state written by
    /// [`WorkloadDispatcher::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`qdpm_core::StateError`] when the payload does not decode
    /// or the backlog length does not match this dispatcher's fleet size.
    pub fn load_state(
        &mut self,
        r: &mut qdpm_core::StateReader<'_>,
    ) -> Result<(), qdpm_core::StateError> {
        let cursor = r.get_usize()?;
        let seq = r.get_u64()?;
        let len = r.get_usize()?;
        if len != self.n_devices {
            return Err(qdpm_core::StateError::BadValue(format!(
                "dispatcher backlog for {len} devices does not fit fleet of {}",
                self.n_devices
            )));
        }
        let mut backlog = Vec::with_capacity(len);
        for _ in 0..len {
            backlog.push(r.get_u64()?);
        }
        self.cursor = cursor;
        self.seq = seq;
        self.backlog = backlog;
        Ok(())
    }

    /// [`WorkloadDispatcher::split`] with a cohort fast path: devices
    /// listed in `groups` get their arrivals appended to one shared
    /// [`CohortArrivals`] index list per group instead of a per-device
    /// [`SparseTrace`] each; every other device still gets its own trace.
    ///
    /// The aggregate draw order, quiet-slice bookkeeping, and per-arrival
    /// assignment are *identical* to [`WorkloadDispatcher::split`] — only
    /// the packaging differs — so the batched fleet engine sees exactly
    /// the same partition as the dynamic path. In particular the
    /// [`DispatchPolicy::LeastLoaded`] nominal backlogs evolve over the
    /// whole fleet at once, so a burst within one slice still spreads
    /// across a cohort's devices instead of collapsing onto its first
    /// member (the degeneracy the per-device path already avoids).
    ///
    /// # Panics
    ///
    /// Panics if the policy is state-aware, a group references a device
    /// out of range, or a device appears in more than one group.
    pub fn split_grouped(
        &mut self,
        aggregate: &mut dyn RequestGenerator,
        rng: &mut dyn Rng,
        slices: u64,
        groups: &[Vec<usize>],
    ) -> GroupedSplit {
        // Device -> (cohort, local index) scatter table.
        let mut membership: Vec<Option<(u32, u32)>> = vec![None; self.n_devices];
        for (ci, group) in groups.iter().enumerate() {
            for (li, &device) in group.iter().enumerate() {
                assert!(
                    device < self.n_devices,
                    "cohort device {device} out of range ({})",
                    self.n_devices
                );
                assert!(
                    membership[device].is_none(),
                    "device {device} appears in more than one cohort"
                );
                membership[device] = Some((
                    u32::try_from(ci).expect("cohort count fits u32"),
                    u32::try_from(li).expect("cohort size fits u32"),
                ));
            }
        }
        let mut cohort_events: Vec<Vec<(u64, u32, u32)>> = vec![Vec::new(); groups.len()];
        let mut single_events: Vec<Vec<(u64, u32)>> = vec![Vec::new(); self.n_devices];
        let mut assign = vec![0u32; self.n_devices];
        let mut quiet = 0u64;
        for now in 0..slices {
            let count = aggregate.next_arrivals(rng);
            if count == 0 {
                quiet += 1;
                continue;
            }
            self.advance_quiet(quiet);
            quiet = 0;
            self.dispatch_slice(count, &mut assign);
            for (device, &c) in assign.iter().enumerate() {
                if c > 0 {
                    match membership[device] {
                        Some((ci, li)) => cohort_events[ci as usize].push((now, li, c)),
                        None => single_events[device].push((now, c)),
                    }
                }
            }
        }
        self.advance_quiet(quiet);
        GroupedSplit {
            cohorts: cohort_events
                .into_iter()
                .zip(groups)
                .map(|(events, group)| CohortArrivals {
                    events,
                    horizon: slices,
                    n_devices: group.len(),
                })
                .collect(),
            dynamic: single_events
                .into_iter()
                .enumerate()
                .filter(|(device, _)| membership[*device].is_none())
                .map(|(device, ev)| {
                    let trace =
                        SparseTrace::new(ev, slices).expect("split emits sorted in-horizon events");
                    (device, trace)
                })
                .collect(),
        }
    }
}

/// Output of [`WorkloadDispatcher::split_grouped`]: one shared arrival
/// index list per cohort plus a [`SparseTrace`] for every ungrouped
/// device.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedSplit {
    /// Cohort arrival lists, aligned with the `groups` argument.
    pub cohorts: Vec<CohortArrivals>,
    /// `(global device index, trace)` for every device not in any group,
    /// in ascending device order.
    pub dynamic: Vec<(usize, SparseTrace)>,
}

/// The arrivals of one homogeneous cohort, stored as a single slice-sorted
/// index list — the structure-of-arrays counterpart of one [`SparseTrace`]
/// per member.
///
/// Events are `(slice, local device index, count)`, sorted by slice;
/// within a slice, members appear in the cohort's declaration order of
/// ascending *global* device index. A batched engine walks the list with
/// one cursor and scatters each slice's events into its arrival arrays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortArrivals {
    /// `(slice, local device index, count)` events; `count >= 1`.
    events: Vec<(u64, u32, u32)>,
    /// Slices the arrivals are defined over.
    horizon: u64,
    /// Cohort size (local indices are below this).
    n_devices: usize,
}

impl CohortArrivals {
    /// The `(slice, local device index, count)` events.
    #[must_use]
    pub fn events(&self) -> &[(u64, u32, u32)] {
        &self.events
    }

    /// The horizon (slices the arrivals are defined over).
    #[must_use]
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Number of devices in the cohort.
    #[must_use]
    pub fn n_devices(&self) -> usize {
        self.n_devices
    }

    /// Total arrivals across all members and slices.
    #[must_use]
    pub fn total_arrivals(&self) -> u64 {
        self.events.iter().map(|&(_, _, c)| u64::from(c)).sum()
    }

    /// Expands back into one [`SparseTrace`] per member (local index
    /// order) — the dynamic-path representation, for conformance checks
    /// and fallbacks.
    ///
    /// # Panics
    ///
    /// Panics if an event references a local index at or beyond
    /// [`CohortArrivals::n_devices`].
    #[must_use]
    pub fn to_traces(&self) -> Vec<SparseTrace> {
        let mut per_device: Vec<Vec<(u64, u32)>> = vec![Vec::new(); self.n_devices];
        for &(slice, local, count) in &self.events {
            per_device[local as usize].push((slice, count));
        }
        per_device
            .into_iter()
            .map(|ev| {
                SparseTrace::new(ev, self.horizon).expect("cohort events are sorted and in-horizon")
            })
            .collect()
    }
}

/// A non-looping arrival trace stored sparsely as `(slice, count)` events
/// over a fixed horizon — the per-device output of a fleet dispatch.
///
/// Beyond the horizon the trace is quiet forever (unlike [`crate::TraceReplay`],
/// which wraps around); fleet simulations run exactly the horizon, so the
/// tail is never observed. [`RequestGenerator::next_arrival_gap`] is
/// overridden with an exact, randomness-free jump to the next event, so
/// the event-skipping engine is *bit-exact* against per-slice stepping on
/// these traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseTrace {
    /// `(slice, count)` events, strictly increasing in slice, counts >= 1.
    events: Vec<(u64, u32)>,
    /// Slices the trace is defined over; events all land before it.
    horizon: u64,
    /// Next event index.
    pos: usize,
    /// Current slice.
    now: u64,
}

impl SparseTrace {
    /// Creates a sparse trace from sorted events over `horizon` slices.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::UnsortedEvents`] when slices are not
    /// strictly increasing, a count is zero, or an event lies at or beyond
    /// the horizon.
    pub fn new(events: Vec<(u64, u32)>, horizon: u64) -> Result<Self, WorkloadError> {
        let mut last: Option<u64> = None;
        for &(slice, count) in &events {
            if count == 0 || slice >= horizon || last.is_some_and(|l| slice <= l) {
                return Err(WorkloadError::UnsortedEvents { slice, count });
            }
            last = Some(slice);
        }
        Ok(SparseTrace {
            events,
            horizon,
            pos: 0,
            now: 0,
        })
    }

    /// The horizon (slices the trace is defined over).
    #[must_use]
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// The `(slice, count)` events.
    #[must_use]
    pub fn events(&self) -> &[(u64, u32)] {
        &self.events
    }

    /// Total arrivals across the horizon.
    #[must_use]
    pub fn total_arrivals(&self) -> u64 {
        self.events.iter().map(|&(_, c)| u64::from(c)).sum()
    }

    /// Expands to a dense per-slice count vector of horizon length (for
    /// consumers that need random access, e.g. the clairvoyant oracle).
    /// Costs `O(horizon)` memory — intended for test- and report-sized
    /// horizons, not million-slice fleets.
    #[must_use]
    pub fn to_dense(&self) -> Vec<u32> {
        let mut dense = vec![0u32; usize::try_from(self.horizon).expect("horizon fits usize")];
        for &(slice, count) in &self.events {
            dense[usize::try_from(slice).expect("event within horizon")] = count;
        }
        dense
    }
}

impl RequestGenerator for SparseTrace {
    fn next_arrivals(&mut self, _rng: &mut dyn Rng) -> u32 {
        let count = match self.events.get(self.pos) {
            Some(&(slice, count)) if slice == self.now => {
                self.pos += 1;
                count
            }
            _ => 0,
        };
        self.now += 1;
        count
    }

    fn next_arrival_gap(&mut self, _rng: &mut dyn Rng, limit: u64) -> ArrivalGap {
        // Exact, randomness-free: identical arrival sequence to per-slice
        // stepping, no RNG consumed either way.
        match self.events.get(self.pos) {
            Some(&(slice, count)) if slice - self.now < limit => {
                let empty = slice - self.now;
                self.now = slice + 1;
                self.pos += 1;
                ArrivalGap::Arrival { empty, count }
            }
            _ => {
                self.now += limit;
                ArrivalGap::Quiet { advanced: limit }
            }
        }
    }

    fn mean_rate(&self) -> Option<f64> {
        if self.horizon == 0 {
            return None;
        }
        Some(self.total_arrivals() as f64 / self.horizon as f64)
    }

    fn save_state(&self, w: &mut qdpm_core::StateWriter) {
        w.put_usize(self.pos);
        w.put_u64(self.now);
    }

    fn load_state(
        &mut self,
        r: &mut qdpm_core::StateReader<'_>,
    ) -> Result<(), qdpm_core::StateError> {
        let pos = r.get_usize()?;
        if pos > self.events.len() {
            return Err(qdpm_core::StateError::BadValue(format!(
                "trace cursor {pos} out of range for {} events",
                self.events.len()
            )));
        }
        self.pos = pos;
        self.now = r.get_u64()?;
        Ok(())
    }

    fn reset(&mut self) {
        self.pos = 0;
        self.now = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BernoulliArrivals, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn replayed(traces: &[SparseTrace], slices: u64) -> Vec<Vec<u32>> {
        let mut rng = StdRng::seed_from_u64(0);
        traces
            .iter()
            .map(|t| {
                let mut t = t.clone();
                (0..slices).map(|_| t.next_arrivals(&mut rng)).collect()
            })
            .collect()
    }

    #[test]
    fn zero_devices_rejected() {
        assert_eq!(
            WorkloadDispatcher::new(DispatchPolicy::RoundRobin, 0).unwrap_err(),
            WorkloadError::EmptyFleet
        );
    }

    #[test]
    fn round_robin_cycles_across_slices() {
        let mut d = WorkloadDispatcher::new(DispatchPolicy::RoundRobin, 3).unwrap();
        let mut a = vec![0u32; 3];
        d.dispatch_slice(4, &mut a);
        assert_eq!(a, vec![2, 1, 1]);
        d.dispatch_slice(2, &mut a);
        // Cursor carried over: next arrivals land on devices 1 and 2.
        assert_eq!(a, vec![0, 1, 1]);
    }

    #[test]
    fn least_loaded_prefers_emptiest_and_drains() {
        let mut d = WorkloadDispatcher::new(DispatchPolicy::LeastLoaded, 2).unwrap();
        let mut a = vec![0u32; 2];
        // Burst of 3: device 0 gets 2 (ties break low), device 1 gets 1.
        d.dispatch_slice(3, &mut a);
        assert_eq!(a, vec![2, 1]);
        // After the unit drain backlogs are [1, 0]: next arrival goes to 1.
        d.dispatch_slice(1, &mut a);
        assert_eq!(a, vec![0, 1]);
    }

    #[test]
    fn hash_sharded_is_stateless_in_position_but_keyed_by_seq() {
        let mut d = WorkloadDispatcher::new(DispatchPolicy::HashSharded { salt: 7 }, 4).unwrap();
        let mut a = vec![0u32; 4];
        d.dispatch_slice(100, &mut a);
        let first: u32 = a.iter().sum();
        assert_eq!(first, 100);
        // A different salt shards differently.
        let mut d2 = WorkloadDispatcher::new(DispatchPolicy::HashSharded { salt: 8 }, 4).unwrap();
        let mut b = vec![0u32; 4];
        d2.dispatch_slice(100, &mut b);
        assert_ne!(a, b, "salts must change the assignment");
    }

    #[test]
    fn split_partitions_the_aggregate_stream() {
        for policy in DispatchPolicy::state_blind() {
            let slices = 500u64;
            let mut gen = BernoulliArrivals::new(0.4).unwrap();
            let mut rng = StdRng::seed_from_u64(11);
            let mut d = WorkloadDispatcher::new(policy, 3).unwrap();
            let traces = d.split(&mut gen, &mut rng, slices);

            // Re-draw the identical aggregate stream.
            let mut gen2 = BernoulliArrivals::new(0.4).unwrap();
            let mut rng2 = StdRng::seed_from_u64(11);
            let aggregate: Vec<u32> = (0..slices).map(|_| gen2.next_arrivals(&mut rng2)).collect();

            let per_device = replayed(&traces, slices);
            for (t, agg) in (0..slices as usize).map(|t| (t, aggregate[t])) {
                let sum: u32 = per_device.iter().map(|d| d[t]).sum();
                assert_eq!(sum, agg, "{}: slice {t} not partitioned", policy.name());
            }
        }
    }

    #[test]
    fn split_matches_slice_by_slice_dispatch() {
        // Bursts followed by long quiet gaps, so the least-loaded drain
        // actually has backlog to shed across the gaps.
        let pattern = vec![5u32, 0, 0, 2, 0, 0, 0, 0, 3, 0, 1, 0, 0, 0, 0, 4];
        let slices = 400u64;
        for policy in DispatchPolicy::state_blind() {
            let mut gen = crate::TraceReplay::new(pattern.clone()).unwrap();
            let mut rng = StdRng::seed_from_u64(77);
            let mut d = WorkloadDispatcher::new(policy, 4).unwrap();
            let traces = d.split(&mut gen, &mut rng, slices);
            let via_split = replayed(&traces, slices);

            let mut gen2 = crate::TraceReplay::new(pattern.clone()).unwrap();
            let mut rng2 = StdRng::seed_from_u64(77);
            let mut d2 = WorkloadDispatcher::new(policy, 4).unwrap();
            let mut assign = vec![0u32; 4];
            let mut manual = vec![vec![0u32; slices as usize]; 4];
            for t in 0..slices as usize {
                let count = gen2.next_arrivals(&mut rng2);
                d2.dispatch_slice(count, &mut assign);
                for (device, row) in manual.iter_mut().enumerate() {
                    row[t] = assign[device];
                }
            }
            assert_eq!(via_split, manual, "{}", policy.name());
        }
    }

    fn snaps(spec: &[(usize, bool, bool)]) -> Vec<DeviceSnapshot> {
        spec.iter()
            .map(|&(queue_len, awake, waking)| DeviceSnapshot {
                queue_len,
                awake,
                waking,
                down: false,
            })
            .collect()
    }

    #[test]
    fn route_slice_matches_dispatch_slice_for_state_blind_policies() {
        for policy in DispatchPolicy::state_blind() {
            let mut blind = WorkloadDispatcher::new(policy, 4).unwrap();
            let mut aware = blind.clone();
            let mut a = vec![0u32; 4];
            let mut b = vec![0u32; 4];
            let mut s = snaps(&[(3, true, false); 4]);
            for count in [5u32, 0, 2, 1, 7] {
                blind.dispatch_slice(count, &mut a);
                aware.route_slice(count, &mut s, &mut b);
                assert_eq!(a, b, "{}", policy.name());
            }
            assert_eq!(blind, aware, "{}: internal state must agree", policy.name());
        }
    }

    #[test]
    fn join_shortest_queue_follows_live_queues() {
        let mut d = WorkloadDispatcher::new(DispatchPolicy::JoinShortestQueue, 3).unwrap();
        let mut s = snaps(&[(4, true, false), (1, true, false), (2, true, false)]);
        let mut assign = vec![0u32; 3];
        // First arrival joins device 1 (queue 1); its queue becomes 2,
        // tying device 2 — the cursor (now 2) breaks the tie toward 2.
        d.route_slice(2, &mut s, &mut assign);
        assert_eq!(assign, vec![0, 1, 1]);
        assert_eq!(s[1].queue_len, 2);
        assert_eq!(s[2].queue_len, 3);
    }

    #[test]
    fn sleep_aware_consolidates_then_spills_and_wakes() {
        let mut d = WorkloadDispatcher::new(DispatchPolicy::SleepAware { spill: 3 }, 3).unwrap();
        let mut s = snaps(&[(0, true, false), (0, false, false), (0, false, false)]);
        let mut assign = vec![0u32; 3];
        // Five arrivals: three consolidate onto awake device 0, the fourth
        // spills to sleeping device 1 (marking it waking), the fifth joins
        // the now-waking device 1 (queue 1 < spill).
        d.route_slice(5, &mut s, &mut assign);
        assert_eq!(assign, vec![3, 2, 0]);
        assert!(s[1].waking);
        assert!(!s[2].waking, "only one sleeper woken");
    }

    #[test]
    fn sleep_aware_wakes_one_device_when_all_asleep() {
        let mut d = WorkloadDispatcher::new(DispatchPolicy::SleepAware { spill: 4 }, 4).unwrap();
        let mut s = snaps(&[(0, false, false); 4]);
        let mut assign = vec![0u32; 4];
        d.route_slice(3, &mut s, &mut assign);
        // All asleep: the cursor-first sleeper (device 0) wakes and the
        // whole slice consolidates onto it.
        assert_eq!(assign, vec![3, 0, 0, 0]);
        assert!(s[0].waking);
        assert_eq!(s.iter().filter(|x| x.waking).count(), 1);
    }

    #[test]
    fn sleep_aware_prefers_waking_devices_over_fresh_wakes() {
        let mut d = WorkloadDispatcher::new(DispatchPolicy::SleepAware { spill: 8 }, 3).unwrap();
        // Device 1 is already on its way up; nobody is serving yet.
        let mut s = snaps(&[(2, false, false), (0, false, true), (0, false, false)]);
        let mut assign = vec![0u32; 3];
        d.route_slice(2, &mut s, &mut assign);
        assert_eq!(assign, vec![0, 2, 0], "waking device absorbs the load");
    }

    #[test]
    #[should_panic(expected = "state-aware")]
    fn state_aware_split_panics() {
        let mut gen = BernoulliArrivals::new(0.2).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = WorkloadDispatcher::new(DispatchPolicy::JoinShortestQueue, 2).unwrap();
        let _ = d.split(&mut gen, &mut rng, 100);
    }

    #[test]
    fn policy_lists_cover_all_kinds() {
        assert_eq!(DispatchPolicy::all().len(), 5);
        assert!(DispatchPolicy::state_blind()
            .iter()
            .all(DispatchPolicy::is_state_blind));
        assert!(DispatchPolicy::state_aware()
            .iter()
            .all(|p| !p.is_state_blind()));
    }

    #[test]
    fn advance_quiet_equals_repeated_empty_slices() {
        let mut bulk = WorkloadDispatcher::new(DispatchPolicy::LeastLoaded, 3).unwrap();
        let mut step = bulk.clone();
        let mut assign = vec![0u32; 3];
        bulk.dispatch_slice(7, &mut assign);
        step.dispatch_slice(7, &mut assign);
        bulk.advance_quiet(5);
        for _ in 0..5 {
            step.dispatch_slice(0, &mut assign);
        }
        assert_eq!(bulk, step);
    }

    #[test]
    fn sparse_trace_validates() {
        assert!(SparseTrace::new(vec![(0, 1), (5, 2)], 10).is_ok());
        assert!(SparseTrace::new(vec![(5, 1), (5, 2)], 10).is_err()); // duplicate
        assert!(SparseTrace::new(vec![(5, 1), (3, 2)], 10).is_err()); // unsorted
        assert!(SparseTrace::new(vec![(5, 0)], 10).is_err()); // zero count
        assert!(SparseTrace::new(vec![(10, 1)], 10).is_err()); // beyond horizon
        assert!(SparseTrace::new(vec![], 10).is_ok()); // all-quiet is fine
    }

    #[test]
    fn sparse_trace_replays_and_is_quiet_past_horizon() {
        let mut t = SparseTrace::new(vec![(1, 2), (3, 1)], 5).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let seq: Vec<u32> = (0..8).map(|_| t.next_arrivals(&mut rng)).collect();
        assert_eq!(seq, vec![0, 2, 0, 1, 0, 0, 0, 0]);
        t.reset();
        assert_eq!(t.next_arrivals(&mut rng), 0);
        assert_eq!(t.next_arrivals(&mut rng), 2);
    }

    #[test]
    fn sparse_trace_gap_matches_per_slice_stepping_exactly() {
        let trace = SparseTrace::new(vec![(2, 1), (3, 2), (40, 1)], 64).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        // Walk via gaps with varying limits and mirror per-slice.
        let mut via_gap = trace.clone();
        let mut via_step = trace.clone();
        let mut gap_seq = Vec::new();
        let mut consumed = 0u64;
        for limit in [1u64, 2, 5, 64, 7, 64] {
            match via_gap.next_arrival_gap(&mut rng, limit) {
                ArrivalGap::Arrival { empty, count } => {
                    gap_seq.extend(std::iter::repeat_n(0, empty as usize));
                    gap_seq.push(count);
                    consumed += empty + 1;
                }
                ArrivalGap::Quiet { advanced } => {
                    gap_seq.extend(std::iter::repeat_n(0, advanced as usize));
                    consumed += advanced;
                }
            }
        }
        let step_seq: Vec<u32> = (0..consumed)
            .map(|_| via_step.next_arrivals(&mut rng))
            .collect();
        assert_eq!(gap_seq, step_seq);
    }

    #[test]
    fn sparse_trace_mean_rate_and_dense() {
        let t = SparseTrace::new(vec![(0, 1), (7, 3)], 8).unwrap();
        assert_eq!(t.total_arrivals(), 4);
        assert!((t.mean_rate().unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(t.to_dense(), vec![1, 0, 0, 0, 0, 0, 0, 3]);
    }

    #[test]
    fn split_grouped_matches_split_for_all_state_blind_policies() {
        // Same burst/quiet pattern as the split regression so the
        // least-loaded drain has backlog to shed across the gaps.
        let pattern = vec![5u32, 0, 0, 2, 0, 0, 0, 0, 3, 0, 1, 0, 0, 0, 0, 4];
        let slices = 400u64;
        let groups = vec![vec![1usize, 3, 4], vec![2usize, 5]];
        for policy in DispatchPolicy::state_blind() {
            let mut gen = crate::TraceReplay::new(pattern.clone()).unwrap();
            let mut rng = StdRng::seed_from_u64(77);
            let mut d = WorkloadDispatcher::new(policy, 7).unwrap();
            let flat = d.split(&mut gen, &mut rng, slices);

            let mut gen2 = crate::TraceReplay::new(pattern.clone()).unwrap();
            let mut rng2 = StdRng::seed_from_u64(77);
            let mut d2 = WorkloadDispatcher::new(policy, 7).unwrap();
            let grouped = d2.split_grouped(&mut gen2, &mut rng2, slices, &groups);

            assert_eq!(d, d2, "{}: dispatcher end states differ", policy.name());
            assert_eq!(
                grouped.dynamic.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
                vec![0, 6],
                "{}",
                policy.name()
            );
            // Expanding each cohort back to per-device traces must land
            // exactly on what the ungrouped split produced.
            for (group, cohort) in groups.iter().zip(&grouped.cohorts) {
                assert_eq!(cohort.n_devices(), group.len());
                assert_eq!(cohort.horizon(), slices);
                for (local, &global) in group.iter().enumerate() {
                    assert_eq!(
                        cohort.to_traces()[local],
                        flat[global],
                        "{}: cohort trace for device {global} diverged",
                        policy.name()
                    );
                }
            }
            for (global, trace) in &grouped.dynamic {
                assert_eq!(*trace, flat[*global], "{}", policy.name());
            }
            let total: u64 = grouped
                .cohorts
                .iter()
                .map(CohortArrivals::total_arrivals)
                .chain(grouped.dynamic.iter().map(|(_, t)| t.total_arrivals()))
                .sum();
            let expected: u64 = flat.iter().map(SparseTrace::total_arrivals).sum();
            assert_eq!(total, expected, "{}: arrivals not conserved", policy.name());
        }
    }

    #[test]
    fn grouped_least_loaded_spreads_same_slice_bursts() {
        // Degeneracy regression: a burst inside one slice must spread
        // across a cohort's members exactly as the per-device snapshot
        // mutation in `route_slice` spreads it — not collapse onto the
        // cohort's first member because the index list hides the
        // intra-slice backlog updates.
        let slices = 32u64;
        let pattern = vec![6u32, 0, 0, 0, 4];
        let mut gen = crate::TraceReplay::new(pattern.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut d = WorkloadDispatcher::new(DispatchPolicy::LeastLoaded, 4).unwrap();
        let grouped = d.split_grouped(&mut gen, &mut rng, slices, &[vec![0, 1, 2, 3]]);
        let cohort = &grouped.cohorts[0];

        let mut gen2 = crate::TraceReplay::new(pattern).unwrap();
        let mut rng2 = StdRng::seed_from_u64(9);
        let mut aware = WorkloadDispatcher::new(DispatchPolicy::LeastLoaded, 4).unwrap();
        let mut assign = vec![0u32; 4];
        let mut snapshots = snaps(&[(0, true, false); 4]);
        let mut expected: Vec<(u64, u32, u32)> = Vec::new();
        for now in 0..slices {
            let count = gen2.next_arrivals(&mut rng2);
            aware.route_slice(count, &mut snapshots, &mut assign);
            for (device, &c) in assign.iter().enumerate() {
                if c > 0 {
                    expected.push((now, u32::try_from(device).unwrap(), c));
                }
            }
        }
        assert_eq!(cohort.events(), expected.as_slice());
        // The slice-0 burst of 6 over 4 empty devices really did spread.
        let slice0: Vec<_> = cohort.events().iter().filter(|e| e.0 == 0).collect();
        assert_eq!(slice0.len(), 4, "burst must hit every cohort member");
    }

    #[test]
    #[should_panic(expected = "more than one cohort")]
    fn split_grouped_rejects_overlapping_groups() {
        let mut gen = BernoulliArrivals::new(0.2).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = WorkloadDispatcher::new(DispatchPolicy::RoundRobin, 3).unwrap();
        let _ = d.split_grouped(&mut gen, &mut rng, 10, &[vec![0, 1], vec![1, 2]]);
    }

    #[test]
    fn split_of_spec_built_generator_runs() {
        let mut gen = WorkloadSpec::two_mode_mmpp(0.05, 0.6, 0.01)
            .unwrap()
            .build();
        let mut rng = StdRng::seed_from_u64(5);
        let mut d = WorkloadDispatcher::new(DispatchPolicy::LeastLoaded, 8).unwrap();
        let traces = d.split(gen.as_mut(), &mut rng, 2_000);
        assert_eq!(traces.len(), 8);
        let total: u64 = traces.iter().map(SparseTrace::total_arrivals).sum();
        assert!(total > 0);
    }
}
