//! Deadline-tagged requests: per-request deadline draws and the
//! met/missed/slack ledger.
//!
//! The Q-DPM reproduction's baseline workloads are latency-weighted but
//! deadline-free. This module adds the hard-deadline vocabulary of the
//! integrated DPM+DVFS literature: each arriving request draws a
//! *relative* deadline from a [`DeadlineSpec`] at enqueue time, and a
//! [`DeadlineStats`] ledger classifies every tagged request into exactly
//! one terminal bucket (met, missed, dropped at admission, requeued for
//! retry, or lost to a crash) so fleet-level conservation can be asserted.
//!
//! Draws are *not* taken from the simulation's `StdRng` streams: each
//! request's deadline comes from `splitmix64(deadline_seed, counter)`
//! with a per-device monotone counter. This keeps every existing RNG
//! stream (arrivals, policy, service, noise) byte-identical whether or
//! not deadlines are enabled, and — because the counter only advances on
//! arrival slices, which the event-skipping engine always executes
//! per-slice — keeps deadline draws bit-exact across engine modes and
//! thread counts.

use serde::{Deserialize, Serialize};

use qdpm_core::rng_util::splitmix64;
use qdpm_core::{StateError, StateReader, StateWriter};

use crate::WorkloadError;

/// How the relative deadline of each tagged request is drawn at enqueue.
///
/// The drawn value is in slices *from the arrival slice*; the absolute
/// deadline of a request arriving at slice `t` is `t + draw`. A request
/// completing at slice `d` with absolute deadline `d` is on time
/// (deadlines are inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeadlineSpec {
    /// Every request gets the same relative deadline.
    Fixed(
        /// Relative deadline in slices, at least 1.
        u64,
    ),
    /// Relative deadlines drawn uniformly from the inclusive range
    /// `[lo, hi]`.
    Uniform {
        /// Smallest relative deadline, at least 1.
        lo: u64,
        /// Largest relative deadline, `>= lo`.
        hi: u64,
    },
}

impl DeadlineSpec {
    /// A fixed relative deadline of `slices`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidDeadline`] when `slices == 0` (a
    /// request could never meet it).
    pub fn fixed(slices: u64) -> Result<Self, WorkloadError> {
        if slices == 0 {
            return Err(WorkloadError::InvalidDeadline(
                "fixed deadline must be at least 1 slice".into(),
            ));
        }
        Ok(DeadlineSpec::Fixed(slices))
    }

    /// Uniform relative deadlines over the inclusive range `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidDeadline`] when `lo == 0` or
    /// `hi < lo`.
    pub fn uniform(lo: u64, hi: u64) -> Result<Self, WorkloadError> {
        if lo == 0 {
            return Err(WorkloadError::InvalidDeadline(
                "uniform deadline lower bound must be at least 1 slice".into(),
            ));
        }
        if hi < lo {
            return Err(WorkloadError::InvalidDeadline(format!(
                "uniform deadline range [{lo}, {hi}] is inverted"
            )));
        }
        Ok(DeadlineSpec::Uniform { lo, hi })
    }

    /// The deterministic relative-deadline draw for the `counter`-th
    /// tagged request of the stream seeded by `seed`.
    ///
    /// Uniform draws map a `splitmix64` word into the range by modulo —
    /// the (at most 2⁻⁴⁴ for any practical range) modulo bias is
    /// irrelevant here and the arithmetic is exactly reproducible on
    /// every platform, which is what the engine-conformance contract
    /// needs.
    #[must_use]
    pub fn draw(&self, seed: u64, counter: u64) -> u64 {
        match *self {
            DeadlineSpec::Fixed(d) => d,
            DeadlineSpec::Uniform { lo, hi } => {
                let span = hi - lo + 1;
                lo + splitmix64(seed, counter) % span
            }
        }
    }

    /// Mean relative deadline in slices.
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            DeadlineSpec::Fixed(d) => d as f64,
            DeadlineSpec::Uniform { lo, hi } => (lo + hi) as f64 / 2.0,
        }
    }
}

/// Ledger of deadline-tagged requests: every tagged arrival lands in
/// exactly one terminal bucket (or is still waiting in a queue), so
///
/// ```text
/// tagged == met + missed + dropped + requeued + lost + in_queue
/// ```
///
/// holds at every slice — the fleet-level conservation law the chaos
/// suite asserts. `requeued` requests re-enter some device's arrival
/// path later and are tagged *again* there (with a fresh deadline), so
/// the identity stays balanced across retry hops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadlineStats {
    /// Tagged requests observed at admission (enqueued or dropped).
    pub tagged: u64,
    /// Completed on or before their absolute deadline.
    pub met: u64,
    /// Completed after their absolute deadline.
    pub missed: u64,
    /// Rejected at admission by a full queue (never enqueued).
    pub dropped: u64,
    /// Harvested out of the queue for re-dispatch elsewhere (rack retry);
    /// the re-dispatched copies draw fresh deadlines at their new device.
    pub requeued: u64,
    /// Lost with a crashed device's queue (fault without queue
    /// preservation, or unharvested at the end of a run).
    pub lost: u64,
    /// Sum over met requests of slices of slack (deadline − completion).
    pub slack_sum: u64,
    /// Sum over missed requests of slices of tardiness
    /// (completion − deadline).
    pub tardiness_sum: u64,
}

impl DeadlineStats {
    /// Tagged requests that reached a terminal bucket.
    #[must_use]
    pub fn settled(&self) -> u64 {
        self.met + self.missed + self.dropped + self.requeued + self.lost
    }

    /// Fraction of *completed* tagged requests that missed their
    /// deadline (`missed / (met + missed)`; 0 when none completed).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let done = self.met + self.missed;
        if done == 0 {
            0.0
        } else {
            self.missed as f64 / done as f64
        }
    }

    /// Mean slack of met requests, in slices (0 when none met).
    #[must_use]
    pub fn mean_slack(&self) -> f64 {
        if self.met == 0 {
            0.0
        } else {
            self.slack_sum as f64 / self.met as f64
        }
    }

    /// Mean tardiness of missed requests, in slices (0 when none missed).
    #[must_use]
    pub fn mean_tardiness(&self) -> f64 {
        if self.missed == 0 {
            0.0
        } else {
            self.tardiness_sum as f64 / self.missed as f64
        }
    }

    /// Accumulates another ledger into this one (fleet aggregation).
    pub fn merge(&mut self, other: &DeadlineStats) {
        self.tagged += other.tagged;
        self.met += other.met;
        self.missed += other.missed;
        self.dropped += other.dropped;
        self.requeued += other.requeued;
        self.lost += other.lost;
        self.slack_sum += other.slack_sum;
        self.tardiness_sum += other.tardiness_sum;
    }

    /// Checkpoint support: appends the ledger to a payload.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_u64(self.tagged);
        w.put_u64(self.met);
        w.put_u64(self.missed);
        w.put_u64(self.dropped);
        w.put_u64(self.requeued);
        w.put_u64(self.lost);
        w.put_u64(self.slack_sum);
        w.put_u64(self.tardiness_sum);
    }

    /// Checkpoint support: restores a ledger written by
    /// [`DeadlineStats::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] when the payload does not decode.
    pub fn load_state(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(DeadlineStats {
            tagged: r.get_u64()?,
            met: r.get_u64()?,
            missed: r.get_u64()?,
            dropped: r.get_u64()?,
            requeued: r.get_u64()?,
            lost: r.get_u64()?,
            slack_sum: r.get_u64()?,
            tardiness_sum: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validation() {
        assert!(DeadlineSpec::fixed(1).is_ok());
        assert!(DeadlineSpec::fixed(0).is_err());
        assert!(DeadlineSpec::uniform(2, 10).is_ok());
        assert!(DeadlineSpec::uniform(2, 2).is_ok());
        assert!(DeadlineSpec::uniform(0, 5).is_err());
        assert!(DeadlineSpec::uniform(6, 5).is_err());
    }

    #[test]
    fn fixed_draw_ignores_stream() {
        let spec = DeadlineSpec::fixed(7).unwrap();
        assert_eq!(spec.draw(1, 0), 7);
        assert_eq!(spec.draw(99, 12345), 7);
        assert_eq!(spec.mean(), 7.0);
    }

    #[test]
    fn uniform_draw_stays_in_range_and_is_deterministic() {
        let spec = DeadlineSpec::uniform(3, 9).unwrap();
        for counter in 0..1000 {
            let d = spec.draw(42, counter);
            assert!((3..=9).contains(&d), "draw {d} outside [3, 9]");
            assert_eq!(d, spec.draw(42, counter), "redraw differs");
        }
        // Different seeds give different sequences (probabilistically
        // certain for 1000 draws over 7 values).
        let a: Vec<u64> = (0..1000).map(|c| spec.draw(1, c)).collect();
        let b: Vec<u64> = (0..1000).map(|c| spec.draw(2, c)).collect();
        assert_ne!(a, b);
        assert_eq!(spec.mean(), 6.0);
    }

    #[test]
    fn uniform_draw_covers_the_full_range() {
        let spec = DeadlineSpec::uniform(1, 4).unwrap();
        let mut seen = [false; 5];
        for counter in 0..256 {
            seen[spec.draw(7, counter) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true, true]);
    }

    #[test]
    fn ledger_conservation_vocabulary() {
        let s = DeadlineStats {
            tagged: 10,
            met: 4,
            missed: 2,
            dropped: 1,
            requeued: 2,
            lost: 1,
            ..Default::default()
        };
        assert_eq!(s.settled(), 10);
        assert!((s.miss_rate() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn rates_handle_empty_ledgers() {
        let s = DeadlineStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.mean_slack(), 0.0);
        assert_eq!(s.mean_tardiness(), 0.0);
    }

    #[test]
    fn merge_accumulates_everything() {
        let mut a = DeadlineStats {
            tagged: 5,
            met: 3,
            missed: 1,
            dropped: 1,
            requeued: 0,
            lost: 0,
            slack_sum: 9,
            tardiness_sum: 4,
        };
        let b = DeadlineStats {
            tagged: 2,
            met: 1,
            missed: 1,
            dropped: 0,
            requeued: 0,
            lost: 0,
            slack_sum: 2,
            tardiness_sum: 3,
        };
        a.merge(&b);
        assert_eq!(a.tagged, 7);
        assert_eq!(a.met, 4);
        assert_eq!(a.slack_sum, 11);
        assert_eq!(a.tardiness_sum, 7);
        assert!((a.mean_slack() - 11.0 / 4.0).abs() < 1e-12);
        assert!((a.mean_tardiness() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn state_round_trip() {
        let s = DeadlineStats {
            tagged: 11,
            met: 5,
            missed: 2,
            dropped: 1,
            requeued: 2,
            lost: 1,
            slack_sum: 17,
            tardiness_sum: 6,
        };
        let mut w = StateWriter::new();
        s.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(DeadlineStats::load_state(&mut r).unwrap(), s);
    }
}
