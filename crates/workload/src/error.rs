use std::fmt;

/// Errors produced while constructing workload generators or specs.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// A probability parameter was outside `[0, 1]` (or an open variant
    /// thereof, stated in the message).
    InvalidProbability {
        /// Which parameter was rejected.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A Markov-modulated spec had inconsistent dimensions.
    DimensionMismatch(String),
    /// A transition matrix row does not sum to 1 (within tolerance).
    NotStochastic {
        /// Row index of the offending row.
        row: usize,
        /// The row's actual sum.
        sum: f64,
    },
    /// A Pareto shape/scale parameter was out of range.
    InvalidPareto(String),
    /// A periodic generator was given period 0.
    ZeroPeriod,
    /// A piecewise workload was given no segments or a zero-length segment.
    EmptySegments,
    /// A trace replay was given an empty trace.
    EmptyTrace,
    /// A workload dispatcher was given zero devices to split across.
    EmptyFleet,
    /// A sparse trace event list was unsorted, carried a zero count, or
    /// reached past the horizon.
    UnsortedEvents {
        /// Slice index of the offending event.
        slice: u64,
        /// Count of the offending event.
        count: u32,
    },
    /// A fault-injection spec was inconsistent (rates summing past 1,
    /// non-finite or negative down power, ...).
    InvalidFaultSpec(String),
    /// A deadline spec was inconsistent (zero deadline, inverted uniform
    /// range).
    InvalidDeadline(String),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidProbability { what, value } => {
                write!(f, "{what} probability {value} out of range")
            }
            WorkloadError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            WorkloadError::NotStochastic { row, sum } => {
                write!(f, "transition matrix row {row} sums to {sum}, expected 1")
            }
            WorkloadError::InvalidPareto(msg) => write!(f, "invalid pareto parameters: {msg}"),
            WorkloadError::ZeroPeriod => write!(f, "period must be at least 1"),
            WorkloadError::EmptySegments => {
                write!(f, "piecewise workload needs at least one non-empty segment")
            }
            WorkloadError::EmptyTrace => write!(f, "trace replay needs a non-empty trace"),
            WorkloadError::EmptyFleet => {
                write!(f, "workload dispatch needs at least one device")
            }
            WorkloadError::UnsortedEvents { slice, count } => write!(
                f,
                "sparse trace event (slice {slice}, count {count}) is unsorted, \
                 zero-count, or beyond the horizon"
            ),
            WorkloadError::InvalidFaultSpec(msg) => {
                write!(f, "invalid fault-injection spec: {msg}")
            }
            WorkloadError::InvalidDeadline(msg) => {
                write!(f, "invalid deadline spec: {msg}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = WorkloadError::NotStochastic { row: 2, sum: 0.9 };
        assert!(e.to_string().contains("row 2"));
        let e = WorkloadError::InvalidProbability {
            what: "arrival",
            value: 1.5,
        };
        assert!(e.to_string().contains("1.5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<WorkloadError>();
    }
}
