use crate::{geometric_gap, ArrivalGap, RequestGenerator, WorkloadError};
use qdpm_core::{StateError, StateReader, StateWriter};
use rand::Rng;

// The workspace's canonical samplers (bit-identical everywhere a seed is
// shared); re-exported crate-wide so every generator draws the same way.
pub(crate) use qdpm_core::rng_util::uniform;
use qdpm_core::rng_util::uniform_index;

fn check_probability(what: &'static str, p: f64, allow_zero: bool) -> Result<(), WorkloadError> {
    let ok = p.is_finite() && p <= 1.0 && (p > 0.0 || (allow_zero && p == 0.0));
    if ok {
        Ok(())
    } else {
        Err(WorkloadError::InvalidProbability { what, value: p })
    }
}

/// Memoryless arrivals: one request per slice with fixed probability `p`.
///
/// This is the stationary workload of the paper's Fig. 1 experiment; with a
/// Bernoulli SR the exact DTMDP has a single requester mode, so the Q-DPM
/// agent observes the full Markov state and can converge to the true optimum.
#[derive(Debug, Clone, PartialEq)]
pub struct BernoulliArrivals {
    p: f64,
}

impl BernoulliArrivals {
    /// Creates the generator with per-slice arrival probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidProbability`] unless `0 <= p <= 1`.
    pub fn new(p: f64) -> Result<Self, WorkloadError> {
        check_probability("arrival", p, true)?;
        Ok(BernoulliArrivals { p })
    }

    /// The arrival probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl RequestGenerator for BernoulliArrivals {
    fn next_arrivals(&mut self, rng: &mut dyn Rng) -> u32 {
        u32::from(uniform(rng) < self.p)
    }

    /// Exact gap sampler: one geometric inversion draw replaces the
    /// per-slice Bernoulli loop. Exact in distribution; the RNG stream
    /// differs from per-slice stepping (fewer draws). Truncation past
    /// `limit` is sound because the geometric law is memoryless.
    fn next_arrival_gap(&mut self, rng: &mut dyn Rng, limit: u64) -> ArrivalGap {
        if limit == 0 {
            return ArrivalGap::Quiet { advanced: 0 };
        }
        let g = geometric_gap(rng, self.p);
        if g > limit {
            ArrivalGap::Quiet { advanced: limit }
        } else {
            ArrivalGap::Arrival {
                empty: g - 1,
                count: 1,
            }
        }
    }

    fn mean_rate(&self) -> Option<f64> {
        Some(self.p)
    }

    fn reset(&mut self) {}
}

/// Markov-modulated arrivals: a hidden Markov chain over modes, each with its
/// own per-slice arrival probability.
///
/// This is the discrete-time analogue of an MMPP and the canonical
/// nontrivial SR of the model-based DPM literature.
#[derive(Debug, Clone, PartialEq)]
pub struct MmppArrivals {
    /// Row-major `n x n` row-stochastic mode transition matrix.
    transition: Vec<f64>,
    /// Per-mode arrival probability.
    arrival_prob: Vec<f64>,
    n: usize,
    mode: usize,
    initial_mode: usize,
}

impl MmppArrivals {
    /// Creates a modulated generator from a row-stochastic `transition`
    /// matrix (row-major, `n*n` entries) and per-mode arrival probabilities.
    ///
    /// # Errors
    ///
    /// Returns a [`WorkloadError`] when dimensions disagree, a row does not
    /// sum to 1 (tolerance `1e-9`), or a probability is out of range.
    pub fn new(transition: Vec<f64>, arrival_prob: Vec<f64>) -> Result<Self, WorkloadError> {
        let n = arrival_prob.len();
        if n == 0 || transition.len() != n * n {
            return Err(WorkloadError::DimensionMismatch(format!(
                "{} modes but {} transition entries",
                n,
                transition.len()
            )));
        }
        for (i, row) in transition.chunks(n).enumerate() {
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > 1e-9 {
                return Err(WorkloadError::NotStochastic { row: i, sum });
            }
            for &p in row {
                check_probability("mode transition", p, true)?;
            }
        }
        for &p in &arrival_prob {
            check_probability("arrival", p, true)?;
        }
        Ok(MmppArrivals {
            transition,
            arrival_prob,
            n,
            mode: 0,
            initial_mode: 0,
        })
    }

    /// Sets the starting mode (default 0).
    ///
    /// # Panics
    ///
    /// Panics if `mode` is out of range.
    #[must_use]
    pub fn with_initial_mode(mut self, mode: usize) -> Self {
        assert!(mode < self.n, "initial mode out of range");
        self.mode = mode;
        self.initial_mode = mode;
        self
    }

    /// The stationary distribution of the mode chain, by power iteration.
    #[must_use]
    pub fn stationary_distribution(&self) -> Vec<f64> {
        crate::markov::stationary_of(&self.transition, self.n)
    }

    /// Per-mode arrival probabilities.
    #[must_use]
    pub fn arrival_probs(&self) -> &[f64] {
        &self.arrival_prob
    }

    /// Row-major mode transition matrix.
    #[must_use]
    pub fn transition_matrix(&self) -> &[f64] {
        &self.transition
    }

    /// Moves the hidden chain to a destination sampled *conditional on
    /// leaving* the current mode (the per-slice CDF scan restricted to
    /// `j != mode`, normalized by `1 - stay`).
    fn leave_mode(&mut self, rng: &mut dyn Rng) {
        let row = &self.transition[self.mode * self.n..(self.mode + 1) * self.n];
        let total = 1.0 - row[self.mode];
        let mut u = uniform(rng) * total;
        let mut next = self.mode;
        for (j, &p) in row.iter().enumerate() {
            if j == self.mode {
                continue;
            }
            next = j;
            u -= p;
            if u < 0.0 {
                break;
            }
        }
        self.mode = next;
    }
}

impl RequestGenerator for MmppArrivals {
    fn next_arrivals(&mut self, rng: &mut dyn Rng) -> u32 {
        let arrived = u32::from(uniform(rng) < self.arrival_prob[self.mode]);
        // Evolve the hidden mode.
        let u = uniform(rng);
        let row = &self.transition[self.mode * self.n..(self.mode + 1) * self.n];
        let mut acc = 0.0;
        let mut next = self.n - 1;
        for (j, &p) in row.iter().enumerate() {
            acc += p;
            if u < acc {
                next = j;
                break;
            }
        }
        self.mode = next;
        arrived
    }

    /// Exact gap sampler by mode-sojourn walking: per sojourn in mode `m`,
    /// the slice of the first arrival (`Geom(p_m)`) and the slice of the
    /// first mode departure (`Geom(1 - T[m][m])`) are sampled with one
    /// draw each — valid because the per-slice arrival and mode-evolution
    /// draws are independent — and the earlier event wins; departures
    /// resample the destination conditional on leaving. Exact in
    /// distribution, draw order differs from per-slice stepping.
    /// Truncation past `limit` is sound by memorylessness of both laws.
    fn next_arrival_gap(&mut self, rng: &mut dyn Rng, limit: u64) -> ArrivalGap {
        let mut consumed = 0u64;
        while consumed < limit {
            let rem = limit - consumed;
            let p = self.arrival_prob[self.mode];
            let stay = self.transition[self.mode * self.n + self.mode];
            let a = geometric_gap(rng, p);
            let c = geometric_gap(rng, 1.0 - stay);
            if a > rem && c > rem {
                return ArrivalGap::Quiet { advanced: limit };
            }
            if a <= c {
                // Arrival on slice `a` of this sojourn; if the chain also
                // departs on that very slice, it does so after the arrival
                // (matching the per-slice draw order).
                if a == c {
                    self.leave_mode(rng);
                }
                return ArrivalGap::Arrival {
                    empty: consumed + a - 1,
                    count: 1,
                };
            }
            // Departure first: `c` arrival-free slices, then a new sojourn.
            consumed += c;
            self.leave_mode(rng);
        }
        ArrivalGap::Quiet { advanced: limit }
    }

    fn mode(&self) -> usize {
        self.mode
    }

    fn n_modes(&self) -> usize {
        self.n
    }

    fn mean_rate(&self) -> Option<f64> {
        let pi = self.stationary_distribution();
        Some(pi.iter().zip(&self.arrival_prob).map(|(a, b)| a * b).sum())
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.put_usize(self.mode);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let mode = r.get_usize()?;
        if mode >= self.n {
            return Err(StateError::BadValue(format!(
                "mmpp mode {mode} out of range for {} modes",
                self.n
            )));
        }
        self.mode = mode;
        Ok(())
    }

    fn reset(&mut self) {
        self.mode = self.initial_mode;
    }
}

/// Bursty on/off arrivals: geometric on- and off-sojourns; requests only
/// arrive (with probability `p_arrival_on`) while the source is on.
#[derive(Debug, Clone, PartialEq)]
pub struct OnOffArrivals {
    p_on_to_off: f64,
    p_off_to_on: f64,
    p_arrival_on: f64,
    on: bool,
}

impl OnOffArrivals {
    /// Creates a bursty source. `p_on_to_off` / `p_off_to_on` are the
    /// per-slice switching probabilities; `p_arrival_on` is the arrival
    /// probability while on. The source starts off.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidProbability`] when any parameter is
    /// outside `[0, 1]` or both switching probabilities are zero.
    pub fn new(
        p_on_to_off: f64,
        p_off_to_on: f64,
        p_arrival_on: f64,
    ) -> Result<Self, WorkloadError> {
        check_probability("on->off", p_on_to_off, true)?;
        check_probability("off->on", p_off_to_on, true)?;
        check_probability("arrival", p_arrival_on, true)?;
        if p_on_to_off == 0.0 && p_off_to_on == 0.0 {
            return Err(WorkloadError::InvalidProbability {
                what: "switching",
                value: 0.0,
            });
        }
        Ok(OnOffArrivals {
            p_on_to_off,
            p_off_to_on,
            p_arrival_on,
            on: false,
        })
    }

    /// Long-run fraction of time the source is on.
    #[must_use]
    pub fn duty_cycle(&self) -> f64 {
        self.p_off_to_on / (self.p_off_to_on + self.p_on_to_off)
    }
}

impl RequestGenerator for OnOffArrivals {
    fn next_arrivals(&mut self, rng: &mut dyn Rng) -> u32 {
        let arrived = if self.on {
            u32::from(uniform(rng) < self.p_arrival_on)
        } else {
            0
        };
        let flip = uniform(rng);
        if self.on {
            if flip < self.p_on_to_off {
                self.on = false;
            }
        } else if flip < self.p_off_to_on {
            self.on = true;
        }
        arrived
    }

    fn mode(&self) -> usize {
        usize::from(self.on)
    }

    fn n_modes(&self) -> usize {
        2
    }

    fn mean_rate(&self) -> Option<f64> {
        Some(self.duty_cycle() * self.p_arrival_on)
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.put_bool(self.on);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.on = r.get_bool()?;
        Ok(())
    }

    fn reset(&mut self) {
        self.on = false;
    }
}

/// Heavy-tailed arrivals: Pareto-distributed interarrival gaps, discretized
/// by rounding up to whole slices.
///
/// Heavy tails produce the long idle periods that make timeout policies
/// look good and give learning policies room to exploit deep sleep.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoArrivals {
    /// Tail index; heavier tail for smaller alpha. Must exceed 1 for a
    /// finite mean.
    alpha: f64,
    /// Scale (minimum gap), in slices.
    xm: f64,
    countdown: u64,
}

impl ParetoArrivals {
    /// Creates a Pareto-gap generator with tail index `alpha > 1` and scale
    /// `xm >= 1` slices.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidPareto`] for out-of-range parameters.
    pub fn new(alpha: f64, xm: f64) -> Result<Self, WorkloadError> {
        if !(alpha.is_finite() && alpha > 1.0) {
            return Err(WorkloadError::InvalidPareto(format!(
                "alpha {alpha} must exceed 1 for a finite mean"
            )));
        }
        if !(xm.is_finite() && xm >= 1.0) {
            return Err(WorkloadError::InvalidPareto(format!(
                "xm {xm} must be >= 1 slice"
            )));
        }
        Ok(ParetoArrivals {
            alpha,
            xm,
            countdown: 0,
        })
    }

    fn sample_gap(&self, rng: &mut dyn Rng) -> u64 {
        // Inverse CDF: X = xm / U^(1/alpha), discretized upward.
        let u = uniform(rng).max(f64::MIN_POSITIVE);
        let x = self.xm / u.powf(1.0 / self.alpha);
        x.ceil().min(1e12) as u64
    }
}

impl RequestGenerator for ParetoArrivals {
    fn next_arrivals(&mut self, rng: &mut dyn Rng) -> u32 {
        if self.countdown == 0 {
            self.countdown = self.sample_gap(rng);
        }
        self.countdown -= 1;
        u32::from(self.countdown == 0)
    }

    /// Exact and stream-identical to per-slice stepping: the countdown
    /// already is the gap; it is only consumed in bulk.
    fn next_arrival_gap(&mut self, rng: &mut dyn Rng, limit: u64) -> ArrivalGap {
        if limit == 0 {
            return ArrivalGap::Quiet { advanced: 0 };
        }
        if self.countdown == 0 {
            self.countdown = self.sample_gap(rng);
        }
        if self.countdown > limit {
            self.countdown -= limit;
            ArrivalGap::Quiet { advanced: limit }
        } else {
            let gap = self.countdown;
            self.countdown = 0;
            ArrivalGap::Arrival {
                empty: gap - 1,
                count: 1,
            }
        }
    }

    fn mean_rate(&self) -> Option<f64> {
        // Continuous-Pareto approximation of the discretized mean gap; the
        // ceil() discretization adds at most one slice to the true mean.
        let mean_gap = self.alpha * self.xm / (self.alpha - 1.0);
        Some(1.0 / mean_gap)
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.put_u64(self.countdown);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.countdown = r.get_u64()?;
        Ok(())
    }

    fn reset(&mut self) {
        self.countdown = 0;
    }
}

/// Deterministic arrivals every `period` slices, with optional uniform
/// jitter of up to `jitter` slices either way.
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodicArrivals {
    period: u64,
    jitter: u64,
    countdown: u64,
}

impl PeriodicArrivals {
    /// Creates a periodic source. `jitter` must be strictly less than
    /// `period` so gaps stay positive.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::ZeroPeriod`] when `period == 0`, or a
    /// [`WorkloadError::DimensionMismatch`] when `jitter >= period`.
    pub fn new(period: u64, jitter: u64) -> Result<Self, WorkloadError> {
        if period == 0 {
            return Err(WorkloadError::ZeroPeriod);
        }
        if jitter >= period {
            return Err(WorkloadError::DimensionMismatch(format!(
                "jitter {jitter} must be below period {period}"
            )));
        }
        Ok(PeriodicArrivals {
            period,
            jitter,
            countdown: period,
        })
    }
}

impl RequestGenerator for PeriodicArrivals {
    fn next_arrivals(&mut self, rng: &mut dyn Rng) -> u32 {
        if self.countdown == 0 {
            let spread = 2 * self.jitter + 1;
            let offset = uniform_index(rng, spread as usize) as u64;
            self.countdown = self.period + offset - self.jitter;
        }
        self.countdown -= 1;
        u32::from(self.countdown == 0)
    }

    /// Exact and stream-identical to per-slice stepping: the (possibly
    /// jittered) countdown already is the gap; it is only consumed in bulk.
    fn next_arrival_gap(&mut self, rng: &mut dyn Rng, limit: u64) -> ArrivalGap {
        if limit == 0 {
            return ArrivalGap::Quiet { advanced: 0 };
        }
        if self.countdown == 0 {
            let spread = 2 * self.jitter + 1;
            let offset = uniform_index(rng, spread as usize) as u64;
            self.countdown = self.period + offset - self.jitter;
        }
        if self.countdown > limit {
            self.countdown -= limit;
            ArrivalGap::Quiet { advanced: limit }
        } else {
            let gap = self.countdown;
            self.countdown = 0;
            ArrivalGap::Arrival {
                empty: gap - 1,
                count: 1,
            }
        }
    }

    fn mean_rate(&self) -> Option<f64> {
        Some(1.0 / self.period as f64)
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.put_u64(self.countdown);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.countdown = r.get_u64()?;
        Ok(())
    }

    fn reset(&mut self) {
        self.countdown = self.period;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(gen: &mut dyn RequestGenerator, steps: u64, seed: u64) -> u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..steps)
            .map(|_| u64::from(gen.next_arrivals(&mut rng)))
            .sum()
    }

    #[test]
    fn bernoulli_validates() {
        assert!(BernoulliArrivals::new(0.0).is_ok());
        assert!(BernoulliArrivals::new(1.0).is_ok());
        assert!(BernoulliArrivals::new(-0.1).is_err());
        assert!(BernoulliArrivals::new(1.5).is_err());
        assert!(BernoulliArrivals::new(f64::NAN).is_err());
    }

    #[test]
    fn bernoulli_empirical_rate_matches() {
        let mut gen = BernoulliArrivals::new(0.3).unwrap();
        let count = run(&mut gen, 100_000, 1);
        let rate = count as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut never = BernoulliArrivals::new(0.0).unwrap();
        assert_eq!(run(&mut never, 1000, 2), 0);
        let mut always = BernoulliArrivals::new(1.0).unwrap();
        assert_eq!(run(&mut always, 1000, 3), 1000);
    }

    #[test]
    fn mmpp_validates_dimensions_and_rows() {
        assert!(MmppArrivals::new(vec![1.0], vec![0.5]).is_ok());
        assert!(MmppArrivals::new(vec![0.5, 0.5], vec![0.5]).is_err());
        let bad_row = MmppArrivals::new(vec![0.6, 0.3, 0.5, 0.5], vec![0.1, 0.9]);
        assert!(matches!(
            bad_row,
            Err(WorkloadError::NotStochastic { row: 0, .. })
        ));
    }

    #[test]
    fn mmpp_stationary_distribution_two_modes() {
        // Symmetric chain -> uniform stationary distribution.
        let gen = MmppArrivals::new(vec![0.9, 0.1, 0.1, 0.9], vec![0.0, 1.0]).unwrap();
        let pi = gen.stationary_distribution();
        assert!((pi[0] - 0.5).abs() < 1e-9);
        assert!((pi[1] - 0.5).abs() < 1e-9);
        assert!((gen.mean_rate().unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn mmpp_empirical_rate_matches_analytic() {
        let mut gen = MmppArrivals::new(vec![0.95, 0.05, 0.20, 0.80], vec![0.02, 0.60]).unwrap();
        let analytic = gen.mean_rate().unwrap();
        let count = run(&mut gen, 200_000, 11);
        let rate = count as f64 / 200_000.0;
        assert!((rate - analytic).abs() < 0.01, "rate {rate} vs {analytic}");
    }

    #[test]
    fn mmpp_mode_tracking_and_reset() {
        let mut gen = MmppArrivals::new(vec![0.0, 1.0, 1.0, 0.0], vec![0.0, 0.0])
            .unwrap()
            .with_initial_mode(1);
        assert_eq!(gen.mode(), 1);
        let mut rng = StdRng::seed_from_u64(5);
        gen.next_arrivals(&mut rng);
        assert_eq!(gen.mode(), 0); // deterministic alternation
        gen.reset();
        assert_eq!(gen.mode(), 1);
        assert_eq!(gen.n_modes(), 2);
    }

    #[test]
    fn onoff_duty_cycle_and_rate() {
        let gen = OnOffArrivals::new(0.1, 0.05, 0.8).unwrap();
        assert!((gen.duty_cycle() - 1.0 / 3.0).abs() < 1e-12);
        assert!((gen.mean_rate().unwrap() - 0.8 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn onoff_empirical_rate() {
        let mut gen = OnOffArrivals::new(0.02, 0.02, 0.5).unwrap();
        let count = run(&mut gen, 400_000, 21);
        let rate = count as f64 / 400_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn onoff_rejects_frozen_chain() {
        assert!(OnOffArrivals::new(0.0, 0.0, 0.5).is_err());
    }

    #[test]
    fn onoff_emits_nothing_while_off() {
        let mut gen = OnOffArrivals::new(0.5, 0.0, 1.0).unwrap(); // never turns on
        assert_eq!(run(&mut gen, 1000, 3), 0);
    }

    #[test]
    fn pareto_validates() {
        assert!(ParetoArrivals::new(1.5, 4.0).is_ok());
        assert!(ParetoArrivals::new(1.0, 4.0).is_err());
        assert!(ParetoArrivals::new(2.0, 0.5).is_err());
    }

    #[test]
    fn pareto_gaps_at_least_scale() {
        let mut gen = ParetoArrivals::new(2.0, 5.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut last_arrival: Option<i64> = None;
        for t in 0..20_000i64 {
            if gen.next_arrivals(&mut rng) > 0 {
                if let Some(prev) = last_arrival {
                    assert!(t - prev >= 5, "gap {} below scale", t - prev);
                }
                last_arrival = Some(t);
            }
        }
        assert!(last_arrival.is_some(), "no arrivals at all");
    }

    #[test]
    fn pareto_empirical_rate_near_analytic() {
        let mut gen = ParetoArrivals::new(2.5, 3.0).unwrap();
        let analytic = gen.mean_rate().unwrap();
        let count = run(&mut gen, 300_000, 33);
        let rate = count as f64 / 300_000.0;
        // ceil() discretization biases the rate slightly low.
        assert!(
            rate <= analytic * 1.05 && rate > analytic * 0.6,
            "rate {rate} vs {analytic}"
        );
    }

    #[test]
    fn periodic_exact_without_jitter() {
        let mut gen = PeriodicArrivals::new(4, 0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let pattern: Vec<u32> = (0..12).map(|_| gen.next_arrivals(&mut rng)).collect();
        assert_eq!(pattern, vec![0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1]);
    }

    #[test]
    fn periodic_with_jitter_keeps_mean_rate() {
        let mut gen = PeriodicArrivals::new(10, 3).unwrap();
        let count = run(&mut gen, 100_000, 17);
        let rate = count as f64 / 100_000.0;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn periodic_validates() {
        assert!(PeriodicArrivals::new(0, 0).is_err());
        assert!(PeriodicArrivals::new(5, 5).is_err());
        assert!(PeriodicArrivals::new(5, 4).is_ok());
    }

    #[test]
    fn uniform_helper_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1234);
        for _ in 0..10_000 {
            let u = uniform(&mut rng);
            assert!((0.0..1.0).contains(&u));
        }
    }

    /// Expands gap-API consumption back into a per-slice arrival sequence.
    fn arrivals_via_gaps(
        gen: &mut dyn RequestGenerator,
        rng: &mut dyn Rng,
        steps: u64,
        chunk: u64,
    ) -> Vec<u32> {
        let mut out = Vec::new();
        while (out.len() as u64) < steps {
            let limit = chunk.min(steps - out.len() as u64);
            match gen.next_arrival_gap(rng, limit) {
                ArrivalGap::Arrival { empty, count } => {
                    out.extend(std::iter::repeat_n(0, empty as usize));
                    out.push(count);
                }
                ArrivalGap::Quiet { advanced } => {
                    out.extend(std::iter::repeat_n(0, advanced as usize));
                    assert!(advanced > 0 || limit == 0, "quiet gap must make progress");
                }
            }
        }
        out.truncate(steps as usize);
        out
    }

    #[test]
    fn geometric_gap_edge_cases() {
        let mut rng = StdRng::seed_from_u64(8);
        assert_eq!(geometric_gap(&mut rng, 0.0), u64::MAX);
        assert_eq!(geometric_gap(&mut rng, -0.5), u64::MAX);
        assert_eq!(geometric_gap(&mut rng, 1.0), 1);
        for _ in 0..1000 {
            assert!(geometric_gap(&mut rng, 0.3) >= 1);
        }
    }

    #[test]
    fn geometric_gap_mean_matches_analytic() {
        let mut rng = StdRng::seed_from_u64(77);
        for p in [0.02, 0.1, 0.5, 0.9] {
            let n = 40_000;
            let total: f64 = (0..n).map(|_| geometric_gap(&mut rng, p) as f64).sum();
            let mean = total / n as f64;
            assert!(
                (mean - 1.0 / p).abs() < 0.05 / p,
                "p={p}: mean {mean} vs {}",
                1.0 / p
            );
        }
    }

    #[test]
    fn default_gap_fallback_is_stream_identical_to_per_slice() {
        // OnOff has no override: gap consumption must reproduce the exact
        // per-slice sequence from the same seed.
        let mut a = OnOffArrivals::new(0.05, 0.03, 0.7).unwrap();
        let mut b = a.clone();
        let mut rng_a = StdRng::seed_from_u64(4242);
        let mut rng_b = StdRng::seed_from_u64(4242);
        let per_slice: Vec<u32> = (0..5_000).map(|_| a.next_arrivals(&mut rng_a)).collect();
        let via_gaps = arrivals_via_gaps(&mut b, &mut rng_b, 5_000, 37);
        assert_eq!(per_slice, via_gaps);
    }

    #[test]
    fn pareto_and_periodic_gaps_are_stream_identical() {
        let mut a = ParetoArrivals::new(2.0, 4.0).unwrap();
        let mut b = a.clone();
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        let per_slice: Vec<u32> = (0..4_000).map(|_| a.next_arrivals(&mut rng_a)).collect();
        assert_eq!(per_slice, arrivals_via_gaps(&mut b, &mut rng_b, 4_000, 23));

        let mut a = PeriodicArrivals::new(10, 3).unwrap();
        let mut b = a.clone();
        let mut rng_a = StdRng::seed_from_u64(17);
        let mut rng_b = StdRng::seed_from_u64(17);
        let per_slice: Vec<u32> = (0..4_000).map(|_| a.next_arrivals(&mut rng_a)).collect();
        assert_eq!(per_slice, arrivals_via_gaps(&mut b, &mut rng_b, 4_000, 7));
    }

    #[test]
    fn bernoulli_gap_rate_matches_per_slice_rate() {
        // Different draw order, same law: empirical rates agree closely.
        let p = 0.04;
        let steps = 400_000;
        let mut per = BernoulliArrivals::new(p).unwrap();
        let count_per = run(&mut per, steps, 311);
        let mut gap = BernoulliArrivals::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(312);
        let count_gap: u64 = arrivals_via_gaps(&mut gap, &mut rng, steps, 501)
            .iter()
            .map(|&a| u64::from(a))
            .sum();
        let (r1, r2) = (
            count_per as f64 / steps as f64,
            count_gap as f64 / steps as f64,
        );
        assert!((r1 - p).abs() < 0.005, "per-slice rate {r1}");
        assert!((r2 - p).abs() < 0.005, "gap rate {r2}");
    }

    #[test]
    fn bernoulli_gap_extremes() {
        let mut never = BernoulliArrivals::new(0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            never.next_arrival_gap(&mut rng, 1000),
            ArrivalGap::Quiet { advanced: 1000 }
        );
        let mut always = BernoulliArrivals::new(1.0).unwrap();
        assert_eq!(
            always.next_arrival_gap(&mut rng, 1000),
            ArrivalGap::Arrival { empty: 0, count: 1 }
        );
        assert_eq!(
            always.next_arrival_gap(&mut rng, 0),
            ArrivalGap::Quiet { advanced: 0 }
        );
    }

    #[test]
    fn mmpp_gap_rate_matches_analytic() {
        let mut gen = MmppArrivals::new(vec![0.98, 0.02, 0.10, 0.90], vec![0.01, 0.30]).unwrap();
        let analytic = gen.mean_rate().unwrap();
        let steps = 400_000;
        let mut rng = StdRng::seed_from_u64(55);
        let count: u64 = arrivals_via_gaps(&mut gen, &mut rng, steps, 701)
            .iter()
            .map(|&a| u64::from(a))
            .sum();
        let rate = count as f64 / steps as f64;
        assert!(
            (rate - analytic).abs() < 0.01,
            "gap rate {rate} vs analytic {analytic}"
        );
    }

    #[test]
    fn mmpp_gap_deterministic_alternation_tracks_modes() {
        // Chain that deterministically alternates; only mode 1 emits.
        let mut gen = MmppArrivals::new(vec![0.0, 1.0, 1.0, 0.0], vec![0.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        // Slice pattern: mode 0 (no arrival) -> mode 1 (arrival) -> ...
        let seq = arrivals_via_gaps(&mut gen, &mut rng, 10, 64);
        assert_eq!(seq, vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1]);
    }
}
