use serde::{Deserialize, Serialize};

use crate::WorkloadError;

/// Exact Markov description of a workload's arrival process.
///
/// This is the interface between the workload crate and the *model-based*
/// side of the reproduction: when a [`crate::WorkloadSpec`] is Markovian
/// (Bernoulli, MMPP, on/off), it exports this model, and `qdpm-mdp` composes
/// it with a device model into the exact DTMDP whose solution is the paper's
/// "optimal policy derived by analytical techniques which assume model is
/// completely known in prior" (Fig. 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkovArrivalModel {
    /// Row-major `n x n` row-stochastic mode transition matrix.
    pub transition: Vec<f64>,
    /// Per-mode probability that one request arrives in a slice.
    pub arrival_prob: Vec<f64>,
}

impl MarkovArrivalModel {
    /// Creates and validates a model.
    ///
    /// # Errors
    ///
    /// Returns a [`WorkloadError`] on dimension mismatch or a non-stochastic
    /// transition row.
    pub fn new(transition: Vec<f64>, arrival_prob: Vec<f64>) -> Result<Self, WorkloadError> {
        let n = arrival_prob.len();
        if n == 0 || transition.len() != n * n {
            return Err(WorkloadError::DimensionMismatch(format!(
                "{} modes but {} transition entries",
                n,
                transition.len()
            )));
        }
        for (i, row) in transition.chunks(n).enumerate() {
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > 1e-9 {
                return Err(WorkloadError::NotStochastic { row: i, sum });
            }
        }
        for &p in &arrival_prob {
            if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                return Err(WorkloadError::InvalidProbability {
                    what: "arrival",
                    value: p,
                });
            }
        }
        Ok(MarkovArrivalModel {
            transition,
            arrival_prob,
        })
    }

    /// Single-mode (Bernoulli) model.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidProbability`] when `p` is out of range.
    pub fn bernoulli(p: f64) -> Result<Self, WorkloadError> {
        MarkovArrivalModel::new(vec![1.0], vec![p])
    }

    /// Number of hidden modes.
    #[must_use]
    pub fn n_modes(&self) -> usize {
        self.arrival_prob.len()
    }

    /// Probability of moving from mode `i` to mode `j` in one slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[must_use]
    pub fn mode_transition(&self, i: usize, j: usize) -> f64 {
        let n = self.n_modes();
        assert!(i < n && j < n);
        self.transition[i * n + j]
    }

    /// Stationary distribution of the mode chain (power iteration).
    #[must_use]
    pub fn stationary_distribution(&self) -> Vec<f64> {
        stationary_of(&self.transition, self.n_modes())
    }

    /// Long-run mean arrivals per slice.
    #[must_use]
    pub fn mean_rate(&self) -> f64 {
        self.stationary_distribution()
            .iter()
            .zip(&self.arrival_prob)
            .map(|(a, b)| a * b)
            .sum()
    }
}

/// Stationary distribution of a row-stochastic `n x n` transition matrix
/// (row-major), by power iteration from the uniform vector. Shared by
/// every mode chain in this crate so tolerance/iteration-cap changes land
/// in one place.
pub(crate) fn stationary_of(transition: &[f64], n: usize) -> Vec<f64> {
    debug_assert_eq!(transition.len(), n * n);
    let mut pi = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    for _ in 0..10_000 {
        for x in next.iter_mut() {
            *x = 0.0;
        }
        for (i, &p) in pi.iter().enumerate() {
            let row = &transition[i * n..(i + 1) * n];
            for (x, &t) in next.iter_mut().zip(row) {
                *x += p * t;
            }
        }
        let delta: f64 = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        pi.copy_from_slice(&next);
        if delta < 1e-13 {
            break;
        }
    }
    pi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_model() {
        let m = MarkovArrivalModel::bernoulli(0.2).unwrap();
        assert_eq!(m.n_modes(), 1);
        assert_eq!(m.mode_transition(0, 0), 1.0);
        assert!((m.mean_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_rows() {
        let r = MarkovArrivalModel::new(vec![0.5, 0.4, 0.5, 0.5], vec![0.1, 0.2]);
        assert!(matches!(
            r,
            Err(WorkloadError::NotStochastic { row: 0, .. })
        ));
    }

    #[test]
    fn rejects_bad_arrival_prob() {
        let r = MarkovArrivalModel::new(vec![1.0], vec![1.2]);
        assert!(matches!(r, Err(WorkloadError::InvalidProbability { .. })));
    }

    #[test]
    fn asymmetric_stationary() {
        // off->on 0.2, on->off 0.1 => pi_on = 2/3.
        let m = MarkovArrivalModel::new(vec![0.8, 0.2, 0.1, 0.9], vec![0.0, 0.3]).unwrap();
        let pi = m.stationary_distribution();
        assert!((pi[1] - 2.0 / 3.0).abs() < 1e-9);
        assert!((m.mean_rate() - 0.2).abs() < 1e-9);
    }
}
