use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{ArrivalGap, RequestGenerator, Step, WorkloadError, WorkloadSpec};

/// One stationary stretch of a piecewise-stationary workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// How many slices this segment lasts.
    pub duration: Step,
    /// The stationary workload active during the segment.
    pub spec: WorkloadSpec,
}

impl Segment {
    /// Convenience constructor.
    #[must_use]
    pub fn new(duration: Step, spec: WorkloadSpec) -> Self {
        Segment { duration, spec }
    }
}

/// Piecewise-stationary workload: the Fig. 2 driver.
///
/// The paper evaluates rapid response by "feeding temporarily stationary
/// synthetic input" whose parameters jump at switching points (the vertical
/// lines of Fig. 2). This type concatenates stationary [`Segment`]s, builds
/// each generator lazily on segment entry, and exposes the exact switch
/// points so harnesses can annotate their output. After the final segment
/// the last generator keeps running indefinitely.
#[derive(Debug)]
pub struct PiecewiseStationary {
    segments: Vec<Segment>,
    current: usize,
    into_segment: Step,
    active: Box<dyn RequestGenerator>,
}

impl PiecewiseStationary {
    /// Creates a piecewise workload from non-empty segments.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::EmptySegments`] when `segments` is empty or
    /// any segment has zero duration.
    pub fn new(segments: Vec<Segment>) -> Result<Self, WorkloadError> {
        if segments.is_empty() || segments.iter().any(|s| s.duration == 0) {
            return Err(WorkloadError::EmptySegments);
        }
        let active = segments[0].spec.build();
        Ok(PiecewiseStationary {
            segments,
            current: 0,
            into_segment: 0,
            active,
        })
    }

    /// Absolute slice indices at which the workload switches segments
    /// (one per boundary; the vertical lines of Fig. 2).
    #[must_use]
    pub fn switch_points(&self) -> Vec<Step> {
        let mut points = Vec::with_capacity(self.segments.len().saturating_sub(1));
        let mut t = 0;
        for seg in &self.segments[..self.segments.len() - 1] {
            t += seg.duration;
            points.push(t);
        }
        points
    }

    /// Index of the currently active segment.
    #[must_use]
    pub fn current_segment(&self) -> usize {
        self.current
    }

    /// The segments making up this workload.
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total length of all segments in slices.
    #[must_use]
    pub fn total_duration(&self) -> Step {
        self.segments.iter().map(|s| s.duration).sum()
    }

    /// Spec of the currently active segment (ground truth for white-box
    /// baselines that are told the parameters).
    #[must_use]
    pub fn current_spec(&self) -> &WorkloadSpec {
        &self.segments[self.current].spec
    }
}

impl RequestGenerator for PiecewiseStationary {
    fn next_arrivals(&mut self, rng: &mut dyn Rng) -> u32 {
        // Advance to the next segment when the current one is exhausted
        // (the final segment runs forever).
        if self.into_segment >= self.segments[self.current].duration
            && self.current + 1 < self.segments.len()
        {
            self.current += 1;
            self.into_segment = 0;
            self.active = self.segments[self.current].spec.build();
        }
        self.into_segment += 1;
        self.active.next_arrivals(rng)
    }

    /// Delegates to the active segment without crossing its boundary: the
    /// request is capped at the slices left in the segment, so a `Quiet`
    /// result may consume fewer than `limit` slices — the caller re-asks
    /// and the next call enters the following segment, mirroring
    /// [`PiecewiseStationary::next_arrivals`]' per-slice switch check.
    fn next_arrival_gap(&mut self, rng: &mut dyn Rng, limit: u64) -> ArrivalGap {
        if self.into_segment >= self.segments[self.current].duration
            && self.current + 1 < self.segments.len()
        {
            self.current += 1;
            self.into_segment = 0;
            self.active = self.segments[self.current].spec.build();
        }
        let capped = if self.current + 1 < self.segments.len() {
            limit.min(self.segments[self.current].duration - self.into_segment)
        } else {
            limit // the final segment runs forever
        };
        let gap = self.active.next_arrival_gap(rng, capped);
        self.into_segment += match gap {
            ArrivalGap::Arrival { empty, .. } => empty + 1,
            ArrivalGap::Quiet { advanced } => advanced,
        };
        gap
    }

    fn mode(&self) -> usize {
        self.active.mode()
    }

    fn n_modes(&self) -> usize {
        self.active.n_modes()
    }

    fn mean_rate(&self) -> Option<f64> {
        // Duration-weighted average of the segment rates.
        let total = self.total_duration() as f64;
        let mut acc = 0.0;
        for seg in &self.segments {
            acc += seg.spec.mean_rate()? * seg.duration as f64 / total;
        }
        Some(acc)
    }

    fn save_state(&self, w: &mut qdpm_core::StateWriter) {
        w.put_usize(self.current);
        w.put_u64(self.into_segment);
        self.active.save_state(w);
    }

    fn load_state(
        &mut self,
        r: &mut qdpm_core::StateReader<'_>,
    ) -> Result<(), qdpm_core::StateError> {
        let current = r.get_usize()?;
        if current >= self.segments.len() {
            return Err(qdpm_core::StateError::BadValue(format!(
                "segment cursor {current} out of range for {} segments",
                self.segments.len()
            )));
        }
        self.current = current;
        self.into_segment = r.get_u64()?;
        self.active = self.segments[self.current].spec.build();
        self.active.load_state(r)
    }

    fn reset(&mut self) {
        self.current = 0;
        self.into_segment = 0;
        self.active = self.segments[0].spec.build();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_segment() -> PiecewiseStationary {
        PiecewiseStationary::new(vec![
            Segment::new(10, WorkloadSpec::Bernoulli { p: 0.0 }),
            Segment::new(10, WorkloadSpec::Bernoulli { p: 1.0 }),
        ])
        .unwrap()
    }

    #[test]
    fn switches_exactly_at_boundary() {
        let mut w = two_segment();
        let mut rng = StdRng::seed_from_u64(0);
        let seq: Vec<u32> = (0..20).map(|_| w.next_arrivals(&mut rng)).collect();
        assert_eq!(&seq[..10], &[0; 10]);
        assert_eq!(&seq[10..], &[1; 10]);
        assert_eq!(w.current_segment(), 1);
    }

    #[test]
    fn switch_points_reported() {
        let w = PiecewiseStationary::new(vec![
            Segment::new(100, WorkloadSpec::Bernoulli { p: 0.1 }),
            Segment::new(50, WorkloadSpec::Bernoulli { p: 0.5 }),
            Segment::new(25, WorkloadSpec::Bernoulli { p: 0.2 }),
        ])
        .unwrap();
        assert_eq!(w.switch_points(), vec![100, 150]);
        assert_eq!(w.total_duration(), 175);
    }

    #[test]
    fn last_segment_runs_forever() {
        let mut w = two_segment();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            w.next_arrivals(&mut rng);
        }
        assert_eq!(w.current_segment(), 1);
        assert_eq!(w.next_arrivals(&mut rng), 1);
    }

    #[test]
    fn reset_restarts_from_first_segment() {
        let mut w = two_segment();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..15 {
            w.next_arrivals(&mut rng);
        }
        w.reset();
        assert_eq!(w.current_segment(), 0);
        assert_eq!(w.next_arrivals(&mut rng), 0);
    }

    #[test]
    fn duration_weighted_mean_rate() {
        let w = PiecewiseStationary::new(vec![
            Segment::new(75, WorkloadSpec::Bernoulli { p: 0.0 }),
            Segment::new(25, WorkloadSpec::Bernoulli { p: 0.4 }),
        ])
        .unwrap();
        assert!((w.mean_rate().unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn gap_api_respects_segment_boundaries() {
        // Trace segments make the gap API fully deterministic: the exact
        // per-slice sequence must be reproduced, including the switch.
        let build = || {
            PiecewiseStationary::new(vec![
                Segment::new(
                    7,
                    WorkloadSpec::Trace {
                        arrivals: vec![0, 0, 1, 0, 0, 0, 0],
                    },
                ),
                Segment::new(
                    5,
                    WorkloadSpec::Trace {
                        arrivals: vec![0, 1, 0, 0, 1],
                    },
                ),
            ])
            .unwrap()
        };
        let mut per = build();
        let mut rng = StdRng::seed_from_u64(0);
        let expected: Vec<u32> = (0..12).map(|_| per.next_arrivals(&mut rng)).collect();

        let mut gaps = build();
        let mut got = Vec::new();
        while got.len() < 12 {
            match gaps.next_arrival_gap(&mut rng, 12 - got.len() as u64) {
                crate::ArrivalGap::Arrival { empty, count } => {
                    got.extend(std::iter::repeat_n(0, empty as usize));
                    got.push(count);
                }
                crate::ArrivalGap::Quiet { advanced } => {
                    assert!(advanced > 0, "quiet gap must make progress");
                    got.extend(std::iter::repeat_n(0, advanced as usize));
                }
            }
        }
        assert_eq!(expected, got);
        assert_eq!(gaps.current_segment(), 1);
    }

    #[test]
    fn rejects_empty_and_zero_duration() {
        assert!(PiecewiseStationary::new(vec![]).is_err());
        assert!(PiecewiseStationary::new(vec![Segment::new(
            0,
            WorkloadSpec::Bernoulli { p: 0.5 }
        )])
        .is_err());
    }
}
