use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{RequestGenerator, WorkloadError};

/// Records per-slice arrival counts so a stochastic run can be replayed
/// deterministically (e.g. to hand identical inputs to every policy under
/// comparison).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceRecorder {
    arrivals: Vec<u32>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Appends the arrival count of one slice.
    pub fn record(&mut self, arrivals: u32) {
        self.arrivals.push(arrivals);
    }

    /// Number of slices recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Consumes the recorder into a replayable trace.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::EmptyTrace`] when nothing was recorded.
    pub fn into_replay(self) -> Result<TraceReplay, WorkloadError> {
        TraceReplay::new(self.arrivals)
    }

    /// Captures `steps` slices from `gen` into a recorder.
    pub fn capture(gen: &mut dyn RequestGenerator, rng: &mut dyn Rng, steps: u64) -> TraceRecorder {
        let mut rec = TraceRecorder::new();
        for _ in 0..steps {
            rec.record(gen.next_arrivals(rng));
        }
        rec
    }
}

/// Replays a recorded arrival trace; wraps around at the end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceReplay {
    arrivals: Vec<u32>,
    pos: usize,
}

impl TraceReplay {
    /// Creates a replay over `arrivals` (one count per slice).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::EmptyTrace`] for an empty trace.
    pub fn new(arrivals: Vec<u32>) -> Result<Self, WorkloadError> {
        if arrivals.is_empty() {
            return Err(WorkloadError::EmptyTrace);
        }
        Ok(TraceReplay { arrivals, pos: 0 })
    }

    /// Length of the underlying trace in slices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the trace is empty (never true for a constructed replay).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }
}

impl RequestGenerator for TraceReplay {
    fn next_arrivals(&mut self, _rng: &mut dyn Rng) -> u32 {
        let a = self.arrivals[self.pos];
        self.pos = (self.pos + 1) % self.arrivals.len();
        a
    }

    fn mean_rate(&self) -> Option<f64> {
        let total: u64 = self.arrivals.iter().map(|&a| u64::from(a)).sum();
        Some(total as f64 / self.arrivals.len() as f64)
    }

    fn save_state(&self, w: &mut qdpm_core::StateWriter) {
        w.put_usize(self.pos);
    }

    fn load_state(
        &mut self,
        r: &mut qdpm_core::StateReader<'_>,
    ) -> Result<(), qdpm_core::StateError> {
        let pos = r.get_usize()?;
        if pos >= self.arrivals.len() {
            return Err(qdpm_core::StateError::BadValue(format!(
                "replay cursor {pos} out of range for trace of {} slices",
                self.arrivals.len()
            )));
        }
        self.pos = pos;
        Ok(())
    }

    fn reset(&mut self) {
        self.pos = 0;
    }
}

impl TraceRecorder {
    /// Writes the trace as plain text, one arrival count per line, with a
    /// `# qdpm-trace v1` header — readable by any tool, loadable by
    /// [`TraceReplay::load`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut out = String::with_capacity(self.arrivals.len() * 2 + 16);
        out.push_str("# qdpm-trace v1\n");
        for a in &self.arrivals {
            out.push_str(&a.to_string());
            out.push('\n');
        }
        std::fs::write(path, out)
    }
}

impl TraceReplay {
    /// Loads a trace saved by [`TraceRecorder::save`]. Blank lines and
    /// `#`-comments are ignored.
    ///
    /// # Errors
    ///
    /// Returns an I/O error for unreadable files or an
    /// `InvalidData`-wrapped message for malformed lines / empty traces.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let mut arrivals = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let count: u32 = line.parse().map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("line {}: {e}", i + 1),
                )
            })?;
            arrivals.push(count);
        }
        TraceReplay::new(arrivals)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BernoulliArrivals;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn replay_wraps_and_resets() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut replay = TraceReplay::new(vec![1, 0, 2]).unwrap();
        let seq: Vec<u32> = (0..7).map(|_| replay.next_arrivals(&mut rng)).collect();
        assert_eq!(seq, vec![1, 0, 2, 1, 0, 2, 1]);
        replay.reset();
        assert_eq!(replay.next_arrivals(&mut rng), 1);
    }

    #[test]
    fn replay_mean_rate() {
        let replay = TraceReplay::new(vec![1, 0, 2, 1]).unwrap();
        assert_eq!(replay.mean_rate(), Some(1.0));
    }

    #[test]
    fn empty_trace_rejected() {
        assert_eq!(
            TraceReplay::new(vec![]).unwrap_err(),
            WorkloadError::EmptyTrace
        );
        assert_eq!(
            TraceRecorder::new().into_replay().unwrap_err(),
            WorkloadError::EmptyTrace
        );
    }

    #[test]
    fn save_load_round_trip() {
        let mut rec = TraceRecorder::new();
        for a in [1u32, 0, 2, 0, 1] {
            rec.record(a);
        }
        let path = std::env::temp_dir().join("qdpm_trace_roundtrip.txt");
        rec.save(&path).unwrap();
        let mut replay = TraceReplay::load(&path).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let seq: Vec<u32> = (0..5).map(|_| replay.next_arrivals(&mut rng)).collect();
        assert_eq!(seq, vec![1, 0, 2, 0, 1]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_malformed_lines() {
        let path = std::env::temp_dir().join("qdpm_trace_malformed.txt");
        std::fs::write(&path, "# header\n1\nnot-a-number\n").unwrap();
        let err = TraceReplay::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_empty_trace() {
        let path = std::env::temp_dir().join("qdpm_trace_empty.txt");
        std::fs::write(&path, "# nothing but comments\n\n").unwrap();
        assert!(TraceReplay::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn capture_then_replay_is_identical() {
        let mut gen = BernoulliArrivals::new(0.4).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let rec = TraceRecorder::capture(&mut gen, &mut rng, 50);
        assert_eq!(rec.len(), 50);

        // Re-run the generator with the same seed: replay must match.
        let mut gen2 = BernoulliArrivals::new(0.4).unwrap();
        let mut rng2 = StdRng::seed_from_u64(99);
        let mut replay = rec.into_replay().unwrap();
        let mut dummy = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            assert_eq!(
                replay.next_arrivals(&mut dummy),
                gen2.next_arrivals(&mut rng2)
            );
        }
    }
}
