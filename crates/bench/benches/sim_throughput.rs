//! Simulation-engine throughput: slices per second for the full system
//! loop under different power managers and workloads. Not a paper claim,
//! but the practical budget for every experiment in this repo.
//!
//! Run with: `cargo bench -p qdpm-bench --bench sim_throughput`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use qdpm_bench::standard_device;
use qdpm_core::{QDpmAgent, QDpmConfig, RewardWeights};
use qdpm_device::presets;
use qdpm_sim::experiment::run_grid;
use qdpm_sim::parallel::available_threads;
use qdpm_sim::{policies, GridParams, ScenarioGrid, ScenarioWorkload, SimConfig, Simulator};
use qdpm_workload::WorkloadSpec;

const STEPS: u64 = 10_000;

fn sim_for(policy: &str, spec: &WorkloadSpec) -> Simulator {
    let (power, service) = standard_device();
    let pm: Box<dyn qdpm_core::PowerManager> = match policy {
        "always_on" => Box::new(policies::AlwaysOn::new(&power)),
        "fixed_timeout" => Box::new(policies::FixedTimeout::break_even(&power)),
        "q_dpm" => Box::new(QDpmAgent::new(&power, QDpmConfig::default()).unwrap()),
        other => panic!("unknown policy {other}"),
    };
    Simulator::new(power, service, spec.build(), pm, SimConfig::default()).unwrap()
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    group.throughput(Throughput::Elements(STEPS));
    let bernoulli = WorkloadSpec::bernoulli(0.1).unwrap();
    let mmpp = WorkloadSpec::two_mode_mmpp(0.02, 0.5, 0.01).unwrap();

    for policy in ["always_on", "fixed_timeout", "q_dpm"] {
        group.bench_with_input(BenchmarkId::new("bernoulli", policy), &policy, |b, &p| {
            let mut sim = sim_for(p, &bernoulli);
            b.iter(|| black_box(sim.run(STEPS)))
        });
    }
    group.bench_function(BenchmarkId::new("mmpp", "q_dpm"), |b| {
        let mut sim = sim_for("q_dpm", &mmpp);
        b.iter(|| black_box(sim.run(STEPS)))
    });
    group.finish();
}

/// A small mixed grid used to compare the serial path of the experiment
/// runner against the sharded parallel path at the host's thread count.
fn small_grid() -> ScenarioGrid {
    let devices = vec![("three-state".to_string(), presets::three_state_generic())];
    let workloads = vec![
        (
            "bern-0.05".to_string(),
            ScenarioWorkload::Stationary(WorkloadSpec::bernoulli(0.05).unwrap()),
        ),
        (
            "bern-0.2".to_string(),
            ScenarioWorkload::Stationary(WorkloadSpec::bernoulli(0.2).unwrap()),
        ),
        (
            "mmpp".to_string(),
            ScenarioWorkload::Stationary(WorkloadSpec::two_mode_mmpp(0.02, 0.4, 0.01).unwrap()),
        ),
        (
            "piecewise".to_string(),
            ScenarioWorkload::Piecewise(vec![
                (2_000, WorkloadSpec::bernoulli(0.02).unwrap()),
                (2_000, WorkloadSpec::bernoulli(0.25).unwrap()),
            ]),
        ),
    ];
    let services = vec![presets::default_service()];
    ScenarioGrid::cartesian(
        &devices,
        &workloads,
        &services,
        2,
        &GridParams {
            queue_cap: 8,
            weights: RewardWeights::default(),
            train: 5_000,
            evaluate: 1_000,
            master_seed: 5,
            ..GridParams::default()
        },
    )
}

/// Serial vs parallel execution of the same grid: quantifies the
/// experiment-layer speedup on this host (the results are byte-identical
/// by the determinism contract; only wall-clock differs).
fn bench_grid_runner(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_runner");
    let grid = small_grid();
    group.throughput(Throughput::Elements(grid.len() as u64));
    group.bench_function(BenchmarkId::new("serial", "1"), |b| {
        b.iter(|| black_box(run_grid(&grid, 1).unwrap()))
    });
    let threads = available_threads();
    group.bench_function(BenchmarkId::new("parallel", threads), |b| {
        b.iter(|| black_box(run_grid(&grid, threads).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_throughput, bench_grid_runner);
criterion_main!(benches);
