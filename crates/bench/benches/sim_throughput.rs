//! Simulation-engine throughput: slices per second for the full system
//! loop under different power managers and workloads. Not a paper claim,
//! but the practical budget for every experiment in this repo.
//!
//! Run with: `cargo bench -p qdpm-bench --bench sim_throughput`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use qdpm_bench::standard_device;
use qdpm_core::{QDpmAgent, QDpmConfig};
use qdpm_sim::{policies, SimConfig, Simulator};
use qdpm_workload::WorkloadSpec;

const STEPS: u64 = 10_000;

fn sim_for(policy: &str, spec: &WorkloadSpec) -> Simulator {
    let (power, service) = standard_device();
    let pm: Box<dyn qdpm_core::PowerManager> = match policy {
        "always_on" => Box::new(policies::AlwaysOn::new(&power)),
        "fixed_timeout" => Box::new(policies::FixedTimeout::break_even(&power)),
        "q_dpm" => Box::new(QDpmAgent::new(&power, QDpmConfig::default()).unwrap()),
        other => panic!("unknown policy {other}"),
    };
    Simulator::new(power, service, spec.build(), pm, SimConfig::default()).unwrap()
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    group.throughput(Throughput::Elements(STEPS));
    let bernoulli = WorkloadSpec::bernoulli(0.1).unwrap();
    let mmpp = WorkloadSpec::two_mode_mmpp(0.02, 0.5, 0.01).unwrap();

    for policy in ["always_on", "fixed_timeout", "q_dpm"] {
        group.bench_with_input(BenchmarkId::new("bernoulli", policy), &policy, |b, &p| {
            let mut sim = sim_for(p, &bernoulli);
            b.iter(|| black_box(sim.run(STEPS)))
        });
    }
    group.bench_function(BenchmarkId::new("mmpp", "q_dpm"), |b| {
        let mut sim = sim_for("q_dpm", &mmpp);
        b.iter(|| black_box(sim.run(STEPS)))
    });
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
