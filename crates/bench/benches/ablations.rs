//! Ablation micro-benches: the runtime cost of each Q-DPM design choice
//! (schedules, exploration, encoder resolution, fuzzy membership math).
//! The *quality* side of these ablations is `--bin table_ablation`.
//!
//! Run with: `cargo bench -p qdpm-bench --bench ablations`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use qdpm_bench::standard_device;
use qdpm_core::{
    Exploration, LearningRate, Observation, PowerManager, QDpmAgent, QDpmConfig, StepOutcome,
};
use qdpm_core::{FuzzyConfig, FuzzyQDpmAgent};
use qdpm_device::DeviceMode;
use rand::SeedableRng;

fn fixture() -> (Observation, StepOutcome) {
    let (power, _) = standard_device();
    (
        Observation {
            device_mode: DeviceMode::Operational(power.highest_power_state()),
            queue_len: 2,
            idle_slices: 7,
            sr_mode_hint: None,
        },
        StepOutcome {
            energy: 1.0,
            queue_len: 2,
            dropped: 0,
            completed: 1,
            arrivals: 1,
            deadline_misses: 0,
        },
    )
}

fn bench_exploration_variants(c: &mut Criterion) {
    let (power, _) = standard_device();
    let (obs, outcome) = fixture();
    let mut group = c.benchmark_group("exploration");
    let variants: Vec<(&str, Exploration)> = vec![
        ("eps_greedy", Exploration::EpsilonGreedy { epsilon: 0.05 }),
        (
            "decaying_eps",
            Exploration::DecayingEpsilon {
                epsilon0: 0.3,
                decay: 0.9999,
                min_epsilon: 0.01,
            },
        ),
        ("boltzmann", Exploration::Boltzmann { temperature: 0.5 }),
    ];
    for (name, exploration) in variants {
        let mut agent = QDpmAgent::new(
            &power,
            QDpmConfig {
                exploration,
                ..QDpmConfig::default()
            },
        )
        .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        group.bench_function(name, |b| {
            b.iter(|| {
                let a = agent.decide(black_box(&obs), &mut rng);
                agent.observe(black_box(&outcome), &obs);
                a
            })
        });
    }
    group.finish();
}

fn bench_learning_rate_variants(c: &mut Criterion) {
    let (power, _) = standard_device();
    let (obs, outcome) = fixture();
    let mut group = c.benchmark_group("learning_rate");
    let variants: Vec<(&str, LearningRate)> = vec![
        ("constant", LearningRate::Constant(0.1)),
        ("global_decay", LearningRate::GlobalDecay { c: 1000.0 }),
        ("visit_decay", LearningRate::VisitDecay { omega: 0.7 }),
    ];
    for (name, learning_rate) in variants {
        let mut agent = QDpmAgent::new(
            &power,
            QDpmConfig {
                learning_rate,
                ..QDpmConfig::default()
            },
        )
        .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        group.bench_function(name, |b| {
            b.iter(|| {
                let a = agent.decide(black_box(&obs), &mut rng);
                agent.observe(black_box(&outcome), &obs);
                a
            })
        });
    }
    group.finish();
}

fn bench_encoder_resolution(c: &mut Criterion) {
    let (power, _) = standard_device();
    let (obs, outcome) = fixture();
    let mut group = c.benchmark_group("encoder_resolution");
    for (name, idle_thresholds) in [
        ("no_idle_feature", vec![]),
        ("idle_3_buckets", vec![2, 8]),
        ("idle_6_buckets", vec![1, 2, 4, 8, 16]),
    ] {
        let mut agent = QDpmAgent::new(
            &power,
            QDpmConfig {
                idle_thresholds,
                ..QDpmConfig::default()
            },
        )
        .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let a = agent.decide(black_box(&obs), &mut rng);
                agent.observe(black_box(&outcome), &obs);
                a
            })
        });
    }
    group.finish();
}

fn bench_fuzzy_vs_crisp_step(c: &mut Criterion) {
    let (power, _) = standard_device();
    let (obs, outcome) = fixture();
    let mut group = c.benchmark_group("fuzzy_vs_crisp");
    {
        let mut agent = QDpmAgent::new(&power, QDpmConfig::default()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        group.bench_function("crisp", |b| {
            b.iter(|| {
                let a = agent.decide(black_box(&obs), &mut rng);
                agent.observe(black_box(&outcome), &obs);
                a
            })
        });
    }
    {
        let mut agent = FuzzyQDpmAgent::new(&power, FuzzyConfig::standard(8).unwrap()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        group.bench_function("fuzzy", |b| {
            b.iter(|| {
                let a = agent.decide(black_box(&obs), &mut rng);
                agent.observe(black_box(&outcome), &obs);
                a
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_exploration_variants,
    bench_learning_rate_variants,
    bench_encoder_resolution,
    bench_fuzzy_vs_crisp_step
);
criterion_main!(benches);
