//! T3 (criterion) — per-slice power-manager overhead: what each approach
//! costs the host CPU every time slice ("feasible to implement on almost
//! any low end systems").
//!
//! Run with: `cargo bench -p qdpm-bench --bench step_overhead`

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qdpm_bench::standard_device;
use qdpm_core::{FuzzyConfig, FuzzyQDpmAgent};
use qdpm_core::{
    Observation, PowerManager, QDpmAgent, QDpmConfig, QosConfig, QosQDpmAgent, StepOutcome,
};
use qdpm_device::DeviceMode;
use qdpm_sim::{policies, AdaptiveConfig, ModelBasedAdaptive};
use rand::SeedableRng;

fn fixture() -> (Observation, StepOutcome) {
    let (power, _) = standard_device();
    (
        Observation {
            device_mode: DeviceMode::Operational(power.highest_power_state()),
            queue_len: 1,
            idle_slices: 4,
            sr_mode_hint: None,
        },
        StepOutcome {
            energy: 1.0,
            queue_len: 1,
            dropped: 0,
            completed: 0,
            arrivals: 1,
            deadline_misses: 0,
        },
    )
}

fn bench_per_slice(c: &mut Criterion) {
    let (power, service) = standard_device();
    let (obs, outcome) = fixture();
    let mut group = c.benchmark_group("per_slice_overhead");

    let mut cases: Vec<(&str, Box<dyn PowerManager>)> = vec![
        (
            "q_dpm",
            Box::new(QDpmAgent::new(&power, QDpmConfig::default()).unwrap()),
        ),
        (
            "qos_q_dpm",
            Box::new(QosQDpmAgent::new(&power, QosConfig::default()).unwrap()),
        ),
        (
            "fuzzy_q_dpm",
            Box::new(FuzzyQDpmAgent::new(&power, FuzzyConfig::standard(8).unwrap()).unwrap()),
        ),
        (
            "fixed_timeout",
            Box::new(policies::FixedTimeout::break_even(&power)),
        ),
        (
            "model_based_estimator",
            Box::new(
                ModelBasedAdaptive::new(
                    &power,
                    &service,
                    AdaptiveConfig {
                        // Never alarm: measures the always-on estimator +
                        // detector overhead alone, not a re-solve.
                        ph_threshold: 1e12,
                        ..AdaptiveConfig::default()
                    },
                )
                .unwrap(),
            ),
        ),
    ];

    for (name, pm) in cases.iter_mut() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        group.bench_function(*name, |b| {
            b.iter(|| {
                let a = pm.decide(black_box(&obs), &mut rng);
                pm.observe(black_box(&outcome), &obs);
                a
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_per_slice);
criterion_main!(benches);
