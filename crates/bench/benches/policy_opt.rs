//! T1 (criterion) — policy-optimization latency: LP vs policy iteration vs
//! value iteration across DPM state-space sizes, plus a single Q-DPM
//! decide+learn step for scale.
//!
//! Run with: `cargo bench -p qdpm-bench --bench policy_opt`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use qdpm_bench::standard_device;
use qdpm_core::{Observation, PowerManager, QDpmAgent, QDpmConfig, StepOutcome};
use qdpm_device::DeviceMode;
use qdpm_mdp::{build_dpm_mdp, lp, solvers, CostWeights, DpmModel};
use qdpm_workload::MarkovArrivalModel;
use rand::SeedableRng;

fn compile(queue_cap: usize) -> DpmModel {
    let (power, service) = standard_device();
    let arrivals = MarkovArrivalModel::bernoulli(0.1).unwrap();
    build_dpm_mdp(&power, &service, &arrivals, queue_cap, 20.0).unwrap()
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_optimization");
    for queue_cap in [4usize, 8, 16] {
        let model = compile(queue_cap);
        let cost = model.mdp.combined_cost(CostWeights::default());
        let n = model.mdp.n_states();

        group.bench_with_input(BenchmarkId::new("lp_simplex", n), &n, |b, _| {
            b.iter(|| lp::lp_solve_discounted(black_box(&model.mdp), &cost, 0.95).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("lp_primal", n), &n, |b, _| {
            b.iter(|| lp::lp_solve_primal(black_box(&model.mdp), &cost, 0.95).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("policy_iteration", n), &n, |b, _| {
            b.iter(|| solvers::policy_iteration(black_box(&model.mdp), &cost, 0.95).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("value_iteration", n), &n, |b, _| {
            b.iter(|| {
                solvers::value_iteration(
                    black_box(&model.mdp),
                    &cost,
                    solvers::SolveOptions {
                        discount: 0.95,
                        tol: 1e-9,
                        max_iter: 1_000_000,
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_qdpm_step(c: &mut Criterion) {
    let (power, _) = standard_device();
    let mut agent = QDpmAgent::new(&power, QDpmConfig::default()).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let obs = Observation {
        device_mode: DeviceMode::Operational(power.highest_power_state()),
        queue_len: 1,
        idle_slices: 3,
        sr_mode_hint: None,
    };
    let outcome = StepOutcome {
        energy: 1.0,
        queue_len: 1,
        dropped: 0,
        completed: 0,
        arrivals: 1,
        deadline_misses: 0,
    };
    c.bench_function("qdpm_decide_plus_learn", |b| {
        b.iter(|| {
            let a = agent.decide(black_box(&obs), &mut rng);
            agent.observe(black_box(&outcome), &obs);
            a
        })
    });
}

fn bench_mdp_compilation(c: &mut Criterion) {
    // The model-based pipeline also pays model (re)construction on every
    // re-estimate; Q-DPM never does.
    let mut group = c.benchmark_group("mdp_compilation");
    for queue_cap in [8usize, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(queue_cap),
            &queue_cap,
            |b, &cap| b.iter(|| compile(black_box(cap))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_solvers,
    bench_qdpm_step,
    bench_mdp_compilation
);
criterion_main!(benches);
