//! Shared scaffolding for the Q-DPM benchmark harness.
//!
//! The binaries in `src/bin/` regenerate every figure and table of the
//! paper's evaluation (see `DESIGN.md` §4 for the index); the Criterion
//! benches in `benches/` measure the runtime claims (T1/T3). Binaries print
//! TSV to stdout and mirror it into `results/` at the workspace root.

use std::fs;
use std::path::PathBuf;

use qdpm_device::{presets, PowerModel, ServiceModel};

/// The standard scenario of the headline experiments: generic three-state
/// device with geometric service.
#[must_use]
pub fn standard_device() -> (PowerModel, ServiceModel) {
    (presets::three_state_generic(), presets::default_service())
}

/// Writes `content` to `results/<name>` (best effort) and returns the path.
pub fn save_results(name: &str, content: &str) -> Option<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    fs::create_dir_all(&dir).ok()?;
    let path = dir.canonicalize().unwrap_or(dir).join(name);
    fs::write(&path, content).ok()?;
    Some(path)
}

/// Renders a two-column-per-series aligned table of windowed points for
/// quick eyeballing in a terminal.
#[must_use]
pub fn format_series_columns(
    headers: &[&str],
    columns: &[&[qdpm_sim::WindowPoint]],
) -> String {
    let mut out = String::from("end");
    for h in headers {
        out.push_str(&format!("\t{h}_cost\t{h}_reduction"));
    }
    out.push('\n');
    let rows = columns.iter().map(|c| c.len()).min().unwrap_or(0);
    for i in 0..rows {
        out.push_str(&format!("{}", columns[0][i].end));
        for col in columns {
            out.push_str(&format!(
                "\t{:.6}\t{:.6}",
                col[i].cost_per_slice, col[i].energy_reduction
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_device_is_valid() {
        let (power, service) = standard_device();
        assert!(power.n_states() >= 3);
        assert!(service.completion_probability().is_some());
    }

    #[test]
    fn format_series_produces_header_and_rows() {
        let p = qdpm_sim::WindowPoint {
            end: 10,
            energy_per_slice: 1.0,
            cost_per_slice: 1.1,
            avg_queue: 0.0,
            dropped: 0,
            energy_reduction: 0.0,
        };
        let s = format_series_columns(&["a", "b"], &[&[p], &[p]]);
        assert!(s.starts_with("end\ta_cost"));
        assert_eq!(s.lines().count(), 2);
    }
}
