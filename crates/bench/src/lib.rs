//! Shared scaffolding for the Q-DPM benchmark harness.
//!
//! The binaries in `src/bin/` regenerate every figure and table of the
//! paper's evaluation (see `DESIGN.md` §4 for the index); the Criterion
//! benches in `benches/` measure the runtime claims (T1/T3). Binaries print
//! TSV to stdout and mirror it into `results/` at the workspace root.

use std::fs;
use std::path::{Path, PathBuf};

use qdpm_device::{presets, PowerModel, ServiceModel};

/// The standard scenario of the headline experiments: generic three-state
/// device with geometric service.
#[must_use]
pub fn standard_device() -> (PowerModel, ServiceModel) {
    (presets::three_state_generic(), presets::default_service())
}

/// Parses a `--threads N` knob out of an argument list: `Ok(None)` when
/// absent, `Ok(Some(n))` for a positive count, and `Err` for a malformed
/// or zero value — never a silent fallback, since the knob pins benchmark
/// conditions. Shared by the grid-running bins (`table_sweep`,
/// `table_ablation`, `table_variants`).
///
/// # Errors
///
/// Returns a message naming the offending value.
pub fn parse_threads(args: &[String]) -> Result<Option<usize>, String> {
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = if arg == "--threads" {
            Some(it.next().map(String::as_str).unwrap_or_default())
        } else {
            arg.strip_prefix("--threads=")
        };
        let Some(value) = value else { continue };
        return match value.parse::<usize>() {
            Ok(n) if n > 0 => Ok(Some(n)),
            _ => Err(format!(
                "--threads expects a positive integer, got {value:?}"
            )),
        };
    }
    Ok(None)
}

/// Worker count for a bin: `--threads N` from `std::env::args`, else the
/// host's available parallelism. Exits with an error on a malformed value
/// rather than silently benchmarking a different configuration.
#[must_use]
pub fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    match parse_threads(&args) {
        Ok(Some(n)) => n,
        Ok(None) => qdpm_sim::parallel::available_threads(),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}

/// Whether a bare flag (e.g. `--compare-serial`) was passed to the bin.
#[must_use]
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Walks up from `start` to the *nearest* ancestor whose `Cargo.toml`
/// declares a `[workspace]` table — this crate's workspace root, wherever
/// the crate ends up nested. (If the repo itself were vendored inside a
/// larger workspace, the inner qdpm root still wins, which is where
/// `results/` belongs.)
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    start
        .ancestors()
        .find(|dir| {
            fs::read_to_string(dir.join("Cargo.toml"))
                .is_ok_and(|manifest| manifest_declares_workspace(&manifest))
        })
        .map(Path::to_path_buf)
}

/// Line-anchored check for a `[workspace]` (or `[workspace.*]`) table
/// header, so commented-out headers or the literal string inside some
/// other value don't count.
fn manifest_declares_workspace(manifest: &str) -> bool {
    manifest.lines().any(|line| {
        let line = line.trim();
        line == "[workspace]" || line.starts_with("[workspace.")
    })
}

/// The workspace root this crate lives in (nearest ancestor whose manifest
/// declares `[workspace]`), or `.` when none is found — where repo-level
/// artifacts like `BENCH_throughput.json` belong.
#[must_use]
pub fn workspace_root() -> PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap_or_else(|| PathBuf::from("."))
}

/// The directory results files are mirrored into: `$QDPM_RESULTS_DIR` when
/// set, else `<workspace root>/results`, else `./results` as a last resort
/// (e.g. binaries run outside any Cargo checkout).
#[must_use]
pub fn results_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("QDPM_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    workspace_root().join("results")
}

/// Writes `content` to [`results_dir`]`/<name>` (best effort) and returns
/// the path.
pub fn save_results(name: &str, content: &str) -> Option<PathBuf> {
    save_results_in(&results_dir(), name, content)
}

/// [`save_results`] with an explicit target directory (created on demand).
///
/// The write is crash-safe: content lands in a temp file *in the target
/// directory* and is renamed over the final name, so a crash mid-write
/// leaves either the previous complete file or no file — never a
/// half-written result a downstream plot script would silently ingest.
pub fn save_results_in(dir: &Path, name: &str, content: &str) -> Option<PathBuf> {
    fs::create_dir_all(dir).ok()?;
    let dir = dir.canonicalize().unwrap_or_else(|_| dir.to_path_buf());
    let path = dir.join(name);
    let tmp = dir.join(format!(".{name}.tmp"));
    {
        use std::io::Write as _;
        let mut f = fs::File::create(&tmp).ok()?;
        f.write_all(content.as_bytes()).ok()?;
        f.sync_all().ok()?;
    }
    if fs::rename(&tmp, &path).is_err() {
        let _ = fs::remove_file(&tmp);
        return None;
    }
    Some(path)
}

/// Renders a two-column-per-series aligned table of windowed points for
/// quick eyeballing in a terminal.
#[must_use]
pub fn format_series_columns(headers: &[&str], columns: &[&[qdpm_sim::WindowPoint]]) -> String {
    let mut out = String::from("end");
    for h in headers {
        out.push_str(&format!("\t{h}_cost\t{h}_reduction"));
    }
    out.push('\n');
    let rows = columns.iter().map(|c| c.len()).min().unwrap_or(0);
    for i in 0..rows {
        out.push_str(&format!("{}", columns[0][i].end));
        for col in columns {
            out.push_str(&format!(
                "\t{:.6}\t{:.6}",
                col[i].cost_per_slice, col[i].energy_reduction
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_device_is_valid() {
        let (power, service) = standard_device();
        assert!(power.n_states() >= 3);
        assert!(service.completion_probability().is_some());
    }

    #[test]
    fn parse_threads_forms() {
        let args = |s: &[&str]| s.iter().map(ToString::to_string).collect::<Vec<_>>();
        assert_eq!(
            parse_threads(&args(&["bin", "--threads", "4"])),
            Ok(Some(4))
        );
        assert_eq!(parse_threads(&args(&["bin", "--threads=2"])), Ok(Some(2)));
        assert_eq!(parse_threads(&args(&["bin"])), Ok(None));
        // Malformed values must error loudly, not fall back silently.
        assert!(parse_threads(&args(&["bin", "--threads", "zero"])).is_err());
        assert!(parse_threads(&args(&["bin", "--threads", "0"])).is_err());
        assert!(parse_threads(&args(&["bin", "--threads="])).is_err());
        assert!(parse_threads(&args(&["bin", "--threads"])).is_err());
    }

    #[test]
    fn workspace_root_is_found_from_manifest_dir() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("this crate lives inside the qdpm workspace");
        // The root manifest declares the workspace and its members; the
        // old `../..` scheme only matched the original nesting depth.
        let manifest = fs::read_to_string(root.join("Cargo.toml")).unwrap();
        assert!(manifest_declares_workspace(&manifest));
        assert!(manifest.contains("crates/bench"));
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn find_workspace_root_skips_package_only_manifests() {
        // Environment-independent: whatever the temp dir's ancestors hold,
        // a directory with a package-only Cargo.toml must never be
        // reported as the workspace root itself.
        let dir = std::env::temp_dir().join("qdpm-bench-package-only-selftest");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("Cargo.toml"),
            "[package]\nname = \"not-a-workspace\"\n",
        )
        .unwrap();
        assert_ne!(find_workspace_root(&dir), Some(dir.clone()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn workspace_detection_is_line_anchored() {
        assert!(manifest_declares_workspace("[workspace]\nmembers = []\n"));
        assert!(manifest_declares_workspace("  [workspace.dependencies]\n"));
        assert!(!manifest_declares_workspace("# [workspace]\n[package]\n"));
        assert!(!manifest_declares_workspace(
            "description = \"mentions [workspace] in prose\"\n"
        ));
        assert!(!manifest_declares_workspace("[workspace-tools]\n"));
    }

    #[test]
    fn save_results_in_round_trips_and_creates_the_dir() {
        // Hermetic: an explicit temp target, independent of the
        // QDPM_RESULTS_DIR environment and of the checkout's results/.
        let dir = std::env::temp_dir().join("qdpm-bench-save-results-selftest");
        let _ = fs::remove_dir_all(&dir);
        let name = "selftest.tsv";
        let path = save_results_in(&dir, name, "end\tcost\n0\t1.0\n").expect("save_results_in");
        assert!(path.ends_with(name));
        assert_eq!(
            fs::read_to_string(&path).unwrap(),
            "end\tcost\n0\t1.0\n",
            "content must round-trip"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_results_is_atomic_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join("qdpm-bench-save-results-atomic-selftest");
        let _ = fs::remove_dir_all(&dir);
        let name = "atomic.tsv";
        // Overwriting an existing result must swap in the new content
        // whole, and the temp file must not linger.
        save_results_in(&dir, name, "old\n").unwrap();
        let path = save_results_in(&dir, name, "new\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "new\n");
        let canon = dir.canonicalize().unwrap();
        let leftovers: Vec<_> = fs::read_dir(&canon)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n != name)
            .collect();
        assert!(leftovers.is_empty(), "stray files: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn format_series_produces_header_and_rows() {
        let p = qdpm_sim::WindowPoint {
            end: 10,
            energy_per_slice: 1.0,
            cost_per_slice: 1.1,
            avg_queue: 0.0,
            dropped: 0,
            energy_reduction: 0.0,
        };
        let s = format_series_columns(&["a", "b"], &[&[p], &[p]]);
        assert!(s.starts_with("end\ta_cost"));
        assert_eq!(s.lines().count(), 2);
    }
}
