//! `bench_report` — records the repo's performance trajectory.
//!
//! Measures steady-state simulation throughput (slices per second) on
//! pinned scenarios — serial single-simulator runs per policy, a parallel
//! grid driven through `qdpm_sim::parallel::run_indexed`, the
//! event-skipping engine on a sparse workload, a 1000-device fleet
//! (`qdpm_sim::fleet`) timed serial vs parallel in both engine modes, a
//! per-dispatcher fleet sweep (all five `DispatchPolicy`s, precomputed
//! and online), a homogeneous training-Q-DPM cohort timed on the batched
//! structure-of-arrays engine against the dynamic per-device path
//! (`fleet.batched`), a joint DVFS + deadline scenario (the five-state
//! `three-state-dvfs` machine with deadline-tagged arrivals — the
//! frequency-scaled service law and per-slice deadline ledger on the hot
//! path), and a pinned power-capped cluster (`qdpm_sim::hierarchy`) with
//! per-rack rows — and writes the result to
//! `BENCH_throughput.json` at the workspace root (schema v6). Each run
//! also *appends* a compact point to the file's `trajectory` array,
//! carrying earlier points forward verbatim, so the committed file holds
//! the throughput trajectory itself, not just its latest point.
//!
//! Usage: `cargo run --release -p qdpm-bench --bin bench_report -- [--quick] [--threads N]`
//!
//! Flags: `--quick` shrinks the slice budgets for CI; `--threads N` pins
//! the parallel-grid worker count (default: host parallelism).

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use qdpm_bench::{has_flag, standard_device, threads_from_args, workspace_root};
use qdpm_core::{
    Exploration, FuzzyConfig, FuzzyQDpmAgent, PowerManager, QDpmAgent, QDpmConfig, QosConfig,
    QosQDpmAgent,
};
use qdpm_device::presets;
use qdpm_sim::fleet::{FleetConfig, FleetMember, FleetPolicy, FleetSim};
use qdpm_sim::hierarchy::{ClusterConfig, ClusterSim, RackSpec};
use qdpm_sim::parallel::{derive_cell_seed, run_indexed};
use qdpm_sim::{policies, EngineMode, ScenarioWorkload, SimConfig, Simulator};
use qdpm_workload::{DeadlineSpec, DispatchPolicy, WorkloadSpec};

/// The pinned serial scenario: the paper's standard three-state device,
/// geometric service, Bernoulli(0.1) arrivals, master seed 42.
const ARRIVAL_P: f64 = 0.1;
/// The pinned event-skip scenario: same device/service, sparse arrivals.
/// Sparse means long quiescent stretches — exactly what `EventSkip`
/// fast-forwards.
const SPARSE_P: f64 = 0.001;
const SEED: u64 = 42;

fn build_pm(policy: &str) -> Box<dyn PowerManager> {
    let (power, _) = standard_device();
    match policy {
        "always_on" => Box::new(policies::AlwaysOn::new(&power)),
        "greedy_off" => Box::new(policies::GreedyOff::new(&power)),
        "fixed_timeout" => Box::new(policies::FixedTimeout::break_even(&power)),
        "q_dpm" => Box::new(QDpmAgent::new(&power, QDpmConfig::default()).unwrap()),
        // Frozen-policy evaluation configuration: exploration off, the
        // learner still updates — the setup of every post-training
        // evaluation stretch in the experiment grids.
        "q_dpm_eval" => Box::new(
            QDpmAgent::new(
                &power,
                QDpmConfig {
                    exploration: Exploration::EpsilonGreedy { epsilon: 0.0 },
                    ..QDpmConfig::default()
                },
            )
            .unwrap(),
        ),
        "qos_q_dpm" => Box::new(QosQDpmAgent::new(&power, QosConfig::default()).unwrap()),
        "fuzzy_q_dpm" => {
            Box::new(FuzzyQDpmAgent::new(&power, FuzzyConfig::standard(8).unwrap()).unwrap())
        }
        other => panic!("unknown policy {other}"),
    }
}

fn build_sim(policy: &str, seed: u64, arrival_p: f64, mode: EngineMode) -> Simulator {
    let (power, service) = standard_device();
    Simulator::new(
        power,
        service,
        WorkloadSpec::bernoulli(arrival_p).unwrap().build(),
        build_pm(policy),
        SimConfig {
            seed,
            mode,
            ..SimConfig::default()
        },
    )
    .unwrap()
}

/// Steady-state slices/sec of one policy: warm up (table population,
/// caches), then time a long stretch.
fn throughput(policy: &str, arrival_p: f64, mode: EngineMode, warmup: u64, measure: u64) -> f64 {
    let mut sim = build_sim(policy, SEED, arrival_p, mode);
    sim.run(warmup);
    let start = Instant::now();
    sim.run(measure);
    measure as f64 / start.elapsed().as_secs_f64()
}

/// Steady-state slices/sec of a training Q-DPM agent on the pinned
/// joint DVFS scenario: the five-state `three-state-dvfs` machine with
/// deadline-tagged Bernoulli arrivals — the operating-frequency service
/// scaling and the per-slice deadline ledger both on the hot path.
fn dvfs_throughput(mode: EngineMode, warmup: u64, measure: u64) -> f64 {
    let power = presets::three_state_dvfs();
    let pm = QDpmAgent::new(&power, QDpmConfig::default()).unwrap();
    let mut sim = Simulator::new(
        power,
        presets::default_service(),
        WorkloadSpec::bernoulli(ARRIVAL_P).unwrap().build(),
        Box::new(pm),
        SimConfig {
            seed: SEED,
            mode,
            deadline: Some(DeadlineSpec::uniform(3, 12).unwrap()),
            ..SimConfig::default()
        },
    )
    .unwrap();
    sim.run(warmup);
    let start = Instant::now();
    sim.run(measure);
    measure as f64 / start.elapsed().as_secs_f64()
}

/// Wall-clock seconds to run `cells` independent Q-DPM simulations of
/// `slices_per_cell` slices each on `threads` workers.
fn grid_seconds(cells: usize, slices_per_cell: u64, threads: usize) -> f64 {
    let seeds: Vec<u64> = (0..cells)
        .map(|i| derive_cell_seed(SEED, i as u64))
        .collect();
    let start = Instant::now();
    let stats = run_indexed(&seeds, threads, |_, &seed| {
        let mut sim = build_sim("q_dpm", seed, ARRIVAL_P, EngineMode::PerSlice);
        sim.run(slices_per_cell)
    });
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(stats.len(), cells, "every cell must complete");
    secs
}

/// The pinned fleet members: `devices` standard three-state devices under
/// break-even timeouts.
fn fleet_members(devices: usize) -> Vec<FleetMember> {
    let (power, service) = standard_device();
    (0..devices)
        .map(|i| FleetMember {
            label: format!("dev-{i}"),
            power: power.clone(),
            service,
            policy: FleetPolicy::BreakEvenTimeout,
        })
        .collect()
}

/// The pinned fleet scenario: `devices` members behind one aggregate
/// Bernoulli(0.5) stream (per-device rate 0.5/devices — the quiescent
/// regime a real fleet lives in) under the given dispatcher.
fn fleet_sim(devices: usize, horizon: u64, mode: EngineMode, dispatch: DispatchPolicy) -> FleetSim {
    let aggregate = ScenarioWorkload::Stationary(WorkloadSpec::bernoulli(0.5).unwrap());
    FleetSim::new(
        &fleet_members(devices),
        &aggregate,
        &FleetConfig {
            seed: SEED,
            engine_mode: mode,
            dispatch,
            horizon,
            ..FleetConfig::default()
        },
    )
    .expect("pinned fleet scenario builds")
}

/// The pinned batched-cohort members: `devices` identical standard
/// three-state devices under *training* Q-DPM (live epsilon-greedy
/// exploration and per-slice table updates — the heaviest per-slice
/// policy, and the batched engine's target workload).
fn cohort_members(devices: usize) -> Vec<FleetMember> {
    let (power, service) = standard_device();
    (0..devices)
        .map(|i| FleetMember {
            label: format!("dev-{i}"),
            power: power.clone(),
            service,
            policy: FleetPolicy::QDpm(QDpmConfig::default()),
        })
        .collect()
}

/// Wall-clock seconds to run the pinned homogeneous Q-DPM cohort fleet —
/// batched (structure-of-arrays) or dynamic (per-device simulators) —
/// on `threads` workers. Only the `run` call is timed.
fn cohort_seconds(devices: usize, horizon: u64, batched: bool, threads: usize) -> f64 {
    let aggregate = ScenarioWorkload::Stationary(WorkloadSpec::bernoulli(0.5).unwrap());
    let fleet = FleetSim::new(
        &cohort_members(devices),
        &aggregate,
        &FleetConfig {
            seed: SEED,
            dispatch: DispatchPolicy::RoundRobin,
            horizon,
            batch_cohorts: batched,
            ..FleetConfig::default()
        },
    )
    .expect("pinned cohort scenario builds");
    assert_eq!(
        fleet.batched_cohorts(),
        usize::from(batched),
        "cohort grouping must match the requested path"
    );
    let start = Instant::now();
    let report = fleet.run(threads);
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(
        report.stats.total.steps,
        devices as u64 * horizon,
        "every device must run the full horizon"
    );
    secs
}

/// Wall-clock seconds to run the pinned fleet on `threads` workers
/// (construction and dispatch-trace precomputation excluded — only the
/// `run` call is timed, which for online dispatchers includes routing).
fn fleet_seconds(
    devices: usize,
    horizon: u64,
    mode: EngineMode,
    dispatch: DispatchPolicy,
    threads: usize,
) -> f64 {
    let fleet = fleet_sim(devices, horizon, mode, dispatch);
    let start = Instant::now();
    let report = fleet.run(threads);
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(
        report.stats.total.steps,
        devices as u64 * horizon,
        "every device must run the full horizon"
    );
    secs
}

/// Pulls the inner lines of the `"trajectory": [...]` array out of the
/// previously committed report, so each run appends to the series rather
/// than resetting it. Pre-v4 files have no array — the series starts
/// empty. (No serde backend is wired up, so this is a string extraction;
/// the array is written one point per line by this binary.)
fn prior_trajectory(text: &str) -> Vec<String> {
    let marker = "\"trajectory\": [";
    let Some(start) = text.find(marker) else {
        return Vec::new();
    };
    let rest = &text[start + marker.len()..];
    let Some(end) = rest.find(']') else {
        return Vec::new();
    };
    rest[..end]
        .lines()
        .map(|line| line.trim().trim_end_matches(',').to_string())
        .filter(|line| !line.is_empty())
        .collect()
}

fn main() {
    let quick = has_flag("--quick");
    let threads_requested = threads_from_args();
    // The event-skip section gets a longer warm-up: at 0.001 arrivals per
    // slice a learning agent needs a few hundred arrival cycles before its
    // greedy policy settles into steady sleep stretches.
    let (warmup, measure, cells, slices_per_cell, skip_warmup, skip_measure) = if quick {
        (
            20_000u64,
            200_000u64,
            8usize,
            50_000u64,
            200_000u64,
            1_000_000u64,
        )
    } else {
        (
            100_000u64,
            2_000_000u64,
            8usize,
            500_000u64,
            1_000_000u64,
            10_000_000u64,
        )
    };
    let (fleet_devices, fleet_horizon) = if quick {
        (1_000usize, 20_000u64)
    } else {
        (1_000usize, 100_000u64)
    };
    // The dispatcher sweep and the capped cluster run smaller pinned
    // populations: the point is comparing routing regimes, not re-timing
    // the 1k-device scaling the `modes` section already covers.
    let (dispatch_devices, dispatch_horizon) = if quick {
        (200usize, 20_000u64)
    } else {
        (200usize, 50_000u64)
    };
    let (hier_racks, hier_rack_devices, hier_cap, hier_horizon) = if quick {
        (4usize, 50usize, 6.0f64, 20_000u64)
    } else {
        (4usize, 50usize, 6.0f64, 50_000u64)
    };

    let policies = [
        "always_on",
        "fixed_timeout",
        "q_dpm",
        "qos_q_dpm",
        "fuzzy_q_dpm",
    ];
    let mut policy_lines = Vec::new();
    let mut serial_q_dpm = 0.0f64;
    for policy in policies {
        let sps = throughput(policy, ARRIVAL_P, EngineMode::PerSlice, warmup, measure);
        eprintln!("serial {policy}: {sps:.0} slices/sec");
        if policy == "q_dpm" {
            serial_q_dpm = sps;
        }
        policy_lines.push(format!("      \"{policy}\": {sps:.1}"));
    }

    // Event-skip section: per-slice vs event-skip on the sparse scenario.
    let skip_policies = [
        "always_on",
        "greedy_off",
        "fixed_timeout",
        "q_dpm",
        "q_dpm_eval",
    ];
    let mut skip_lines = Vec::new();
    let mut skip_q_dpm_eval = 0.0f64;
    for policy in skip_policies {
        let per = throughput(
            policy,
            SPARSE_P,
            EngineMode::PerSlice,
            skip_warmup,
            skip_measure,
        );
        let skip = throughput(
            policy,
            SPARSE_P,
            EngineMode::EventSkip,
            skip_warmup,
            skip_measure,
        );
        let speedup = skip / per;
        if policy == "q_dpm_eval" {
            skip_q_dpm_eval = skip;
        }
        eprintln!(
            "event_skip {policy}: per-slice {per:.0}, event-skip {skip:.0} slices/sec \
             ({speedup:.2}x)"
        );
        skip_lines.push(format!(
            "      \"{policy}\": {{ \"per_slice\": {per:.1}, \"event_skip\": {skip:.1}, \
             \"speedup\": {speedup:.3} }}"
        ));
    }

    // DVFS section: the joint sleep-state x operating-point machine with
    // deadline-tagged arrivals, both engine modes — gates the cost of the
    // frequency-scaled service law and the per-slice deadline ledger.
    let dvfs_per = dvfs_throughput(EngineMode::PerSlice, warmup, measure);
    let dvfs_skip = dvfs_throughput(EngineMode::EventSkip, warmup, measure);
    eprintln!(
        "dvfs q_dpm+deadlines: per-slice {dvfs_per:.0}, event-skip {dvfs_skip:.0} slices/sec"
    );

    // Parallel grid: the speedup is only meaningful when more than one
    // worker can actually run — on a 1-thread configuration the "parallel"
    // run repeats the serial one and the ratio is pure noise, so it is
    // recorded as null (documented in schema_notes).
    let threads_effective = threads_requested.min(cells).max(1);
    let serial_secs = grid_seconds(cells, slices_per_cell, 1);
    let (parallel_secs, speedup_json) = if threads_effective > 1 {
        let psecs = grid_seconds(cells, slices_per_cell, threads_effective);
        (psecs, format!("{:.3}", serial_secs / psecs))
    } else {
        (serial_secs, "null".to_string())
    };
    let grid_slices = (cells as u64 * slices_per_cell) as f64;
    eprintln!(
        "grid ({cells} cells x {slices_per_cell} slices): serial {:.0} slices/sec, \
         {threads_effective}-thread {:.0} slices/sec, speedup {speedup_json}",
        grid_slices / serial_secs,
        grid_slices / parallel_secs,
    );

    // Fleet section: the pinned 1k-device Bernoulli fleet timed serial vs
    // parallel in both engine modes (round-robin dispatch — the cheapest,
    // kept fixed so the series stays comparable across reports). As with
    // the parallel grid, the speedup is only meaningful when more than
    // one worker can run; otherwise it is recorded as null.
    let fleet_threads = threads_requested.min(fleet_devices).max(1);
    let fleet_slices = (fleet_devices as u64 * fleet_horizon) as f64;
    let mut fleet_lines = Vec::new();
    let mut fleet_event_skip_serial = 0.0f64;
    for (key, mode) in [
        ("per_slice", EngineMode::PerSlice),
        ("event_skip", EngineMode::EventSkip),
    ] {
        let serial_secs = fleet_seconds(
            fleet_devices,
            fleet_horizon,
            mode,
            DispatchPolicy::RoundRobin,
            1,
        );
        let (parallel_secs, speedup_json) = if fleet_threads > 1 {
            let psecs = fleet_seconds(
                fleet_devices,
                fleet_horizon,
                mode,
                DispatchPolicy::RoundRobin,
                fleet_threads,
            );
            (psecs, format!("{:.3}", serial_secs / psecs))
        } else {
            (serial_secs, "null".to_string())
        };
        if key == "event_skip" {
            fleet_event_skip_serial = fleet_slices / serial_secs;
        }
        eprintln!(
            "fleet {key} ({fleet_devices} devices x {fleet_horizon} slices): serial {:.0} \
             slices/sec, {fleet_threads}-thread {:.0} slices/sec, speedup {speedup_json}",
            fleet_slices / serial_secs,
            fleet_slices / parallel_secs,
        );
        fleet_lines.push(format!(
            "      \"{key}\": {{ \"serial_slices_per_sec\": {:.1}, \
             \"parallel_slices_per_sec\": {:.1}, \"speedup\": {speedup_json} }}",
            fleet_slices / serial_secs,
            fleet_slices / parallel_secs,
        ));
    }

    // Batched-cohort section: one homogeneous training-Q-DPM cohort,
    // structure-of-arrays engine vs the dynamic per-device path, serial
    // and (when workers exist) parallel. Throughput is device-slices per
    // second; the headline ratio is batched-serial over dynamic-serial —
    // the per-core win of monomorphized SoA stepping.
    let (cohort_devices, cohort_horizon) = if quick {
        (1_000usize, 10_000u64)
    } else {
        (4_000usize, 50_000u64)
    };
    let cohort_slices = (cohort_devices as u64 * cohort_horizon) as f64;
    let cohort_threads = threads_requested.max(1);
    let batched_serial_secs = cohort_seconds(cohort_devices, cohort_horizon, true, 1);
    let dynamic_serial_secs = cohort_seconds(cohort_devices, cohort_horizon, false, 1);
    let batched_serial = cohort_slices / batched_serial_secs;
    let dynamic_serial = cohort_slices / dynamic_serial_secs;
    let batched_vs_dynamic = dynamic_serial_secs / batched_serial_secs;
    let (batched_parallel, cohort_parallel_json) = if cohort_threads > 1 {
        let psecs = cohort_seconds(cohort_devices, cohort_horizon, true, cohort_threads);
        (
            cohort_slices / psecs,
            format!("{:.1}", cohort_slices / psecs),
        )
    } else {
        (batched_serial, "null".to_string())
    };
    eprintln!(
        "fleet batched ({cohort_devices} q_dpm devices x {cohort_horizon} slices): \
         batched serial {batched_serial:.0}, dynamic serial {dynamic_serial:.0}, \
         {cohort_threads}-thread batched {batched_parallel:.0} device-slices/sec \
         ({batched_vs_dynamic:.2}x vs dynamic)"
    );

    // Dispatcher sweep: every routing policy on one smaller pinned fleet,
    // EventSkip, serial — the state-blind rows run the precomputed split,
    // the state-aware rows run the online loop (routing cost included).
    let dispatch_slices = (dispatch_devices as u64 * dispatch_horizon) as f64;
    let mut dispatcher_lines = Vec::new();
    for (key, dispatch) in [
        ("round_robin", DispatchPolicy::RoundRobin),
        ("least_loaded", DispatchPolicy::LeastLoaded),
        ("hash_sharded", DispatchPolicy::HashSharded { salt: SEED }),
        ("join_shortest_queue", DispatchPolicy::JoinShortestQueue),
        ("sleep_aware", DispatchPolicy::SleepAware { spill: 4 }),
    ] {
        let secs = fleet_seconds(
            dispatch_devices,
            dispatch_horizon,
            EngineMode::EventSkip,
            dispatch,
            1,
        );
        let sps = dispatch_slices / secs;
        eprintln!("dispatch {key}: {sps:.0} slices/sec (serial, event-skip)");
        dispatcher_lines.push(format!("      \"{key}\": {sps:.1}"));
    }

    // Hierarchy section: a pinned power-capped cluster — racks of
    // break-even-timeout devices under sleep-aware intra-rack dispatch
    // and per-rack caps, join-shortest-queue across racks — with one row
    // per rack (energy, vetoes, sheds) and the serial throughput.
    let hier_devices = hier_racks * hier_rack_devices;
    let hier_specs: Vec<RackSpec> = (0..hier_racks)
        .map(|r| RackSpec {
            label: format!("rack-{r}"),
            members: fleet_members(hier_rack_devices),
            power_cap: Some(hier_cap),
        })
        .collect();
    let hier_aggregate = ScenarioWorkload::Stationary(WorkloadSpec::bernoulli(0.5).unwrap());
    let cluster = ClusterSim::new(
        &hier_specs,
        &hier_aggregate,
        &ClusterConfig {
            rack_dispatch: DispatchPolicy::JoinShortestQueue,
            fleet: FleetConfig {
                seed: SEED,
                engine_mode: EngineMode::EventSkip,
                dispatch: DispatchPolicy::SleepAware { spill: 4 },
                horizon: hier_horizon,
                ..FleetConfig::default()
            },
        },
    )
    .expect("pinned cluster scenario builds");
    let hier_start = Instant::now();
    let cluster_report = cluster.run(1);
    let hier_secs = hier_start.elapsed().as_secs_f64();
    let hier_slices = (hier_devices as u64 * hier_horizon) as f64;
    let hier_sps = hier_slices / hier_secs;
    eprintln!(
        "hierarchy ({hier_racks} racks x {hier_rack_devices} devices, cap {hier_cap}): \
         {hier_sps:.0} slices/sec (serial, event-skip)"
    );
    let rack_lines: Vec<String> = cluster_report
        .racks
        .iter()
        .map(|rack| {
            format!(
                "      {{ \"label\": \"{}\", \"energy\": {:.1}, \"vetoed_wakeups\": {}, \
                 \"shed_arrivals\": {} }}",
                rack.label,
                rack.fleet.stats.total.total_energy,
                rack.vetoed_wakeups,
                rack.shed_arrivals
            )
        })
        .collect();

    let generated_unix = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let path = workspace_root().join("BENCH_throughput.json");

    // The trajectory: earlier points carried forward from the committed
    // file, this run's compact point appended.
    let mut trajectory = std::fs::read_to_string(&path)
        .map(|text| prior_trajectory(&text))
        .unwrap_or_default();
    trajectory.push(format!(
        "{{ \"generated_unix\": {generated_unix}, \"quick\": {quick}, \
         \"serial_q_dpm\": {serial_q_dpm:.1}, \
         \"event_skip_q_dpm_eval\": {skip_q_dpm_eval:.1}, \
         \"fleet_event_skip_serial\": {fleet_event_skip_serial:.1}, \
         \"fleet_batched_serial\": {batched_serial:.1}, \
         \"dvfs_deadline_q_dpm\": {dvfs_per:.1} }}"
    ));
    let trajectory_lines: Vec<String> = trajectory.iter().map(|p| format!("    {p}")).collect();

    let json = format!(
        "{{\n\
         \x20 \"schema\": \"qdpm-bench-throughput/v6\",\n\
         \x20 \"generated_unix\": {generated_unix},\n\
         \x20 \"quick\": {quick},\n\
         \x20 \"machine\": {{\n\
         \x20   \"os\": \"{os}\",\n\
         \x20   \"arch\": \"{arch}\",\n\
         \x20   \"cpus\": {cpus}\n\
         \x20 }},\n\
         \x20 \"serial\": {{\n\
         \x20   \"scenario\": \"three_state_generic + geometric service + bernoulli({p:.2}), seed {seed}\",\n\
         \x20   \"warmup_slices\": {warmup},\n\
         \x20   \"measured_slices\": {measure},\n\
         \x20   \"slices_per_sec\": {{\n{policies}\n\
         \x20   }}\n\
         \x20 }},\n\
         \x20 \"event_skip\": {{\n\
         \x20   \"scenario\": \"three_state_generic + geometric service + bernoulli({sparse_p}), seed {seed}\",\n\
         \x20   \"warmup_slices\": {skip_warmup},\n\
         \x20   \"measured_slices\": {skip_measure},\n\
         \x20   \"slices_per_sec\": {{\n{skips}\n\
         \x20   }}\n\
         \x20 }},\n\
         \x20 \"dvfs\": {{\n\
         \x20   \"scenario\": \"three_state_dvfs (5 joint states) + geometric service + bernoulli({p:.2}) with deadlines uniform[3,12], training q_dpm, seed {seed}\",\n\
         \x20   \"warmup_slices\": {warmup},\n\
         \x20   \"measured_slices\": {measure},\n\
         \x20   \"slices_per_sec\": {{\n\
         \x20     \"per_slice\": {dvfs_per:.1},\n\
         \x20     \"event_skip\": {dvfs_skip:.1}\n\
         \x20   }}\n\
         \x20 }},\n\
         \x20 \"parallel_grid\": {{\n\
         \x20   \"policy\": \"q_dpm\",\n\
         \x20   \"cells\": {cells},\n\
         \x20   \"slices_per_cell\": {slices_per_cell},\n\
         \x20   \"threads_requested\": {threads_requested},\n\
         \x20   \"threads_effective\": {threads_effective},\n\
         \x20   \"serial_slices_per_sec\": {gser:.1},\n\
         \x20   \"parallel_slices_per_sec\": {gpar:.1},\n\
         \x20   \"speedup\": {speedup}\n\
         \x20 }},\n\
         \x20 \"fleet\": {{\n\
         \x20   \"scenario\": \"{fleet_devices} x three_state_generic (break-even timeout) + aggregate bernoulli(0.5) round-robin, seed {seed}\",\n\
         \x20   \"devices\": {fleet_devices},\n\
         \x20   \"horizon_slices\": {fleet_horizon},\n\
         \x20   \"threads_requested\": {threads_requested},\n\
         \x20   \"threads_effective\": {fleet_threads},\n\
         \x20   \"modes\": {{\n{fleet}\n\
         \x20   }},\n\
         \x20   \"batched\": {{\n\
         \x20     \"scenario\": \"{cohort_devices} x three_state_generic (training q_dpm) + aggregate bernoulli(0.5) round-robin, per-slice, seed {seed}\",\n\
         \x20     \"devices\": {cohort_devices},\n\
         \x20     \"horizon_slices\": {cohort_horizon},\n\
         \x20     \"cohorts\": 1,\n\
         \x20     \"threads_effective\": {cohort_threads},\n\
         \x20     \"serial_device_slices_per_sec\": {batched_serial:.1},\n\
         \x20     \"parallel_device_slices_per_sec\": {cohort_parallel},\n\
         \x20     \"dynamic_serial_device_slices_per_sec\": {dynamic_serial:.1},\n\
         \x20     \"speedup_vs_dynamic\": {batched_vs_dynamic:.3}\n\
         \x20   }},\n\
         \x20   \"dispatch_scenario\": \"{dispatch_devices} devices x {dispatch_horizon} slices, aggregate bernoulli(0.5), event-skip, serial\",\n\
         \x20   \"dispatchers\": {{\n{dispatchers}\n\
         \x20   }}\n\
         \x20 }},\n\
         \x20 \"hierarchy\": {{\n\
         \x20   \"scenario\": \"{hier_racks} racks x {hier_rack_devices} x three_state_generic (break-even timeout), cap {hier_cap}/rack, sleep-aware within + join-shortest-queue across, aggregate bernoulli(0.5), event-skip, serial, seed {seed}\",\n\
         \x20   \"racks\": {hier_racks},\n\
         \x20   \"devices_per_rack\": {hier_rack_devices},\n\
         \x20   \"power_cap_per_rack\": {hier_cap},\n\
         \x20   \"horizon_slices\": {hier_horizon},\n\
         \x20   \"serial_slices_per_sec\": {hier_sps:.1},\n\
         \x20   \"per_rack\": [\n{racks}\n\
         \x20   ]\n\
         \x20 }},\n\
         \x20 \"trajectory\": [\n{trajectory}\n\
         \x20 ],\n\
         \x20 \"schema_notes\": [\n\
         \x20   \"speedup is null wherever threads_effective == 1 (single-CPU hosts, or --threads 1): the parallel run would repeat the serial one and the ratio is measurement noise, not data\",\n\
         \x20   \"trajectory appends one compact point per bench_report run (earlier points carried forward verbatim); points are comparable when machine and quick match\",\n\
         \x20   \"dvfs section and the trajectory's dvfs_deadline_q_dpm field are new in v6 (joint sleep+DVFS machine with deadline-tagged arrivals); pre-v6 trajectory points lack the field\"\n\
         \x20 ]\n\
         }}\n",
        os = std::env::consts::OS,
        arch = std::env::consts::ARCH,
        cpus = qdpm_sim::parallel::available_threads(),
        p = ARRIVAL_P,
        sparse_p = SPARSE_P,
        seed = SEED,
        policies = policy_lines.join(",\n"),
        skips = skip_lines.join(",\n"),
        gser = grid_slices / serial_secs,
        gpar = grid_slices / parallel_secs,
        speedup = speedup_json,
        fleet = fleet_lines.join(",\n"),
        cohort_parallel = cohort_parallel_json,
        dispatchers = dispatcher_lines.join(",\n"),
        racks = rack_lines.join(",\n"),
        trajectory = trajectory_lines.join(",\n"),
    );

    // Atomic (tmp + rename, via save_results_in): a crash mid-write keeps
    // the previous complete report instead of leaving a torn JSON.
    match qdpm_bench::save_results_in(&workspace_root(), "BENCH_throughput.json", &json) {
        Some(written) => eprintln!("wrote {}", written.display()),
        None => eprintln!("could not write {}", path.display()),
    }
    print!("{json}");
}
