//! `bench_report` — records the repo's performance trajectory.
//!
//! Measures steady-state simulation throughput (slices per second) on
//! pinned scenarios — serial single-simulator runs per policy, plus a
//! parallel grid driven through `qdpm_sim::parallel::run_indexed` — and
//! writes the result to `BENCH_throughput.json` at the workspace root.
//! Every PR regenerates the file (CI runs `--quick` and uploads it as an
//! artifact), so the sequence of JSONs across PRs is the throughput
//! trajectory of the hot path.
//!
//! Usage: `cargo run --release -p qdpm-bench --bin bench_report -- [--quick] [--threads N]`
//!
//! Flags: `--quick` shrinks the slice budgets for CI; `--threads N` pins
//! the parallel-grid worker count (default: host parallelism).

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use qdpm_bench::{has_flag, standard_device, threads_from_args, workspace_root};
use qdpm_core::{
    FuzzyConfig, FuzzyQDpmAgent, PowerManager, QDpmAgent, QDpmConfig, QosConfig, QosQDpmAgent,
};
use qdpm_sim::parallel::{derive_cell_seed, run_indexed};
use qdpm_sim::{policies, SimConfig, Simulator};
use qdpm_workload::WorkloadSpec;

/// The pinned serial scenario: the paper's standard three-state device,
/// geometric service, Bernoulli(0.1) arrivals, master seed 42.
const ARRIVAL_P: f64 = 0.1;
const SEED: u64 = 42;

fn build_pm(policy: &str) -> Box<dyn PowerManager> {
    let (power, _) = standard_device();
    match policy {
        "always_on" => Box::new(policies::AlwaysOn::new(&power)),
        "fixed_timeout" => Box::new(policies::FixedTimeout::break_even(&power)),
        "q_dpm" => Box::new(QDpmAgent::new(&power, QDpmConfig::default()).unwrap()),
        "qos_q_dpm" => Box::new(QosQDpmAgent::new(&power, QosConfig::default()).unwrap()),
        "fuzzy_q_dpm" => {
            Box::new(FuzzyQDpmAgent::new(&power, FuzzyConfig::standard(8).unwrap()).unwrap())
        }
        other => panic!("unknown policy {other}"),
    }
}

fn build_sim(policy: &str, seed: u64) -> Simulator {
    let (power, service) = standard_device();
    Simulator::new(
        power,
        service,
        WorkloadSpec::bernoulli(ARRIVAL_P).unwrap().build(),
        build_pm(policy),
        SimConfig {
            seed,
            ..SimConfig::default()
        },
    )
    .unwrap()
}

/// Steady-state slices/sec of one policy: warm up (table population,
/// caches), then time a long stretch.
fn serial_throughput(policy: &str, warmup: u64, measure: u64) -> f64 {
    let mut sim = build_sim(policy, SEED);
    sim.run(warmup);
    let start = Instant::now();
    sim.run(measure);
    measure as f64 / start.elapsed().as_secs_f64()
}

/// Wall-clock seconds to run `cells` independent Q-DPM simulations of
/// `slices_per_cell` slices each on `threads` workers.
fn grid_seconds(cells: usize, slices_per_cell: u64, threads: usize) -> f64 {
    let seeds: Vec<u64> = (0..cells)
        .map(|i| derive_cell_seed(SEED, i as u64))
        .collect();
    let start = Instant::now();
    let stats = run_indexed(&seeds, threads, |_, &seed| {
        let mut sim = build_sim("q_dpm", seed);
        sim.run(slices_per_cell)
    });
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(stats.len(), cells, "every cell must complete");
    secs
}

fn main() {
    let quick = has_flag("--quick");
    let threads = threads_from_args();
    let (warmup, measure, cells, slices_per_cell) = if quick {
        (20_000u64, 200_000u64, 8usize, 50_000u64)
    } else {
        (100_000u64, 2_000_000u64, 8usize, 500_000u64)
    };

    let policies = [
        "always_on",
        "fixed_timeout",
        "q_dpm",
        "qos_q_dpm",
        "fuzzy_q_dpm",
    ];
    let mut policy_lines = Vec::new();
    for policy in policies {
        let sps = serial_throughput(policy, warmup, measure);
        eprintln!("serial {policy}: {sps:.0} slices/sec");
        policy_lines.push(format!("      \"{policy}\": {sps:.1}"));
    }

    let serial_secs = grid_seconds(cells, slices_per_cell, 1);
    let parallel_secs = grid_seconds(cells, slices_per_cell, threads);
    let grid_slices = (cells as u64 * slices_per_cell) as f64;
    let speedup = serial_secs / parallel_secs;
    eprintln!(
        "grid ({cells} cells x {slices_per_cell} slices): serial {:.0} slices/sec, \
         {threads}-thread {:.0} slices/sec, speedup {speedup:.2}x",
        grid_slices / serial_secs,
        grid_slices / parallel_secs,
    );

    let generated_unix = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let json = format!(
        "{{\n\
         \x20 \"schema\": \"qdpm-bench-throughput/v1\",\n\
         \x20 \"generated_unix\": {generated_unix},\n\
         \x20 \"quick\": {quick},\n\
         \x20 \"machine\": {{\n\
         \x20   \"os\": \"{os}\",\n\
         \x20   \"arch\": \"{arch}\",\n\
         \x20   \"cpus\": {cpus}\n\
         \x20 }},\n\
         \x20 \"serial\": {{\n\
         \x20   \"scenario\": \"three_state_generic + geometric service + bernoulli({p:.2}), seed {seed}\",\n\
         \x20   \"warmup_slices\": {warmup},\n\
         \x20   \"measured_slices\": {measure},\n\
         \x20   \"slices_per_sec\": {{\n{policies}\n\
         \x20   }}\n\
         \x20 }},\n\
         \x20 \"parallel_grid\": {{\n\
         \x20   \"policy\": \"q_dpm\",\n\
         \x20   \"cells\": {cells},\n\
         \x20   \"slices_per_cell\": {slices_per_cell},\n\
         \x20   \"threads\": {threads},\n\
         \x20   \"serial_slices_per_sec\": {gser:.1},\n\
         \x20   \"parallel_slices_per_sec\": {gpar:.1},\n\
         \x20   \"speedup\": {speedup:.3}\n\
         \x20 }}\n\
         }}\n",
        os = std::env::consts::OS,
        arch = std::env::consts::ARCH,
        cpus = qdpm_sim::parallel::available_threads(),
        p = ARRIVAL_P,
        seed = SEED,
        policies = policy_lines.join(",\n"),
        gser = grid_slices / serial_secs,
        gpar = grid_slices / parallel_secs,
    );

    let path = workspace_root().join("BENCH_throughput.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    print!("{json}");
}
