//! `bench_report` — records the repo's performance trajectory.
//!
//! Measures steady-state simulation throughput (slices per second) on
//! pinned scenarios — serial single-simulator runs per policy, a parallel
//! grid driven through `qdpm_sim::parallel::run_indexed`, the
//! event-skipping engine on a sparse workload, and a 1000-device fleet
//! (`qdpm_sim::fleet`) timed serial vs parallel in both engine modes —
//! and writes the result to `BENCH_throughput.json` at the workspace
//! root. Every PR regenerates
//! the file (CI runs `--quick`, diffs the serial numbers against the
//! committed point, and uploads the artifact), so the sequence of JSONs
//! across PRs is the throughput trajectory of the hot path.
//!
//! Usage: `cargo run --release -p qdpm-bench --bin bench_report -- [--quick] [--threads N]`
//!
//! Flags: `--quick` shrinks the slice budgets for CI; `--threads N` pins
//! the parallel-grid worker count (default: host parallelism).

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use qdpm_bench::{has_flag, standard_device, threads_from_args, workspace_root};
use qdpm_core::{
    Exploration, FuzzyConfig, FuzzyQDpmAgent, PowerManager, QDpmAgent, QDpmConfig, QosConfig,
    QosQDpmAgent,
};
use qdpm_sim::fleet::{FleetConfig, FleetMember, FleetPolicy, FleetSim};
use qdpm_sim::parallel::{derive_cell_seed, run_indexed};
use qdpm_sim::{policies, EngineMode, ScenarioWorkload, SimConfig, Simulator};
use qdpm_workload::{DispatchPolicy, WorkloadSpec};

/// The pinned serial scenario: the paper's standard three-state device,
/// geometric service, Bernoulli(0.1) arrivals, master seed 42.
const ARRIVAL_P: f64 = 0.1;
/// The pinned event-skip scenario: same device/service, sparse arrivals.
/// Sparse means long quiescent stretches — exactly what `EventSkip`
/// fast-forwards.
const SPARSE_P: f64 = 0.001;
const SEED: u64 = 42;

fn build_pm(policy: &str) -> Box<dyn PowerManager> {
    let (power, _) = standard_device();
    match policy {
        "always_on" => Box::new(policies::AlwaysOn::new(&power)),
        "greedy_off" => Box::new(policies::GreedyOff::new(&power)),
        "fixed_timeout" => Box::new(policies::FixedTimeout::break_even(&power)),
        "q_dpm" => Box::new(QDpmAgent::new(&power, QDpmConfig::default()).unwrap()),
        // Frozen-policy evaluation configuration: exploration off, the
        // learner still updates — the setup of every post-training
        // evaluation stretch in the experiment grids.
        "q_dpm_eval" => Box::new(
            QDpmAgent::new(
                &power,
                QDpmConfig {
                    exploration: Exploration::EpsilonGreedy { epsilon: 0.0 },
                    ..QDpmConfig::default()
                },
            )
            .unwrap(),
        ),
        "qos_q_dpm" => Box::new(QosQDpmAgent::new(&power, QosConfig::default()).unwrap()),
        "fuzzy_q_dpm" => {
            Box::new(FuzzyQDpmAgent::new(&power, FuzzyConfig::standard(8).unwrap()).unwrap())
        }
        other => panic!("unknown policy {other}"),
    }
}

fn build_sim(policy: &str, seed: u64, arrival_p: f64, mode: EngineMode) -> Simulator {
    let (power, service) = standard_device();
    Simulator::new(
        power,
        service,
        WorkloadSpec::bernoulli(arrival_p).unwrap().build(),
        build_pm(policy),
        SimConfig {
            seed,
            mode,
            ..SimConfig::default()
        },
    )
    .unwrap()
}

/// Steady-state slices/sec of one policy: warm up (table population,
/// caches), then time a long stretch.
fn throughput(policy: &str, arrival_p: f64, mode: EngineMode, warmup: u64, measure: u64) -> f64 {
    let mut sim = build_sim(policy, SEED, arrival_p, mode);
    sim.run(warmup);
    let start = Instant::now();
    sim.run(measure);
    measure as f64 / start.elapsed().as_secs_f64()
}

/// Wall-clock seconds to run `cells` independent Q-DPM simulations of
/// `slices_per_cell` slices each on `threads` workers.
fn grid_seconds(cells: usize, slices_per_cell: u64, threads: usize) -> f64 {
    let seeds: Vec<u64> = (0..cells)
        .map(|i| derive_cell_seed(SEED, i as u64))
        .collect();
    let start = Instant::now();
    let stats = run_indexed(&seeds, threads, |_, &seed| {
        let mut sim = build_sim("q_dpm", seed, ARRIVAL_P, EngineMode::PerSlice);
        sim.run(slices_per_cell)
    });
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(stats.len(), cells, "every cell must complete");
    secs
}

/// The pinned fleet scenario: `devices` standard three-state devices under
/// break-even timeouts, one aggregate Bernoulli(0.5) stream round-robin
/// dispatched across them (per-device rate 0.5/devices — the quiescent
/// regime a real fleet lives in).
fn fleet_sim(devices: usize, horizon: u64, mode: EngineMode) -> FleetSim {
    let (power, service) = standard_device();
    let members: Vec<FleetMember> = (0..devices)
        .map(|i| FleetMember {
            label: format!("dev-{i}"),
            power: power.clone(),
            service,
            policy: FleetPolicy::BreakEvenTimeout,
        })
        .collect();
    let aggregate = ScenarioWorkload::Stationary(WorkloadSpec::bernoulli(0.5).unwrap());
    FleetSim::new(
        &members,
        &aggregate,
        &FleetConfig {
            seed: SEED,
            engine_mode: mode,
            dispatch: DispatchPolicy::RoundRobin,
            horizon,
            ..FleetConfig::default()
        },
    )
    .expect("pinned fleet scenario builds")
}

/// Wall-clock seconds to run the pinned fleet on `threads` workers
/// (construction and dispatch excluded — only simulation is timed).
fn fleet_seconds(devices: usize, horizon: u64, mode: EngineMode, threads: usize) -> f64 {
    let fleet = fleet_sim(devices, horizon, mode);
    let start = Instant::now();
    let report = fleet.run(threads);
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(
        report.stats.total.steps,
        devices as u64 * horizon,
        "every device must run the full horizon"
    );
    secs
}

fn main() {
    let quick = has_flag("--quick");
    let threads_requested = threads_from_args();
    // The event-skip section gets a longer warm-up: at 0.001 arrivals per
    // slice a learning agent needs a few hundred arrival cycles before its
    // greedy policy settles into steady sleep stretches.
    let (warmup, measure, cells, slices_per_cell, skip_warmup, skip_measure) = if quick {
        (
            20_000u64,
            200_000u64,
            8usize,
            50_000u64,
            200_000u64,
            1_000_000u64,
        )
    } else {
        (
            100_000u64,
            2_000_000u64,
            8usize,
            500_000u64,
            1_000_000u64,
            10_000_000u64,
        )
    };
    let (fleet_devices, fleet_horizon) = if quick {
        (1_000usize, 20_000u64)
    } else {
        (1_000usize, 100_000u64)
    };

    let policies = [
        "always_on",
        "fixed_timeout",
        "q_dpm",
        "qos_q_dpm",
        "fuzzy_q_dpm",
    ];
    let mut policy_lines = Vec::new();
    for policy in policies {
        let sps = throughput(policy, ARRIVAL_P, EngineMode::PerSlice, warmup, measure);
        eprintln!("serial {policy}: {sps:.0} slices/sec");
        policy_lines.push(format!("      \"{policy}\": {sps:.1}"));
    }

    // Event-skip section: per-slice vs event-skip on the sparse scenario.
    let skip_policies = [
        "always_on",
        "greedy_off",
        "fixed_timeout",
        "q_dpm",
        "q_dpm_eval",
    ];
    let mut skip_lines = Vec::new();
    for policy in skip_policies {
        let per = throughput(
            policy,
            SPARSE_P,
            EngineMode::PerSlice,
            skip_warmup,
            skip_measure,
        );
        let skip = throughput(
            policy,
            SPARSE_P,
            EngineMode::EventSkip,
            skip_warmup,
            skip_measure,
        );
        let speedup = skip / per;
        eprintln!(
            "event_skip {policy}: per-slice {per:.0}, event-skip {skip:.0} slices/sec \
             ({speedup:.2}x)"
        );
        skip_lines.push(format!(
            "      \"{policy}\": {{ \"per_slice\": {per:.1}, \"event_skip\": {skip:.1}, \
             \"speedup\": {speedup:.3} }}"
        ));
    }

    // Parallel grid: the speedup is only meaningful when more than one
    // worker can actually run — on a 1-thread configuration the "parallel"
    // run repeats the serial one and the ratio is pure noise, so it is
    // recorded as null (see satellite: requested vs effective threads).
    let threads_effective = threads_requested.min(cells).max(1);
    let serial_secs = grid_seconds(cells, slices_per_cell, 1);
    let (parallel_secs, speedup_json) = if threads_effective > 1 {
        let psecs = grid_seconds(cells, slices_per_cell, threads_effective);
        (psecs, format!("{:.3}", serial_secs / psecs))
    } else {
        (serial_secs, "null".to_string())
    };
    let grid_slices = (cells as u64 * slices_per_cell) as f64;
    eprintln!(
        "grid ({cells} cells x {slices_per_cell} slices): serial {:.0} slices/sec, \
         {threads_effective}-thread {:.0} slices/sec, speedup {speedup_json}",
        grid_slices / serial_secs,
        grid_slices / parallel_secs,
    );

    // Fleet section: the pinned 1k-device Bernoulli fleet timed serial vs
    // parallel in both engine modes. As with the parallel grid, the
    // speedup is only meaningful when more than one worker can run;
    // otherwise it is recorded as null.
    let fleet_threads = threads_requested.min(fleet_devices).max(1);
    let fleet_slices = (fleet_devices as u64 * fleet_horizon) as f64;
    let mut fleet_lines = Vec::new();
    for (key, mode) in [
        ("per_slice", EngineMode::PerSlice),
        ("event_skip", EngineMode::EventSkip),
    ] {
        let serial_secs = fleet_seconds(fleet_devices, fleet_horizon, mode, 1);
        let (parallel_secs, speedup_json) = if fleet_threads > 1 {
            let psecs = fleet_seconds(fleet_devices, fleet_horizon, mode, fleet_threads);
            (psecs, format!("{:.3}", serial_secs / psecs))
        } else {
            (serial_secs, "null".to_string())
        };
        eprintln!(
            "fleet {key} ({fleet_devices} devices x {fleet_horizon} slices): serial {:.0} \
             slices/sec, {fleet_threads}-thread {:.0} slices/sec, speedup {speedup_json}",
            fleet_slices / serial_secs,
            fleet_slices / parallel_secs,
        );
        fleet_lines.push(format!(
            "      \"{key}\": {{ \"serial_slices_per_sec\": {:.1}, \
             \"parallel_slices_per_sec\": {:.1}, \"speedup\": {speedup_json} }}",
            fleet_slices / serial_secs,
            fleet_slices / parallel_secs,
        ));
    }

    let generated_unix = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let json = format!(
        "{{\n\
         \x20 \"schema\": \"qdpm-bench-throughput/v3\",\n\
         \x20 \"generated_unix\": {generated_unix},\n\
         \x20 \"quick\": {quick},\n\
         \x20 \"machine\": {{\n\
         \x20   \"os\": \"{os}\",\n\
         \x20   \"arch\": \"{arch}\",\n\
         \x20   \"cpus\": {cpus}\n\
         \x20 }},\n\
         \x20 \"serial\": {{\n\
         \x20   \"scenario\": \"three_state_generic + geometric service + bernoulli({p:.2}), seed {seed}\",\n\
         \x20   \"warmup_slices\": {warmup},\n\
         \x20   \"measured_slices\": {measure},\n\
         \x20   \"slices_per_sec\": {{\n{policies}\n\
         \x20   }}\n\
         \x20 }},\n\
         \x20 \"event_skip\": {{\n\
         \x20   \"scenario\": \"three_state_generic + geometric service + bernoulli({sparse_p}), seed {seed}\",\n\
         \x20   \"warmup_slices\": {skip_warmup},\n\
         \x20   \"measured_slices\": {skip_measure},\n\
         \x20   \"slices_per_sec\": {{\n{skips}\n\
         \x20   }}\n\
         \x20 }},\n\
         \x20 \"parallel_grid\": {{\n\
         \x20   \"policy\": \"q_dpm\",\n\
         \x20   \"cells\": {cells},\n\
         \x20   \"slices_per_cell\": {slices_per_cell},\n\
         \x20   \"threads_requested\": {threads_requested},\n\
         \x20   \"threads_effective\": {threads_effective},\n\
         \x20   \"serial_slices_per_sec\": {gser:.1},\n\
         \x20   \"parallel_slices_per_sec\": {gpar:.1},\n\
         \x20   \"speedup\": {speedup}\n\
         \x20 }},\n\
         \x20 \"fleet\": {{\n\
         \x20   \"scenario\": \"{fleet_devices} x three_state_generic (break-even timeout) + aggregate bernoulli(0.5) round-robin, seed {seed}\",\n\
         \x20   \"devices\": {fleet_devices},\n\
         \x20   \"horizon_slices\": {fleet_horizon},\n\
         \x20   \"threads_requested\": {threads_requested},\n\
         \x20   \"threads_effective\": {fleet_threads},\n\
         \x20   \"modes\": {{\n{fleet}\n\
         \x20   }}\n\
         \x20 }}\n\
         }}\n",
        os = std::env::consts::OS,
        arch = std::env::consts::ARCH,
        cpus = qdpm_sim::parallel::available_threads(),
        p = ARRIVAL_P,
        sparse_p = SPARSE_P,
        seed = SEED,
        policies = policy_lines.join(",\n"),
        skips = skip_lines.join(",\n"),
        gser = grid_slices / serial_secs,
        gpar = grid_slices / parallel_secs,
        speedup = speedup_json,
        fleet = fleet_lines.join(",\n"),
    );

    let path = workspace_root().join("BENCH_throughput.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    print!("{json}");
}
