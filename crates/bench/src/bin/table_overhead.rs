//! T1 — the paper's central efficiency claim, as a table.
//!
//! "Even on Pentium III 800MHz PC, the widely applied linear programming
//! policy optimization runs extremely slow. [...] Apparently the run time
//! complexity of Q-DPM is very low."
//!
//! For growing DPM state spaces (queue capacity sweep), measures wall-clock
//! time of: one full LP policy optimization, one policy iteration, one
//! value iteration, versus ONE Q-DPM decide+learn step — the work each
//! approach performs to "refresh" its policy.
//!
//! Run with: `cargo run --release -p qdpm-bench --bin table_overhead`

use std::time::Instant;

use qdpm_bench::{save_results, standard_device};
use qdpm_core::Observation;
use qdpm_core::{PowerManager, QDpmAgent, QDpmConfig, StepOutcome};
use qdpm_device::DeviceMode;
use qdpm_mdp::{build_dpm_mdp, lp, solvers, CostWeights};
use qdpm_workload::MarkovArrivalModel;
use rand::SeedableRng;

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1e6) // microseconds
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (power, service) = standard_device();
    let arrivals = MarkovArrivalModel::bernoulli(0.1)?;

    let mut out = String::new();
    out.push_str("# table_overhead (T1): policy refresh cost, microseconds\n");
    out.push_str(
        "queue_cap\tn_states\tlp_us\tlp_pivots\tpi_us\tvi_us\tqdpm_step_us\tlp_over_qstep\n",
    );

    for queue_cap in [4usize, 8, 16, 32, 48] {
        let model = build_dpm_mdp(&power, &service, &arrivals, queue_cap, 20.0)?;
        let cost = model.mdp.combined_cost(CostWeights::default());
        let n = model.mdp.n_states();

        let (lp_sol, lp_us) = time(|| lp::lp_solve_discounted(&model.mdp, &cost, 0.95));
        let lp_sol = lp_sol?;
        let (_, pi_us) = time(|| solvers::policy_iteration(&model.mdp, &cost, 0.95).unwrap());
        let (_, vi_us) = time(|| {
            solvers::value_iteration(
                &model.mdp,
                &cost,
                solvers::SolveOptions {
                    discount: 0.95,
                    tol: 1e-9,
                    max_iter: 1_000_000,
                },
            )
            .unwrap()
        });

        // One Q-DPM step: decide + observe on a hot table (amortized).
        let mut agent = QDpmAgent::new(
            &power,
            QDpmConfig {
                queue_cap,
                ..QDpmConfig::default()
            },
        )?;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let obs = Observation {
            device_mode: DeviceMode::Operational(power.highest_power_state()),
            queue_len: 1,
            idle_slices: 0,
            sr_mode_hint: None,
        };
        let outcome = StepOutcome {
            energy: 1.0,
            queue_len: 1,
            dropped: 0,
            completed: 0,
            arrivals: 1,
            deadline_misses: 0,
        };
        // Warm up, then time a batch.
        for _ in 0..1_000 {
            let _ = agent.decide(&obs, &mut rng);
            agent.observe(&outcome, &obs);
        }
        let iters = 100_000u32;
        let (_, batch_us) = time(|| {
            for _ in 0..iters {
                let _ = agent.decide(&obs, &mut rng);
                agent.observe(&outcome, &obs);
            }
        });
        let qstep_us = batch_us / f64::from(iters);

        out.push_str(&format!(
            "{queue_cap}\t{n}\t{lp_us:.0}\t{}\t{pi_us:.0}\t{vi_us:.0}\t{qstep_us:.3}\t{:.0}\n",
            lp_sol.pivots,
            lp_us / qstep_us
        ));
        eprintln!("queue_cap {queue_cap} ({n} states): lp {lp_us:.0}us, pi {pi_us:.0}us, vi {vi_us:.0}us, q-step {qstep_us:.3}us");
    }
    print!("{out}");
    if let Some(path) = save_results("table_overhead.tsv", &out) {
        eprintln!("saved {}", path.display());
    }
    Ok(())
}
