//! T-DVFS — the joint DVFS + sleep-management frontier.
//!
//! Sweeps the deadline-penalized Q-DPM agent (per-miss reward penalty)
//! and the solved joint-MDP oracle (performance weight) over the
//! five-state `three-state-dvfs` machine with a deadline-tagged
//! Bernoulli workload, and reports each point's energy-per-slice and
//! deadline-miss-rate — the energy / responsiveness frontier of joint
//! sleep-state × operating-point control. The oracle is deadline-blind
//! but queue-aware (deadlines are not MDP state), so its curve is the
//! model-known envelope the model-free agent is measured against; the
//! trailing gap line documents how close the agent gets at matched miss
//! rates.
//!
//! Every point is an independent deterministic simulation, so the saved
//! TSV is byte-identical at any worker count.
//!
//! Run with: `cargo run --release -p qdpm-bench --bin frontier_dvfs --
//! [--threads N]`

use qdpm_bench::{save_results, threads_from_args};
use qdpm_device::presets;
use qdpm_sim::experiment::{
    frontier_gap_summary, frontier_rows_to_tsv, run_dvfs_frontier_threaded, FrontierParams,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let power = presets::three_state_dvfs();
    let service = presets::default_service();
    let params = FrontierParams::default();
    let threads = threads_from_args();
    eprintln!(
        "frontier: {} agent + {} oracle points on {} thread(s)",
        params.penalties.len(),
        params.oracle_perf_weights.len(),
        threads
    );

    let rows = run_dvfs_frontier_threaded(&power, &service, &params, threads)?;

    let mut out = String::new();
    out.push_str(
        "# frontier_dvfs (T-DVFS): energy vs deadline-miss-rate, \
         q-dpm joint sleep+dvfs agent vs solved mdp oracle\n",
    );
    out.push_str(&format!(
        "# scenario: three-state-dvfs, bernoulli(p={}), deadlines uniform[3,12], \
         queue cap {}, seed {}\n",
        params.arrival_p, params.queue_cap, params.seed
    ));
    out.push_str(&frontier_rows_to_tsv(&rows));
    let (mean_gap, worst_gap, matched) = frontier_gap_summary(&rows);
    out.push_str(&format!(
        "# gap: q-dpm energy within mean {mean_gap:.3}x / worst {worst_gap:.3}x of the \
         oracle frontier at matched miss rate (tol 0.02) over {matched} matched point(s)\n"
    ));
    print!("{out}");
    if let Some(path) = save_results("frontier_dvfs.tsv", &out) {
        eprintln!("saved {}", path.display());
    }
    Ok(())
}
