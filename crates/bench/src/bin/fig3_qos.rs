//! F3 — QoS-guaranteed Q-DPM (paper future work, implemented).
//!
//! Sweeps the latency (average-queue) target and reports, for each bound:
//! the QoS agent's steady-state energy and queue, the plain agent's, and
//! the constrained-LP randomized optimum.
//!
//! Run with: `cargo run --release -p qdpm-bench --bin fig3_qos`

use qdpm_bench::{save_results, standard_device};
use qdpm_core::{QDpmAgent, QDpmConfig, QosConfig, QosQDpmAgent};
use qdpm_mdp::{build_dpm_mdp, lp};
use qdpm_sim::{policies, SimConfig, Simulator};
use qdpm_workload::{MarkovArrivalModel, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (power, service) = standard_device();
    let arrival_p = 0.15;
    let horizon = 250_000u64;
    let spec = WorkloadSpec::bernoulli(arrival_p)?;
    let p_on = power.state(power.highest_power_state()).power;

    let mut out = String::new();
    out.push_str("# fig3 qos sweep | bernoulli p=0.15, steady-state after 150k warmup\n");
    out.push_str(
        "target\tqos_energy\tqos_queue\tqos_ok\tplain_energy\tplain_queue\tlp_energy\tlp_queue\n",
    );

    for target in [0.3, 0.6, 1.0, 1.5, 2.5] {
        // QoS agent.
        let qos = QosQDpmAgent::new(
            &power,
            QosConfig {
                perf_target: target,
                ..QosConfig::default()
            },
        )?;
        let mut sim = Simulator::new(
            power.clone(),
            service,
            spec.build(),
            Box::new(qos),
            SimConfig {
                seed: 5,
                ..SimConfig::default()
            },
        )?;
        sim.run(150_000);
        let qs = sim.run(horizon);

        // Plain agent (fixed trade-off, constraint-unaware).
        let plain = QDpmAgent::new(&power, QDpmConfig::default())?;
        let mut sim = Simulator::new(
            power.clone(),
            service,
            spec.build(),
            Box::new(plain),
            SimConfig {
                seed: 5,
                ..SimConfig::default()
            },
        )?;
        sim.run(150_000);
        let ps = sim.run(horizon);

        // Constrained-LP optimum (model known), simulated.
        let arrivals = MarkovArrivalModel::bernoulli(arrival_p)?;
        let model = build_dpm_mdp(&power, &service, &arrivals, 8, 20.0)?;
        let (lp_energy, lp_queue) = match lp::lp_solve_constrained(&model.mdp, 0.99, target) {
            Ok(sol) => {
                let controller =
                    policies::MdpPolicyController::stochastic(model.space.clone(), sol.policy);
                let mut sim = Simulator::new(
                    power.clone(),
                    service,
                    spec.build(),
                    Box::new(controller),
                    SimConfig {
                        seed: 5,
                        ..SimConfig::default()
                    },
                )?;
                let ls = sim.run(horizon);
                (ls.avg_power(), ls.avg_queue_len())
            }
            Err(_) => (f64::NAN, f64::NAN),
        };

        out.push_str(&format!(
            "{:.2}\t{:.5}\t{:.4}\t{}\t{:.5}\t{:.4}\t{:.5}\t{:.4}\n",
            target,
            qs.avg_power(),
            qs.avg_queue_len(),
            u8::from(qs.avg_queue_len() <= target * 1.15),
            ps.avg_power(),
            ps.avg_queue_len(),
            lp_energy,
            lp_queue,
        ));
        eprintln!("target {target}: done");
    }
    print!("{out}");
    if let Some(path) = save_results("fig3_qos.tsv", &out) {
        eprintln!("saved {}", path.display());
    }
    let _ = p_on;
    Ok(())
}
