//! F1 — regenerates paper Fig. 1 ("Convergence on Optimal Policy").
//!
//! Emits the windowed cost and energy-reduction series of Q-DPM learning
//! from scratch alongside the model-known optimal policy simulated on the
//! same arrival sequence, plus the analytic optimal/always-on gains.
//!
//! Run with: `cargo run --release -p qdpm-bench --bin fig1`

use qdpm_bench::{save_results, standard_device};
use qdpm_sim::experiment::{
    convergence_ratios_over_seeds, mean_and_sd, run_convergence, tail_mean_cost, ConvergenceParams,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (power, service) = standard_device();
    let params = ConvergenceParams::default();
    eprintln!(
        "fig1: bernoulli p={}, horizon {}, window {}",
        params.arrival_p, params.horizon, params.window
    );
    let report = run_convergence(&power, &service, &params)?;

    let mut out = String::new();
    out.push_str(&format!(
        "# fig1 convergence | optimal_gain={:.6} always_on_gain={:.6} final_ratio={:.4}\n",
        report.optimal_gain, report.always_on_gain, report.final_ratio
    ));
    out.push_str("end\tqdpm_cost\tqdpm_reduction\toptimal_cost\toptimal_reduction\toptimal_gain\n");
    for (q, o) in report.qdpm.iter().zip(&report.optimal) {
        out.push_str(&format!(
            "{}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\n",
            q.end,
            q.cost_per_slice,
            q.energy_reduction,
            o.cost_per_slice,
            o.energy_reduction,
            report.optimal_gain
        ));
    }
    print!("{out}");
    if let Some(path) = save_results("fig1_convergence.tsv", &out) {
        eprintln!("saved {}", path.display());
    }
    eprintln!(
        "summary: qdpm tail cost {:.4} vs optimal gain {:.4} (ratio {:.3}); always-on {:.4}",
        tail_mean_cost(&report.qdpm, 10),
        report.optimal_gain,
        tail_mean_cost(&report.qdpm, 10) / report.optimal_gain,
        report.always_on_gain
    );
    // Seed replication: the dispersion behind the convergence claim.
    let ratios =
        convergence_ratios_over_seeds(&power, &service, &params, &[7, 11, 23, 42, 77], 10)?;
    let (mean, sd) = mean_and_sd(&ratios);
    eprintln!(
        "replication over 5 seeds: tail/optimal ratio {:.3} +/- {:.3} ({:?})",
        mean,
        sd,
        ratios
            .iter()
            .map(|r| (r * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    Ok(())
}
