//! T4 — the paper's "after studying many cases" robustness sweep.
//!
//! Grid over device presets x arrival rates x service rates: Q-DPM's
//! steady-state cost ratio against the analytic optimum, energy reduction
//! and latency.
//!
//! Run with: `cargo run --release -p qdpm-bench --bin table_sweep`

use qdpm_bench::save_results;
use qdpm_device::presets;
use qdpm_sim::experiment::run_sweep;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let devices = vec![
        ("three-state".to_string(), presets::three_state_generic()),
        (
            "two-state".to_string(),
            presets::two_state(1.0, 0.1, 3, 1.2),
        ),
        ("ibm-hdd".to_string(), presets::ibm_hdd()),
    ];
    let arrival_ps = [0.02, 0.05, 0.1, 0.2, 0.4];
    let service_ps = [0.4, 0.6, 0.9];
    eprintln!(
        "sweep: {} devices x {} rates x {} service rates",
        devices.len(),
        arrival_ps.len(),
        service_ps.len()
    );
    let rows = run_sweep(&devices, &arrival_ps, &service_ps, 1_000_000, 300_000, 3)?;

    let mut out = String::new();
    out.push_str("# table_sweep (T4): q-dpm vs analytic optimum across cases\n");
    out.push_str(
        "device\tarrival_p\tservice_p\toptimal_gain\tqdpm_cost\tratio\tenergy_reduction\tmean_wait\n",
    );
    let mut worst: f64 = 0.0;
    let mut acc = 0.0;
    for r in &rows {
        out.push_str(&format!(
            "{}\t{:.2}\t{:.1}\t{:.5}\t{:.5}\t{:.3}\t{:.3}\t{:.2}\n",
            r.device,
            r.arrival_p,
            r.service_p,
            r.optimal_gain,
            r.qdpm_cost,
            r.ratio,
            r.energy_reduction,
            r.mean_wait
        ));
        worst = worst.max(r.ratio);
        acc += r.ratio;
    }
    out.push_str(&format!(
        "# mean ratio {:.3}, worst ratio {:.3} over {} cases\n",
        acc / rows.len() as f64,
        worst,
        rows.len()
    ));
    print!("{out}");
    if let Some(path) = save_results("table_sweep.tsv", &out) {
        eprintln!("saved {}", path.display());
    }
    Ok(())
}
