//! T4 — the paper's "after studying many cases" robustness sweep.
//!
//! Grid over device presets x arrival rates x service rates: Q-DPM's
//! steady-state cost ratio against the analytic optimum, energy reduction
//! and latency. Cells run on the deterministic parallel grid runner
//! (`qdpm_sim::parallel`): the saved TSV is byte-identical at any worker
//! count, so `--threads` only changes wall-clock time.
//!
//! Run with: `cargo run --release -p qdpm-bench --bin table_sweep --
//! [--threads N] [--compare-serial]`
//!
//! `--compare-serial` additionally times the serial (1-thread) path and
//! reports the speedup on stderr (timings never enter the TSV, which must
//! stay deterministic).

use std::time::Instant;

use qdpm_bench::{has_flag, save_results, threads_from_args};
use qdpm_device::presets;
use qdpm_sim::experiment::{run_sweep_threaded, sweep_ratio_summary, sweep_rows_to_tsv};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let devices = vec![
        ("three-state".to_string(), presets::three_state_generic()),
        (
            "two-state".to_string(),
            presets::two_state(1.0, 0.1, 3, 1.2),
        ),
        ("ibm-hdd".to_string(), presets::ibm_hdd()),
    ];
    let arrival_ps = [0.02, 0.05, 0.1, 0.2, 0.4];
    let service_ps = [0.4, 0.6, 0.9];
    let (train, evaluate, seed) = (1_000_000, 300_000, 3);
    let threads = threads_from_args();
    eprintln!(
        "sweep: {} devices x {} rates x {} service rates on {} thread(s)",
        devices.len(),
        arrival_ps.len(),
        service_ps.len(),
        threads
    );

    let start = Instant::now();
    let rows = run_sweep_threaded(
        &devices,
        &arrival_ps,
        &service_ps,
        train,
        evaluate,
        seed,
        threads,
    )?;
    let parallel_s = start.elapsed().as_secs_f64();
    eprintln!("parallel path ({threads} threads): {parallel_s:.2}s wall");

    if has_flag("--compare-serial") {
        let start = Instant::now();
        let serial_rows =
            run_sweep_threaded(&devices, &arrival_ps, &service_ps, train, evaluate, seed, 1)?;
        let serial_s = start.elapsed().as_secs_f64();
        assert_eq!(
            sweep_rows_to_tsv(&rows),
            sweep_rows_to_tsv(&serial_rows),
            "parallel TSV must be byte-identical to serial"
        );
        eprintln!(
            "serial path: {serial_s:.2}s wall — speedup {:.2}x on {threads} thread(s)",
            serial_s / parallel_s.max(1e-9)
        );
    }

    let mut out = String::new();
    out.push_str("# table_sweep (T4): q-dpm vs analytic optimum across cases\n");
    out.push_str(&sweep_rows_to_tsv(&rows));
    let (mean, worst, n_valid) = sweep_ratio_summary(&rows);
    out.push_str(&format!(
        "# mean ratio {mean:.3}, worst ratio {worst:.3} over {n_valid} cases\n"
    ));
    print!("{out}");
    if let Some(path) = save_results("table_sweep.tsv", &out) {
        eprintln!("saved {}", path.display());
    }
    Ok(())
}
