//! F2 — regenerates paper Fig. 2 ("Rapid Response").
//!
//! Piecewise-stationary workload with marked switching points; series for
//! Q-DPM, the model-based adaptive pipeline (estimator + detector +
//! re-optimizer with modeled optimization delay), and the clairvoyant
//! per-segment optimum.
//!
//! Run with: `cargo run --release -p qdpm-bench --bin fig2`

use qdpm_bench::{save_results, standard_device};
use qdpm_sim::experiment::{run_rapid_response, RapidResponseParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (power, service) = standard_device();
    let seg = 40_000u64;
    let params = RapidResponseParams {
        segments: vec![
            (seg, 0.02),
            (seg, 0.25),
            (seg, 0.05),
            (seg, 0.25),
            (seg, 0.02),
            (seg, 0.15),
        ],
        window: 2_000,
        ..RapidResponseParams::default()
    };
    eprintln!(
        "fig2: {} segments of {} slices, optimization delay {} slices",
        params.segments.len(),
        seg,
        params.adaptive.optimization_delay
    );
    let report = run_rapid_response(&power, &service, &params)?;

    let mut out = String::new();
    out.push_str(&format!(
        "# fig2 rapid response | switch_points={:?} model_based_resolves={}\n",
        report.switch_points, report.model_based_resolves
    ));
    out.push_str(
        "end\tqdpm_cost\tqdpm_reduction\tmodel_based_cost\tmodel_based_reduction\tclairvoyant_cost\tswitch\n",
    );
    for ((q, m), c) in report
        .qdpm
        .iter()
        .zip(&report.model_based)
        .zip(&report.clairvoyant)
    {
        let switched = report
            .switch_points
            .iter()
            .any(|&s| s >= q.end.saturating_sub(params.window) && s < q.end);
        out.push_str(&format!(
            "{}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\t{}\n",
            q.end,
            q.cost_per_slice,
            q.energy_reduction,
            m.cost_per_slice,
            m.energy_reduction,
            c.cost_per_slice,
            u8::from(switched)
        ));
    }
    print!("{out}");
    if let Some(path) = save_results("fig2_rapid_response.tsv", &out) {
        eprintln!("saved {}", path.display());
    }
    Ok(())
}
