//! F4 — Fuzzy Q-DPM in a noisy environment (paper future work,
//! implemented).
//!
//! Scenario where the finding is non-trivial: a heavy-tailed (Pareto)
//! workload, where the *idle-time* feature carries real signal about the
//! remaining gap, observed through noisy sensors (queue misreads + idle
//! jitter). Both agents get the idle feature — crisp via threshold buckets,
//! fuzzy via overlapping membership functions. The fuzzy agent's
//! generalization over the continuous features wins at every noise level.
//!
//! (On small exact-Markov problems the crisp table is already optimal and
//! fuzzification only adds approximation error — that negative result is
//! recorded in EXPERIMENTS.md.)
//!
//! Run with: `cargo run --release -p qdpm-bench --bin fig4_fuzzy`

use qdpm_bench::{save_results, standard_device};
use qdpm_core::{FuzzyConfig, FuzzyQDpmAgent, PowerManager, QDpmAgent, QDpmConfig};
use qdpm_sim::{ObservationNoise, SimConfig, Simulator};
use qdpm_workload::WorkloadSpec;

fn steady_cost(
    pm: Box<dyn PowerManager>,
    noise: ObservationNoise,
) -> Result<f64, Box<dyn std::error::Error>> {
    let (power, service) = standard_device();
    let mut sim = Simulator::new(
        power,
        service,
        WorkloadSpec::Pareto {
            alpha: 1.6,
            xm: 4.0,
        }
        .build(),
        pm,
        SimConfig {
            seed: 31,
            noise,
            ..SimConfig::default()
        },
    )?;
    sim.run(150_000);
    Ok(sim.run(150_000).avg_cost())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (power, _) = standard_device();
    let mut out = String::new();
    out.push_str("# fig4 fuzzy robustness | pareto alpha=1.6 xm=4, idle jitter 4\n");
    out.push_str("queue_misread_prob\tcrisp_cost\tfuzzy_cost\tfuzzy_advantage\n");

    for noise_p in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let noise = ObservationNoise {
            queue_misread_prob: noise_p,
            idle_jitter: 4,
        };
        let crisp = steady_cost(
            Box::new(QDpmAgent::new(
                &power,
                QDpmConfig {
                    idle_thresholds: vec![2, 4, 8, 16, 32],
                    ..QDpmConfig::default()
                },
            )?),
            noise,
        )?;
        let fuzzy = steady_cost(
            Box::new(FuzzyQDpmAgent::new(&power, FuzzyConfig::standard(8)?)?),
            noise,
        )?;
        out.push_str(&format!(
            "{:.1}\t{:.5}\t{:.5}\t{:.4}\n",
            noise_p,
            crisp,
            fuzzy,
            crisp / fuzzy
        ));
        eprintln!("noise {noise_p}: crisp {crisp:.4} fuzzy {fuzzy:.4}");
    }
    print!("{out}");
    if let Some(path) = save_results("fig4_fuzzy.tsv", &out) {
        eprintln!("saved {}", path.display());
    }
    Ok(())
}
