//! Ablations over the design choices `DESIGN.md` calls out: learning-rate
//! schedule, exploration strategy, state-encoding resolution, and the
//! perf-weight of the reward.
//!
//! Each row: steady-state cost after a fixed training budget on the
//! standard stationary scenario, plus the cost ratio to the analytic
//! optimum. Variants are independent cells, so they run on the
//! deterministic parallel runner — output order (and content) is identical
//! at any worker count.
//!
//! Run with: `cargo run --release -p qdpm-bench --bin table_ablation --
//! [--threads N]`

use qdpm_bench::{save_results, standard_device, threads_from_args};
use qdpm_core::{Exploration, LearningRate, QDpmAgent, QDpmConfig, RewardWeights};
use qdpm_sim::experiment::optimal_gain;
use qdpm_sim::parallel::run_indexed;
use qdpm_sim::{SimConfig, Simulator};
use qdpm_workload::WorkloadSpec;

fn steady_cost(config: QDpmConfig) -> Result<f64, String> {
    let (power, service) = standard_device();
    let agent = QDpmAgent::new(&power, config).map_err(|e| e.to_string())?;
    let mut sim = Simulator::new(
        power,
        service,
        WorkloadSpec::bernoulli(0.08)
            .map_err(|e| e.to_string())?
            .build(),
        Box::new(agent),
        SimConfig {
            seed: 13,
            ..SimConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    sim.run(200_000);
    Ok(sim.run(120_000).avg_cost())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (power, service) = standard_device();
    let weights = RewardWeights::default();
    let optimum = optimal_gain(&power, &service, 0.08, 8, &weights)?;

    let base = QDpmConfig::default();
    let variants: Vec<(&str, QDpmConfig)> = vec![
        ("baseline (const lr 0.1, eps 0.05)", base.clone()),
        (
            "lr const 0.5",
            QDpmConfig {
                learning_rate: LearningRate::Constant(0.5),
                ..base.clone()
            },
        ),
        (
            "lr visit-decay 0.7",
            QDpmConfig {
                learning_rate: LearningRate::VisitDecay { omega: 0.7 },
                ..base.clone()
            },
        ),
        (
            "lr global-decay c=5000",
            QDpmConfig {
                learning_rate: LearningRate::GlobalDecay { c: 5000.0 },
                ..base.clone()
            },
        ),
        (
            "eps 0.2",
            QDpmConfig {
                exploration: Exploration::EpsilonGreedy { epsilon: 0.2 },
                ..base.clone()
            },
        ),
        (
            "eps decaying 0.3->0.005",
            QDpmConfig {
                exploration: Exploration::DecayingEpsilon {
                    epsilon0: 0.3,
                    decay: 0.99996,
                    min_epsilon: 0.005,
                },
                ..base.clone()
            },
        ),
        (
            "boltzmann T=0.5",
            QDpmConfig {
                exploration: Exploration::Boltzmann { temperature: 0.5 },
                ..base.clone()
            },
        ),
        (
            "encoder + idle buckets",
            QDpmConfig {
                idle_thresholds: vec![2, 8, 32],
                ..base.clone()
            },
        ),
        (
            "discount 0.95 (short horizon)",
            QDpmConfig {
                discount: 0.95,
                ..base.clone()
            },
        ),
        (
            "perf weight 0.5",
            QDpmConfig {
                weights: RewardWeights::new(1.0, 0.5, 20.0)?,
                ..base.clone()
            },
        ),
    ];

    let threads = threads_from_args();
    eprintln!(
        "ablation: {} variants on {threads} thread(s)",
        variants.len()
    );
    let costs = run_indexed(&variants, threads, |_, (_, cfg)| steady_cost(cfg.clone()));

    let mut out = String::new();
    out.push_str(&format!(
        "# table_ablation | stationary p=0.08, optimum gain {optimum:.5}\n"
    ));
    out.push_str("variant\tsteady_cost\tratio_to_optimal\n");
    for ((name, _), cost) in variants.iter().zip(costs) {
        let cost = cost?;
        out.push_str(&format!("{name}\t{cost:.5}\t{:.3}\n", cost / optimum));
        eprintln!("{name}: {cost:.5} ({:.3}x)", cost / optimum);
    }
    print!("{out}");
    if let Some(path) = save_results("table_ablation.tsv", &out) {
        eprintln!("saved {}", path.display());
    }
    Ok(())
}
