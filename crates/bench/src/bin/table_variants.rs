//! Learner-variant comparison: Watkins (the paper) vs SARSA, Double Q, and
//! Watkins Q(lambda) eligibility traces.
//!
//! Two scenarios: the standard three-state device (short transients) and
//! the IBM-HDD (20-30-slice uncontrollable transients), where traces are
//! expected to accelerate credit assignment. Reported: cost during the
//! learning phase (tracks speed) and at steady state (tracks asymptote),
//! both as ratios to the analytic optimum.
//!
//! Learner variants are independent cells, so each scenario's variant set
//! runs on the deterministic parallel runner (`qdpm_sim::parallel`) —
//! identical output at any worker count.
//!
//! Run with: `cargo run --release -p qdpm-bench --bin table_variants --
//! [--threads N]`

use qdpm_bench::{save_results, standard_device, threads_from_args};
use qdpm_core::{
    DoubleQLearner, Exploration, GenericQDpmAgent, PowerManager, QDpmConfig, QLambdaLearner,
    QLearner, RewardWeights, SarsaLearner, StateEncoder,
};
use qdpm_device::{presets, PowerModel, ServiceModel};
use qdpm_sim::experiment::optimal_gain;
use qdpm_sim::parallel::run_indexed;
use qdpm_sim::{SimConfig, Simulator};
use qdpm_workload::WorkloadSpec;

struct Scenario {
    name: &'static str,
    power: PowerModel,
    service: ServiceModel,
    arrival_p: f64,
    train: u64,
    evaluate: u64,
}

fn exploration(train: u64) -> Exploration {
    let eps0: f64 = 0.4;
    let min_epsilon = 0.005;
    Exploration::DecayingEpsilon {
        epsilon0: eps0,
        decay: (min_epsilon / eps0).powf(1.0 / (0.7 * train as f64)),
        min_epsilon,
    }
}

fn run_variant(
    scenario: &Scenario,
    learner: &dyn MakeLearner,
) -> Result<(String, f64, f64), String> {
    let config = QDpmConfig {
        exploration: exploration(scenario.train),
        ..QDpmConfig::default()
    };
    let encoder = config
        .encoder_for(&scenario.power)
        .map_err(|e| e.to_string())?;
    let (name, pm) = learner.make(
        &scenario.power,
        &config,
        encoder.n_states(),
        scenario.power.n_states(),
    )?;
    let mut sim = Simulator::new(
        scenario.power.clone(),
        scenario.service,
        WorkloadSpec::bernoulli(scenario.arrival_p)
            .map_err(|e| e.to_string())?
            .build(),
        pm,
        SimConfig {
            seed: 17,
            ..SimConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let learning = sim.run(scenario.train);
    let steady = sim.run(scenario.evaluate);
    Ok((name, learning.avg_cost(), steady.avg_cost()))
}

/// Factory so each variant builds its own learner sized to the scenario's
/// encoder. `Sync` because the factories are shared across the parallel
/// runner's workers; errors are `String` so results are `Send`.
trait MakeLearner: Sync {
    fn make(
        &self,
        power: &PowerModel,
        config: &QDpmConfig,
        n_states: usize,
        n_actions: usize,
    ) -> Result<(String, Box<dyn PowerManager>), String>;
}

struct Watkins;
struct Sarsa;
struct DoubleQ;
struct QLambda(f64);

impl MakeLearner for Watkins {
    fn make(
        &self,
        power: &PowerModel,
        config: &QDpmConfig,
        n_states: usize,
        n_actions: usize,
    ) -> Result<(String, Box<dyn PowerManager>), String> {
        let l = QLearner::new(
            n_states,
            n_actions,
            config.discount,
            config.learning_rate,
            config.exploration,
        )
        .map_err(|e| e.to_string())?;
        Ok((
            "watkins-q (paper)".into(),
            Box::new(GenericQDpmAgent::with_learner(power, config, l).map_err(|e| e.to_string())?),
        ))
    }
}

impl MakeLearner for Sarsa {
    fn make(
        &self,
        power: &PowerModel,
        config: &QDpmConfig,
        n_states: usize,
        n_actions: usize,
    ) -> Result<(String, Box<dyn PowerManager>), String> {
        let l = SarsaLearner::new(
            n_states,
            n_actions,
            config.discount,
            config.learning_rate,
            config.exploration,
        )
        .map_err(|e| e.to_string())?;
        Ok((
            "sarsa".into(),
            Box::new(GenericQDpmAgent::with_learner(power, config, l).map_err(|e| e.to_string())?),
        ))
    }
}

impl MakeLearner for DoubleQ {
    fn make(
        &self,
        power: &PowerModel,
        config: &QDpmConfig,
        n_states: usize,
        n_actions: usize,
    ) -> Result<(String, Box<dyn PowerManager>), String> {
        let l = DoubleQLearner::new(
            n_states,
            n_actions,
            config.discount,
            config.learning_rate,
            config.exploration,
        )
        .map_err(|e| e.to_string())?;
        Ok((
            "double-q".into(),
            Box::new(GenericQDpmAgent::with_learner(power, config, l).map_err(|e| e.to_string())?),
        ))
    }
}

impl MakeLearner for QLambda {
    fn make(
        &self,
        power: &PowerModel,
        config: &QDpmConfig,
        n_states: usize,
        n_actions: usize,
    ) -> Result<(String, Box<dyn PowerManager>), String> {
        let l = QLambdaLearner::new(
            n_states,
            n_actions,
            config.discount,
            self.0,
            config.learning_rate,
            config.exploration,
        )
        .map_err(|e| e.to_string())?;
        Ok((
            format!("q(lambda={})", self.0),
            Box::new(GenericQDpmAgent::with_learner(power, config, l).map_err(|e| e.to_string())?),
        ))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (std_power, std_service) = standard_device();
    let scenarios = [
        Scenario {
            name: "three-state p=0.08",
            power: std_power,
            service: std_service,
            arrival_p: 0.08,
            train: 200_000,
            evaluate: 120_000,
        },
        Scenario {
            name: "ibm-hdd p=0.05",
            power: presets::ibm_hdd(),
            service: std_service,
            arrival_p: 0.05,
            train: 600_000,
            evaluate: 200_000,
        },
    ];

    let threads = threads_from_args();
    eprintln!("variants on {threads} thread(s)");
    let mut out = String::new();
    out.push_str("# table_variants: learner algorithms vs the analytic optimum\n");
    out.push_str("scenario\tvariant\tlearning_cost\tsteady_cost\tsteady_ratio\n");
    let weights = RewardWeights::default();
    for scenario in &scenarios {
        let optimum = optimal_gain(
            &scenario.power,
            &scenario.service,
            scenario.arrival_p,
            8,
            &weights,
        )?;
        let variants: Vec<Box<dyn MakeLearner>> = vec![
            Box::new(Watkins),
            Box::new(Sarsa),
            Box::new(DoubleQ),
            Box::new(QLambda(0.5)),
            Box::new(QLambda(0.9)),
        ];
        let results = run_indexed(&variants, threads, |_, v| run_variant(scenario, v.as_ref()));
        for result in results {
            let (name, learning, steady) = result?;
            out.push_str(&format!(
                "{}\t{}\t{:.5}\t{:.5}\t{:.3}\n",
                scenario.name,
                name,
                learning,
                steady,
                steady / optimum
            ));
            eprintln!(
                "{} / {name}: learn {learning:.4} steady {steady:.4} ({:.3}x opt)",
                scenario.name,
                steady / optimum
            );
        }
    }
    print!("{out}");
    if let Some(path) = save_results("table_variants.tsv", &out) {
        eprintln!("saved {}", path.display());
    }
    Ok(())
}
