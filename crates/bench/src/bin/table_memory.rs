//! T2 — the paper's memory claim, as a table.
//!
//! "Q values can be encoded in a |s| x |a| table that requires a little bit
//! memory space. Hence, it is feasible to implement Q-DPM on almost any
//! embedded nodes."
//!
//! Compares, per state-space size: Q-DPM's table bytes against the
//! model-based pipeline's working set (compiled MDP + solver values +
//! estimator window).
//!
//! Run with: `cargo run --release -p qdpm-bench --bin table_memory`

use qdpm_bench::{save_results, standard_device};
use qdpm_core::{QDpmAgent, QDpmConfig};
use qdpm_mdp::build_dpm_mdp;
use qdpm_workload::{MarkovArrivalModel, RateEstimator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (power, service) = standard_device();
    let arrivals = MarkovArrivalModel::bernoulli(0.1)?;

    let mut out = String::new();
    out.push_str("# table_memory (T2): working-set bytes\n");
    out.push_str("queue_cap\tn_states\tqdpm_bytes\tmodel_based_bytes\tratio\n");

    for queue_cap in [4usize, 8, 16, 32, 64] {
        let agent = QDpmAgent::new(
            &power,
            QDpmConfig {
                queue_cap,
                ..QDpmConfig::default()
            },
        )?;
        let qdpm_bytes = agent.table_bytes();

        let model = build_dpm_mdp(&power, &service, &arrivals, queue_cap, 20.0)?;
        let estimator = RateEstimator::new(200);
        // Model-based working set: the compiled model, one value vector for
        // the solver, and the estimator window.
        let mb_bytes = model.mdp.memory_bytes()
            + model.mdp.n_states() * std::mem::size_of::<f64>()
            + estimator.memory_bytes();

        out.push_str(&format!(
            "{queue_cap}\t{}\t{qdpm_bytes}\t{mb_bytes}\t{:.1}\n",
            model.mdp.n_states(),
            mb_bytes as f64 / qdpm_bytes as f64
        ));
    }
    print!("{out}");
    if let Some(path) = save_results("table_memory.tsv", &out) {
        eprintln!("saved {}", path.display());
    }
    Ok(())
}
