//! F5 — continuous parameter drift (extension of Fig. 2 to the paper's
//! stronger motivation).
//!
//! "In most real world systems parameters are undertaking continuous
//! varying, and the varying behavior needs to be rapidly tracked, so that
//! the maximum potential of power reduction can be delivered." A sinusoidal
//! arrival-rate sweep never gives the model-based pipeline a stationary
//! stretch to converge on: each re-solve is stale by the time it installs.
//! Q-DPM adapts every slice.
//!
//! Run with: `cargo run --release -p qdpm-bench --bin fig5_drift`

use qdpm_bench::{save_results, standard_device};
use qdpm_sim::experiment::{run_drift, DriftParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (power, service) = standard_device();
    let params = DriftParams::default();
    eprintln!(
        "fig5: sinusoid base {} amplitude {} period {}, horizon {}",
        params.base, params.amplitude, params.period, params.horizon
    );
    let report = run_drift(&power, &service, &params)?;

    let mut out = String::new();
    out.push_str(&format!(
        "# fig5 continuous drift | model_based_resolves={}\n",
        report.model_based_resolves
    ));
    out.push_str("end\tqdpm_cost\tmodel_based_cost\tclairvoyant_gain\n");
    let mut q_sum = 0.0;
    let mut m_sum = 0.0;
    let mut c_sum = 0.0;
    for ((q, m), c) in report
        .qdpm
        .iter()
        .zip(&report.model_based)
        .zip(&report.clairvoyant_gain)
    {
        out.push_str(&format!(
            "{}\t{:.6}\t{:.6}\t{:.6}\n",
            q.end, q.cost_per_slice, m.cost_per_slice, c
        ));
        q_sum += q.cost_per_slice;
        m_sum += m.cost_per_slice;
        c_sum += c;
    }
    let n = report.qdpm.len() as f64;
    print!("{out}");
    eprintln!(
        "summary: mean cost q-dpm {:.4}, model-based {:.4}, clairvoyant bound {:.4} ({} re-solves)",
        q_sum / n,
        m_sum / n,
        c_sum / n,
        report.model_based_resolves
    );
    if let Some(path) = save_results("fig5_drift.tsv", &out) {
        eprintln!("saved {}", path.display());
    }
    Ok(())
}
