use serde::{Deserialize, Serialize};

use crate::{FaultState, PowerModel, PowerStateId, TransitionSpec};

/// Instantaneous mode of a runtime [`Device`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceMode {
    /// Resident in a power state; commands are accepted.
    Operational(PowerStateId),
    /// Mid-transition; commands are ignored until the transition completes.
    Transitioning {
        /// State the transition started from.
        from: PowerStateId,
        /// State the transition will land in.
        to: PowerStateId,
        /// Slices left until arrival, at least 1.
        remaining: u32,
    },
}

impl DeviceMode {
    /// The operational state, if not transitioning.
    #[must_use]
    pub fn operational_state(&self) -> Option<PowerStateId> {
        match *self {
            DeviceMode::Operational(s) => Some(s),
            DeviceMode::Transitioning { .. } => None,
        }
    }

    /// Whether the device is mid-transition.
    #[must_use]
    pub fn is_transitioning(&self) -> bool {
        matches!(self, DeviceMode::Transitioning { .. })
    }
}

/// Result of issuing a power command to a [`Device`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CommandOutcome {
    /// The device was already in the commanded state; nothing happened.
    AlreadyThere,
    /// The switch completed within this slice; the transition energy is
    /// reported here and must be accounted by the caller.
    Switched {
        /// Energy of the instantaneous transition.
        energy: f64,
    },
    /// A multi-slice transition began; energy accrues via [`Device::tick`].
    TransitionStarted {
        /// Slices until the transition completes.
        latency: u32,
    },
    /// Command ignored: the device is mid-transition (uncontrollable).
    IgnoredInTransition,
    /// Command ignored: the model defines no such transition.
    IgnoredNoSuchTransition,
}

impl CommandOutcome {
    /// Energy charged at command time (non-zero only for instant switches).
    #[must_use]
    pub fn immediate_energy(&self) -> f64 {
        match *self {
            CommandOutcome::Switched { energy } => energy,
            _ => 0.0,
        }
    }
}

/// Per-slice accounting reported by [`Device::tick`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TickReport {
    /// Energy drawn during this slice (state residency or transition share).
    pub energy: f64,
    /// Whether the device can serve a request during this slice.
    pub can_serve: bool,
    /// Mode after the slice elapsed (transitions complete at slice end).
    pub mode_after: DeviceMode,
}

/// Plain-old-data dynamic state of a power-managed device: the current
/// [`DeviceMode`] plus the [`TransitionSpec`] backing any in-flight
/// transition.
///
/// This is the entire per-device mutable state of the power state machine
/// — the static [`PowerModel`] is passed by reference into
/// [`DeviceState::command`] and [`DeviceState::tick`], so thousands of
/// homogeneous devices can share one model while their states live in a
/// flat structure-of-arrays `Vec<DeviceState>`. The boxed [`Device`] wraps
/// this same type, so the scalar and batched engines step the identical
/// transition logic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceState {
    /// Current mode.
    pub mode: DeviceMode,
    /// Transition spec backing the current `Transitioning` mode, if any.
    pub active_transition: Option<TransitionSpec>,
}

impl DeviceState {
    /// State resident in `model`'s highest-power state (the conventional
    /// "everything on" initial condition).
    #[must_use]
    pub fn new(model: &PowerModel) -> Self {
        DeviceState::at(model.highest_power_state())
    }

    /// State resident in a specific operational state (not validated
    /// against any model; out-of-range ids panic in `command`/`tick`).
    #[must_use]
    pub fn at(state: PowerStateId) -> Self {
        DeviceState {
            mode: DeviceMode::Operational(state),
            active_transition: None,
        }
    }

    /// Issues a command targeting power state `target`, resolving it
    /// against `model`.
    ///
    /// Returns how the command was handled; see [`CommandOutcome`]. Energy
    /// of zero-latency switches is reported in the outcome and must be
    /// added to the slice's accounting by the caller.
    ///
    /// # Panics
    ///
    /// Panics if the current state or `target` is out of range for
    /// `model`.
    #[inline]
    pub fn command(&mut self, model: &PowerModel, target: PowerStateId) -> CommandOutcome {
        let current = match self.mode {
            DeviceMode::Transitioning { .. } => return CommandOutcome::IgnoredInTransition,
            DeviceMode::Operational(s) => s,
        };
        if current == target {
            return CommandOutcome::AlreadyThere;
        }
        let Some(spec) = model.transition(current, target) else {
            return CommandOutcome::IgnoredNoSuchTransition;
        };
        if spec.latency == 0 {
            self.mode = DeviceMode::Operational(target);
            CommandOutcome::Switched {
                energy: spec.energy,
            }
        } else {
            self.mode = DeviceMode::Transitioning {
                from: current,
                to: target,
                remaining: spec.latency,
            };
            self.active_transition = Some(spec);
            CommandOutcome::TransitionStarted {
                latency: spec.latency,
            }
        }
    }

    /// Elapses one time slice against `model`: charges residency or
    /// transition energy and completes transitions whose countdown reaches
    /// zero.
    ///
    /// # Panics
    ///
    /// Panics if the current operational state is out of range for
    /// `model`.
    #[inline]
    pub fn tick(&mut self, model: &PowerModel) -> TickReport {
        match self.mode {
            DeviceMode::Operational(s) => {
                let spec = model.state(s);
                TickReport {
                    energy: spec.power,
                    can_serve: spec.can_serve,
                    mode_after: self.mode,
                }
            }
            DeviceMode::Transitioning {
                from,
                to,
                remaining,
            } => {
                let spec = self
                    .active_transition
                    .expect("transitioning device has an active transition spec");
                let energy = spec.energy_per_step();
                if remaining <= 1 {
                    self.mode = DeviceMode::Operational(to);
                    self.active_transition = None;
                } else {
                    self.mode = DeviceMode::Transitioning {
                        from,
                        to,
                        remaining: remaining - 1,
                    };
                }
                TickReport {
                    energy,
                    can_serve: false,
                    mode_after: self.mode,
                }
            }
        }
    }

    /// Per-slice energy of the in-flight transition (`None` when
    /// operational) — what every remaining [`DeviceState::tick`] of the
    /// transition will charge.
    #[must_use]
    pub fn transient_slice_energy(&self) -> Option<f64> {
        self.active_transition
            .as_ref()
            .map(TransitionSpec::energy_per_step)
    }

    /// Service-speed multiplier of the currently occupied state — the
    /// device's DVFS operating point (see
    /// [`crate::PowerStateSpec::freq`]). `1.0` while transitioning (a
    /// transitioning device cannot serve, so no speed applies).
    ///
    /// # Panics
    ///
    /// Panics if the current operational state is out of range for
    /// `model`.
    #[must_use]
    pub fn operating_freq(&self, model: &PowerModel) -> f64 {
        match self.mode {
            DeviceMode::Operational(s) => model.state(s).freq,
            DeviceMode::Transitioning { .. } => 1.0,
        }
    }
}

/// A runtime power-managed device: a [`PowerModel`] plus its current mode.
///
/// The device follows the shared simulation contract (see `DESIGN.md`):
/// commands are issued at the start of a slice via [`Device::command`], and
/// [`Device::tick`] then charges the slice's energy and advances any pending
/// transition. Commands issued mid-transition are ignored, which models the
/// uncontrollable transient states of real hardware.
///
/// The dynamic half lives in a plain-old-data [`DeviceState`]; `Device`
/// binds it to an owned model for the common single-device case, while the
/// batched fleet engine holds `Vec<DeviceState>` against one shared model.
///
/// # Example
///
/// ```
/// use qdpm_device::{presets, Device};
///
/// let mut device = Device::new(presets::three_state_generic());
/// let sleep = device.model().state_by_name("sleep").unwrap();
/// device.command(sleep);
/// while device.mode().is_transitioning() {
///     device.tick();
/// }
/// assert_eq!(device.mode().operational_state(), Some(sleep));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    model: PowerModel,
    state: DeviceState,
    fault: FaultState,
}

impl Device {
    /// Creates a device resident in the model's highest-power state (the
    /// conventional "everything on" initial condition).
    #[must_use]
    pub fn new(model: PowerModel) -> Self {
        let state = DeviceState::new(&model);
        Device {
            model,
            state,
            fault: FaultState::Healthy,
        }
    }

    /// Creates a device starting in a specific state.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is out of range for `model`.
    #[must_use]
    pub fn with_initial_state(model: PowerModel, initial: PowerStateId) -> Self {
        assert!(
            initial.index() < model.n_states(),
            "initial state out of range"
        );
        Device {
            model,
            state: DeviceState::at(initial),
            fault: FaultState::Healthy,
        }
    }

    /// The static power model this device animates.
    #[must_use]
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// Current mode.
    #[must_use]
    pub fn mode(&self) -> DeviceMode {
        self.state.mode
    }

    /// The plain-old-data dynamic state (mode + in-flight transition).
    #[must_use]
    pub fn state(&self) -> DeviceState {
        self.state
    }

    /// Issues a command targeting power state `target`.
    ///
    /// Returns how the command was handled; see [`CommandOutcome`]. Energy of
    /// zero-latency switches is reported in the outcome and must be added to
    /// the slice's accounting by the caller.
    pub fn command(&mut self, target: PowerStateId) -> CommandOutcome {
        self.state.command(&self.model, target)
    }

    /// Elapses one time slice: charges residency or transition energy and
    /// completes transitions whose countdown reaches zero.
    pub fn tick(&mut self) -> TickReport {
        self.state.tick(&self.model)
    }

    /// Per-slice energy of the in-flight transition (`None` when
    /// operational) — what every remaining [`Device::tick`] of the
    /// transition will charge. The event-skipping engine uses it to
    /// account a transient stretch without inspecting individual ticks.
    #[must_use]
    pub fn transient_slice_energy(&self) -> Option<f64> {
        self.state.transient_slice_energy()
    }

    /// Service-speed multiplier of the currently occupied state (the DVFS
    /// operating point; `1.0` while transitioning). See
    /// [`DeviceState::operating_freq`].
    #[must_use]
    pub fn operating_freq(&self) -> f64 {
        self.state.operating_freq(&self.model)
    }

    /// Overwrites the dynamic state wholesale (checkpoint restore). The
    /// state must have been produced by [`Device::state`] on a device with
    /// the same model; it is not re-validated here beyond the panics the
    /// next `command`/`tick` would raise for out-of-range ids.
    pub fn restore_state(&mut self, state: DeviceState) {
        self.state = state;
    }

    /// Resets the device to a given operational state, cancelling any
    /// in-flight transition (used when reusing a device across runs).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range for the model.
    pub fn reset_to(&mut self, state: PowerStateId) {
        assert!(state.index() < self.model.n_states(), "state out of range");
        self.state = DeviceState::at(state);
    }

    /// Resets the device to its initial condition (resident in the
    /// highest-power state, no in-flight transition, healthy) without
    /// touching the model — the cheap per-device reset the fleet runner
    /// uses when recycling device instances between runs, avoiding a model
    /// re-clone.
    pub fn reset(&mut self) {
        let initial = self.model.highest_power_state();
        self.reset_to(initial);
        self.fault = FaultState::Healthy;
    }

    /// Current position on the fault axis (see [`FaultState`]).
    ///
    /// Note the engine clears fault windows lazily — an expired window may
    /// still read as `Down`/`Degraded` here until the next slice ticks the
    /// fault clock. Health reporting should normalize against the clock.
    #[must_use]
    pub fn fault(&self) -> FaultState {
        self.fault
    }

    /// Installs a fault state (fault injection / checkpoint restore).
    pub fn set_fault(&mut self, fault: FaultState) {
        self.fault = fault;
    }

    /// Clears any active fault, returning the device to the healthy axis
    /// position. Does not touch the power state machine — a recovering
    /// crashed device must additionally be rebooted via [`Device::reset_to`]
    /// by the caller.
    pub fn clear_fault(&mut self) {
        self.fault = FaultState::Healthy;
    }

    /// The fault-mandated per-slice power draw while down, or `None` when
    /// the device is not down. While this returns `Some`, the power state
    /// machine is suspended: the device neither serves nor ticks, and the
    /// returned draw replaces the model's residency energy.
    #[must_use]
    pub fn fault_down_power(&self) -> Option<f64> {
        match self.fault {
            FaultState::Down { power, .. } => Some(power),
            _ => None,
        }
    }

    /// Gates one service opportunity against the fault axis: returns
    /// whether the device may begin/continue service work this slice.
    ///
    /// Healthy devices always may. A degraded (straggling) device takes
    /// only every `slowdown`-th opportunity — the gate counts opportunities
    /// deterministically, consuming no randomness. Callers must invoke this
    /// exactly once per slice in which service would otherwise happen, and
    /// only then (the counter is part of simulation state and is
    /// checkpointed with the device).
    ///
    /// A down device never reaches this gate (the engine short-circuits the
    /// whole slice), so `Down` conservatively returns `false`.
    pub fn service_gate(&mut self) -> bool {
        match &mut self.fault {
            FaultState::Healthy => true,
            FaultState::Degraded {
                slowdown,
                opportunities,
                ..
            } => {
                let allowed = *opportunities % (*slowdown).max(1) == 0;
                *opportunities = opportunities.wrapping_add(1);
                allowed
            }
            FaultState::Down { .. } => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PowerModel;

    fn model() -> PowerModel {
        PowerModel::builder("t")
            .state("on", 1.0, true)
            .state("off", 0.1, false)
            .state("nap", 0.5, false)
            .transition("on", "off", 2, 0.6)
            .transition("off", "on", 3, 0.9)
            .transition("on", "nap", 0, 0.05)
            .transition("nap", "on", 0, 0.05)
            .build()
            .unwrap()
    }

    #[test]
    fn starts_in_highest_power_state() {
        let d = Device::new(model());
        assert_eq!(d.mode().operational_state(), d.model().state_by_name("on"));
    }

    #[test]
    fn instant_switch_reports_energy() {
        let mut d = Device::new(model());
        let nap = d.model().state_by_name("nap").unwrap();
        let out = d.command(nap);
        assert_eq!(out, CommandOutcome::Switched { energy: 0.05 });
        assert_eq!(out.immediate_energy(), 0.05);
        assert_eq!(d.mode().operational_state(), Some(nap));
    }

    #[test]
    fn multi_step_transition_walks_through() {
        let mut d = Device::new(model());
        let off = d.model().state_by_name("off").unwrap();
        let out = d.command(off);
        assert_eq!(out, CommandOutcome::TransitionStarted { latency: 2 });
        assert!(d.mode().is_transitioning());

        let t1 = d.tick();
        assert!((t1.energy - 0.3).abs() < 1e-12);
        assert!(!t1.can_serve);
        assert!(d.mode().is_transitioning());

        let t2 = d.tick();
        assert!((t2.energy - 0.3).abs() < 1e-12);
        assert_eq!(d.mode().operational_state(), Some(off));
        // Total transition energy equals the spec.
        assert!((t1.energy + t2.energy - 0.6).abs() < 1e-12);
    }

    #[test]
    fn commands_ignored_mid_transition() {
        let mut d = Device::new(model());
        let off = d.model().state_by_name("off").unwrap();
        let on = d.model().state_by_name("on").unwrap();
        d.command(off);
        assert_eq!(d.command(on), CommandOutcome::IgnoredInTransition);
    }

    #[test]
    fn command_to_same_state_is_noop() {
        let mut d = Device::new(model());
        let on = d.model().state_by_name("on").unwrap();
        assert_eq!(d.command(on), CommandOutcome::AlreadyThere);
    }

    #[test]
    fn undefined_transition_is_ignored() {
        let mut d = Device::new(model());
        let off = d.model().state_by_name("off").unwrap();
        let nap = d.model().state_by_name("nap").unwrap();
        d.command(off);
        d.tick();
        d.tick();
        // off -> nap is not defined in the model.
        assert_eq!(d.command(nap), CommandOutcome::IgnoredNoSuchTransition);
    }

    #[test]
    fn residency_energy_matches_state_power() {
        let mut d = Device::new(model());
        let t = d.tick();
        assert_eq!(t.energy, 1.0);
        assert!(t.can_serve);
    }

    #[test]
    fn reset_returns_to_initial_condition() {
        let mut d = Device::new(model());
        let off = d.model().state_by_name("off").unwrap();
        d.command(off);
        d.tick();
        d.reset();
        assert_eq!(d, Device::new(model()), "reset restores the fresh state");
    }

    #[test]
    fn device_state_matches_boxed_device_in_lockstep() {
        // Drive a Device and a bare DeviceState through the same command
        // schedule; outcomes, ticks, and modes must agree at every slice.
        let m = model();
        let mut d = Device::new(m.clone());
        let mut s = DeviceState::new(&m);
        let targets: Vec<PowerStateId> = (0..m.n_states()).map(PowerStateId::from_index).collect();
        for step in 0..64usize {
            let target = targets[(step * 7 + 3) % targets.len()];
            assert_eq!(d.command(target), s.command(&m, target), "slice {step}");
            assert_eq!(d.tick(), s.tick(&m), "slice {step}");
            assert_eq!(d.mode(), s.mode, "slice {step}");
            assert_eq!(d.state(), s, "slice {step}");
            assert_eq!(
                d.transient_slice_energy(),
                s.transient_slice_energy(),
                "slice {step}"
            );
        }
    }

    #[test]
    fn reset_cancels_transition() {
        let mut d = Device::new(model());
        let off = d.model().state_by_name("off").unwrap();
        let on = d.model().state_by_name("on").unwrap();
        d.command(off);
        d.reset_to(on);
        assert_eq!(d.mode().operational_state(), Some(on));
        assert_eq!(d.tick().energy, 1.0);
    }

    #[test]
    fn fresh_device_is_healthy_and_serves() {
        let mut d = Device::new(model());
        assert!(d.fault().is_healthy());
        assert_eq!(d.fault_down_power(), None);
        assert!(d.service_gate());
        assert!(d.service_gate(), "healthy gate never closes");
    }

    #[test]
    fn down_device_reports_fault_power_and_blocks_service() {
        let mut d = Device::new(model());
        d.set_fault(FaultState::Down {
            until: 10,
            power: 0.25,
            queue_preserved: false,
        });
        assert_eq!(d.fault_down_power(), Some(0.25));
        assert!(!d.service_gate());
        d.clear_fault();
        assert!(d.fault().is_healthy());
        assert_eq!(d.fault_down_power(), None);
    }

    #[test]
    fn straggler_gate_admits_every_nth_opportunity() {
        let mut d = Device::new(model());
        d.set_fault(FaultState::Degraded {
            slowdown: 3,
            until: 100,
            opportunities: 0,
        });
        let taken: Vec<bool> = (0..7).map(|_| d.service_gate()).collect();
        assert_eq!(
            taken,
            [true, false, false, true, false, false, true],
            "every slowdown-th opportunity is taken, starting with the first"
        );
    }

    #[test]
    fn zero_slowdown_is_clamped_not_a_panic() {
        let mut d = Device::new(model());
        d.set_fault(FaultState::Degraded {
            slowdown: 0,
            until: 100,
            opportunities: 0,
        });
        assert!(d.service_gate());
        assert!(d.service_gate());
    }

    #[test]
    fn reset_clears_faults() {
        let mut d = Device::new(model());
        d.set_fault(FaultState::Down {
            until: u64::MAX,
            power: 0.0,
            queue_preserved: true,
        });
        d.reset();
        assert_eq!(d, Device::new(model()), "reset restores the fresh state");
    }
}
