//! DVFS operating points: expanding a sleep-state power model across
//! voltage/frequency points into a joint (sleep-state × point) machine.
//!
//! The Q-DPM agent, the simulation engines, and the exact MDP builder all
//! key their state spaces off [`PowerModel::n_states`], so DVFS is modeled
//! by *power-state expansion* rather than a separate frequency axis: every
//! serving state of a base model becomes one state per [`OperatingPoint`]
//! (`"active@slow"`, `"active@turbo"`, …), each carrying the point's
//! service-speed multiplier ([`crate::PowerStateSpec::freq`]) and a power
//! draw scaled by the quadratic law [`power_scale`]. Commanding a power
//! state then *is* the joint (sleep-state × operating-point) action —
//! encoders, legal-action tables, batched learners, and MDP solvers widen
//! to the product space with no further changes.
//!
//! Non-serving states are untouched: quiescence is frequency-independent,
//! which is what keeps the event-skipping engine's idle commits exact for
//! DVFS models.

use serde::{Deserialize, Serialize};

use crate::{DeviceError, PowerModel, PowerStateId, TransitionSpec};

/// A voltage/frequency operating point of a serving power state.
///
/// `freq` is the service-speed multiplier relative to the base model's
/// nominal speed: at `freq = 0.5` the device completes work at half pace
/// (a geometric server's per-slice completion probability halves, see
/// `qdpm_device::scaled_completion`), at `freq = 1.5` it runs 50% faster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Point name, unique within an expansion (e.g. `"slow"`, `"turbo"`).
    pub name: String,
    /// Service-speed multiplier, finite and positive.
    pub freq: f64,
}

impl OperatingPoint {
    /// Convenience constructor.
    #[must_use]
    pub fn new(name: impl Into<String>, freq: f64) -> Self {
        OperatingPoint {
            name: name.into(),
            freq,
        }
    }
}

/// Quadratic power-vs-speed law: the per-slice power multiplier of a
/// serving state running at frequency multiplier `freq`.
///
/// Dynamic (switching) power scales roughly with `V² · f`, and voltage
/// scales with frequency over the DVFS range, so the dynamic share goes as
/// `freq²`; leakage and other static draw does not scale. With
/// `static_fraction` of the base power static:
///
/// ```text
/// scale(freq) = static_fraction + (1 - static_fraction) · freq²
/// ```
///
/// At `freq = 1` the scale is exactly `1.0` for any split, so the nominal
/// point reproduces the base model's power bit-for-bit.
#[must_use]
pub fn power_scale(freq: f64, static_fraction: f64) -> f64 {
    static_fraction + (1.0 - static_fraction) * freq * freq
}

/// A base power model expanded across DVFS operating points, with the
/// bookkeeping to map expanded states back to (base state, point).
///
/// Produced by [`expand`]; the expanded [`PowerModel`] is a perfectly
/// ordinary model, so everything downstream (devices, simulators, agents,
/// MDP builders) consumes it unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsExpansion {
    model: PowerModel,
    points: Vec<OperatingPoint>,
    /// Per expanded state: index into `points`, `None` for non-serving
    /// states (which carry no operating point).
    point_of: Vec<Option<usize>>,
    /// Per expanded state: index of the originating base-model state.
    base_of: Vec<usize>,
}

impl DvfsExpansion {
    /// The expanded joint power model.
    #[must_use]
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// Consumes the expansion, returning the joint model.
    #[must_use]
    pub fn into_model(self) -> PowerModel {
        self.model
    }

    /// The operating points the model was expanded across.
    #[must_use]
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// Index (into [`DvfsExpansion::points`]) of the operating point an
    /// expanded state runs at, or `None` for non-serving states.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the expanded model.
    #[must_use]
    pub fn point_of(&self, id: PowerStateId) -> Option<usize> {
        self.point_of[id.index()]
    }

    /// Identifier, in the *base* model, of the state an expanded state was
    /// derived from.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the expanded model.
    #[must_use]
    pub fn base_of(&self, id: PowerStateId) -> PowerStateId {
        PowerStateId::from_index(self.base_of[id.index()])
    }
}

/// Expands `base` across `points`: every serving state becomes one state
/// per operating point (named `"state@point"`), with power scaled by
/// [`power_scale`]`(freq, static_fraction)` and service speed set to the
/// point's `freq`; non-serving states pass through untouched.
///
/// Transition wiring, per base transition `a → b` with spec `t`:
/// * every expanded variant of `a` connects to every expanded variant of
///   `b` with `t` — in particular, waking from sleep picks the wake-up
///   operating point, and parking from any point costs the same;
/// * variants of the *same* serving state are additionally fully connected
///   with instantaneous, free transitions — the DVFS switch itself is
///   modeled as cheap relative to a slice, which matches the
///   microsecond-scale relock times of on-die regulators against the
///   millisecond-scale slices of the preset devices.
///
/// # Errors
///
/// Returns [`DeviceError::InvalidDvfs`] when `points` is empty, a point
/// name repeats, or `static_fraction` is not in `[0, 1]`;
/// [`DeviceError::InvalidFrequency`] for a non-finite or non-positive
/// point frequency; and any base-model validation error the expanded
/// builder re-raises (e.g. a name collision with an existing `@` state).
pub fn expand(
    base: &PowerModel,
    points: &[OperatingPoint],
    static_fraction: f64,
) -> Result<DvfsExpansion, DeviceError> {
    if points.is_empty() {
        return Err(DeviceError::InvalidDvfs(
            "expansion needs at least one operating point".into(),
        ));
    }
    if !(static_fraction.is_finite() && (0.0..=1.0).contains(&static_fraction)) {
        return Err(DeviceError::InvalidDvfs(format!(
            "static power fraction {static_fraction} not in [0, 1]"
        )));
    }
    for (i, pt) in points.iter().enumerate() {
        if !pt.freq.is_finite() || pt.freq <= 0.0 {
            return Err(DeviceError::InvalidFrequency {
                state: pt.name.clone(),
                freq: pt.freq,
            });
        }
        if points[..i].iter().any(|q| q.name == pt.name) {
            return Err(DeviceError::InvalidDvfs(format!(
                "duplicate operating point name `{}`",
                pt.name
            )));
        }
    }

    // Expanded states, in base-state index order (variants of one serving
    // state stay adjacent and in `points` order, so the layout is
    // deterministic and easy to reason about in encoders).
    let mut builder = PowerModel::builder(format!("{}+dvfs", base.name()));
    let mut point_of: Vec<Option<usize>> = Vec::new();
    let mut base_of: Vec<usize> = Vec::new();
    // Names of the expanded variants of each base state.
    let mut variants: Vec<Vec<String>> = Vec::with_capacity(base.n_states());
    for (base_id, spec) in base.states() {
        let mut names = Vec::new();
        if spec.can_serve {
            for (k, pt) in points.iter().enumerate() {
                let name = format!("{}@{}", spec.name, pt.name);
                builder = builder.state_with_freq(
                    name.clone(),
                    spec.power * power_scale(pt.freq, static_fraction),
                    true,
                    pt.freq,
                );
                point_of.push(Some(k));
                base_of.push(base_id.index());
                names.push(name);
            }
        } else {
            builder = builder.state_with_freq(spec.name.clone(), spec.power, false, spec.freq);
            point_of.push(None);
            base_of.push(base_id.index());
            names.push(spec.name.clone());
        }
        variants.push(names);
    }

    // Base transitions replicate across the variant product.
    for (from_id, _) in base.states() {
        for to_id in base.commands_from(from_id) {
            let spec = base
                .transition(from_id, to_id)
                .expect("commands_from yields defined transitions");
            for fv in &variants[from_id.index()] {
                for tv in &variants[to_id.index()] {
                    builder = builder.transition(fv.clone(), tv.clone(), spec.latency, spec.energy);
                }
            }
        }
    }
    // Intra-state DVFS switches: instant and free.
    let switch = TransitionSpec::new(0, 0.0);
    for names in &variants {
        for a in names {
            for b in names {
                if a != b {
                    builder =
                        builder.transition(a.clone(), b.clone(), switch.latency, switch.energy);
                }
            }
        }
    }

    let model = builder.build()?;
    Ok(DvfsExpansion {
        model,
        points: points.to_vec(),
        point_of,
        base_of,
    })
}

/// The standard three-point ladder used by the presets and benches:
/// `slow` (0.6×), `nominal` (1.0×), `turbo` (1.4×).
#[must_use]
pub fn standard_points() -> Vec<OperatingPoint> {
    vec![
        OperatingPoint::new("slow", 0.6),
        OperatingPoint::new("nominal", 1.0),
        OperatingPoint::new("turbo", 1.4),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn expanded() -> DvfsExpansion {
        expand(&presets::three_state_generic(), &standard_points(), 0.3).unwrap()
    }

    #[test]
    fn serving_states_fan_out_nonserving_pass_through() {
        let x = expanded();
        // 1 serving state × 3 points + 2 untouched sleep states.
        assert_eq!(x.model().n_states(), 5);
        assert!(x.model().state_by_name("active@slow").is_some());
        assert!(x.model().state_by_name("active@nominal").is_some());
        assert!(x.model().state_by_name("active@turbo").is_some());
        assert!(x.model().state_by_name("idle").is_some());
        assert!(x.model().state_by_name("sleep").is_some());
    }

    #[test]
    fn nominal_point_reproduces_base_power_exactly() {
        let x = expanded();
        let base = presets::three_state_generic();
        let nominal = x.model().state_by_name("active@nominal").unwrap();
        let active = base.state_by_name("active").unwrap();
        assert_eq!(
            x.model().state(nominal).power.to_bits(),
            base.state(active).power.to_bits()
        );
        assert_eq!(x.model().state(nominal).freq, 1.0);
    }

    #[test]
    fn quadratic_power_law() {
        // static 0.3: slow = 0.3 + 0.7·0.36 = 0.552; turbo = 0.3 + 0.7·1.96.
        assert!((power_scale(0.6, 0.3) - 0.552).abs() < 1e-12);
        assert!((power_scale(1.4, 0.3) - 1.672).abs() < 1e-12);
        assert_eq!(power_scale(1.0, 0.3), 1.0);
        assert_eq!(power_scale(1.0, 0.0), 1.0);
        let x = expanded();
        let turbo = x.model().state_by_name("active@turbo").unwrap();
        assert!((x.model().state(turbo).power - 1.672).abs() < 1e-12);
        assert!(
            x.model().state(turbo).power
                > x.model()
                    .state(x.model().state_by_name("active@slow").unwrap())
                    .power,
            "faster points draw more"
        );
    }

    #[test]
    fn mappings_round_trip() {
        let x = expanded();
        let base = presets::three_state_generic();
        let slow = x.model().state_by_name("active@slow").unwrap();
        let idle = x.model().state_by_name("idle").unwrap();
        assert_eq!(x.point_of(slow), Some(0));
        assert_eq!(x.point_of(idle), None);
        assert_eq!(x.base_of(slow), base.state_by_name("active").unwrap());
        assert_eq!(x.base_of(idle), base.state_by_name("idle").unwrap());
        assert_eq!(x.points().len(), 3);
    }

    #[test]
    fn transitions_replicate_and_points_interconnect() {
        let x = expanded();
        let m = x.model();
        let slow = m.state_by_name("active@slow").unwrap();
        let turbo = m.state_by_name("active@turbo").unwrap();
        let sleep = m.state_by_name("sleep").unwrap();
        // DVFS switch: instant and free.
        let t = m.transition(slow, turbo).unwrap();
        assert_eq!((t.latency, t.energy), (0, 0.0));
        // Parking costs the base spec from every point; waking picks the
        // point and costs the base wake spec.
        let base = presets::three_state_generic();
        let park = base
            .transition(
                base.state_by_name("active").unwrap(),
                base.state_by_name("sleep").unwrap(),
            )
            .unwrap();
        assert_eq!(m.transition(turbo, sleep), Some(park));
        let wake = base
            .transition(
                base.state_by_name("sleep").unwrap(),
                base.state_by_name("active").unwrap(),
            )
            .unwrap();
        assert_eq!(m.transition(sleep, slow), Some(wake));
        assert_eq!(m.transition(sleep, turbo), Some(wake));
    }

    #[test]
    fn rejects_malformed_expansions() {
        let base = presets::three_state_generic();
        assert!(matches!(
            expand(&base, &[], 0.3),
            Err(DeviceError::InvalidDvfs(_))
        ));
        assert!(matches!(
            expand(&base, &standard_points(), 1.5),
            Err(DeviceError::InvalidDvfs(_))
        ));
        assert!(matches!(
            expand(&base, &[OperatingPoint::new("x", 0.0)], 0.3),
            Err(DeviceError::InvalidFrequency { .. })
        ));
        let dup = vec![OperatingPoint::new("x", 0.5), OperatingPoint::new("x", 1.0)];
        assert!(matches!(
            expand(&base, &dup, 0.3),
            Err(DeviceError::InvalidDvfs(_))
        ));
    }

    #[test]
    fn single_point_expansion_keeps_state_count() {
        let base = presets::three_state_generic();
        let x = expand(&base, &[OperatingPoint::new("nominal", 1.0)], 0.3).unwrap();
        assert_eq!(x.model().n_states(), base.n_states());
    }
}
