use std::fmt;

use serde::{Deserialize, Serialize};

use crate::DeviceError;

/// Identifier of a power state within a [`PowerModel`].
///
/// The identifier is a dense index (`0..n_states`) so it can be used directly
/// as an array index by state encoders and MDP builders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PowerStateId(pub(crate) usize);

impl PowerStateId {
    /// Returns the dense index of this state.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// Creates an identifier from a raw index.
    ///
    /// The index is not validated against any particular model; passing an
    /// out-of-range index to model methods will panic there.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        PowerStateId(index)
    }
}

impl fmt::Display for PowerStateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl From<PowerStateId> for usize {
    fn from(id: PowerStateId) -> usize {
        id.0
    }
}

/// Static description of a single power state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerStateSpec {
    /// Human-readable name, unique within the model (e.g. `"active"`).
    pub name: String,
    /// Energy drawn per time slice while resident in this state.
    pub power: f64,
    /// Whether the device can serve queued requests while in this state.
    pub can_serve: bool,
    /// Service-speed multiplier of this state's operating point (DVFS).
    ///
    /// Scales per-slice service progress while the device serves from this
    /// state: a geometric server's completion probability becomes
    /// `min(p * freq, 1)` (see `qdpm_device::scaled_completion`). `1.0` —
    /// the default, and the only value plain sleep-state models use — is
    /// nominal speed; non-serving states ignore the field. Models with
    /// per-point frequencies are typically produced by
    /// [`crate::dvfs::expand`] rather than written by hand.
    pub freq: f64,
}

/// Cost of moving between two power states.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransitionSpec {
    /// Number of time slices the transition occupies. Zero means the switch
    /// completes within the slice in which it is commanded.
    pub latency: u32,
    /// Total energy consumed by the transition, spread uniformly over its
    /// latency (paid immediately for zero-latency transitions).
    pub energy: f64,
}

impl TransitionSpec {
    /// Convenience constructor.
    #[must_use]
    pub fn new(latency: u32, energy: f64) -> Self {
        TransitionSpec { latency, energy }
    }

    /// Energy charged per slice while the transition is in progress.
    ///
    /// Zero-latency transitions report their full energy here (charged once).
    #[must_use]
    pub fn energy_per_step(&self) -> f64 {
        if self.latency == 0 {
            self.energy
        } else {
            self.energy / f64::from(self.latency)
        }
    }
}

/// A validated power state machine: the static half of a managed device.
///
/// A `PowerModel` lists the power states of a device, the energy each draws
/// per time slice, and the latency/energy of every allowed transition.
/// Instances are created through [`PowerModelBuilder`], which validates the
/// description. Models are immutable once built.
///
/// # Example
///
/// ```
/// use qdpm_device::PowerModel;
///
/// # fn main() -> Result<(), qdpm_device::DeviceError> {
/// let model = PowerModel::builder("demo")
///     .state("on", 1.0, true)
///     .state("off", 0.05, false)
///     .transition("on", "off", 1, 0.3)
///     .transition("off", "on", 3, 0.9)
///     .build()?;
/// assert_eq!(model.n_states(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    name: String,
    states: Vec<PowerStateSpec>,
    /// Row-major `n x n` transition table; `None` marks a disallowed command.
    transitions: Vec<Option<TransitionSpec>>,
}

impl PowerModel {
    /// Starts building a model with the given display name.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> PowerModelBuilder {
        PowerModelBuilder::new(name)
    }

    /// Display name of the model (e.g. `"ibm-hdd"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of power states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.states.len()
    }

    /// Returns the specification of state `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this model.
    #[must_use]
    pub fn state(&self, id: PowerStateId) -> &PowerStateSpec {
        &self.states[id.0]
    }

    /// Iterates over `(id, spec)` pairs in index order.
    pub fn states(&self) -> impl Iterator<Item = (PowerStateId, &PowerStateSpec)> {
        self.states
            .iter()
            .enumerate()
            .map(|(i, s)| (PowerStateId(i), s))
    }

    /// Looks a state up by name.
    #[must_use]
    pub fn state_by_name(&self, name: &str) -> Option<PowerStateId> {
        self.states
            .iter()
            .position(|s| s.name == name)
            .map(PowerStateId)
    }

    /// Returns the transition spec from `from` to `to`, or `None` when the
    /// command is not allowed. Self-transitions are always allowed and free.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    #[must_use]
    pub fn transition(&self, from: PowerStateId, to: PowerStateId) -> Option<TransitionSpec> {
        assert!(from.0 < self.n_states() && to.0 < self.n_states());
        if from == to {
            return Some(TransitionSpec::new(0, 0.0));
        }
        self.transitions[from.0 * self.n_states() + to.0]
    }

    /// All states reachable by a single command from `from`, excluding `from`
    /// itself.
    pub fn commands_from(&self, from: PowerStateId) -> impl Iterator<Item = PowerStateId> + '_ {
        let n = self.n_states();
        (0..n)
            .filter(move |&j| j != from.0 && self.transitions[from.0 * n + j].is_some())
            .map(PowerStateId)
    }

    /// Identifier of the state with the highest per-slice power; by
    /// convention the fully-on state used as the always-on reference.
    #[must_use]
    pub fn highest_power_state(&self) -> PowerStateId {
        let (i, _) = self
            .states
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.power.total_cmp(&b.1.power))
            .expect("validated model has at least one state");
        PowerStateId(i)
    }

    /// Identifier of the state with the lowest per-slice power.
    #[must_use]
    pub fn lowest_power_state(&self) -> PowerStateId {
        let (i, _) = self
            .states
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.power.total_cmp(&b.1.power))
            .expect("validated model has at least one state");
        PowerStateId(i)
    }

    /// The first serving state in index order (validated to exist).
    #[must_use]
    pub fn serving_state(&self) -> PowerStateId {
        let (i, _) = self
            .states
            .iter()
            .enumerate()
            .find(|(_, s)| s.can_serve)
            .expect("validated model has a serving state");
        PowerStateId(i)
    }

    /// Break-even time, in slices, for parking in `low` instead of idling in
    /// `high`.
    ///
    /// An idle period of length `T` slices is worth spending in `low` iff
    ///
    /// ```text
    /// E(high->low) + P_low * (T - L_down - L_up) + E(low->high)  <  P_high * T
    /// ```
    ///
    /// This returns the smallest integer `T` for which sleeping wins, or
    /// `None` when the round trip is not allowed or can never pay off.
    #[must_use]
    pub fn break_even_steps(&self, high: PowerStateId, low: PowerStateId) -> Option<u64> {
        let down = self.transition(high, low)?;
        let up = self.transition(low, high)?;
        let p_high = self.state(high).power;
        let p_low = self.state(low).power;
        if p_low >= p_high {
            return None;
        }
        let lat = f64::from(down.latency) + f64::from(up.latency);
        // Sleeping wins iff E_down + E_up + p_low * (T - lat) < p_high * T,
        // i.e. T > t where t = (E_down + E_up - p_low * lat) / (p_high - p_low),
        // subject to T >= lat so the round trip fits in the idle period.
        let t = (down.energy + up.energy - p_low * lat) / (p_high - p_low);
        let strictly_above = if t < 0.0 { 0 } else { t.floor() as u64 + 1 };
        Some(strictly_above.max(lat.ceil() as u64))
    }

    /// Break-even time for *reactive* waking: the wake transition happens
    /// after the idle period ends (the arrived request waits through it),
    /// so only the spin-down must fit inside the gap:
    ///
    /// ```text
    /// E(high->low) + P_low * (T - L_down) + E(low->high)  <  P_high * T
    /// ```
    ///
    /// Returns the smallest integer `T >= L_down` for which sleeping wins,
    /// or `None` when the round trip is not allowed or never pays off.
    /// Reactive break-even is shorter than [`PowerModel::break_even_steps`]
    /// because the wake latency is paid in *latency*, not in gap time.
    #[must_use]
    pub fn reactive_break_even_steps(&self, high: PowerStateId, low: PowerStateId) -> Option<u64> {
        let down = self.transition(high, low)?;
        let up = self.transition(low, high)?;
        let p_high = self.state(high).power;
        let p_low = self.state(low).power;
        if p_low >= p_high {
            return None;
        }
        let l_down = f64::from(down.latency);
        let t = (down.energy + up.energy - p_low * l_down) / (p_high - p_low);
        let strictly_above = if t < 0.0 { 0 } else { t.floor() as u64 + 1 };
        Some(strictly_above.max(l_down.ceil() as u64))
    }
}

/// Incremental builder for [`PowerModel`] (see [`PowerModel::builder`]).
#[derive(Debug, Clone)]
pub struct PowerModelBuilder {
    name: String,
    states: Vec<PowerStateSpec>,
    transitions: Vec<(String, String, TransitionSpec)>,
}

impl PowerModelBuilder {
    /// Creates an empty builder with a model display name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        PowerModelBuilder {
            name: name.into(),
            states: Vec::new(),
            transitions: Vec::new(),
        }
    }

    /// Adds a power state. `power` is energy per slice; `can_serve` marks
    /// states in which queued requests are processed. The state runs at
    /// nominal service speed (`freq == 1.0`); see
    /// [`PowerModelBuilder::state_with_freq`] for DVFS operating points.
    #[must_use]
    pub fn state(self, name: impl Into<String>, power: f64, can_serve: bool) -> Self {
        self.state_with_freq(name, power, can_serve, 1.0)
    }

    /// Adds a power state pinned to a DVFS operating point: `freq` scales
    /// per-slice service progress while the device serves from this state
    /// (non-serving states ignore it). See [`PowerStateSpec::freq`].
    #[must_use]
    pub fn state_with_freq(
        mut self,
        name: impl Into<String>,
        power: f64,
        can_serve: bool,
        freq: f64,
    ) -> Self {
        self.states.push(PowerStateSpec {
            name: name.into(),
            power,
            can_serve,
            freq,
        });
        self
    }

    /// Adds a directed transition with `latency` slices and total `energy`.
    #[must_use]
    pub fn transition(
        mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        latency: u32,
        energy: f64,
    ) -> Self {
        self.transitions
            .push((from.into(), to.into(), TransitionSpec::new(latency, energy)));
        self
    }

    /// Validates and finalizes the model.
    ///
    /// # Errors
    ///
    /// Returns a [`DeviceError`] when the model is empty, has no serving
    /// state, duplicates a state name, references an unknown state in a
    /// transition, or contains a non-finite/negative power or energy.
    pub fn build(self) -> Result<PowerModel, DeviceError> {
        if self.states.is_empty() {
            return Err(DeviceError::NoStates);
        }
        if !self.states.iter().any(|s| s.can_serve) {
            return Err(DeviceError::NoServingState);
        }
        for (i, s) in self.states.iter().enumerate() {
            if !s.power.is_finite() || s.power < 0.0 {
                return Err(DeviceError::InvalidPower {
                    state: s.name.clone(),
                    power: s.power,
                });
            }
            if !s.freq.is_finite() || s.freq <= 0.0 {
                return Err(DeviceError::InvalidFrequency {
                    state: s.name.clone(),
                    freq: s.freq,
                });
            }
            if self.states[..i].iter().any(|t| t.name == s.name) {
                return Err(DeviceError::DuplicateStateName(s.name.clone()));
            }
        }
        let n = self.states.len();
        let index_of = |name: &str| -> Result<usize, DeviceError> {
            self.states
                .iter()
                .position(|s| s.name == name)
                .ok_or_else(|| DeviceError::UnknownState(name.to_string()))
        };
        let mut table: Vec<Option<TransitionSpec>> = vec![None; n * n];
        for (from, to, spec) in &self.transitions {
            let (i, j) = (index_of(from)?, index_of(to)?);
            if !spec.energy.is_finite() || spec.energy < 0.0 {
                return Err(DeviceError::InvalidTransitionEnergy {
                    from: from.clone(),
                    to: to.clone(),
                    energy: spec.energy,
                });
            }
            table[i * n + j] = Some(*spec);
        }
        Ok(PowerModel {
            name: self.name,
            states: self.states,
            transitions: table,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> PowerModel {
        PowerModel::builder("t")
            .state("on", 1.0, true)
            .state("off", 0.1, false)
            .transition("on", "off", 2, 0.5)
            .transition("off", "on", 4, 2.0)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_round_trip() {
        let m = two_state();
        assert_eq!(m.n_states(), 2);
        let on = m.state_by_name("on").unwrap();
        let off = m.state_by_name("off").unwrap();
        assert_eq!(m.state(on).power, 1.0);
        assert!(m.state(on).can_serve);
        assert!(!m.state(off).can_serve);
        let t = m.transition(on, off).unwrap();
        assert_eq!(t.latency, 2);
        assert_eq!(t.energy, 0.5);
    }

    #[test]
    fn self_transition_is_free() {
        let m = two_state();
        let on = m.state_by_name("on").unwrap();
        let t = m.transition(on, on).unwrap();
        assert_eq!(t.latency, 0);
        assert_eq!(t.energy, 0.0);
    }

    #[test]
    fn missing_transition_is_none() {
        let m = PowerModel::builder("t")
            .state("on", 1.0, true)
            .state("off", 0.1, false)
            .transition("on", "off", 2, 0.5)
            .build()
            .unwrap();
        let on = m.state_by_name("on").unwrap();
        let off = m.state_by_name("off").unwrap();
        assert!(m.transition(off, on).is_none());
        assert_eq!(m.commands_from(on).count(), 1);
        assert_eq!(m.commands_from(off).count(), 0);
    }

    #[test]
    fn rejects_empty_model() {
        assert_eq!(
            PowerModel::builder("e").build().unwrap_err(),
            DeviceError::NoStates
        );
    }

    #[test]
    fn rejects_no_serving_state() {
        let err = PowerModel::builder("e")
            .state("off", 0.0, false)
            .build()
            .unwrap_err();
        assert_eq!(err, DeviceError::NoServingState);
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = PowerModel::builder("e")
            .state("x", 1.0, true)
            .state("x", 0.5, false)
            .build()
            .unwrap_err();
        assert_eq!(err, DeviceError::DuplicateStateName("x".into()));
    }

    #[test]
    fn rejects_bad_power() {
        let err = PowerModel::builder("e")
            .state("x", -1.0, true)
            .build()
            .unwrap_err();
        assert!(matches!(err, DeviceError::InvalidPower { .. }));
        let err = PowerModel::builder("e")
            .state("x", f64::NAN, true)
            .build()
            .unwrap_err();
        assert!(matches!(err, DeviceError::InvalidPower { .. }));
    }

    #[test]
    fn rejects_bad_frequency() {
        for freq in [0.0, -0.5, f64::NAN, f64::INFINITY] {
            let err = PowerModel::builder("e")
                .state_with_freq("x", 1.0, true, freq)
                .build()
                .unwrap_err();
            assert!(
                matches!(err, DeviceError::InvalidFrequency { .. }),
                "{freq}"
            );
        }
    }

    #[test]
    fn plain_states_run_at_nominal_frequency() {
        let m = two_state();
        assert!(m.states().all(|(_, s)| s.freq == 1.0));
        let m = PowerModel::builder("t")
            .state_with_freq("slow", 0.6, true, 0.5)
            .build()
            .unwrap();
        let slow = m.state_by_name("slow").unwrap();
        assert_eq!(m.state(slow).freq, 0.5);
    }

    #[test]
    fn rejects_unknown_transition_endpoint() {
        let err = PowerModel::builder("e")
            .state("x", 1.0, true)
            .transition("x", "y", 1, 0.1)
            .build()
            .unwrap_err();
        assert_eq!(err, DeviceError::UnknownState("y".into()));
    }

    #[test]
    fn rejects_bad_transition_energy() {
        let err = PowerModel::builder("e")
            .state("x", 1.0, true)
            .state("y", 0.1, false)
            .transition("x", "y", 1, f64::INFINITY)
            .build()
            .unwrap_err();
        assert!(matches!(err, DeviceError::InvalidTransitionEnergy { .. }));
    }

    #[test]
    fn extreme_state_lookup() {
        let m = two_state();
        assert_eq!(m.highest_power_state(), m.state_by_name("on").unwrap());
        assert_eq!(m.lowest_power_state(), m.state_by_name("off").unwrap());
        assert_eq!(m.serving_state(), m.state_by_name("on").unwrap());
    }

    #[test]
    fn break_even_matches_hand_computation() {
        let m = two_state();
        let on = m.state_by_name("on").unwrap();
        let off = m.state_by_name("off").unwrap();
        // E_down + E_up = 2.5, lat = 6, p_low = 0.1, p_high = 1.0.
        // t = (2.5 - 0.6) / 0.9 = 2.111 -> below lat, so T = lat = 6, and at
        // T = 6 sleeping costs 2.5 < 6.0 of idling.
        let be = m.break_even_steps(on, off).unwrap();
        assert_eq!(be, 6);
    }

    #[test]
    fn break_even_dominated_by_energy_overhead() {
        // Expensive round trip: t = (10 - 0.2) / 0.9 = 10.888 -> T = 11.
        let m = PowerModel::builder("t")
            .state("on", 1.0, true)
            .state("off", 0.1, false)
            .transition("on", "off", 1, 5.0)
            .transition("off", "on", 1, 5.0)
            .build()
            .unwrap();
        let on = m.state_by_name("on").unwrap();
        let off = m.state_by_name("off").unwrap();
        assert_eq!(m.break_even_steps(on, off), Some(11));
    }

    #[test]
    fn break_even_none_when_low_not_cheaper() {
        let m = PowerModel::builder("t")
            .state("a", 1.0, true)
            .state("b", 1.0, false)
            .transition("a", "b", 1, 0.1)
            .transition("b", "a", 1, 0.1)
            .build()
            .unwrap();
        let a = m.state_by_name("a").unwrap();
        let b = m.state_by_name("b").unwrap();
        assert_eq!(m.break_even_steps(a, b), None);
    }

    #[test]
    fn reactive_break_even_is_shorter() {
        let m = two_state();
        let on = m.state_by_name("on").unwrap();
        let off = m.state_by_name("off").unwrap();
        // Reactive: t = (2.5 - 0.1*2) / 0.9 = 2.56 -> T = 3 (>= L_down 2).
        assert_eq!(m.reactive_break_even_steps(on, off), Some(3));
        assert!(m.reactive_break_even_steps(on, off) <= m.break_even_steps(on, off));
    }

    #[test]
    fn reactive_break_even_none_when_low_not_cheaper() {
        let m = PowerModel::builder("t")
            .state("a", 1.0, true)
            .state("b", 1.0, false)
            .transition("a", "b", 1, 0.1)
            .transition("b", "a", 1, 0.1)
            .build()
            .unwrap();
        let a = m.state_by_name("a").unwrap();
        let b = m.state_by_name("b").unwrap();
        assert_eq!(m.reactive_break_even_steps(a, b), None);
    }

    #[test]
    fn transition_energy_per_step() {
        let t = TransitionSpec::new(4, 2.0);
        assert!((t.energy_per_step() - 0.5).abs() < 1e-12);
        let instant = TransitionSpec::new(0, 2.0);
        assert_eq!(instant.energy_per_step(), 2.0);
    }

    #[test]
    fn display_and_index() {
        let id = PowerStateId::from_index(3);
        assert_eq!(id.to_string(), "S3");
        assert_eq!(id.index(), 3);
        assert_eq!(usize::from(id), 3);
    }
}
