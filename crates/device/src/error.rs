use std::fmt;

/// Errors produced while constructing or validating device models.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// A power model was built with no states.
    NoStates,
    /// No state in the power model is able to serve requests.
    NoServingState,
    /// A state name appears more than once in the model.
    DuplicateStateName(String),
    /// A power value was negative or non-finite.
    InvalidPower {
        /// Name of the offending state.
        state: String,
        /// The rejected power value.
        power: f64,
    },
    /// A state's service-speed multiplier was non-positive or non-finite.
    InvalidFrequency {
        /// Name of the offending state (or operating point).
        state: String,
        /// The rejected frequency multiplier.
        freq: f64,
    },
    /// A DVFS expansion was malformed (no operating points, duplicate
    /// point names, or an out-of-range static power fraction).
    InvalidDvfs(String),
    /// A transition's energy was negative or non-finite.
    InvalidTransitionEnergy {
        /// Source state name.
        from: String,
        /// Destination state name.
        to: String,
        /// The rejected energy value.
        energy: f64,
    },
    /// A transition endpoint referenced a state that does not exist.
    UnknownState(String),
    /// A service-model parameter was out of range.
    InvalidServiceModel(String),
    /// The queue capacity was zero.
    ZeroQueueCapacity,
    /// A queue restore supplied more waiting requests than the queue's
    /// capacity admits.
    QueueOverflow {
        /// Requests in the restored snapshot.
        len: usize,
        /// The queue's capacity.
        capacity: usize,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::NoStates => write!(f, "power model has no states"),
            DeviceError::NoServingState => {
                write!(f, "power model has no state that can serve requests")
            }
            DeviceError::DuplicateStateName(name) => {
                write!(f, "duplicate power state name `{name}`")
            }
            DeviceError::InvalidPower { state, power } => {
                write!(f, "state `{state}` has invalid power {power}")
            }
            DeviceError::InvalidFrequency { state, freq } => {
                write!(f, "state `{state}` has invalid frequency {freq}")
            }
            DeviceError::InvalidDvfs(msg) => write!(f, "invalid dvfs expansion: {msg}"),
            DeviceError::InvalidTransitionEnergy { from, to, energy } => {
                write!(
                    f,
                    "transition `{from}` -> `{to}` has invalid energy {energy}"
                )
            }
            DeviceError::UnknownState(name) => write!(f, "unknown power state `{name}`"),
            DeviceError::InvalidServiceModel(msg) => write!(f, "invalid service model: {msg}"),
            DeviceError::ZeroQueueCapacity => write!(f, "queue capacity must be at least 1"),
            DeviceError::QueueOverflow { len, capacity } => {
                write!(
                    f,
                    "restored queue of {len} requests exceeds capacity {capacity}"
                )
            }
        }
    }
}

impl std::error::Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = DeviceError::DuplicateStateName("active".into());
        let msg = err.to_string();
        assert!(msg.contains("active"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_trait_object() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<DeviceError>();
    }
}
