//! Power-managed device models for the Q-DPM reproduction.
//!
//! This crate implements the *Service Provider* (SP) and *Service Queue* (SQ)
//! side of the classic stochastic dynamic power management (DPM) system
//! model: a device described by a [`PowerModel`] (a power state machine with
//! per-state power draw and inter-state transition latency/energy), a
//! [`ServiceModel`] describing how fast the device drains requests when it is
//! operational, and a bounded FIFO [`Queue`] holding pending requests.
//!
//! The runtime [`Device`] type animates a [`PowerModel`]: it accepts power
//! commands from a power manager, walks through (possibly multi-step)
//! transitions, and accounts energy per discrete time slice. All quantities
//! are expressed *per time slice* so that the simulator in `qdpm-sim` and the
//! exact DTMDP builder in `qdpm-mdp` share identical semantics.
//!
//! # Example
//!
//! ```
//! use qdpm_device::{presets, Device, PowerStateId};
//!
//! # fn main() -> Result<(), qdpm_device::DeviceError> {
//! let model = presets::three_state_generic();
//! let mut device = Device::new(model);
//! // Command the device into its lowest-power state.
//! let sleep = device.model().state_by_name("sleep").unwrap();
//! device.command(sleep);
//! let tick = device.tick();
//! assert!(tick.energy >= 0.0);
//! # Ok(())
//! # }
//! ```

mod device;
pub mod dvfs;
mod error;
pub mod fault;
mod power;
pub mod presets;
mod queue;
mod service;

pub use device::{CommandOutcome, Device, DeviceMode, DeviceState, TickReport};
pub use dvfs::{DvfsExpansion, OperatingPoint};
pub use error::DeviceError;
pub use fault::{DeviceHealth, FaultEvent, FaultKind, FaultState};
pub use power::{PowerModel, PowerModelBuilder, PowerStateId, PowerStateSpec, TransitionSpec};
pub use queue::{Queue, QueueStats};
pub use service::{scaled_completion, Server, ServiceModel};

/// Discrete simulation time, measured in slices since the start of a run.
pub type Step = u64;
