//! Ready-made power models drawn from the classic DPM literature.
//!
//! The Q-DPM paper keeps its service provider abstract ("synthetic input is
//! used to drive the simulation"), so these presets reproduce the canonical
//! devices used by the model-based DPM papers it builds on (Benini, Bogliolo
//! & De Micheli's survey and the stochastic-control DPM line of work):
//! a mobile hard disk, an 802.11 WLAN card and a StrongARM SA-1100 processor
//! core, plus small generic machines convenient for exact-MDP experiments.
//!
//! All values are converted to *per-slice* units; each preset documents its
//! slice duration. Power numbers are in watt-slices (i.e. joules per slice at
//! the stated slice length), transition energy in joules.

use crate::{dvfs, PowerModel, ServiceModel};

/// Generic two-state machine (`on`/`off`) with parameterized sleep economics.
///
/// Useful for exact-MDP studies: the state space stays tiny. `off_power`
/// should be well below `on_power`; `latency`/`energy` apply symmetrically to
/// both directions of the round trip.
#[must_use]
pub fn two_state(on_power: f64, off_power: f64, latency: u32, energy: f64) -> PowerModel {
    PowerModel::builder("two-state")
        .state("on", on_power, true)
        .state("off", off_power, false)
        .transition("on", "off", latency, energy)
        .transition("off", "on", latency, energy)
        .build()
        .expect("two_state preset parameters are valid")
}

/// Generic three-state machine: `active` (serves), `idle` (fast to leave),
/// `sleep` (deep, slow round trip). Slice-agnostic teaching model; this is
/// the default device of the reproduction's Fig. 1 / Fig. 2 experiments.
#[must_use]
pub fn three_state_generic() -> PowerModel {
    PowerModel::builder("three-state-generic")
        .state("active", 1.0, true)
        .state("idle", 0.4, false)
        .state("sleep", 0.05, false)
        .transition("active", "idle", 0, 0.05)
        .transition("idle", "active", 0, 0.05)
        .transition("active", "sleep", 2, 0.8)
        .transition("sleep", "active", 4, 1.6)
        .transition("idle", "sleep", 2, 0.7)
        .build()
        .expect("three_state_generic preset parameters are valid")
}

/// IBM Travelstar-class mobile hard disk, 100 ms slices.
///
/// Read/write 2.1 W, performance idle 0.9 W, standby (spun down) 0.25 W,
/// sleep 0.1 W; spin-down ~0.6 s / 0.4 J; spin-up ~2.2 s / 6.0 J — the
/// canonical numbers quoted in the DPM survey literature, expressed per
/// 100 ms slice (power values divided by 10).
#[must_use]
pub fn ibm_hdd() -> PowerModel {
    PowerModel::builder("ibm-hdd")
        .state("active", 0.21, true)
        .state("idle", 0.09, false)
        .state("standby", 0.025, false)
        .state("sleep", 0.01, false)
        .transition("active", "idle", 0, 0.001)
        .transition("idle", "active", 0, 0.001)
        .transition("active", "standby", 6, 0.4)
        .transition("idle", "standby", 6, 0.4)
        .transition("standby", "active", 22, 6.0)
        .transition("standby", "sleep", 3, 0.1)
        .transition("idle", "sleep", 8, 0.5)
        .transition("active", "sleep", 8, 0.5)
        .transition("sleep", "active", 30, 7.0)
        .build()
        .expect("ibm_hdd preset parameters are valid")
}

/// 802.11 WLAN interface, 10 ms slices.
///
/// Busy (tx/rx) 1.4 W, listen/idle 0.9 W, doze 45 mW; doze entry/exit a few
/// slices with beacon-period wake cost. Values per 10 ms slice (power values
/// divided by 100).
#[must_use]
pub fn wlan_card() -> PowerModel {
    PowerModel::builder("wlan-card")
        .state("busy", 0.014, true)
        .state("listen", 0.009, false)
        .state("doze", 0.00045, false)
        .transition("busy", "listen", 0, 0.0001)
        .transition("listen", "busy", 0, 0.0001)
        .transition("busy", "doze", 1, 0.002)
        .transition("listen", "doze", 1, 0.002)
        .transition("doze", "busy", 3, 0.006)
        .build()
        .expect("wlan_card preset parameters are valid")
}

/// StrongARM SA-1100 processor core, 10 ms slices.
///
/// Run 400 mW, idle 50 mW, sleep 0.16 mW; sleep wake-up ~160 ms. Per 10 ms
/// slice (power values divided by 100). This is the "low end processor"
/// setting the paper's introduction motivates (deeply embedded nodes).
#[must_use]
pub fn sa1100() -> PowerModel {
    PowerModel::builder("sa1100")
        .state("run", 0.004, true)
        .state("idle", 0.0005, false)
        .state("sleep", 0.0000016, false)
        .transition("run", "idle", 0, 0.00001)
        .transition("idle", "run", 0, 0.00001)
        .transition("run", "sleep", 1, 0.0004)
        .transition("idle", "sleep", 1, 0.0003)
        .transition("sleep", "run", 16, 0.0032)
        .build()
        .expect("sa1100 preset parameters are valid")
}

/// [`three_state_generic`] expanded across the standard DVFS ladder
/// (`slow` 0.6×, `nominal` 1.0×, `turbo` 1.4×; 30% static power): the
/// default joint sleep-state × operating-point machine of the DVFS
/// experiments. Five states — `active@slow`, `active@nominal`,
/// `active@turbo`, `idle`, `sleep` — where the nominal point reproduces
/// [`three_state_generic`]'s active power bit-for-bit.
#[must_use]
pub fn three_state_dvfs() -> PowerModel {
    dvfs::expand(&three_state_generic(), &dvfs::standard_points(), 0.3)
        .expect("three_state_dvfs preset parameters are valid")
        .into_model()
}

/// Default geometric service model paired with [`three_state_generic`]:
/// mean service time of 1/0.6 ≈ 1.7 slices per request.
#[must_use]
pub fn default_service() -> ServiceModel {
    ServiceModel::geometric(0.6).expect("0.6 is a valid completion probability")
}

/// Names of all device presets, for sweep harnesses.
#[must_use]
pub fn preset_names() -> &'static [&'static str] {
    &[
        "two-state",
        "three-state-generic",
        "three-state-dvfs",
        "ibm-hdd",
        "wlan-card",
        "sa1100",
    ]
}

/// Looks up a preset by name (the `two-state` preset uses default economics:
/// on 1.0, off 0.1, latency 3, energy 1.2).
#[must_use]
pub fn by_name(name: &str) -> Option<PowerModel> {
    match name {
        "two-state" => Some(two_state(1.0, 0.1, 3, 1.2)),
        "three-state-generic" => Some(three_state_generic()),
        "three-state-dvfs" => Some(three_state_dvfs()),
        "ibm-hdd" => Some(ibm_hdd()),
        "wlan-card" => Some(wlan_card()),
        "sa1100" => Some(sa1100()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for name in preset_names() {
            let model = by_name(name).unwrap_or_else(|| panic!("missing preset {name}"));
            assert!(model.n_states() >= 2, "{name} too small");
            // Every preset must have a serving state and a strictly cheaper
            // non-serving state, otherwise DPM is pointless.
            let serving = model.serving_state();
            let low = model.lowest_power_state();
            assert!(
                model.state(low).power < model.state(serving).power,
                "{name}"
            );
        }
    }

    #[test]
    fn by_name_rejects_unknown() {
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn presets_have_sleep_round_trip() {
        for name in preset_names() {
            let model = by_name(name).unwrap();
            let high = model.highest_power_state();
            let low = model.lowest_power_state();
            // A full sleep round trip must exist so a PM can actually manage
            // power, possibly via intermediate states; check break-even is
            // computable directly or the low state is reachable somehow.
            let direct = model.break_even_steps(high, low);
            let reachable = model.commands_from(high).count() > 0;
            assert!(
                direct.is_some() || reachable,
                "{name} has no usable transitions"
            );
        }
    }

    #[test]
    fn three_state_break_even_is_reasonable() {
        let m = three_state_generic();
        let active = m.state_by_name("active").unwrap();
        let sleep = m.state_by_name("sleep").unwrap();
        let be = m.break_even_steps(active, sleep).unwrap();
        // Round trip costs 2.4 J and 6 slices; saving 0.95/slice.
        // t = (2.4 - 0.3) / 0.95 = 2.21 -> T = max(3, 6) = 6.
        assert_eq!(be, 6);
    }

    #[test]
    fn default_service_is_geometric() {
        assert_eq!(default_service().completion_probability(), Some(0.6));
    }
}
