use serde::{Deserialize, Serialize};

use crate::DeviceError;

/// How fast a device drains requests while it is in a serving power state.
///
/// The geometric model completes the head-of-line request with a fixed
/// probability per slice, which is the memoryless service assumption used by
/// the DTMDP formulation of DPM. The deterministic model takes an exact
/// number of slices per request and is provided for simulation realism; it is
/// *not* accepted by the exact MDP builder because job progress would enlarge
/// the Markov state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServiceModel {
    /// Each slice, the in-service request completes with probability `p`.
    Geometric {
        /// Per-slice completion probability, in `(0, 1]`.
        p: f64,
    },
    /// Each request takes exactly `steps` slices of service.
    Deterministic {
        /// Slices of service per request, at least 1.
        steps: u32,
    },
}

impl ServiceModel {
    /// Geometric service with per-slice completion probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidServiceModel`] unless `0 < p <= 1`.
    pub fn geometric(p: f64) -> Result<Self, DeviceError> {
        if !(p.is_finite() && p > 0.0 && p <= 1.0) {
            return Err(DeviceError::InvalidServiceModel(format!(
                "geometric completion probability {p} not in (0, 1]"
            )));
        }
        Ok(ServiceModel::Geometric { p })
    }

    /// Deterministic service taking `steps` slices per request.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidServiceModel`] when `steps == 0`.
    pub fn deterministic(steps: u32) -> Result<Self, DeviceError> {
        if steps == 0 {
            return Err(DeviceError::InvalidServiceModel(
                "deterministic service needs at least 1 step".into(),
            ));
        }
        Ok(ServiceModel::Deterministic { steps })
    }

    /// Mean number of slices to complete one request.
    #[must_use]
    pub fn mean_service_steps(&self) -> f64 {
        match *self {
            ServiceModel::Geometric { p } => 1.0 / p,
            ServiceModel::Deterministic { steps } => f64::from(steps),
        }
    }

    /// The per-slice completion probability if the model is memoryless.
    #[must_use]
    pub fn completion_probability(&self) -> Option<f64> {
        match *self {
            ServiceModel::Geometric { p } => Some(p),
            ServiceModel::Deterministic { .. } => None,
        }
    }
}

/// Per-slice completion probability of a geometric server running at DVFS
/// frequency multiplier `freq`: `min(p * freq, 1)`.
///
/// This is the single service-scaling law shared bit-exactly by the
/// per-slice engine, the event-skipping engine, the batched cohort engine,
/// and the exact MDP builder — every consumer must call this helper rather
/// than inlining the arithmetic, so all paths produce the identical `f64`.
/// `freq == 1.0` (every non-DVFS model) returns `p` untouched, keeping
/// plain sleep-state simulations bit-identical to their pre-DVFS behavior.
#[must_use]
pub fn scaled_completion(p: f64, freq: f64) -> f64 {
    if freq == 1.0 {
        p
    } else {
        (p * freq).min(1.0)
    }
}

/// Runtime server state: tracks progress of the in-service request.
///
/// Sampling is externalized: the caller draws a uniform `u in [0, 1)` (so the
/// whole simulation shares one seeded RNG) and passes it to
/// [`Server::advance`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Server {
    model: ServiceModel,
    progress: u32,
}

impl Server {
    /// Creates an idle server for the given service model.
    #[must_use]
    pub fn new(model: ServiceModel) -> Self {
        Server { model, progress: 0 }
    }

    /// The service model this server animates.
    #[must_use]
    pub fn model(&self) -> &ServiceModel {
        &self.model
    }

    /// Advances the in-service request by one slice and reports whether it
    /// completed. `u` must be a uniform draw in `[0, 1)`.
    ///
    /// For the geometric model the server is memoryless and `u < p` decides
    /// completion. For the deterministic model, `u` is ignored and the
    /// request completes on its final slice.
    pub fn advance(&mut self, u: f64) -> bool {
        self.advance_scaled(u, 1.0)
    }

    /// [`Server::advance`] at a DVFS frequency multiplier: the geometric
    /// completion probability becomes [`scaled_completion`]`(p, freq)`.
    ///
    /// The deterministic model ignores `freq` — its per-request step count
    /// is part of the checkpointed Markov state, so speed-scaling it would
    /// enlarge the state space the exact MDP builder refuses anyway.
    pub fn advance_scaled(&mut self, u: f64, freq: f64) -> bool {
        match self.model {
            ServiceModel::Geometric { p } => u < scaled_completion(p, freq),
            ServiceModel::Deterministic { steps } => {
                self.progress += 1;
                if self.progress >= steps {
                    self.progress = 0;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Slices of service already applied to the in-flight request
    /// (checkpoint capture; always 0 for the memoryless geometric model).
    #[must_use]
    pub fn progress(&self) -> u32 {
        self.progress
    }

    /// Overwrites the in-flight service progress (checkpoint restore).
    pub fn set_progress(&mut self, progress: u32) {
        self.progress = progress;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_validation() {
        assert!(ServiceModel::geometric(0.5).is_ok());
        assert!(ServiceModel::geometric(1.0).is_ok());
        assert!(ServiceModel::geometric(0.0).is_err());
        assert!(ServiceModel::geometric(-0.1).is_err());
        assert!(ServiceModel::geometric(1.1).is_err());
        assert!(ServiceModel::geometric(f64::NAN).is_err());
    }

    #[test]
    fn deterministic_validation() {
        assert!(ServiceModel::deterministic(1).is_ok());
        assert!(ServiceModel::deterministic(0).is_err());
    }

    #[test]
    fn mean_steps() {
        assert_eq!(
            ServiceModel::geometric(0.25).unwrap().mean_service_steps(),
            4.0
        );
        assert_eq!(
            ServiceModel::deterministic(3).unwrap().mean_service_steps(),
            3.0
        );
    }

    #[test]
    fn scaled_completion_law() {
        // freq 1.0 must return p bit-identically (not via multiplication).
        let p = 0.1 + 0.2; // 0.30000000000000004
        assert_eq!(scaled_completion(p, 1.0).to_bits(), p.to_bits());
        assert!((scaled_completion(0.3, 0.5) - 0.15).abs() < 1e-15);
        assert_eq!(scaled_completion(0.8, 2.0), 1.0); // saturates
    }

    #[test]
    fn advance_scaled_shifts_geometric_threshold() {
        let mut s = Server::new(ServiceModel::geometric(0.4).unwrap());
        assert!(s.advance_scaled(0.59, 1.5)); // 0.4 * 1.5 = 0.6
        assert!(!s.advance_scaled(0.61, 1.5));
        assert!(!s.advance_scaled(0.3, 0.5)); // 0.4 * 0.5 = 0.2
        assert!(s.advance_scaled(0.19, 0.5));
    }

    #[test]
    fn deterministic_ignores_frequency() {
        let mut s = Server::new(ServiceModel::deterministic(2).unwrap());
        assert!(!s.advance_scaled(0.0, 3.0));
        assert!(s.advance_scaled(0.0, 3.0));
    }

    #[test]
    fn geometric_advance_uses_uniform() {
        let mut s = Server::new(ServiceModel::geometric(0.3).unwrap());
        assert!(s.advance(0.0));
        assert!(s.advance(0.29));
        assert!(!s.advance(0.3));
        assert!(!s.advance(0.99));
    }

    #[test]
    fn deterministic_advance_counts() {
        let mut s = Server::new(ServiceModel::deterministic(3).unwrap());
        assert!(!s.advance(0.9));
        assert!(!s.advance(0.9));
        assert!(s.advance(0.9));
        // Progress resets after completion.
        assert!(!s.advance(0.0));
    }

    #[test]
    fn set_progress_restarts_job() {
        let mut s = Server::new(ServiceModel::deterministic(2).unwrap());
        assert!(!s.advance(0.0));
        s.set_progress(0);
        assert!(!s.advance(0.0));
        assert!(s.advance(0.0));
    }

    #[test]
    fn completion_probability_accessor() {
        assert_eq!(
            ServiceModel::geometric(0.4)
                .unwrap()
                .completion_probability(),
            Some(0.4)
        );
        assert_eq!(
            ServiceModel::deterministic(2)
                .unwrap()
                .completion_probability(),
            None
        );
    }
}
