use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::{DeviceError, Step};

/// Lifetime counters maintained by a [`Queue`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Requests successfully enqueued.
    pub enqueued: u64,
    /// Requests rejected because the queue was full.
    pub dropped: u64,
    /// Requests dequeued (completed service).
    pub dequeued: u64,
    /// Sum over dequeued requests of slices spent waiting (arrival to
    /// dequeue).
    pub total_wait: u64,
}

impl QueueStats {
    /// Mean waiting time of completed requests, in slices.
    #[must_use]
    pub fn mean_wait(&self) -> f64 {
        if self.dequeued == 0 {
            0.0
        } else {
            self.total_wait as f64 / self.dequeued as f64
        }
    }
}

/// Bounded FIFO service queue storing the arrival time of each request.
///
/// The queue is the SQ component of the classic DPM system model. Arrival
/// timestamps allow per-request latency accounting when requests complete.
///
/// # Example
///
/// ```
/// use qdpm_device::Queue;
///
/// # fn main() -> Result<(), qdpm_device::DeviceError> {
/// let mut q = Queue::new(2)?;
/// assert!(q.push(0));
/// assert!(q.push(1));
/// assert!(!q.push(2)); // full -> dropped
/// assert_eq!(q.pop(5), Some(5)); // waited 5 slices
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Queue {
    capacity: usize,
    arrivals: VecDeque<Step>,
    stats: QueueStats,
}

impl Queue {
    /// Creates an empty queue holding at most `capacity` requests.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::ZeroQueueCapacity`] when `capacity == 0`.
    pub fn new(capacity: usize) -> Result<Self, DeviceError> {
        if capacity == 0 {
            return Err(DeviceError::ZeroQueueCapacity);
        }
        Ok(Queue {
            capacity,
            arrivals: VecDeque::with_capacity(capacity),
            stats: QueueStats::default(),
        })
    }

    /// Maximum number of requests the queue can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of requests currently waiting.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Whether the queue is at capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.arrivals.len() == self.capacity
    }

    /// Enqueues a request arriving at slice `now`. Returns `false` (and
    /// counts a drop) when the queue is full.
    pub fn push(&mut self, now: Step) -> bool {
        if self.is_full() {
            self.stats.dropped += 1;
            false
        } else {
            self.arrivals.push_back(now);
            self.stats.enqueued += 1;
            true
        }
    }

    /// Dequeues the oldest request at slice `now`, returning the number of
    /// slices it waited, or `None` when empty.
    pub fn pop(&mut self, now: Step) -> Option<u64> {
        let arrived = self.arrivals.pop_front()?;
        let wait = now.saturating_sub(arrived);
        self.stats.dequeued += 1;
        self.stats.total_wait += wait;
        Some(wait)
    }

    /// Arrival time of the oldest waiting request.
    #[must_use]
    pub fn head_arrival(&self) -> Option<Step> {
        self.arrivals.front().copied()
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }

    /// Arrival timestamps of all waiting requests, oldest first
    /// (checkpoint capture; pairs with [`Queue::restore`]).
    pub fn arrival_times(&self) -> impl Iterator<Item = Step> + '_ {
        self.arrivals.iter().copied()
    }

    /// Overwrites the waiting requests and lifetime counters wholesale
    /// (checkpoint restore). `arrivals` must be oldest-first, as produced
    /// by [`Queue::arrival_times`].
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::QueueOverflow`] when `arrivals` exceeds this
    /// queue's capacity.
    pub fn restore(&mut self, arrivals: &[Step], stats: QueueStats) -> Result<(), DeviceError> {
        if arrivals.len() > self.capacity {
            return Err(DeviceError::QueueOverflow {
                len: arrivals.len(),
                capacity: self.capacity,
            });
        }
        self.arrivals.clear();
        self.arrivals.extend(arrivals.iter().copied());
        self.stats = stats;
        Ok(())
    }

    /// Empties the queue and zeroes the counters.
    pub fn reset(&mut self) {
        self.arrivals.clear();
        self.stats = QueueStats::default();
    }

    /// Removes every waiting request without dequeuing them, returning how
    /// many were removed. Models a device crash losing (or a coordinator
    /// harvesting) its queue: the lifetime counters are deliberately left
    /// untouched — the removed requests were neither served nor dropped at
    /// admission, so `enqueued` permanently exceeds `dequeued + len` and the
    /// caller must account the stranded requests (as lost, retried, or
    /// shed) in its own books.
    pub fn drain_all(&mut self) -> usize {
        let n = self.arrivals.len();
        self.arrivals.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_capacity() {
        assert_eq!(Queue::new(0).unwrap_err(), DeviceError::ZeroQueueCapacity);
    }

    #[test]
    fn fifo_order_and_wait_accounting() {
        let mut q = Queue::new(4).unwrap();
        q.push(10);
        q.push(12);
        assert_eq!(q.pop(15), Some(5));
        assert_eq!(q.pop(15), Some(3));
        assert_eq!(q.pop(15), None);
        assert_eq!(q.stats().total_wait, 8);
        assert!((q.stats().mean_wait() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn drops_when_full() {
        let mut q = Queue::new(1).unwrap();
        assert!(q.push(0));
        assert!(!q.push(1));
        assert_eq!(q.stats().dropped, 1);
        assert_eq!(q.stats().enqueued, 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn conservation_counter_invariant() {
        let mut q = Queue::new(3).unwrap();
        for now in 0..10 {
            q.push(now);
            if now % 2 == 0 {
                q.pop(now);
            }
        }
        let s = *q.stats();
        assert_eq!(s.enqueued, s.dequeued + q.len() as u64);
        assert_eq!(s.enqueued + s.dropped, 10);
    }

    #[test]
    fn reset_clears_everything() {
        let mut q = Queue::new(2).unwrap();
        q.push(0);
        q.pop(1);
        q.reset();
        assert!(q.is_empty());
        assert_eq!(*q.stats(), QueueStats::default());
    }

    #[test]
    fn head_arrival_peeks_without_removing() {
        let mut q = Queue::new(2).unwrap();
        assert_eq!(q.head_arrival(), None);
        q.push(7);
        assert_eq!(q.head_arrival(), Some(7));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn mean_wait_empty_is_zero() {
        let q = Queue::new(2).unwrap();
        assert_eq!(q.stats().mean_wait(), 0.0);
    }
}
