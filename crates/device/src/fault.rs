//! Fault modelling: the failure domain of a power-managed device.
//!
//! Datacenter-scale power management co-exists with component failure as a
//! first-class event: devices crash and reboot, fail permanently, or limp
//! along serving slower than their service model promises. This module
//! extends the Power State Machine view of a managed component with an
//! orthogonal *fault axis*:
//!
//! * a [`FaultKind`] describes one injected fault — a transient crash, a
//!   permanent fail-stop, or a straggler window;
//! * a [`FaultState`] is the device's current position on the fault axis
//!   (healthy, degraded, or down), carried by [`crate::Device`] alongside
//!   its power-state machine;
//! * a [`FaultEvent`] schedules a fault at an absolute slice, the unit of
//!   the ahead-of-time fault plans built in `qdpm-workload`.
//!
//! # Semantics
//!
//! Fault windows use **absolute slice deadlines** (`until`): a fault ends
//! the moment the simulation clock reaches `until`, never by counting down
//! per-tick state. That choice is what keeps injection exact across the
//! event-skipping engine — a quiescent commitment can never mutate fault
//! state, and fault boundaries bound the committable horizon exactly like
//! scheduled arrivals.
//!
//! While **down**, a device drains nothing and consumes the fault-specified
//! power instead of its power model's draw; its power manager is not
//! consulted (no decisions, no observations, no RNG draws), which keeps
//! every RNG stream identical across engine modes. A transient crash loses
//! the queue and any in-service progress at onset and reboots the device
//! into its lowest power state on recovery; a fail-stop freezes the queue
//! forever. While **degraded** (straggling), the device only takes every
//! `slowdown`-th service opportunity — a deterministic modulo gate over
//! opportunities, not a stochastic slowdown, so no randomness is consumed.

use serde::{Deserialize, Serialize};

use crate::Step;

/// One kind of injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The device crashes, losing its queue and in-service progress, stays
    /// down for `down_for` slices drawing `down_power`, then reboots into
    /// its lowest power state.
    TransientCrash {
        /// Downtime in slices (clamped to at least 1).
        down_for: u64,
        /// Energy drawn per down slice.
        down_power: f64,
    },
    /// The device stops forever. Its queue is preserved (frozen — the
    /// stranded requests stay queued and are never served) and it draws
    /// `down_power` for the rest of the run.
    FailStop {
        /// Energy drawn per down slice.
        down_power: f64,
    },
    /// The device keeps running but serves only every `slowdown`-th
    /// service opportunity for `window` slices.
    Straggler {
        /// Service-opportunity divisor (clamped to at least 1; 1 is no
        /// slowdown).
        slowdown: u64,
        /// Degradation window in slices.
        window: u64,
    },
}

/// A fault scheduled at an absolute slice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Slice at which the fault strikes.
    pub at: Step,
    /// What happens.
    pub kind: FaultKind,
}

/// The device's current position on the fault axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum FaultState {
    /// No active fault.
    #[default]
    Healthy,
    /// Straggling: only every `slowdown`-th service opportunity is taken
    /// until the clock reaches `until`.
    Degraded {
        /// Service-opportunity divisor (at least 1).
        slowdown: u64,
        /// First slice at which the device is healthy again.
        until: Step,
        /// Service opportunities seen since onset (the modulo counter).
        opportunities: u64,
    },
    /// Down: serving nothing and drawing `power` per slice until the clock
    /// reaches `until` ([`Step::MAX`] for a fail-stop).
    Down {
        /// First slice at which the device is up again.
        until: Step,
        /// Energy drawn per down slice.
        power: f64,
        /// Whether the queue survives the outage (fail-stop) or was lost
        /// at onset (transient crash).
        queue_preserved: bool,
    },
}

impl FaultState {
    /// Whether no fault is active.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        matches!(self, FaultState::Healthy)
    }
}

/// A device's coarse health, as reported to dispatchers and fleet reports.
///
/// Unlike [`FaultState`] this is *normalized against the clock*: an expired
/// fault window that the engine has not lazily cleared yet still reads as
/// [`DeviceHealth::Healthy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceHealth {
    /// Operating normally.
    Healthy,
    /// Straggling (serving, but slower than its service model).
    Degraded,
    /// Serving nothing.
    Down,
}

impl DeviceHealth {
    /// Short display name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            DeviceHealth::Healthy => "healthy",
            DeviceHealth::Degraded => "degraded",
            DeviceHealth::Down => "down",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_healthy() {
        assert!(FaultState::default().is_healthy());
        assert!(!FaultState::Down {
            until: 5,
            power: 0.0,
            queue_preserved: false
        }
        .is_healthy());
    }

    #[test]
    fn health_names() {
        assert_eq!(DeviceHealth::Healthy.name(), "healthy");
        assert_eq!(DeviceHealth::Degraded.name(), "degraded");
        assert_eq!(DeviceHealth::Down.name(), "down");
    }
}
