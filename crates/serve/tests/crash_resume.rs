//! The crash-kill harness: SIGKILL a real `qdpm-serve` child process at
//! randomized instants (checkpoint writes are frequent, so kills land
//! before, during, and after snapshots), resume it, and require the final
//! report — exact `f64` bit patterns — to match a run that was never
//! interrupted. Exercised for both engine modes and for a power-capped
//! rack with a chaos-monkey member in the mix.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_qdpm-serve");
const TRACE_SLICES: usize = 3_000;
const CHECKPOINT_EVERY: &str = "10";
const KILLS_REQUIRED: u32 = 5;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qdpm-crash-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_trace(path: &Path) {
    let mut text = String::from("# qdpm-trace v1\n");
    for i in 0..TRACE_SLICES {
        let count = match i % 17 {
            0 | 1 => 2,
            6 => 1,
            11 => 3,
            _ => 0,
        };
        text.push_str(&count.to_string());
        text.push('\n');
    }
    fs::write(path, text).unwrap();
}

/// Deterministic pseudo-random kill delays (no external RNG in the
/// harness; the *points* are still arbitrary relative to the child's
/// slice/snapshot phase, which is what matters).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn delay_ms(&mut self) -> u64 {
        20 + self.next() % 130
    }
}

struct Scenario {
    tag: &'static str,
    mode: &'static str,
    extra: &'static [&'static str],
}

fn serve_cmd(
    scenario: &Scenario,
    trace: &Path,
    dir: &Path,
    report: &Path,
    throttle_us: u32,
) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.arg("serve")
        .arg("--trace")
        .arg(trace)
        .arg("--devices")
        .arg("3")
        .arg("--policy")
        .arg("q-dpm,adaptive-timeout,chaos-monkey")
        .arg("--seed")
        .arg("4242")
        .arg("--mode")
        .arg(scenario.mode)
        .arg("--checkpoint-dir")
        .arg(dir)
        .arg("--checkpoint-every")
        .arg(CHECKPOINT_EVERY)
        .arg("--report-out")
        .arg(report)
        .arg("--threads")
        .arg("2")
        .arg("--throttle-us")
        .arg(throttle_us.to_string())
        .args(scenario.extra)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    cmd
}

fn run_scenario(scenario: &Scenario) {
    let work = tmp_dir(scenario.tag);
    let trace = work.join("arrivals.trace");
    write_trace(&trace);

    // Uninterrupted reference: full speed, durability on (the cadence
    // chunking must match the killed runs), separate directory.
    let ref_dir = work.join("ckpt-ref");
    let ref_report = work.join("report-ref.txt");
    let status = serve_cmd(scenario, &trace, &ref_dir, &ref_report, 0)
        .status()
        .unwrap();
    assert!(status.success(), "{}: reference run failed", scenario.tag);
    let reference = fs::read(&ref_report).unwrap();

    // Kill sequence: throttled children, SIGKILLed at randomized delays,
    // resumed from whatever checkpoint survived — until enough kills have
    // landed, then one unthrottled run finishes the trace.
    let kill_dir = work.join("ckpt-kill");
    let kill_report = work.join("report-kill.txt");
    let mut rng = Lcg(0x5eed_0000 + scenario.tag.len() as u64);
    let mut kills = 0u32;
    let mut spawns = 0u32;
    while kills < KILLS_REQUIRED {
        spawns += 1;
        assert!(
            spawns < 200,
            "{}: runaway kill loop ({kills} kills after {spawns} spawns)",
            scenario.tag
        );
        let mut child = serve_cmd(scenario, &trace, &kill_dir, &kill_report, 400)
            .spawn()
            .unwrap();
        std::thread::sleep(Duration::from_millis(rng.delay_ms()));
        // std's kill is SIGKILL on Unix: no cleanup handler runs, exactly
        // the crash being simulated.
        child.kill().unwrap();
        let status = child.wait().unwrap();
        if status.success() {
            // The child outran the delay and finished cleanly; the trace
            // is long enough that this can only happen after several
            // resumes, so keep counting kills from a fresh directory.
            let _ = fs::remove_dir_all(&kill_dir);
            let _ = fs::remove_file(&kill_report);
            continue;
        }
        kills += 1;
    }
    let status = serve_cmd(scenario, &trace, &kill_dir, &kill_report, 0)
        .status()
        .unwrap();
    assert!(status.success(), "{}: final resume failed", scenario.tag);

    let killed = fs::read(&kill_report).unwrap();
    assert_eq!(
        String::from_utf8_lossy(&killed),
        String::from_utf8_lossy(&reference),
        "{}: report after {kills} SIGKILLs diverged from the uninterrupted run",
        scenario.tag
    );
    let _ = fs::remove_dir_all(&work);
}

#[test]
fn per_slice_rack_survives_sigkills_bit_identically() {
    run_scenario(&Scenario {
        tag: "per-slice",
        mode: "per-slice",
        extra: &[],
    });
}

#[test]
fn event_skip_rack_survives_sigkills_bit_identically() {
    run_scenario(&Scenario {
        tag: "event-skip",
        mode: "event-skip",
        extra: &[],
    });
}

#[test]
fn capped_rack_survives_sigkills_bit_identically() {
    run_scenario(&Scenario {
        tag: "capped",
        mode: "per-slice",
        extra: &["--cap", "4.0", "--dispatch", "sleep-aware:2"],
    });
}

/// Fault injection rides through the same SIGKILL gauntlet: a rack with
/// seeded crashes and stragglers, killed mid-run and resumed, must land on
/// the byte-identical report — the fault clock, retry queue, and barrier
/// cursor are all part of the checkpoint.
#[test]
fn faulted_rack_survives_sigkills_bit_identically() {
    run_scenario(&Scenario {
        tag: "faulted",
        mode: "per-slice",
        extra: &[
            "--faults",
            "0.002",
            "--fault-down",
            "90",
            "--fault-straggle",
            "0.002",
            "--fault-power",
            "0.02",
            "--dispatch",
            "jsq",
        ],
    });
}

/// Graceful SIGTERM: the daemon catches the signal at a slice boundary,
/// writes a final checkpoint, reports the early stop, and exits 0. A later
/// resume finishes the trace and must produce the byte-identical report of
/// a run that was never signalled.
#[test]
fn sigterm_then_resume_matches_uninterrupted_run() {
    let scenario = Scenario {
        tag: "sigterm",
        mode: "per-slice",
        extra: &[
            "--faults",
            "0.002",
            "--fault-down",
            "90",
            "--fault-power",
            "0.02",
        ],
    };
    let work = tmp_dir(scenario.tag);
    let trace = work.join("arrivals.trace");
    write_trace(&trace);

    // Uninterrupted reference.
    let ref_dir = work.join("ckpt-ref");
    let ref_report = work.join("report-ref.txt");
    let status = serve_cmd(&scenario, &trace, &ref_dir, &ref_report, 0)
        .status()
        .unwrap();
    assert!(status.success(), "reference run failed");
    let reference = fs::read(&ref_report).unwrap();

    // SIGTERM sequence: throttled children, terminated at randomized
    // delays. A graceful stop exits 0, prints the sigterm notice, and
    // leaves no report (the run is unfinished) — unlike a SIGKILL.
    let term_dir = work.join("ckpt-term");
    let term_report = work.join("report-term.txt");
    let mut rng = Lcg(0x7e12);
    let mut graceful = 0u32;
    let mut spawns = 0u32;
    while graceful < 3 {
        spawns += 1;
        assert!(
            spawns < 200,
            "runaway sigterm loop ({graceful} graceful stops after {spawns} spawns)"
        );
        let child = serve_cmd(&scenario, &trace, &term_dir, &term_report, 400)
            .stderr(std::process::Stdio::piped())
            .spawn()
            .unwrap();
        std::thread::sleep(Duration::from_millis(rng.delay_ms()));
        let term = Command::new("kill")
            .arg("-TERM")
            .arg(child.id().to_string())
            .status()
            .unwrap();
        assert!(term.success(), "kill -TERM failed");
        let out = child.wait_with_output().unwrap();
        if out.status.success() && term_report.exists() {
            // The child finished the whole trace before the signal
            // landed; restart the experiment from scratch.
            let _ = fs::remove_dir_all(&term_dir);
            let _ = fs::remove_file(&term_report);
            continue;
        }
        assert!(
            out.status.success(),
            "SIGTERM must exit 0 via the graceful path, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("sigterm: stopped gracefully"),
            "missing graceful-stop notice in stderr: {stderr:?}"
        );
        graceful += 1;
    }
    let status = serve_cmd(&scenario, &trace, &term_dir, &term_report, 0)
        .status()
        .unwrap();
    assert!(status.success(), "resume after SIGTERM failed");

    let resumed = fs::read(&term_report).unwrap();
    assert_eq!(
        String::from_utf8_lossy(&resumed),
        String::from_utf8_lossy(&reference),
        "report after {graceful} graceful SIGTERMs diverged from the uninterrupted run"
    );
    let _ = fs::remove_dir_all(&work);
}
