//! Pins the bundled smoke trace to its committed golden report: any
//! change to the engine, checkpoint chunking, dispatch, or report format
//! that shifts a single bit shows up as a diff here (and in the CI smoke
//! step, which drives the same pair through the real binary).

use std::path::PathBuf;

use qdpm_serve::{run_serve, ServeConfig, ServeOptions, TraceSource};
use qdpm_sim::FleetPolicy;

fn data(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name)
}

#[test]
fn bundled_trace_reproduces_the_committed_golden_report() {
    let config = ServeConfig {
        devices: 3,
        policies: vec![
            FleetPolicy::QDpm(qdpm_core::QDpmConfig::default()),
            FleetPolicy::AdaptiveTimeout,
        ],
        seed: 2026,
        ..ServeConfig::default()
    };
    let summary = run_serve(&ServeOptions {
        trace: TraceSource::File(data("smoke.trace")),
        checkpoint_every: 100,
        ..ServeOptions::in_memory(config, Vec::new())
    })
    .unwrap();
    let golden = std::fs::read_to_string(data("smoke.golden")).unwrap();
    assert_eq!(
        summary.report_text, golden,
        "smoke report diverged from tests/data/smoke.golden — if the \
         change is intentional, regenerate the golden with the same \
         qdpm-serve invocation documented in .github/workflows/ci.yml"
    );
}
