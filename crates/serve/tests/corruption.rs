//! Graceful degradation: every way a checkpoint directory can rot —
//! truncation, bit flips, foreign schema, foreign config, missing files —
//! must surface as a *typed* error, fall back to the previous generation
//! when one survives, and still resume bit-identically.

use std::fs;
use std::path::{Path, PathBuf};

use qdpm_serve::{
    fnv1a64, list_generations, read_checkpoint, run_serve, ServeConfig, ServeError, ServeOptions,
    MAGIC, SCHEMA_VERSION,
};
use qdpm_sim::FleetPolicy;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qdpm-corrupt-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn trace(len: usize) -> Vec<u32> {
    (0..len)
        .map(|i| match i % 11 {
            0 => 2,
            4 | 7 => 1,
            _ => 0,
        })
        .collect()
}

fn config() -> ServeConfig {
    ServeConfig {
        devices: 3,
        policies: vec![
            FleetPolicy::QDpm(qdpm_core::QDpmConfig::default()),
            FleetPolicy::AdaptiveTimeout,
        ],
        seed: 777,
        ..ServeConfig::default()
    }
}

/// Serves the first 300 of 500 slices durably so the directory holds two
/// retained generations (slices 200 and 300), then returns
/// (uninterrupted-reference-text, checkpoint dir, full trace).
fn seeded_dir(tag: &str) -> (String, PathBuf, Vec<u32>) {
    let counts = trace(500);
    let reference = run_serve(&ServeOptions {
        checkpoint_every: 100,
        ..ServeOptions::in_memory(config(), counts.clone())
    })
    .unwrap();
    let dir = tmp_dir(tag);
    run_serve(&ServeOptions {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 100,
        ..ServeOptions::in_memory(config(), counts[..300].to_vec())
    })
    .unwrap();
    let gens = list_generations(&dir).unwrap();
    assert_eq!(gens.len(), 2, "expected two retained generations");
    (reference.report_text, dir, counts)
}

fn resume(dir: &Path, counts: &[u32]) -> Result<qdpm_serve::ServeSummary, ServeError> {
    run_serve(&ServeOptions {
        checkpoint_dir: Some(dir.to_path_buf()),
        checkpoint_every: 100,
        fresh: false,
        ..ServeOptions::in_memory(config(), counts.to_vec())
    })
}

#[test]
fn truncated_newest_falls_back_and_still_matches() {
    let (reference, dir, counts) = seeded_dir("trunc");
    let newest = list_generations(&dir).unwrap()[0].1.clone();
    let bytes = fs::read(&newest).unwrap();
    fs::write(&newest, &bytes[..bytes.len() / 3]).unwrap();

    let err = read_checkpoint(&newest, config().config_hash()).unwrap_err();
    assert!(matches!(err, ServeError::Corrupt { .. }), "{err}");

    let summary = resume(&dir, &counts).unwrap();
    assert_eq!(summary.skipped.len(), 1);
    assert_eq!(summary.resumed_at, Some(200), "fell back one generation");
    assert_eq!(summary.report_text, reference);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn flipped_byte_fails_checksum_and_falls_back() {
    let (reference, dir, counts) = seeded_dir("flip");
    let newest = list_generations(&dir).unwrap()[0].1.clone();
    let mut bytes = fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&newest, &bytes).unwrap();

    let err = read_checkpoint(&newest, config().config_hash()).unwrap_err();
    assert!(
        matches!(&err, ServeError::Corrupt { reason, .. } if reason.contains("checksum")),
        "{err}"
    );

    let summary = resume(&dir, &counts).unwrap();
    assert_eq!(summary.skipped.len(), 1);
    assert_eq!(summary.resumed_at, Some(200));
    assert_eq!(summary.report_text, reference);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn unknown_schema_version_falls_back() {
    let (reference, dir, counts) = seeded_dir("schema");
    let newest = list_generations(&dir).unwrap()[0].1.clone();
    // Rewrite the version field, then re-seal the checksum so the file is
    // intact-but-foreign rather than corrupt.
    let mut bytes = fs::read(&newest).unwrap();
    let v = MAGIC.len();
    bytes[v..v + 4].copy_from_slice(&(SCHEMA_VERSION + 1).to_le_bytes());
    let framed = bytes.len() - 8;
    let sum = fnv1a64(&bytes[..framed]);
    bytes[framed..].copy_from_slice(&sum.to_le_bytes());
    fs::write(&newest, &bytes).unwrap();

    let err = read_checkpoint(&newest, config().config_hash()).unwrap_err();
    assert!(
        matches!(err, ServeError::UnsupportedSchema { found, .. } if found == SCHEMA_VERSION + 1),
        "{err}"
    );

    let summary = resume(&dir, &counts).unwrap();
    assert_eq!(summary.skipped.len(), 1);
    assert_eq!(summary.resumed_at, Some(200));
    assert_eq!(summary.report_text, reference);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn missing_newest_generation_falls_back() {
    let (reference, dir, counts) = seeded_dir("missing");
    let newest = list_generations(&dir).unwrap()[0].1.clone();
    fs::remove_file(&newest).unwrap();

    // Reading the vanished file is a typed I/O error, not a panic.
    let err = read_checkpoint(&newest, config().config_hash()).unwrap_err();
    assert!(matches!(err, ServeError::Io { .. }), "{err}");

    let summary = resume(&dir, &counts).unwrap();
    assert_eq!(summary.resumed_at, Some(200));
    assert_eq!(summary.report_text, reference);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn foreign_config_is_typed_and_unusable() {
    let (_, dir, counts) = seeded_dir("config");
    let newest = list_generations(&dir).unwrap()[0].1.clone();
    let mut other = config();
    other.seed += 1;
    let err = read_checkpoint(&newest, other.config_hash()).unwrap_err();
    assert!(matches!(err, ServeError::ConfigMismatch { .. }), "{err}");

    // Resuming under the foreign config rejects every generation.
    let err = run_serve(&ServeOptions {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 100,
        fresh: false,
        ..ServeOptions::in_memory(other, counts)
    })
    .unwrap_err();
    assert!(
        matches!(err, ServeError::NoUsableCheckpoint { tried, .. } if tried == 2),
        "{err}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn every_generation_corrupt_is_a_typed_error_not_a_panic() {
    let (_, dir, counts) = seeded_dir("all-bad");
    for (_, path) in list_generations(&dir).unwrap() {
        fs::write(&path, b"QDPMCKPT garbage").unwrap();
    }
    let err = resume(&dir, &counts).unwrap_err();
    assert!(
        matches!(err, ServeError::NoUsableCheckpoint { tried, .. } if tried == 2),
        "{err}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fresh_flag_ignores_damaged_directory() {
    let (reference, dir, counts) = seeded_dir("fresh");
    for (_, path) in list_generations(&dir).unwrap() {
        fs::write(&path, b"junk").unwrap();
    }
    let summary = run_serve(&ServeOptions {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 100,
        fresh: true,
        ..ServeOptions::in_memory(config(), counts)
    })
    .unwrap();
    assert_eq!(summary.resumed_at, None);
    assert_eq!(summary.report_text, reference);
    let _ = fs::remove_dir_all(&dir);
}
