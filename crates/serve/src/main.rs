//! Command-line entry point: `qdpm-serve record` captures a trace,
//! `qdpm-serve serve` drives a rack over one with checkpoint/resume.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use qdpm_serve::{run_serve, DevicePreset, ServeConfig, ServeError, ServeOptions, TraceSource};
use qdpm_sim::{EngineMode, FleetPolicy};
use qdpm_workload::{DispatchPolicy, FaultInjector};

/// SIGTERM → graceful-shutdown latch. The handler only flips an atomic;
/// the serving loop polls it between slices and settles with a final
/// checkpoint, so a `systemctl stop` (or plain `kill`) never loses work
/// where a SIGKILL would rely on the last cadence checkpoint.
mod sigterm {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    /// POSIX SIGTERM.
    const SIGTERM: i32 = 15;

    #[allow(unsafe_code)]
    mod ffi {
        extern "C" {
            pub fn signal(signum: i32, handler: usize) -> usize;
        }
    }

    extern "C" fn on_sigterm(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    /// Installs the latch (async-signal-safe: the handler is one atomic
    /// store). Registration failure is ignored — the daemon then simply
    /// keeps the default terminate-on-SIGTERM behaviour.
    pub fn install() {
        #[allow(unsafe_code)]
        unsafe {
            ffi::signal(SIGTERM, on_sigterm as *const () as usize);
        }
    }

    /// Whether a SIGTERM has been received.
    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

const USAGE: &str = "\
qdpm-serve — crash-tolerant Q-DPM serving daemon

USAGE:
  qdpm-serve record --out <PATH> --slices <N> [--rate <P>] [--seed <S>]
      Record a Bernoulli(P) arrival trace (default rate 0.3, seed 42).

  qdpm-serve serve --trace <PATH|-> [OPTIONS]
      Serve a recorded trace (or stdin with '-').

SERVE OPTIONS:
  --devices <N>            rack size (default 4)
  --policy <LIST>          comma-separated member policies, cycled across
                           devices: always-on, greedy-off,
                           break-even-timeout, fixed-timeout:<T>,
                           adaptive-timeout, q-dpm, qos-q-dpm,
                           shared-q-dpm, chaos-monkey (default q-dpm)
  --preset <NAME>          device preset: three-state, ibm-hdd, wlan
  --cap <WATTS>            rack power cap (default uncapped)
  --seed <S>               master seed (default 42)
  --mode <M>               engine: per-slice, event-skip (default per-slice)
  --dispatch <D>           round-robin, least-loaded, hash-sharded:<SALT>,
                           jsq, sleep-aware:<SPILL> (default round-robin)
  --queue-cap <N>          per-device queue capacity (default 8)
  --faults <RATE>          per-device per-slice transient-crash rate
                           (deterministic seeded injection; default off)
  --fault-down <SLICES>    slices a transient crash keeps a device down
                           (default 250)
  --fail-stop <RATE>       per-device per-slice fail-stop rate (a hit
                           device never revives)
  --fault-straggle <RATE>  per-device per-slice straggler-onset rate
  --fault-power <WATTS>    slice draw of a downed device (default 0)
  --checkpoint-dir <DIR>   enable durable checkpoints in DIR
  --checkpoint-every <N>   checkpoint cadence in slices (default 100)
  --throttle-us <U>        sleep U microseconds per slice (default 0)
  --report-out <PATH>      write the final deterministic report here
  --threads <N>            gap-advance worker threads (default 1)
  --fresh                  ignore existing checkpoints, start cold
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("qdpm-serve: {e}");
            match e {
                ServeError::BadArgs(_) => ExitCode::from(2),
                _ => ExitCode::FAILURE,
            }
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), ServeError> {
    match args.first().map(String::as_str) {
        Some("record") => record(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(ServeError::BadArgs(format!(
            "unknown subcommand {other:?}; see --help"
        ))),
    }
}

/// Pulls the value of a `--flag VALUE` pair out of `args`.
struct Flags<'a> {
    args: &'a [String],
    used: Vec<bool>,
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Self {
        Flags {
            args,
            used: vec![false; args.len()],
        }
    }

    fn value(&mut self, flag: &str) -> Result<Option<&'a str>, ServeError> {
        for i in 0..self.args.len() {
            if self.args[i] == flag {
                self.used[i] = true;
                let v = self
                    .args
                    .get(i + 1)
                    .ok_or_else(|| ServeError::BadArgs(format!("{flag} needs a value")))?;
                self.used[i + 1] = true;
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    fn switch(&mut self, flag: &str) -> bool {
        for i in 0..self.args.len() {
            if self.args[i] == flag {
                self.used[i] = true;
                return true;
            }
        }
        false
    }

    fn finish(self) -> Result<(), ServeError> {
        for (i, used) in self.used.iter().enumerate() {
            if !used {
                return Err(ServeError::BadArgs(format!(
                    "unexpected argument {:?}; see --help",
                    self.args[i]
                )));
            }
        }
        Ok(())
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, ServeError>
where
    T::Err: std::fmt::Display,
{
    v.parse()
        .map_err(|e| ServeError::BadArgs(format!("{flag} {v:?}: {e}")))
}

/// Parses a probability-valued flag: finite and within `[0, 1]`.
fn parse_prob(flag: &'static str, v: &str) -> Result<f64, ServeError> {
    let x: f64 = parse_num(flag, v)?;
    if !x.is_finite() || !(0.0..=1.0).contains(&x) {
        return Err(ServeError::OutOfRange {
            flag,
            value: x,
            expected: "a probability in [0, 1]",
        });
    }
    Ok(x)
}

/// Parses a strictly positive finite flag value (a power cap).
fn parse_pos(flag: &'static str, v: &str) -> Result<f64, ServeError> {
    let x: f64 = parse_num(flag, v)?;
    if !x.is_finite() || x <= 0.0 {
        return Err(ServeError::OutOfRange {
            flag,
            value: x,
            expected: "a finite value > 0",
        });
    }
    Ok(x)
}

/// Parses a non-negative finite flag value (a downed device's draw).
fn parse_nonneg(flag: &'static str, v: &str) -> Result<f64, ServeError> {
    let x: f64 = parse_num(flag, v)?;
    if !x.is_finite() || x < 0.0 {
        return Err(ServeError::OutOfRange {
            flag,
            value: x,
            expected: "a finite value >= 0",
        });
    }
    Ok(x)
}

fn record(args: &[String]) -> Result<(), ServeError> {
    let mut flags = Flags::new(args);
    let out = flags
        .value("--out")?
        .ok_or_else(|| ServeError::BadArgs("record needs --out <PATH>".to_string()))?
        .to_string();
    let slices: u64 = match flags.value("--slices")? {
        Some(v) => parse_num("--slices", v)?,
        None => return Err(ServeError::BadArgs("record needs --slices <N>".to_string())),
    };
    let rate: f64 = match flags.value("--rate")? {
        Some(v) => parse_prob("--rate", v)?,
        None => 0.3,
    };
    let seed: u64 = match flags.value("--seed")? {
        Some(v) => parse_num("--seed", v)?,
        None => 42,
    };
    flags.finish()?;

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let spec = qdpm_workload::WorkloadSpec::bernoulli(rate)
        .map_err(|e| ServeError::BadArgs(format!("--rate {rate}: {e}")))?;
    let mut gen = spec.build();
    let mut rng = StdRng::seed_from_u64(seed);
    let rec = qdpm_workload::TraceRecorder::capture(gen.as_mut(), &mut rng, slices);
    let out = PathBuf::from(out);
    rec.save(&out).map_err(|source| ServeError::Io {
        path: out.clone(),
        source,
    })?;
    eprintln!("recorded {slices} slices to {}", out.display());
    Ok(())
}

fn parse_policy(name: &str) -> Result<FleetPolicy, ServeError> {
    Ok(match name {
        "always-on" => FleetPolicy::AlwaysOn,
        "greedy-off" => FleetPolicy::GreedyOff,
        "break-even-timeout" => FleetPolicy::BreakEvenTimeout,
        "adaptive-timeout" => FleetPolicy::AdaptiveTimeout,
        "q-dpm" => FleetPolicy::QDpm(qdpm_core::QDpmConfig::default()),
        "qos-q-dpm" => FleetPolicy::QosQDpm(qdpm_core::QosConfig::default()),
        "shared-q-dpm" => FleetPolicy::SharedQDpm(qdpm_core::QDpmConfig::default()),
        "chaos-monkey" => FleetPolicy::ChaosMonkey,
        other => {
            if let Some(t) = other.strip_prefix("fixed-timeout:") {
                FleetPolicy::FixedTimeout(parse_num("--policy fixed-timeout", t)?)
            } else {
                return Err(ServeError::BadArgs(format!(
                    "unknown policy {other:?}; see --help"
                )));
            }
        }
    })
}

fn parse_dispatch(name: &str) -> Result<DispatchPolicy, ServeError> {
    Ok(match name {
        "round-robin" => DispatchPolicy::RoundRobin,
        "least-loaded" => DispatchPolicy::LeastLoaded,
        "jsq" => DispatchPolicy::JoinShortestQueue,
        other => {
            if let Some(salt) = other.strip_prefix("hash-sharded:") {
                DispatchPolicy::HashSharded {
                    salt: parse_num("--dispatch hash-sharded", salt)?,
                }
            } else if let Some(spill) = other.strip_prefix("sleep-aware:") {
                DispatchPolicy::SleepAware {
                    spill: parse_num("--dispatch sleep-aware", spill)?,
                }
            } else {
                return Err(ServeError::BadArgs(format!(
                    "unknown dispatch policy {other:?}; see --help"
                )));
            }
        }
    })
}

fn serve(args: &[String]) -> Result<(), ServeError> {
    let mut flags = Flags::new(args);
    let trace = match flags.value("--trace")? {
        Some("-") => TraceSource::Stdin,
        Some(path) => TraceSource::File(PathBuf::from(path)),
        None => {
            return Err(ServeError::BadArgs(
                "serve needs --trace <PATH|->".to_string(),
            ))
        }
    };

    let mut config = ServeConfig::default();
    if let Some(v) = flags.value("--devices")? {
        config.devices = parse_num("--devices", v)?;
    }
    if let Some(v) = flags.value("--policy")? {
        config.policies = v
            .split(',')
            .map(parse_policy)
            .collect::<Result<Vec<_>, _>>()?;
    }
    if let Some(v) = flags.value("--preset")? {
        config.preset = DevicePreset::parse(v)?;
    }
    if let Some(v) = flags.value("--cap")? {
        config.power_cap = Some(parse_pos("--cap", v)?);
    }
    if let Some(v) = flags.value("--seed")? {
        config.seed = parse_num("--seed", v)?;
    }
    if let Some(v) = flags.value("--mode")? {
        config.engine_mode = match v {
            "per-slice" => EngineMode::PerSlice,
            "event-skip" => EngineMode::EventSkip,
            other => {
                return Err(ServeError::BadArgs(format!(
                    "unknown engine mode {other:?} (per-slice, event-skip)"
                )))
            }
        };
    }
    if let Some(v) = flags.value("--dispatch")? {
        config.dispatch = parse_dispatch(v)?;
    }
    if let Some(v) = flags.value("--queue-cap")? {
        config.queue_cap = parse_num("--queue-cap", v)?;
    }

    let mut faults = FaultInjector::default();
    if let Some(v) = flags.value("--faults")? {
        faults.crash_rate = parse_prob("--faults", v)?;
    }
    if let Some(v) = flags.value("--fault-down")? {
        faults.crash_down = parse_num("--fault-down", v)?;
    }
    if let Some(v) = flags.value("--fail-stop")? {
        faults.fail_stop_rate = parse_prob("--fail-stop", v)?;
    }
    if let Some(v) = flags.value("--fault-straggle")? {
        faults.straggle_rate = parse_prob("--fault-straggle", v)?;
    }
    if let Some(v) = flags.value("--fault-power")? {
        faults.down_power = parse_nonneg("--fault-power", v)?;
    }
    if faults.is_active() {
        faults
            .validate()
            .map_err(|e| ServeError::BadArgs(format!("fault flags: {e}")))?;
        config.faults = Some(faults);
    }

    let checkpoint_dir = flags.value("--checkpoint-dir")?.map(PathBuf::from);
    let checkpoint_every: u64 = match flags.value("--checkpoint-every")? {
        Some(v) => parse_num("--checkpoint-every", v)?,
        None => 100,
    };
    let throttle_us: u64 = match flags.value("--throttle-us")? {
        Some(v) => parse_num("--throttle-us", v)?,
        None => 0,
    };
    let report_out = flags.value("--report-out")?.map(PathBuf::from);
    let threads: usize = match flags.value("--threads")? {
        Some(v) => parse_num("--threads", v)?,
        None => 1,
    };
    let fresh = flags.switch("--fresh");
    flags.finish()?;

    sigterm::install();
    let summary = run_serve(&ServeOptions {
        config,
        trace,
        checkpoint_dir,
        checkpoint_every,
        throttle: Duration::from_micros(throttle_us),
        report_out,
        threads,
        fresh,
        shutdown: Some(sigterm::requested),
    })?;

    for (path, err) in &summary.skipped {
        eprintln!("degraded: skipped {}: {err}", path.display());
    }
    match summary.resumed_at {
        Some(slice) => eprintln!(
            "resumed from slice {slice}, served {} slices, {} checkpoint(s)",
            summary.slices, summary.checkpoints_written
        ),
        None => eprintln!(
            "cold start, served {} slices, {} checkpoint(s)",
            summary.slices, summary.checkpoints_written
        ),
    }
    if let Some(slice) = summary.terminated_at {
        eprintln!("sigterm: stopped gracefully at slice {slice}, state checkpointed");
    }
    print!("{}", summary.report_text);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn out_of_range(r: Result<f64, ServeError>, flag: &str) {
        match r {
            Err(ServeError::OutOfRange { flag: f, .. }) => assert_eq!(f, flag),
            other => panic!("{flag}: expected OutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn rate_flag_rejects_out_of_domain_values() {
        assert_eq!(parse_prob("--rate", "0.3").unwrap(), 0.3);
        assert_eq!(parse_prob("--rate", "0").unwrap(), 0.0);
        assert_eq!(parse_prob("--rate", "1").unwrap(), 1.0);
        for bad in ["2.0", "-0.1", "NaN", "inf", "-inf"] {
            out_of_range(parse_prob("--rate", bad), "--rate");
        }
        assert!(matches!(
            parse_prob("--rate", "abc"),
            Err(ServeError::BadArgs(_))
        ));
    }

    #[test]
    fn fault_rate_flags_reject_out_of_domain_values() {
        for flag in ["--faults", "--fail-stop", "--fault-straggle"] {
            // The flag must be validated *before* FaultInjector::is_active
            // gating: a negative rate used to make the injector read
            // inactive and skip validation entirely.
            assert_eq!(parse_prob(flag, "0.01").unwrap(), 0.01);
            for bad in ["1.5", "-0.2", "NaN", "inf"] {
                out_of_range(parse_prob(flag, bad), flag);
            }
        }
    }

    #[test]
    fn cap_flag_rejects_non_positive_and_non_finite_values() {
        assert_eq!(parse_pos("--cap", "3.5").unwrap(), 3.5);
        for bad in ["0", "-2.5", "NaN", "inf", "-inf"] {
            out_of_range(parse_pos("--cap", bad), "--cap");
        }
    }

    #[test]
    fn fault_power_flag_rejects_negative_and_non_finite_values() {
        assert_eq!(parse_nonneg("--fault-power", "0").unwrap(), 0.0);
        assert_eq!(parse_nonneg("--fault-power", "0.2").unwrap(), 0.2);
        for bad in ["-0.1", "NaN", "inf"] {
            out_of_range(parse_nonneg("--fault-power", bad), "--fault-power");
        }
    }

    #[test]
    fn throttle_flag_rejects_negative_values() {
        // `--throttle-us` is unsigned: a negative value fails integer
        // parsing with a typed BadArgs, never wrapping around.
        assert_eq!(parse_num::<u64>("--throttle-us", "250").unwrap(), 250);
        assert!(matches!(
            parse_num::<u64>("--throttle-us", "-5"),
            Err(ServeError::BadArgs(_))
        ));
    }

    #[test]
    fn out_of_range_errors_render_flag_value_and_domain() {
        let err = parse_prob("--rate", "2.5").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--rate"), "{msg}");
        assert!(msg.contains("2.5"), "{msg}");
        assert!(msg.contains("[0, 1]"), "{msg}");
    }
}
