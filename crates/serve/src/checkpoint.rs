//! The versioned, checksummed checkpoint container and its two-generation
//! on-disk store.
//!
//! # Container layout
//!
//! ```text
//! magic        8  b"QDPMCKPT"
//! version      4  u32 LE (SCHEMA_VERSION)
//! config hash  8  u64 LE (FNV-1a of the canonical config encoding)
//! generation   8  u64 LE (monotonic write counter)
//! slice        8  u64 LE (trace slices fully applied to the rack)
//! payload      8+n  length-prefixed rack state bytes
//! checksum     8  u64 LE FNV-1a of every preceding byte
//! ```
//!
//! # Durability protocol
//!
//! A checkpoint is written to a temporary file in the *same directory*,
//! synced, then renamed over its final generation-numbered name — a crash
//! at any byte leaves either the complete new generation or no new file at
//! all, never a half-written one under a valid name. The previous
//! generation is retained until the next successful write, so a write torn
//! exactly at the rename (or a later partial disk corruption of the newest
//! file) degrades to resuming from one generation earlier instead of
//! failing.

use std::fs;
use std::path::{Path, PathBuf};

use qdpm_core::{StateReader, StateWriter};

use crate::error::ServeError;

/// Container magic bytes.
pub const MAGIC: [u8; 8] = *b"QDPMCKPT";

/// Current container schema version. v2: the rack payload grew the fault
/// clock, barrier cursor, and retry-queue state. v3: every member
/// simulator's payload grew the deadline ledger, the waiting requests'
/// deadlines, and the deadline draw counter — older checkpoints no
/// longer fit and are rejected up front by the version check.
pub const SCHEMA_VERSION: u32 = 3;

/// How many checkpoint generations are retained on disk.
pub const GENERATIONS_KEPT: u64 = 2;

const FILE_PREFIX: &str = "ckpt-";
const FILE_SUFFIX: &str = ".qdpm";
const TMP_NAME: &str = ".ckpt.tmp";

/// FNV-1a 64-bit hash — the container checksum and the config fingerprint.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One decoded checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Monotonic write counter (embedded and in the filename).
    pub generation: u64,
    /// Trace slices fully applied to the rack when this was taken.
    pub slice: u64,
    /// Opaque rack state (see `RackCoordinator::save_state`).
    pub rack_state: Vec<u8>,
}

/// Encodes a checkpoint into its on-disk container bytes.
#[must_use]
pub fn encode(ckpt: &Checkpoint, config_hash: u64) -> Vec<u8> {
    let mut w = StateWriter::new();
    w.put_u32(SCHEMA_VERSION);
    w.put_u64(config_hash);
    w.put_u64(ckpt.generation);
    w.put_u64(ckpt.slice);
    w.put_bytes(&ckpt.rack_state);
    let body = w.into_bytes();
    let mut out = Vec::with_capacity(MAGIC.len() + body.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&body);
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Decodes and validates container bytes.
///
/// # Errors
///
/// [`ServeError::Corrupt`] for truncation, bad magic, or a checksum
/// mismatch; [`ServeError::UnsupportedSchema`] for an unknown version;
/// [`ServeError::ConfigMismatch`] when the embedded config hash differs
/// from `config_hash`.
pub fn decode(bytes: &[u8], path: &Path, config_hash: u64) -> Result<Checkpoint, ServeError> {
    let corrupt = |reason: String| ServeError::Corrupt {
        path: path.to_path_buf(),
        reason,
    };
    // Smallest possible container: magic + version + three u64 headers +
    // an empty length-prefixed payload + checksum.
    let min = MAGIC.len() + 4 + 8 + 8 + 8 + 8 + 8;
    if bytes.len() < min {
        return Err(corrupt(format!(
            "truncated: {} bytes, container needs at least {min}",
            bytes.len()
        )));
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(corrupt("bad magic".to_string()));
    }
    let (framed, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let declared = u64::from_le_bytes(sum_bytes.try_into().expect("8-byte split"));
    let actual = fnv1a64(framed);
    if declared != actual {
        return Err(corrupt(format!(
            "checksum mismatch: stored {declared:#018x}, computed {actual:#018x}"
        )));
    }
    let mut r = StateReader::new(&framed[MAGIC.len()..]);
    let truncated = |e: qdpm_core::StateError| corrupt(format!("frame decode failed: {e}"));
    let version = r.get_u32().map_err(truncated)?;
    if version != SCHEMA_VERSION {
        return Err(ServeError::UnsupportedSchema {
            path: path.to_path_buf(),
            found: version,
        });
    }
    let found = r.get_u64().map_err(truncated)?;
    if found != config_hash {
        return Err(ServeError::ConfigMismatch {
            path: path.to_path_buf(),
            expected: config_hash,
            found,
        });
    }
    let generation = r.get_u64().map_err(truncated)?;
    let slice = r.get_u64().map_err(truncated)?;
    let rack_state = r.get_bytes().map_err(truncated)?.to_vec();
    if r.remaining() != 0 {
        return Err(corrupt(format!(
            "{} trailing byte(s) after the payload",
            r.remaining()
        )));
    }
    Ok(Checkpoint {
        generation,
        slice,
        rack_state,
    })
}

/// Reads and validates one checkpoint file.
///
/// # Errors
///
/// [`ServeError::Io`] when the file cannot be read, plus everything
/// [`decode`] returns.
pub fn read_checkpoint(path: &Path, config_hash: u64) -> Result<Checkpoint, ServeError> {
    let bytes = fs::read(path).map_err(|source| ServeError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    decode(&bytes, path, config_hash)
}

/// Generation-numbered file name of a checkpoint.
#[must_use]
pub fn generation_file(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("{FILE_PREFIX}{generation:016x}{FILE_SUFFIX}"))
}

/// Lists checkpoint generations in `dir`, newest first. A missing
/// directory lists as empty.
///
/// # Errors
///
/// [`ServeError::Io`] when the directory exists but cannot be read.
pub fn list_generations(dir: &Path) -> Result<Vec<(u64, PathBuf)>, ServeError> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(source) => {
            return Err(ServeError::Io {
                path: dir.to_path_buf(),
                source,
            })
        }
    };
    let mut found = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| ServeError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(hex) = name
            .strip_prefix(FILE_PREFIX)
            .and_then(|s| s.strip_suffix(FILE_SUFFIX))
        else {
            continue;
        };
        let Ok(generation) = u64::from_str_radix(hex, 16) else {
            continue;
        };
        found.push((generation, entry.path()));
    }
    found.sort_by_key(|&(generation, _)| std::cmp::Reverse(generation));
    Ok(found)
}

/// Writes checkpoints atomically and prunes old generations.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    config_hash: u64,
    next_generation: u64,
}

impl CheckpointStore {
    /// Opens (creating if needed) the store in `dir`. The next write goes
    /// to one generation past the newest file already present, so a
    /// resumed daemon never overwrites the checkpoint it restored from.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the directory cannot be created or listed.
    pub fn open(dir: &Path, config_hash: u64) -> Result<Self, ServeError> {
        fs::create_dir_all(dir).map_err(|source| ServeError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let newest = list_generations(dir)?.first().map_or(0, |&(g, _)| g + 1);
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
            config_hash,
            next_generation: newest,
        })
    }

    /// The directory this store writes into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Atomically writes the next checkpoint generation (tmp file in the
    /// same directory, sync, rename) and prunes generations older than the
    /// retained window. Returns the final path.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when writing, syncing, or renaming fails. Prune
    /// failures are ignored — stale extra generations are harmless.
    pub fn save(&mut self, slice: u64, rack_state: &[u8]) -> Result<PathBuf, ServeError> {
        let generation = self.next_generation;
        let ckpt = Checkpoint {
            generation,
            slice,
            rack_state: rack_state.to_vec(),
        };
        let bytes = encode(&ckpt, self.config_hash);
        let tmp = self.dir.join(TMP_NAME);
        let io_err = |path: &Path| {
            let path = path.to_path_buf();
            move |source| ServeError::Io { path, source }
        };
        {
            use std::io::Write as _;
            let mut f = fs::File::create(&tmp).map_err(io_err(&tmp))?;
            f.write_all(&bytes).map_err(io_err(&tmp))?;
            f.sync_all().map_err(io_err(&tmp))?;
        }
        let path = generation_file(&self.dir, generation);
        fs::rename(&tmp, &path).map_err(io_err(&path))?;
        self.next_generation += 1;
        for (gen, old) in list_generations(&self.dir).unwrap_or_default() {
            if generation.saturating_sub(gen) >= GENERATIONS_KEPT {
                let _ = fs::remove_file(old);
            }
        }
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qdpm-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> Checkpoint {
        Checkpoint {
            generation: 7,
            slice: 1234,
            rack_state: vec![1, 2, 3, 4, 5],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let ckpt = sample();
        let bytes = encode(&ckpt, 0xdead_beef);
        let back = decode(&bytes, Path::new("x"), 0xdead_beef).unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn every_truncation_is_a_typed_corrupt_error() {
        let bytes = encode(&sample(), 1);
        for cut in [0, 1, 8, bytes.len() / 2, bytes.len() - 1] {
            let err = decode(&bytes[..cut], Path::new("x"), 1).unwrap_err();
            assert!(
                matches!(err, ServeError::Corrupt { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let bytes = encode(&sample(), 1);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let err = decode(&bad, Path::new("x"), 1).unwrap_err();
            assert!(matches!(err, ServeError::Corrupt { .. }), "byte {i}: {err}");
        }
    }

    #[test]
    fn unknown_version_and_config_are_typed() {
        // Re-frame the container with a future version and a valid
        // checksum: must surface as UnsupportedSchema, not Corrupt.
        let ckpt = sample();
        let mut w = StateWriter::new();
        w.put_u32(SCHEMA_VERSION + 9);
        w.put_u64(1);
        w.put_u64(ckpt.generation);
        w.put_u64(ckpt.slice);
        w.put_bytes(&ckpt.rack_state);
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&w.into_bytes());
        let sum = fnv1a64(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            decode(&bytes, Path::new("x"), 1).unwrap_err(),
            ServeError::UnsupportedSchema { found, .. } if found == SCHEMA_VERSION + 9
        ));

        let good = encode(&ckpt, 1);
        assert!(matches!(
            decode(&good, Path::new("x"), 2).unwrap_err(),
            ServeError::ConfigMismatch {
                expected: 2,
                found: 1,
                ..
            }
        ));
    }

    #[test]
    fn store_writes_generations_and_prunes_to_two() {
        let dir = tmp_dir("store");
        let mut store = CheckpointStore::open(&dir, 42).unwrap();
        for slice in [10u64, 20, 30, 40] {
            store.save(slice, &[slice as u8]).unwrap();
        }
        let gens = list_generations(&dir).unwrap();
        assert_eq!(gens.iter().map(|&(g, _)| g).collect::<Vec<_>>(), vec![3, 2]);
        let newest = read_checkpoint(&gens[0].1, 42).unwrap();
        assert_eq!((newest.generation, newest.slice), (3, 40));

        // Reopening continues the generation counter past the newest file.
        let mut reopened = CheckpointStore::open(&dir, 42).unwrap();
        let path = reopened.save(50, &[9]).unwrap();
        assert_eq!(read_checkpoint(&path, 42).unwrap().generation, 4);
        let _ = fs::remove_dir_all(&dir);
    }
}
