//! qdpm-serve: a crash-tolerant, long-running serving daemon for Q-DPM
//! fleets.
//!
//! The daemon ingests per-slice arrival counts from a recorded trace file
//! (or stdin) at accelerated or throttled speed, drives an online
//! [`RackCoordinator`](qdpm_sim::hierarchy::RackCoordinator) — optionally
//! power-capped — one event at a time, and snapshots a versioned,
//! checksummed checkpoint of *all* dynamic state between slices: every
//! member simulator (device, queue, server, all four RNG streams, learner
//! tables), the intra-rack dispatcher, and the rack's command budget.
//!
//! Durability is two-generation: each checkpoint is written to a temp file
//! in the checkpoint directory, synced, and renamed into place, with the
//! previous generation retained. On startup the daemon restores the newest
//! generation that validates — magic, schema version, embedded config
//! fingerprint, FNV-1a checksum, and payload fit are all checked — and
//! degrades to the older generation (never a panic) when the newest is
//! torn, corrupted, or foreign.
//!
//! The headline contract, pinned by the crash harness in this crate's
//! integration tests: a run SIGKILLed at any instant and restarted
//! finishes with statistics **bit-identical** (exact `f64` bits) to a run
//! that was never interrupted.

pub mod checkpoint;
pub mod daemon;
pub mod error;

pub use checkpoint::{
    decode, encode, fnv1a64, list_generations, read_checkpoint, Checkpoint, CheckpointStore,
    GENERATIONS_KEPT, MAGIC, SCHEMA_VERSION,
};
pub use daemon::{
    atomic_write, read_trace, recover_rack, render_report, run_serve, DevicePreset, ServeConfig,
    ServeOptions, ServeSummary, TraceSource,
};
pub use error::ServeError;
