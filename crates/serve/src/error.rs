//! Typed failures of the serving daemon.

use std::fmt;
use std::path::PathBuf;

use qdpm_core::StateError;
use qdpm_sim::SimError;

/// Everything that can go wrong while serving, checkpointing, or resuming.
///
/// Checkpoint damage is *typed*, not panicked on: the recovery scan maps
/// each unusable generation to one of these and falls back to the next
/// older one.
#[derive(Debug)]
pub enum ServeError {
    /// An I/O operation failed; `path` is what was being touched.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A checkpoint file is damaged: too short to hold the container
    /// frame, wrong magic, or failing its embedded checksum.
    Corrupt {
        /// The damaged file.
        path: PathBuf,
        /// What exactly was wrong.
        reason: String,
    },
    /// A checkpoint was written by an unknown container schema.
    UnsupportedSchema {
        /// The offending file.
        path: PathBuf,
        /// The version the file declares.
        found: u32,
    },
    /// A checkpoint belongs to a differently-configured daemon (its
    /// embedded config hash does not match the running configuration).
    ConfigMismatch {
        /// The offending file.
        path: PathBuf,
        /// Hash of the running configuration.
        expected: u64,
        /// Hash embedded in the file.
        found: u64,
    },
    /// The checkpoint payload decoded but did not fit the rebuilt rack
    /// (the inner state codec rejected it).
    BadPayload {
        /// The offending file.
        path: PathBuf,
        /// The codec's complaint.
        source: StateError,
    },
    /// Checkpoint files exist but every generation failed validation —
    /// nothing to resume from.
    NoUsableCheckpoint {
        /// The checkpoint directory that was scanned.
        dir: PathBuf,
        /// How many candidate files were tried.
        tried: usize,
    },
    /// Building or driving the simulated rack failed.
    Sim(SimError),
    /// A command-line or configuration value was invalid.
    BadArgs(String),
    /// A numeric command-line value parsed but fell outside the flag's
    /// valid domain (a rate above 1, a negative or non-finite power, ...).
    OutOfRange {
        /// The flag whose value was rejected.
        flag: &'static str,
        /// The rejected value.
        value: f64,
        /// Human description of the valid domain.
        expected: &'static str,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            ServeError::Corrupt { path, reason } => {
                write!(f, "{}: corrupt checkpoint: {reason}", path.display())
            }
            ServeError::UnsupportedSchema { path, found } => {
                write!(
                    f,
                    "{}: unsupported checkpoint schema version {found}",
                    path.display()
                )
            }
            ServeError::ConfigMismatch {
                path,
                expected,
                found,
            } => {
                write!(
                    f,
                    "{}: checkpoint config hash {found:#018x} does not match \
                     this daemon's configuration {expected:#018x}",
                    path.display()
                )
            }
            ServeError::BadPayload { path, source } => {
                write!(
                    f,
                    "{}: unusable checkpoint payload: {source}",
                    path.display()
                )
            }
            ServeError::NoUsableCheckpoint { dir, tried } => {
                write!(
                    f,
                    "{}: all {tried} checkpoint generation(s) failed validation",
                    dir.display()
                )
            }
            ServeError::Sim(e) => write!(f, "simulation error: {e}"),
            ServeError::BadArgs(msg) => write!(f, "{msg}"),
            ServeError::OutOfRange {
                flag,
                value,
                expected,
            } => {
                write!(f, "{flag} {value}: expected {expected}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io { source, .. } => Some(source),
            ServeError::BadPayload { source, .. } => Some(source),
            ServeError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        ServeError::Sim(e)
    }
}
