//! The serving loop: ingest a trace, drive a rack online, checkpoint
//! between slices, resume after a crash.
//!
//! # Resume contract
//!
//! A run SIGKILLed at *any* instant and restarted over the same trace,
//! configuration, and checkpoint cadence finishes with a report
//! bit-identical (exact `f64` bits) to a never-interrupted run. This holds
//! because every piece of dynamic state — device, queue, server, all four
//! RNG streams, learner tables, dispatcher cursors, rack budget — is
//! captured by `RackCoordinator::save_state`, gap advancement is additive
//! (`advance_gap(a)` then `advance_gap(b)` equals `advance_gap(a + b)`),
//! and checkpoints are only taken between slices at fixed cadence points,
//! so the interrupted and uninterrupted runs chunk the trace identically.

use std::path::{Path, PathBuf};
use std::time::Duration;

use qdpm_core::{StateReader, StateWriter};
use qdpm_device::{presets, DeviceMode, PowerModel, ServiceModel};
use qdpm_sim::hierarchy::{RackCoordinator, RackReport, RackSpec};
use qdpm_sim::AvailabilityStats;
use qdpm_sim::{EngineMode, FleetConfig, FleetMember, FleetPolicy, RunStats};
use qdpm_workload::{DispatchPolicy, FaultInjector};

use crate::checkpoint::{fnv1a64, list_generations, read_checkpoint, CheckpointStore};
use crate::error::ServeError;

/// Device presets a served rack can be built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DevicePreset {
    /// [`presets::three_state_generic`].
    ThreeState,
    /// [`presets::ibm_hdd`].
    IbmHdd,
    /// [`presets::wlan_card`].
    WlanCard,
}

impl DevicePreset {
    /// Parses a CLI name.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadArgs`] for unknown names.
    pub fn parse(name: &str) -> Result<Self, ServeError> {
        match name {
            "three-state" => Ok(DevicePreset::ThreeState),
            "ibm-hdd" => Ok(DevicePreset::IbmHdd),
            "wlan" => Ok(DevicePreset::WlanCard),
            other => Err(ServeError::BadArgs(format!(
                "unknown device preset {other:?} (three-state, ibm-hdd, wlan)"
            ))),
        }
    }

    /// The canonical name (also what the config hash ingests).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DevicePreset::ThreeState => "three-state",
            DevicePreset::IbmHdd => "ibm-hdd",
            DevicePreset::WlanCard => "wlan",
        }
    }

    fn power(self) -> PowerModel {
        match self {
            DevicePreset::ThreeState => presets::three_state_generic(),
            DevicePreset::IbmHdd => presets::ibm_hdd(),
            DevicePreset::WlanCard => presets::wlan_card(),
        }
    }

    fn service(self) -> ServiceModel {
        presets::default_service()
    }
}

/// The rack shape a daemon serves. Everything here is fingerprinted into
/// the checkpoint config hash: a checkpoint only resumes into the exact
/// configuration that wrote it.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of devices in the rack.
    pub devices: usize,
    /// Member policies, cycled across devices (device `i` gets
    /// `policies[i % len]`).
    pub policies: Vec<FleetPolicy>,
    /// Device preset every member is built from.
    pub preset: DevicePreset,
    /// Optional rack power cap.
    pub power_cap: Option<f64>,
    /// Master seed (per-device streams are derived from it).
    pub seed: u64,
    /// Engine mode of every member simulator.
    pub engine_mode: EngineMode,
    /// Intra-rack dispatch policy.
    pub dispatch: DispatchPolicy,
    /// Queue capacity of every device.
    pub queue_cap: usize,
    /// Optional seeded fault injection (see
    /// [`qdpm_workload::FaultInjector`]). Part of the config fingerprint:
    /// the fault plan derives from the seed, so a resumed run replays the
    /// identical failures.
    pub faults: Option<FaultInjector>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            devices: 4,
            policies: vec![FleetPolicy::QDpm(qdpm_core::QDpmConfig::default())],
            preset: DevicePreset::ThreeState,
            power_cap: None,
            seed: 42,
            engine_mode: EngineMode::PerSlice,
            dispatch: DispatchPolicy::RoundRobin,
            queue_cap: 8,
            faults: None,
        }
    }
}

impl ServeConfig {
    /// FNV-1a fingerprint of the canonical config encoding — embedded in
    /// every checkpoint and checked on resume.
    #[must_use]
    pub fn config_hash(&self) -> u64 {
        let mut w = StateWriter::new();
        w.put_usize(self.devices);
        w.put_usize(self.policies.len());
        for p in &self.policies {
            w.put_str(p.name());
            if let FleetPolicy::FixedTimeout(t) = p {
                w.put_u64(*t);
            }
        }
        w.put_str(self.preset.name());
        match self.power_cap {
            None => w.put_bool(false),
            Some(cap) => {
                w.put_bool(true);
                w.put_f64(cap);
            }
        }
        w.put_u64(self.seed);
        w.put_u8(match self.engine_mode {
            EngineMode::PerSlice => 0,
            EngineMode::EventSkip => 1,
        });
        match self.dispatch {
            DispatchPolicy::RoundRobin => w.put_u8(0),
            DispatchPolicy::LeastLoaded => w.put_u8(1),
            DispatchPolicy::HashSharded { salt } => {
                w.put_u8(2);
                w.put_u64(salt);
            }
            DispatchPolicy::JoinShortestQueue => w.put_u8(3),
            DispatchPolicy::SleepAware { spill } => {
                w.put_u8(4);
                w.put_usize(spill);
            }
        }
        w.put_usize(self.queue_cap);
        match &self.faults {
            None => w.put_bool(false),
            Some(f) => {
                w.put_bool(true);
                w.put_f64(f.crash_rate);
                w.put_u64(f.crash_down);
                w.put_f64(f.fail_stop_rate);
                w.put_f64(f.straggle_rate);
                w.put_u64(f.straggle_slowdown);
                w.put_u64(f.straggle_window);
                w.put_f64(f.down_power);
            }
        }
        fnv1a64(&w.into_bytes())
    }

    /// Builds a cold rack for this configuration.
    ///
    /// # Errors
    ///
    /// [`ServeError`] when the config is empty/invalid or rack
    /// construction rejects it (e.g. oracle members, infeasible caps).
    pub fn build_rack(&self, horizon: u64) -> Result<RackCoordinator, ServeError> {
        if self.devices == 0 {
            return Err(ServeError::BadArgs(
                "a served rack needs at least one device".to_string(),
            ));
        }
        if self.policies.is_empty() {
            return Err(ServeError::BadArgs(
                "at least one member policy is required".to_string(),
            ));
        }
        let members: Vec<FleetMember> = (0..self.devices)
            .map(|i| FleetMember {
                label: format!("dev-{i}"),
                power: self.preset.power(),
                service: self.preset.service(),
                policy: self.policies[i % self.policies.len()].clone(),
            })
            .collect();
        let spec = RackSpec {
            label: "serve".to_string(),
            members,
            power_cap: self.power_cap,
        };
        let config = FleetConfig {
            queue_cap: self.queue_cap,
            seed: self.seed,
            engine_mode: self.engine_mode,
            dispatch: self.dispatch,
            horizon,
            faults: self.faults.clone(),
            ..FleetConfig::default()
        };
        Ok(RackCoordinator::new(&spec, &config)?)
    }
}

/// Where the arrival stream comes from.
#[derive(Debug, Clone)]
pub enum TraceSource {
    /// A `# qdpm-trace v1` text file (one arrival count per line).
    File(PathBuf),
    /// Standard input, same line format. Resuming a killed stdin run
    /// requires the producer to replay from the checkpointed slice — a
    /// file trace re-seeks automatically and is what the crash harness
    /// uses.
    Stdin,
    /// An in-memory trace (library callers and tests).
    Counts(Vec<u32>),
}

/// One serving run: configuration plus operational knobs. The knobs that
/// affect *chunking* (`checkpoint_every`) must match between a killed and
/// an uninterrupted run for bit-identical reports; pacing and output paths
/// never affect results.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// The rack shape.
    pub config: ServeConfig,
    /// The arrival stream.
    pub trace: TraceSource,
    /// Checkpoint directory; `None` serves without durability.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint every N slices (0 = only the final checkpoint).
    pub checkpoint_every: u64,
    /// Sleep per slice — throttles accelerated replay toward wall-clock.
    pub throttle: Duration,
    /// Write the final report here (atomically).
    pub report_out: Option<PathBuf>,
    /// Worker threads for gap advancement.
    pub threads: usize,
    /// Ignore existing checkpoints and start cold.
    pub fresh: bool,
    /// Polled between slices: returning `true` requests a graceful stop —
    /// the daemon writes a final checkpoint at the current slice and
    /// returns early with [`ServeSummary::terminated_at`] set. The CLI
    /// wires a SIGTERM latch in here; `None` never stops early.
    pub shutdown: Option<fn() -> bool>,
}

impl ServeOptions {
    /// Minimal options serving an in-memory trace with no durability.
    #[must_use]
    pub fn in_memory(config: ServeConfig, counts: Vec<u32>) -> Self {
        ServeOptions {
            config,
            trace: TraceSource::Counts(counts),
            checkpoint_dir: None,
            checkpoint_every: 0,
            throttle: Duration::ZERO,
            report_out: None,
            threads: 1,
            fresh: true,
            shutdown: None,
        }
    }
}

/// What a completed serving run reports back.
#[derive(Debug)]
pub struct ServeSummary {
    /// The final rack report.
    pub report: RackReport,
    /// Total trace slices served.
    pub slices: u64,
    /// Slice the run resumed from (`None` for a cold start).
    pub resumed_at: Option<u64>,
    /// Checkpoints written during this run.
    pub checkpoints_written: u64,
    /// Checkpoint generations that failed validation and were skipped
    /// during recovery, newest first.
    pub skipped: Vec<(PathBuf, ServeError)>,
    /// The rendered deterministic report text.
    pub report_text: String,
    /// Slice a graceful-shutdown request stopped the run at (`None` for
    /// a run that served the whole trace). The final checkpoint covers
    /// exactly this many slices; resuming completes the trace.
    pub terminated_at: Option<u64>,
}

/// Parses a `# qdpm-trace v1` text file into per-slice arrival counts.
///
/// # Errors
///
/// [`ServeError::Io`] for unreadable files, [`ServeError::BadArgs`] for
/// malformed lines or an empty trace.
pub fn read_trace(path: &Path) -> Result<Vec<u32>, ServeError> {
    let text = std::fs::read_to_string(path).map_err(|source| ServeError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    parse_trace(&text, &path.display().to_string())
}

fn parse_trace(text: &str, origin: &str) -> Result<Vec<u32>, ServeError> {
    let mut counts = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let count: u32 = line
            .parse()
            .map_err(|e| ServeError::BadArgs(format!("{origin}: line {}: {e}", i + 1)))?;
        counts.push(count);
    }
    if counts.is_empty() {
        return Err(ServeError::BadArgs(format!("{origin}: empty trace")));
    }
    Ok(counts)
}

/// Recovers the newest usable checkpoint from `dir`, degrading gracefully:
/// generations that are unreadable, corrupt, version-mismatched,
/// config-mismatched, or whose payload the rebuilt rack rejects are
/// skipped (typed, newest first, in the returned list) in favour of the
/// next older one. Returns the hydrated rack and the resume slice.
///
/// # Errors
///
/// [`ServeError::NoUsableCheckpoint`] when checkpoint files exist but
/// every one fails; propagates directory listing failures. An empty (or
/// missing) directory is `Ok(None)` — a cold start, not an error.
#[allow(clippy::type_complexity)]
pub fn recover_rack(
    dir: &Path,
    config: &ServeConfig,
    horizon: u64,
) -> Result<Option<(RackCoordinator, u64, Vec<(PathBuf, ServeError)>)>, ServeError> {
    let generations = list_generations(dir)?;
    if generations.is_empty() {
        return Ok(None);
    }
    let tried = generations.len();
    let hash = config.config_hash();
    let mut skipped = Vec::new();
    for (_, path) in generations {
        let ckpt = match read_checkpoint(&path, hash) {
            Ok(c) => c,
            Err(e) => {
                skipped.push((path, e));
                continue;
            }
        };
        let mut rack = config.build_rack(horizon)?;
        match rack.load_state(&mut StateReader::new(&ckpt.rack_state)) {
            Ok(()) => return Ok(Some((rack, ckpt.slice, skipped))),
            Err(source) => {
                // A checksum-valid container whose payload does not fit
                // the rack is as unusable as a torn file: degrade.
                skipped.push((
                    path,
                    ServeError::BadPayload {
                        path: PathBuf::new(),
                        source,
                    },
                ));
            }
        }
    }
    Err(ServeError::NoUsableCheckpoint {
        dir: dir.to_path_buf(),
        tried,
    })
}

/// Runs one serving session to completion: recover-or-cold-start, drive
/// the rack over the trace, checkpoint at cadence, write the final report.
///
/// # Errors
///
/// Any [`ServeError`]: unusable trace or configuration, unrecoverable
/// checkpoint directory, or I/O failure on checkpoint/report writes.
pub fn run_serve(opts: &ServeOptions) -> Result<ServeSummary, ServeError> {
    let counts: Vec<u32> = match &opts.trace {
        TraceSource::File(path) => read_trace(path)?,
        TraceSource::Counts(c) => c.clone(),
        TraceSource::Stdin => {
            let mut text = String::new();
            use std::io::Read as _;
            std::io::stdin()
                .read_to_string(&mut text)
                .map_err(|source| ServeError::Io {
                    path: PathBuf::from("<stdin>"),
                    source,
                })?;
            parse_trace(&text, "<stdin>")?
        }
    };
    let horizon = counts.len() as u64;
    let hash = opts.config.config_hash();

    let mut skipped = Vec::new();
    let mut resumed_at = None;
    let mut rack = match (&opts.checkpoint_dir, opts.fresh) {
        (Some(dir), false) => match recover_rack(dir, &opts.config, horizon)? {
            Some((rack, slice, skip)) => {
                if slice > horizon {
                    return Err(ServeError::BadArgs(format!(
                        "checkpoint is {slice} slices in, but the trace has only {horizon}"
                    )));
                }
                skipped = skip;
                resumed_at = Some(slice);
                rack
            }
            None => opts.config.build_rack(horizon)?,
        },
        _ => opts.config.build_rack(horizon)?,
    };

    let mut store = match &opts.checkpoint_dir {
        Some(dir) => Some(CheckpointStore::open(dir, hash)?),
        None => None,
    };

    let start = resumed_at.unwrap_or(0);
    let mut checkpoints_written = 0u64;
    let mut last_saved = resumed_at;
    let mut gap = 0u64;
    let mut terminated_at = None;
    let threads = opts.threads.max(1);
    for slice in start..horizon {
        let count = counts[slice as usize];
        if count > 0 {
            rack.advance_gap(gap, threads);
            gap = 0;
            rack.arrival_slice(count);
        } else {
            gap += 1;
        }
        let done = slice + 1;
        if opts.checkpoint_every > 0 && done % opts.checkpoint_every == 0 {
            rack.advance_gap(gap, threads);
            gap = 0;
            if let Some(store) = &mut store {
                let mut w = StateWriter::new();
                rack.save_state(&mut w);
                store.save(done, &w.into_bytes())?;
                checkpoints_written += 1;
                last_saved = Some(done);
            }
        }
        if opts.shutdown.is_some_and(|requested| requested()) {
            // Graceful stop: settle the rack at this slice boundary and
            // fall through to the final-checkpoint path. Resuming is
            // bit-exact because gap advancement is additive — the
            // interrupted and uninterrupted runs chunk identically.
            terminated_at = Some(done);
            break;
        }
        if !opts.throttle.is_zero() {
            std::thread::sleep(opts.throttle);
        }
    }
    rack.advance_gap(gap, threads);
    let served_to = terminated_at.unwrap_or(horizon);
    if let Some(store) = &mut store {
        if last_saved != Some(served_to) {
            let mut w = StateWriter::new();
            rack.save_state(&mut w);
            store.save(served_to, &w.into_bytes())?;
            checkpoints_written += 1;
        }
    }

    let report = rack.report();
    let report_text = render_report(&report, hash, served_to);
    if let Some(path) = &opts.report_out {
        // A gracefully-stopped run leaves the report to the resuming run:
        // a partial report must never overwrite a complete one.
        if terminated_at.is_none() {
            atomic_write(path, report_text.as_bytes())?;
        }
    }
    Ok(ServeSummary {
        report,
        slices: served_to,
        resumed_at,
        checkpoints_written,
        skipped,
        report_text,
        terminated_at,
    })
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// sync, rename.
///
/// # Errors
///
/// [`ServeError::Io`] on any write, sync, or rename failure.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), ServeError> {
    let io_err = |p: &Path| {
        let p = p.to_path_buf();
        move |source| ServeError::Io { path: p, source }
    };
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| ServeError::BadArgs(format!("{}: not a file path", path.display())))?;
    let tmp = match dir {
        Some(d) => d.join(format!(".{file_name}.tmp")),
        None => PathBuf::from(format!(".{file_name}.tmp")),
    };
    {
        use std::io::Write as _;
        let mut f = std::fs::File::create(&tmp).map_err(io_err(&tmp))?;
        f.write_all(bytes).map_err(io_err(&tmp))?;
        f.sync_all().map_err(io_err(&tmp))?;
    }
    std::fs::rename(&tmp, path).map_err(io_err(path))
}

fn mode_str(mode: &DeviceMode) -> String {
    match mode {
        DeviceMode::Operational(s) => format!("op:{}", s.index()),
        DeviceMode::Transitioning {
            from,
            to,
            remaining,
        } => {
            format!("tr:{}>{}:{remaining}", from.index(), to.index())
        }
    }
}

fn stats_fields(s: &RunStats) -> String {
    format!(
        "steps {} energy {:016x} cost {:016x} arrivals {} completed {} \
         dropped {} wait {} qsum {:016x}",
        s.steps,
        s.total_energy.to_bits(),
        s.total_cost.to_bits(),
        s.arrivals,
        s.completed,
        s.dropped,
        s.total_wait,
        s.queue_len_sum.to_bits(),
    )
}

fn availability_fields(a: &AvailabilityStats) -> String {
    format!(
        "faults {} downtime {} lost {} retried {} redispatched {} \
         pending {} shed-unhealthy {} shed-retry {}",
        a.faults_injected,
        a.total_downtime(),
        a.queue_lost,
        a.retries_enqueued,
        a.redispatched,
        a.retry_pending,
        a.shed_no_healthy,
        a.shed_retry_exhausted,
    )
}

/// Renders the deterministic final report. Floating-point values are
/// printed as exact bit patterns (hex), so byte-equal reports mean
/// bit-identical statistics.
#[must_use]
pub fn render_report(report: &RackReport, config_hash: u64, slices: u64) -> String {
    let mut out = String::new();
    out.push_str("# qdpm-serve report v2\n");
    out.push_str(&format!("config {config_hash:016x}\n"));
    out.push_str(&format!("slices {slices}\n"));
    match report.power_cap {
        None => out.push_str("cap none\n"),
        Some(cap) => out.push_str(&format!("cap {:016x}\n", cap.to_bits())),
    }
    out.push_str(&format!("vetoed {}\n", report.vetoed_wakeups));
    out.push_str(&format!("shed {}\n", report.shed_arrivals));
    out.push_str(&format!(
        "availability {}\n",
        availability_fields(&report.fleet.stats.availability),
    ));
    for (i, stats) in report.fleet.per_device.iter().enumerate() {
        out.push_str(&format!(
            "device {} {} final {} health {} downtime {}\n",
            report.fleet.labels[i],
            stats_fields(stats),
            mode_str(&report.fleet.final_modes[i]),
            report.health[i].name(),
            report
                .fleet
                .stats
                .availability
                .downtime_slices
                .get(i)
                .copied()
                .unwrap_or(0),
        ));
    }
    out.push_str(&format!(
        "fleet devices {} {}\n",
        report.fleet.stats.devices,
        stats_fields(&report.fleet.stats.total),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qdpm-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn test_trace(len: usize) -> Vec<u32> {
        // Deterministic mildly bursty pattern with real gaps.
        (0..len)
            .map(|i| match i % 13 {
                0 | 1 => 2,
                5 => 1,
                8 => 3,
                _ => 0,
            })
            .collect()
    }

    fn test_config() -> ServeConfig {
        ServeConfig {
            devices: 3,
            policies: vec![
                FleetPolicy::QDpm(qdpm_core::QDpmConfig::default()),
                FleetPolicy::AdaptiveTimeout,
            ],
            seed: 1234,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn config_hash_tracks_every_field() {
        let base = test_config();
        let mut other = base.clone();
        other.seed += 1;
        assert_ne!(base.config_hash(), other.config_hash());
        let mut other = base.clone();
        other.engine_mode = EngineMode::EventSkip;
        assert_ne!(base.config_hash(), other.config_hash());
        let mut other = base.clone();
        other.power_cap = Some(3.0);
        assert_ne!(base.config_hash(), other.config_hash());
        assert_eq!(base.config_hash(), base.clone().config_hash());
    }

    #[test]
    fn serve_without_checkpoints_matches_checkpointed_serve() {
        // Checkpointing must be observationally free: same trace, same
        // cadence chunking, reports byte-identical with durability on
        // and off.
        let counts = test_trace(600);
        let plain = run_serve(&ServeOptions {
            checkpoint_every: 50,
            ..ServeOptions::in_memory(test_config(), counts.clone())
        })
        .unwrap();
        let dir = tmp_dir("free");
        let durable = run_serve(&ServeOptions {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 50,
            ..ServeOptions::in_memory(test_config(), counts)
        })
        .unwrap();
        assert_eq!(plain.report_text, durable.report_text);
        assert!(durable.checkpoints_written >= 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_from_every_cadence_point_is_bit_identical() {
        // Stop a run at each checkpoint boundary (simulating a crash just
        // after the write), resume in a new process-equivalent call, and
        // require the final report to match the uninterrupted run exactly.
        let counts = test_trace(400);
        let reference = run_serve(&ServeOptions {
            checkpoint_every: 100,
            ..ServeOptions::in_memory(test_config(), counts.clone())
        })
        .unwrap();

        for stop_after in [100u64, 200, 300] {
            let dir = tmp_dir(&format!("resume-{stop_after}"));
            // Phase 1: serve only the prefix, checkpointing at cadence.
            // Truncating the trace at a cadence point reproduces the
            // chunking of the full run over that prefix.
            let prefix: Vec<u32> = counts[..stop_after as usize].to_vec();
            run_serve(&ServeOptions {
                checkpoint_dir: Some(dir.clone()),
                checkpoint_every: 100,
                ..ServeOptions::in_memory(test_config(), prefix)
            })
            .unwrap();
            // Phase 2: resume over the full trace.
            let resumed = run_serve(&ServeOptions {
                checkpoint_dir: Some(dir.clone()),
                checkpoint_every: 100,
                fresh: false,
                ..ServeOptions::in_memory(test_config(), counts.clone())
            })
            .unwrap();
            assert_eq!(resumed.resumed_at, Some(stop_after));
            assert_eq!(
                resumed.report_text, reference.report_text,
                "resume at {stop_after} diverged"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn capped_rack_serves_and_resumes() {
        let mut config = test_config();
        config.power_cap = Some(4.0);
        config.dispatch = DispatchPolicy::SleepAware { spill: 3 };
        let counts = test_trace(400);
        let reference = run_serve(&ServeOptions {
            checkpoint_every: 80,
            ..ServeOptions::in_memory(config.clone(), counts.clone())
        })
        .unwrap();
        let dir = tmp_dir("capped");
        run_serve(&ServeOptions {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 80,
            ..ServeOptions::in_memory(config.clone(), counts[..160].to_vec())
        })
        .unwrap();
        let resumed = run_serve(&ServeOptions {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 80,
            fresh: false,
            ..ServeOptions::in_memory(config, counts)
        })
        .unwrap();
        assert_eq!(resumed.resumed_at, Some(160));
        assert_eq!(resumed.report_text, reference.report_text);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_parsing_rejects_garbage_and_empty() {
        assert!(matches!(
            parse_trace("# header\n1\nnope\n", "t").unwrap_err(),
            ServeError::BadArgs(_)
        ));
        assert!(matches!(
            parse_trace("# only comments\n\n", "t").unwrap_err(),
            ServeError::BadArgs(_)
        ));
        assert_eq!(parse_trace("# h\n1\n\n0\n2\n", "t").unwrap(), vec![1, 0, 2]);
    }
}
