use serde::{Deserialize, Serialize};

use crate::MdpError;

/// Weights combining the two cost criteria of the DPM problem into the
/// scalar cost minimized by the unconstrained solvers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostWeights {
    /// Weight on energy consumed per slice.
    pub energy: f64,
    /// Weight on the performance penalty (end-of-slice queue length).
    pub perf: f64,
}

impl CostWeights {
    /// Creates validated weights.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::BadParameter`] when a weight is negative or
    /// non-finite.
    pub fn new(energy: f64, perf: f64) -> Result<Self, MdpError> {
        if !(energy.is_finite() && energy >= 0.0 && perf.is_finite() && perf >= 0.0) {
            return Err(MdpError::BadParameter(format!(
                "cost weights must be non-negative and finite, got ({energy}, {perf})"
            )));
        }
        Ok(CostWeights { energy, perf })
    }
}

impl Default for CostWeights {
    /// Energy weight 1, performance weight 0.1: the trade-off used by the
    /// reproduction's headline experiments.
    fn default() -> Self {
        CostWeights {
            energy: 1.0,
            perf: 0.1,
        }
    }
}

/// A finite discrete-time Markov decision process with two cost criteria.
///
/// States and actions are dense indices. Transitions are stored sparsely per
/// legal `(state, action)` pair. Two immediate-cost vectors are kept —
/// `energy` and `perf` — matching the DPM formulation: unconstrained solvers
/// minimize a [`CostWeights`] combination, while the constrained LP
/// minimizes energy subject to a bound on performance.
///
/// Build instances with [`MdpBuilder`]; construction validates that every
/// legal pair has a proper probability row and finite costs, and that every
/// state has at least one legal action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mdp {
    n_states: usize,
    n_actions: usize,
    legal: Vec<bool>,
    /// Sparse rows, indexed `s * n_actions + a`; empty when illegal.
    transitions: Vec<Vec<(usize, f64)>>,
    energy: Vec<f64>,
    perf: Vec<f64>,
}

impl Mdp {
    /// Starts building an MDP with the given dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::EmptyModel`] when either dimension is zero.
    pub fn builder(n_states: usize, n_actions: usize) -> Result<MdpBuilder, MdpError> {
        if n_states == 0 || n_actions == 0 {
            return Err(MdpError::EmptyModel);
        }
        let n = n_states * n_actions;
        Ok(MdpBuilder {
            mdp: Mdp {
                n_states,
                n_actions,
                legal: vec![false; n],
                transitions: vec![Vec::new(); n],
                energy: vec![0.0; n],
                perf: vec![0.0; n],
            },
        })
    }

    /// Number of states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of actions.
    #[must_use]
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// Whether action `a` is legal in state `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `a` is out of range.
    #[must_use]
    pub fn is_legal(&self, s: usize, a: usize) -> bool {
        self.legal[self.idx(s, a)]
    }

    /// Legal actions of state `s`, in ascending order.
    pub fn legal_actions(&self, s: usize) -> impl Iterator<Item = usize> + '_ {
        let base = s * self.n_actions;
        (0..self.n_actions).filter(move |a| self.legal[base + a])
    }

    /// Sparse transition row of `(s, a)` as `(next_state, probability)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn transition_row(&self, s: usize, a: usize) -> &[(usize, f64)] {
        &self.transitions[self.idx(s, a)]
    }

    /// Immediate energy cost of `(s, a)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn energy_cost(&self, s: usize, a: usize) -> f64 {
        self.energy[self.idx(s, a)]
    }

    /// Immediate performance cost (expected end-of-slice queue length).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn perf_cost(&self, s: usize, a: usize) -> f64 {
        self.perf[self.idx(s, a)]
    }

    /// The scalarized cost vector `w.energy * energy + w.perf * perf`,
    /// indexed `s * n_actions + a` (entries of illegal pairs are 0).
    #[must_use]
    pub fn combined_cost(&self, w: CostWeights) -> Vec<f64> {
        self.energy
            .iter()
            .zip(&self.perf)
            .map(|(e, p)| w.energy * e + w.perf * p)
            .collect()
    }

    /// The raw energy-cost vector, indexed `s * n_actions + a`.
    #[must_use]
    pub fn energy_cost_vector(&self) -> &[f64] {
        &self.energy
    }

    /// The raw performance-cost vector, indexed `s * n_actions + a`.
    #[must_use]
    pub fn perf_cost_vector(&self) -> &[f64] {
        &self.perf
    }

    /// Approximate heap footprint of the model in bytes — the model-based
    /// memory baseline of the paper's efficiency comparison (table T2).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        let pair = std::mem::size_of::<(usize, f64)>();
        self.transitions
            .iter()
            .map(|r| r.len() * pair)
            .sum::<usize>()
            + self.legal.len() * std::mem::size_of::<bool>()
            + (self.energy.len() + self.perf.len()) * std::mem::size_of::<f64>()
    }

    #[inline]
    fn idx(&self, s: usize, a: usize) -> usize {
        assert!(
            s < self.n_states && a < self.n_actions,
            "index out of range"
        );
        s * self.n_actions + a
    }
}

/// Incremental builder for [`Mdp`] (see [`Mdp::builder`]).
#[derive(Debug, Clone)]
pub struct MdpBuilder {
    mdp: Mdp,
}

impl MdpBuilder {
    /// Declares `(s, a)` legal with the given sparse transition row and
    /// immediate costs. Later calls overwrite earlier ones.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `a` is out of range.
    pub fn set_action(
        &mut self,
        s: usize,
        a: usize,
        transitions: Vec<(usize, f64)>,
        energy: f64,
        perf: f64,
    ) -> &mut Self {
        let i = self.mdp.idx(s, a);
        self.mdp.legal[i] = true;
        self.mdp.transitions[i] = transitions;
        self.mdp.energy[i] = energy;
        self.mdp.perf[i] = perf;
        self
    }

    /// Validates and finalizes the model.
    ///
    /// # Errors
    ///
    /// Returns an [`MdpError`] when a state has no legal action, a
    /// transition row does not sum to 1 (tolerance `1e-9`), a next state is
    /// out of range, or a cost is non-finite.
    pub fn build(self) -> Result<Mdp, MdpError> {
        let m = self.mdp;
        for s in 0..m.n_states {
            if !(0..m.n_actions).any(|a| m.legal[s * m.n_actions + a]) {
                return Err(MdpError::NoLegalAction { state: s });
            }
            for a in 0..m.n_actions {
                let i = s * m.n_actions + a;
                if !m.legal[i] {
                    continue;
                }
                let mut sum = 0.0;
                for &(next, p) in &m.transitions[i] {
                    if next >= m.n_states {
                        return Err(MdpError::StateOutOfRange {
                            next,
                            n_states: m.n_states,
                        });
                    }
                    sum += p;
                }
                if (sum - 1.0).abs() > 1e-9 {
                    return Err(MdpError::BadTransitionRow {
                        state: s,
                        action: a,
                        sum,
                    });
                }
                if !m.energy[i].is_finite() || !m.perf[i].is_finite() {
                    return Err(MdpError::NonFiniteCost {
                        state: s,
                        action: a,
                    });
                }
            }
        }
        Ok(m)
    }
}

/// A deterministic stationary policy: one action per state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeterministicPolicy {
    actions: Vec<usize>,
}

impl DeterministicPolicy {
    /// Wraps a per-state action table.
    #[must_use]
    pub fn new(actions: Vec<usize>) -> Self {
        DeterministicPolicy { actions }
    }

    /// The action prescribed in state `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn action(&self, s: usize) -> usize {
        self.actions[s]
    }

    /// Number of states covered.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.actions.len()
    }

    /// The underlying action table.
    #[must_use]
    pub fn actions(&self) -> &[usize] {
        &self.actions
    }
}

/// A stochastic stationary policy: a distribution over actions per state.
///
/// Constrained MDPs generally need randomized optimal policies; the
/// occupation-measure LP returns one of these.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StochasticPolicy {
    /// Row-major `n_states x n_actions` action probabilities.
    probs: Vec<f64>,
    n_actions: usize,
}

impl StochasticPolicy {
    /// Wraps a row-major probability table.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::BadParameter`] when a row does not sum to 1
    /// (tolerance `1e-6`) or contains a negative entry.
    pub fn new(probs: Vec<f64>, n_actions: usize) -> Result<Self, MdpError> {
        if n_actions == 0 || !probs.len().is_multiple_of(n_actions) {
            return Err(MdpError::BadParameter(
                "probability table shape mismatch".into(),
            ));
        }
        for (s, row) in probs.chunks(n_actions).enumerate() {
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > 1e-6 || row.iter().any(|&p| p < -1e-12) {
                return Err(MdpError::BadParameter(format!(
                    "row {s} is not a distribution (sum {sum})"
                )));
            }
        }
        Ok(StochasticPolicy { probs, n_actions })
    }

    /// Probability of taking `a` in state `s`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn prob(&self, s: usize, a: usize) -> f64 {
        assert!(a < self.n_actions, "action out of range");
        self.probs[s * self.n_actions + a]
    }

    /// Number of states covered.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.probs.len() / self.n_actions
    }

    /// Samples an action in state `s` from a uniform draw `u in [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn sample(&self, s: usize, u: f64) -> usize {
        let row = &self.probs[s * self.n_actions..(s + 1) * self.n_actions];
        let mut acc = 0.0;
        for (a, &p) in row.iter().enumerate() {
            acc += p;
            if u < acc {
                return a;
            }
        }
        self.n_actions - 1
    }

    /// Collapses to the per-state argmax action (loses randomization).
    #[must_use]
    pub fn to_deterministic(&self) -> DeterministicPolicy {
        let actions = self
            .probs
            .chunks(self.n_actions)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect();
        DeterministicPolicy::new(actions)
    }
}

impl From<DeterministicPolicy> for StochasticPolicy {
    fn from(d: DeterministicPolicy) -> Self {
        let n_states = d.n_states();
        let n_actions = d.actions().iter().max().copied().unwrap_or(0) + 1;
        let mut probs = vec![0.0; n_states * n_actions];
        for (s, &a) in d.actions().iter().enumerate() {
            probs[s * n_actions + a] = 1.0;
        }
        StochasticPolicy { probs, n_actions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-state, two-action chain used across the solver tests.
    pub(crate) fn toy_mdp() -> Mdp {
        let mut b = Mdp::builder(2, 2).unwrap();
        // State 0: action 0 stays (cost 1), action 1 moves to 1 (cost 5).
        b.set_action(0, 0, vec![(0, 1.0)], 1.0, 0.0);
        b.set_action(0, 1, vec![(1, 1.0)], 5.0, 0.0);
        // State 1: action 0 stays (cost 0), action 1 moves to 0 (cost 2).
        b.set_action(1, 0, vec![(1, 1.0)], 0.0, 0.0);
        b.set_action(1, 1, vec![(0, 1.0)], 2.0, 0.0);
        b.build().unwrap()
    }

    #[test]
    fn builder_validates_probability_rows() {
        let mut b = Mdp::builder(2, 1).unwrap();
        b.set_action(0, 0, vec![(0, 0.5), (1, 0.4)], 0.0, 0.0);
        b.set_action(1, 0, vec![(1, 1.0)], 0.0, 0.0);
        assert!(matches!(
            b.build(),
            Err(MdpError::BadTransitionRow {
                state: 0,
                action: 0,
                ..
            })
        ));
    }

    #[test]
    fn builder_rejects_missing_actions() {
        let mut b = Mdp::builder(2, 1).unwrap();
        b.set_action(0, 0, vec![(0, 1.0)], 0.0, 0.0);
        assert!(matches!(
            b.build(),
            Err(MdpError::NoLegalAction { state: 1 })
        ));
    }

    #[test]
    fn builder_rejects_out_of_range_next_state() {
        let mut b = Mdp::builder(1, 1).unwrap();
        b.set_action(0, 0, vec![(3, 1.0)], 0.0, 0.0);
        assert!(matches!(
            b.build(),
            Err(MdpError::StateOutOfRange { next: 3, .. })
        ));
    }

    #[test]
    fn builder_rejects_nan_cost() {
        let mut b = Mdp::builder(1, 1).unwrap();
        b.set_action(0, 0, vec![(0, 1.0)], f64::NAN, 0.0);
        assert!(matches!(b.build(), Err(MdpError::NonFiniteCost { .. })));
    }

    #[test]
    fn zero_dimensions_rejected() {
        assert!(matches!(Mdp::builder(0, 2), Err(MdpError::EmptyModel)));
        assert!(matches!(Mdp::builder(2, 0), Err(MdpError::EmptyModel)));
    }

    #[test]
    fn accessors() {
        let m = toy_mdp();
        assert_eq!(m.n_states(), 2);
        assert_eq!(m.n_actions(), 2);
        assert!(m.is_legal(0, 1));
        assert_eq!(m.legal_actions(0).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(m.transition_row(0, 1), &[(1, 1.0)]);
        assert_eq!(m.energy_cost(0, 1), 5.0);
        assert!(m.memory_bytes() > 0);
    }

    #[test]
    fn combined_cost_weighting() {
        let mut b = Mdp::builder(1, 1).unwrap();
        b.set_action(0, 0, vec![(0, 1.0)], 2.0, 3.0);
        let m = b.build().unwrap();
        let w = CostWeights::new(1.0, 0.5).unwrap();
        assert_eq!(m.combined_cost(w), vec![3.5]);
    }

    #[test]
    fn cost_weights_validate() {
        assert!(CostWeights::new(-1.0, 0.0).is_err());
        assert!(CostWeights::new(1.0, f64::NAN).is_err());
        assert!(CostWeights::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn stochastic_policy_sampling() {
        let p = StochasticPolicy::new(vec![0.25, 0.75], 2).unwrap();
        assert_eq!(p.sample(0, 0.1), 0);
        assert_eq!(p.sample(0, 0.3), 1);
        assert_eq!(p.sample(0, 0.999), 1);
        assert_eq!(p.n_states(), 1);
    }

    #[test]
    fn stochastic_policy_validates_rows() {
        assert!(StochasticPolicy::new(vec![0.5, 0.4], 2).is_err());
        assert!(StochasticPolicy::new(vec![1.2, -0.2], 2).is_err());
    }

    #[test]
    fn deterministic_round_trip() {
        let d = DeterministicPolicy::new(vec![1, 0]);
        let s: StochasticPolicy = d.clone().into();
        assert_eq!(s.prob(0, 1), 1.0);
        assert_eq!(s.prob(1, 0), 1.0);
        assert_eq!(s.to_deterministic(), d);
    }
}
