//! Minimal dense linear algebra: just enough for policy evaluation.
//!
//! Implemented in-repo (no external linear-algebra crate) per the
//! reproduction's dependency policy. Systems here are small (hundreds of
//! unknowns), so an LU factorization with partial pivoting is plenty.

use crate::MdpError;

/// Dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of order `n`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    #[must_use]
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        self.data
            .chunks_exact(self.cols)
            .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Solves `A x = b` in place via LU with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::SingularSystem`] when no pivot above `1e-12` can
    /// be found.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len() != rows`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, MdpError> {
        assert_eq!(self.rows, self.cols, "solve needs a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x: Vec<f64> = b.to_vec();

        for col in 0..n {
            // Partial pivot: largest magnitude in this column at/below row.
            let (pivot_row, pivot_val) = (col..n)
                .map(|r| (r, a[r * n + col]))
                .max_by(|l, r| l.1.abs().total_cmp(&r.1.abs()))
                .expect("non-empty range");
            if pivot_val.abs() < 1e-12 {
                return Err(MdpError::SingularSystem);
            }
            if pivot_row != col {
                for k in 0..n {
                    a.swap(col * n + k, pivot_row * n + k);
                }
                x.swap(col, pivot_row);
            }
            let inv = 1.0 / a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] * inv;
                if factor == 0.0 {
                    continue;
                }
                a[r * n + col] = 0.0;
                for k in (col + 1)..n {
                    a[r * n + k] -= factor * a[col * n + k];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            x[col] /= a[col * n + col];
            for r in 0..col {
                x[r] -= a[r * n + col] * x[col];
            }
        }
        Ok(x)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solves_trivially() {
        let a = Matrix::identity(3);
        let x = a.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_hand_system() {
        // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solves_system_requiring_pivot() {
        // First pivot is zero: forces a row swap.
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = a.solve(&[2.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singularity() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(a.solve(&[1.0, 2.0]).unwrap_err(), MdpError::SingularSystem);
    }

    #[test]
    fn mul_vec_matches_hand() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.mul_vec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
    }

    #[test]
    fn solve_then_multiply_round_trip() {
        let a = Matrix::from_rows(3, 3, vec![4.0, 1.0, 0.5, 1.0, 3.0, 1.0, 0.5, 1.0, 5.0]);
        let b = [7.0, -2.0, 3.5];
        let x = a.solve(&b).unwrap();
        let back = a.mul_vec(&x);
        for (bi, yi) in b.iter().zip(&back) {
            assert!((bi - yi).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "matrix dimensions must be positive")]
    fn zero_dimension_panics() {
        let _ = Matrix::zeros(0, 3);
    }
}
