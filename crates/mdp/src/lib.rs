//! Discrete-time MDP representation and exact solvers for the model-based
//! side of the Q-DPM reproduction.
//!
//! The Q-DPM paper positions Q-learning against the *model-based* DPM
//! pipeline: build a DTMDP of the system, then optimize a policy with
//! dynamic programming or — in the constrained formulation — linear
//! programming. This crate implements that entire substrate from scratch:
//!
//! * [`Mdp`] — a validated finite DTMDP with separate energy/performance
//!   cost criteria, plus [`DeterministicPolicy`] / [`StochasticPolicy`];
//! * [`solvers`] — discounted value iteration, Howard policy iteration
//!   (exact LU policy evaluation), and relative value iteration for the
//!   average-cost criterion;
//! * [`lp`] — the occupation-measure LP formulation (unconstrained and
//!   performance-constrained) on top of [`simplex`], a two-phase dense
//!   simplex solver written for this reproduction;
//! * [`builder`] — exact compilation of a DPM system (power model x
//!   geometric service x Markov arrivals x bounded queue) into the DTMDP
//!   whose solution is the paper's Fig. 1 "optimal policy";
//! * [`sample`] — deterministic random MDPs for tests and benches.
//!
//! # Example
//!
//! ```
//! use qdpm_device::presets;
//! use qdpm_mdp::{build_dpm_mdp, solvers, CostWeights};
//! use qdpm_workload::MarkovArrivalModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let power = presets::three_state_generic();
//! let service = presets::default_service();
//! let arrivals = MarkovArrivalModel::bernoulli(0.05)?;
//! let model = build_dpm_mdp(&power, &service, &arrivals, 8, 20.0)?;
//! let cost = model.mdp.combined_cost(CostWeights::default());
//! let sol = solvers::policy_iteration(&model.mdp, &cost, 0.95)?;
//! assert_eq!(sol.policy.n_states(), model.mdp.n_states());
//! # Ok(())
//! # }
//! ```

pub mod builder;
mod error;
pub mod linalg;
pub mod lp;
mod mdp;
pub mod sample;
pub mod simplex;
pub mod solvers;

pub use builder::{build_dpm_mdp, DevMode, DpmModel, DpmStateSpace};
pub use error::MdpError;
pub use mdp::{CostWeights, DeterministicPolicy, Mdp, MdpBuilder, StochasticPolicy};
