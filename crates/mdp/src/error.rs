use std::fmt;

/// Errors produced by MDP construction and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum MdpError {
    /// The MDP had zero states or zero actions.
    EmptyModel,
    /// A transition row of a legal state-action pair does not sum to 1.
    BadTransitionRow {
        /// State index.
        state: usize,
        /// Action index.
        action: usize,
        /// Actual row sum.
        sum: f64,
    },
    /// A transition referenced an out-of-range next state.
    StateOutOfRange {
        /// The offending next-state index.
        next: usize,
        /// Number of states in the model.
        n_states: usize,
    },
    /// A state has no legal action.
    NoLegalAction {
        /// State index.
        state: usize,
    },
    /// A cost entry was non-finite.
    NonFiniteCost {
        /// State index.
        state: usize,
        /// Action index.
        action: usize,
    },
    /// The discount factor was outside `(0, 1)`.
    BadDiscount(f64),
    /// A solver hit its iteration cap before converging.
    NoConvergence {
        /// Which solver gave up.
        solver: &'static str,
        /// The iteration cap that was reached.
        iterations: usize,
    },
    /// A linear system was singular (policy evaluation failed).
    SingularSystem,
    /// The linear program was infeasible.
    LpInfeasible,
    /// The linear program was unbounded.
    LpUnbounded,
    /// The DPM builder was given a workload/service combination it cannot
    /// compile exactly (e.g. non-geometric service).
    NotMarkovian(String),
    /// A constraint bound or weight was invalid.
    BadParameter(String),
}

impl fmt::Display for MdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdpError::EmptyModel => write!(f, "mdp needs at least one state and one action"),
            MdpError::BadTransitionRow { state, action, sum } => write!(
                f,
                "transition row for state {state} action {action} sums to {sum}, expected 1"
            ),
            MdpError::StateOutOfRange { next, n_states } => {
                write!(f, "next state {next} out of range for {n_states} states")
            }
            MdpError::NoLegalAction { state } => {
                write!(f, "state {state} has no legal action")
            }
            MdpError::NonFiniteCost { state, action } => {
                write!(f, "non-finite cost at state {state} action {action}")
            }
            MdpError::BadDiscount(beta) => {
                write!(f, "discount factor {beta} outside (0, 1)")
            }
            MdpError::NoConvergence { solver, iterations } => {
                write!(
                    f,
                    "{solver} did not converge within {iterations} iterations"
                )
            }
            MdpError::SingularSystem => write!(f, "singular linear system"),
            MdpError::LpInfeasible => write!(f, "linear program is infeasible"),
            MdpError::LpUnbounded => write!(f, "linear program is unbounded"),
            MdpError::NotMarkovian(msg) => write!(f, "model is not markovian: {msg}"),
            MdpError::BadParameter(msg) => write!(f, "bad parameter: {msg}"),
        }
    }
}

impl std::error::Error for MdpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_location() {
        let e = MdpError::BadTransitionRow {
            state: 3,
            action: 1,
            sum: 0.7,
        };
        assert!(e.to_string().contains("state 3"));
        assert!(e.to_string().contains("action 1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<MdpError>();
    }
}
