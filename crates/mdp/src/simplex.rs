//! Dense two-phase simplex solver for small/medium linear programs.
//!
//! The Q-DPM paper singles out linear-programming policy optimization as the
//! expensive core of model-based DPM ("even on Pentium III 800MHz PC, the
//! widely applied linear programming policy optimization runs extremely
//! slow"). To reproduce that claim faithfully we implement the classic dense
//! tableau simplex in-repo — the same family of solver a 2005 DPM stack
//! would have embedded — and benchmark it against value/policy iteration and
//! a single Q-learning step (bench T1).
//!
//! The solver minimizes `c'x` subject to mixed `=`, `<=`, `>=` constraints
//! and `x >= 0`, using Dantzig pricing with an automatic switch to Bland's
//! rule to guarantee termination on degenerate problems.

use crate::MdpError;

/// Relation of one linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// Left-hand side equals the right-hand side.
    Eq,
    /// Left-hand side is at most the right-hand side.
    Le,
    /// Left-hand side is at least the right-hand side.
    Ge,
}

/// One linear constraint `coeffs . x (op) rhs`.
#[derive(Debug, Clone, PartialEq)]
struct LpConstraint {
    coeffs: Vec<f64>,
    op: ConstraintOp,
    rhs: f64,
}

/// A linear program in decision variables `x >= 0`, minimized.
///
/// # Example
///
/// ```
/// use qdpm_mdp::simplex::{ConstraintOp, LinearProgram};
///
/// # fn main() -> Result<(), qdpm_mdp::MdpError> {
/// // maximize x + y  s.t.  x + 2y <= 4, 3x + 2y <= 6  (min of the negation)
/// let mut lp = LinearProgram::new(2);
/// lp.set_objective(vec![-1.0, -1.0]);
/// lp.add_constraint(vec![1.0, 2.0], ConstraintOp::Le, 4.0);
/// lp.add_constraint(vec![3.0, 2.0], ConstraintOp::Le, 6.0);
/// let sol = lp.solve()?;
/// assert!((sol.objective + 2.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearProgram {
    n_vars: usize,
    objective: Vec<f64>,
    rows: Vec<LpConstraint>,
}

/// An optimal solution returned by [`LinearProgram::solve`].
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal values of the decision variables.
    pub x: Vec<f64>,
    /// Optimal objective value (of the minimization).
    pub objective: f64,
    /// Total simplex pivots across both phases.
    pub iterations: usize,
}

const TOL: f64 = 1e-9;

impl LinearProgram {
    /// Creates a program with `n_vars` non-negative variables and a zero
    /// objective.
    ///
    /// # Panics
    ///
    /// Panics if `n_vars == 0`.
    #[must_use]
    pub fn new(n_vars: usize) -> Self {
        assert!(n_vars > 0, "lp needs at least one variable");
        LinearProgram {
            n_vars,
            objective: vec![0.0; n_vars],
            rows: Vec::new(),
        }
    }

    /// Number of decision variables.
    #[must_use]
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of constraints added so far.
    #[must_use]
    pub fn n_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Sets the minimization objective `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c.len() != n_vars`.
    pub fn set_objective(&mut self, c: Vec<f64>) {
        assert_eq!(c.len(), self.n_vars, "objective length mismatch");
        self.objective = c;
    }

    /// Adds the constraint `coeffs . x (op) rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != n_vars`.
    pub fn add_constraint(&mut self, coeffs: Vec<f64>, op: ConstraintOp, rhs: f64) {
        assert_eq!(coeffs.len(), self.n_vars, "constraint length mismatch");
        self.rows.push(LpConstraint { coeffs, op, rhs });
    }

    /// Solves the program with the two-phase simplex method.
    ///
    /// # Errors
    ///
    /// * [`MdpError::LpInfeasible`] — no point satisfies the constraints;
    /// * [`MdpError::LpUnbounded`] — the objective decreases without bound;
    /// * [`MdpError::NoConvergence`] — pivot cap exhausted (should not occur
    ///   thanks to the Bland's-rule fallback; kept as a hard safety net).
    pub fn solve(&self) -> Result<LpSolution, MdpError> {
        Tableau::build(self).solve()
    }
}

/// Dense simplex tableau in canonical form.
struct Tableau {
    /// Constraint matrix rows, each of length `total + 1` (last = rhs).
    rows: Vec<Vec<f64>>,
    /// Objective (reduced-cost) row of length `total + 1`.
    obj: Vec<f64>,
    /// Index of the basic variable of each row.
    basis: Vec<usize>,
    /// Structural variable count (the caller's `x`).
    n_struct: usize,
    /// First artificial column.
    art_start: usize,
    /// Total variable count (struct + slack + artificial).
    total: usize,
    /// Pivot counter across phases.
    pivots: usize,
    /// The caller's objective over structural variables (used in phase 2).
    struct_cost: Vec<f64>,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Tableau {
        let m = lp.rows.len();
        let n = lp.n_vars;
        let n_slack = lp.rows.iter().filter(|r| r.op != ConstraintOp::Eq).count();
        let art_start = n + n_slack;
        let total = art_start + m;

        let mut rows = Vec::with_capacity(m);
        let mut basis = Vec::with_capacity(m);
        let mut slack_idx = n;
        for (i, c) in lp.rows.iter().enumerate() {
            let mut row = vec![0.0; total + 1];
            let flip = c.rhs < 0.0;
            let sign = if flip { -1.0 } else { 1.0 };
            for (j, &v) in c.coeffs.iter().enumerate() {
                row[j] = sign * v;
            }
            row[total] = sign * c.rhs;
            // Slack (+1 for Le, -1 for Ge), with the sign flip applied.
            match c.op {
                ConstraintOp::Eq => {}
                ConstraintOp::Le => {
                    row[slack_idx] = sign;
                    slack_idx += 1;
                }
                ConstraintOp::Ge => {
                    row[slack_idx] = -sign;
                    slack_idx += 1;
                }
            }
            // One artificial per row gives a trivial starting basis.
            row[art_start + i] = 1.0;
            basis.push(art_start + i);
            rows.push(row);
        }

        Tableau {
            rows,
            obj: vec![0.0; total + 1],
            basis,
            n_struct: n,
            art_start,
            total,
            pivots: 0,
            struct_cost: lp.objective.clone(),
        }
    }

    /// Re-derives the objective row for cost vector `c` (length `total`),
    /// canonicalized against the current basis.
    fn load_objective(&mut self, c: &[f64]) {
        self.obj = c.to_vec();
        self.obj.push(0.0);
        for (i, &b) in self.basis.iter().enumerate() {
            let cb = c[b];
            if cb != 0.0 {
                let row = self.rows[i].clone();
                for (o, r) in self.obj.iter_mut().zip(&row) {
                    *o -= cb * r;
                }
            }
        }
    }

    fn pivot(&mut self, row: usize, col: usize) {
        self.pivots += 1;
        let inv = 1.0 / self.rows[row][col];
        for v in self.rows[row].iter_mut() {
            *v *= inv;
        }
        let pivot_row = self.rows[row].clone();
        for (i, r) in self.rows.iter_mut().enumerate() {
            if i != row && r[col].abs() > 0.0 {
                let f = r[col];
                for (rv, pv) in r.iter_mut().zip(&pivot_row) {
                    *rv -= f * pv;
                }
                r[col] = 0.0;
            }
        }
        let f = self.obj[col];
        if f != 0.0 {
            for (ov, pv) in self.obj.iter_mut().zip(&pivot_row) {
                *ov -= f * pv;
            }
            self.obj[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// Runs simplex iterations until optimality over the allowed columns.
    ///
    /// `allow_artificial` permits artificial columns to enter (phase 1 only).
    fn iterate(&mut self, allow_artificial: bool) -> Result<(), MdpError> {
        let m = self.rows.len();
        let dantzig_cap = 50 * (m + self.total) + 200;
        let bland_cap = 400 * (m + self.total) + 2_000;
        let mut local = 0usize;
        loop {
            local += 1;
            let use_bland = local > dantzig_cap;
            if local > dantzig_cap + bland_cap {
                return Err(MdpError::NoConvergence {
                    solver: "simplex",
                    iterations: local,
                });
            }
            let col_limit = if allow_artificial {
                self.total
            } else {
                self.art_start
            };
            // Entering column.
            let mut enter: Option<usize> = None;
            if use_bland {
                for j in 0..col_limit {
                    if self.obj[j] < -TOL {
                        enter = Some(j);
                        break;
                    }
                }
            } else {
                let mut best = -TOL;
                for j in 0..col_limit {
                    if self.obj[j] < best {
                        best = self.obj[j];
                        enter = Some(j);
                    }
                }
            }
            let Some(col) = enter else {
                return Ok(()); // optimal
            };
            // Ratio test; ties by smallest basis index (lexicographic-ish).
            let mut leave: Option<(usize, f64)> = None;
            for (i, r) in self.rows.iter().enumerate() {
                if r[col] > TOL {
                    let ratio = r[self.total] / r[col];
                    match leave {
                        None => leave = Some((i, ratio)),
                        Some((li, lr)) => {
                            if ratio < lr - TOL
                                || (ratio < lr + TOL && self.basis[i] < self.basis[li])
                            {
                                leave = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            let Some((row, _)) = leave else {
                return Err(MdpError::LpUnbounded);
            };
            self.pivot(row, col);
        }
    }

    fn solve(mut self) -> Result<LpSolution, MdpError> {
        let m = self.rows.len();
        if m > 0 {
            // Phase 1: minimize the sum of artificials.
            let mut phase1 = vec![0.0; self.total];
            phase1[self.art_start..self.total].fill(1.0);
            self.load_objective(&phase1);
            self.iterate(true)?;
            let infeas = -self.obj[self.total]; // objective value = -obj[rhs]
            if infeas > 1e-7 {
                return Err(MdpError::LpInfeasible);
            }
            // Drive lingering zero-level artificials out of the basis.
            for i in 0..m {
                if self.basis[i] >= self.art_start {
                    let col = (0..self.art_start).find(|&j| self.rows[i][j].abs() > TOL);
                    if let Some(col) = col {
                        self.pivot(i, col);
                    }
                    // A fully zero row is redundant; the artificial stays
                    // basic at level 0 and is excluded from entering later.
                }
            }
        }
        // Phase 2 with the true objective (artificials barred from entering).
        let mut obj = vec![0.0; self.total];
        obj[..self.n_struct].copy_from_slice(&self.struct_cost.clone());
        self.load_objective(&obj);
        self.iterate(false)?;

        let mut x = vec![0.0; self.n_struct];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.n_struct {
                x[b] = self.rows[i][self.total];
            }
        }
        let objective = -self.obj[self.total];
        Ok(LpSolution {
            x,
            objective,
            iterations: self.pivots,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(lp: &LinearProgram) -> Result<LpSolution, MdpError> {
        lp.solve()
    }

    #[test]
    fn maximization_via_negation() {
        // max x + y s.t. x + 2y <= 4, 3x + 2y <= 6 -> optimum 2.5 at (1, 1.5).
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![-1.0, -1.0]);
        lp.add_constraint(vec![1.0, 2.0], ConstraintOp::Le, 4.0);
        lp.add_constraint(vec![3.0, 2.0], ConstraintOp::Le, 6.0);
        let s = solve(&lp).unwrap();
        assert!(
            (s.objective + 2.5).abs() < 1e-9,
            "objective {}",
            s.objective
        );
        assert!((s.x[0] - 1.0).abs() < 1e-9);
        assert!((s.x[1] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn equality_constraints() {
        // min 2x + 3y s.t. x + y = 10, x - y = 2 -> x = 6, y = 4, obj 24.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![2.0, 3.0]);
        lp.add_constraint(vec![1.0, 1.0], ConstraintOp::Eq, 10.0);
        lp.add_constraint(vec![1.0, -1.0], ConstraintOp::Eq, 2.0);
        let s = solve(&lp).unwrap();
        assert!((s.objective - 24.0).abs() < 1e-9);
        assert!((s.x[0] - 6.0).abs() < 1e-9);
        assert!((s.x[1] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn ge_constraints_and_negative_rhs() {
        // min x s.t. x >= 3 (written two ways).
        let mut lp = LinearProgram::new(1);
        lp.set_objective(vec![1.0]);
        lp.add_constraint(vec![1.0], ConstraintOp::Ge, 3.0);
        assert!((solve(&lp).unwrap().x[0] - 3.0).abs() < 1e-9);

        let mut lp2 = LinearProgram::new(1);
        lp2.set_objective(vec![1.0]);
        lp2.add_constraint(vec![-1.0], ConstraintOp::Le, -3.0);
        assert!((solve(&lp2).unwrap().x[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn detects_infeasible() {
        let mut lp = LinearProgram::new(1);
        lp.set_objective(vec![1.0]);
        lp.add_constraint(vec![1.0], ConstraintOp::Le, -1.0);
        assert_eq!(solve(&lp).unwrap_err(), MdpError::LpInfeasible);
    }

    #[test]
    fn detects_contradictory_equalities() {
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(vec![1.0, 1.0], ConstraintOp::Eq, 1.0);
        lp.add_constraint(vec![1.0, 1.0], ConstraintOp::Eq, 2.0);
        assert_eq!(solve(&lp).unwrap_err(), MdpError::LpInfeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut lp = LinearProgram::new(1);
        lp.set_objective(vec![-1.0]);
        lp.add_constraint(vec![1.0], ConstraintOp::Ge, 1.0);
        assert_eq!(solve(&lp).unwrap_err(), MdpError::LpUnbounded);
    }

    #[test]
    fn no_constraints_means_origin() {
        let mut lp = LinearProgram::new(3);
        lp.set_objective(vec![1.0, 2.0, 3.0]);
        let s = solve(&lp).unwrap();
        assert_eq!(s.x, vec![0.0, 0.0, 0.0]);
        assert_eq!(s.objective, 0.0);
    }

    #[test]
    fn redundant_constraint_is_harmless() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![-1.0, 0.0]);
        lp.add_constraint(vec![1.0, 1.0], ConstraintOp::Eq, 2.0);
        lp.add_constraint(vec![2.0, 2.0], ConstraintOp::Eq, 4.0); // redundant
        let s = solve(&lp).unwrap();
        assert!((s.x[0] - 2.0).abs() < 1e-9);
        assert!((s.objective + 2.0).abs() < 1e-9);
    }

    #[test]
    fn beale_degenerate_cycle_terminates() {
        // Beale's classic cycling example for Dantzig pricing; Bland
        // fallback must terminate at optimum -0.05.
        let mut lp = LinearProgram::new(4);
        lp.set_objective(vec![-0.75, 150.0, -0.02, 6.0]);
        lp.add_constraint(vec![0.25, -60.0, -1.0 / 25.0, 9.0], ConstraintOp::Le, 0.0);
        lp.add_constraint(vec![0.5, -90.0, -1.0 / 50.0, 3.0], ConstraintOp::Le, 0.0);
        lp.add_constraint(vec![0.0, 0.0, 1.0, 0.0], ConstraintOp::Le, 1.0);
        let s = solve(&lp).unwrap();
        assert!(
            (s.objective + 0.05).abs() < 1e-9,
            "objective {}",
            s.objective
        );
    }

    #[test]
    fn transportation_style_problem() {
        // 2 supplies (10, 20), 2 demands (15, 15); costs [[1,3],[2,1]].
        // x11 + x12 = 10; x21 + x22 = 20; x11 + x21 = 15; x12 + x22 = 15.
        // Optimal: x11=10, x21=5, x22=15 -> 10*1 + 5*2 + 15*1 = 35.
        let mut lp = LinearProgram::new(4); // x11 x12 x21 x22
        lp.set_objective(vec![1.0, 3.0, 2.0, 1.0]);
        lp.add_constraint(vec![1.0, 1.0, 0.0, 0.0], ConstraintOp::Eq, 10.0);
        lp.add_constraint(vec![0.0, 0.0, 1.0, 1.0], ConstraintOp::Eq, 20.0);
        lp.add_constraint(vec![1.0, 0.0, 1.0, 0.0], ConstraintOp::Eq, 15.0);
        lp.add_constraint(vec![0.0, 1.0, 0.0, 1.0], ConstraintOp::Eq, 15.0);
        let s = solve(&lp).unwrap();
        assert!((s.objective - 35.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_constraint_types() {
        // min x + y s.t. x + y >= 2, x <= 1.5, y = 1 -> x = 1, y = 1.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![1.0, 1.0]);
        lp.add_constraint(vec![1.0, 1.0], ConstraintOp::Ge, 2.0);
        lp.add_constraint(vec![1.0, 0.0], ConstraintOp::Le, 1.5);
        lp.add_constraint(vec![0.0, 1.0], ConstraintOp::Eq, 1.0);
        let s = solve(&lp).unwrap();
        assert!((s.objective - 2.0).abs() < 1e-9);
        assert!((s.x[1] - 1.0).abs() < 1e-9);
    }
}
