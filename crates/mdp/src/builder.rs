//! Exact compilation of a DPM system (device x workload x queue) into a
//! [`Mdp`].
//!
//! This is the "model completely known in prior" path of the paper's Fig. 1:
//! given the true [`MarkovArrivalModel`], the device's [`PowerModel`], a
//! geometric [`ServiceModel`], and the queue capacity, it constructs the
//! DTMDP whose exact solution (via [`crate::solvers`] or [`crate::lp`]) is
//! the theoretically optimal power-management policy.
//!
//! The step semantics here mirror the simulator in `qdpm-sim` *exactly*
//! (see `DESIGN.md` §3): command take-effect, arrival, service, accounting,
//! transition countdown. An integration test drives both against each other.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use qdpm_device::{scaled_completion, DeviceMode, PowerModel, PowerStateId, ServiceModel};
use qdpm_workload::MarkovArrivalModel;

use crate::{Mdp, MdpError};

/// A device macro-mode in the compiled state space: either resident in an
/// operational power state or `remaining` slices from completing a
/// transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DevMode {
    /// Resident in operational power state `.0` (device state index).
    Operational(usize),
    /// In flight between two power states.
    Transient {
        /// Source power state index.
        from: usize,
        /// Target power state index.
        to: usize,
        /// Slices left until arrival (1..=latency).
        remaining: u32,
    },
}

/// Dense indexing of the compiled DPM state space
/// `(requester mode, device mode, queue length)`.
///
/// The same indexer is used by the MDP builder and by the simulator-side
/// model-based controllers, guaranteeing both talk about identical states.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DpmStateSpace {
    n_sr_modes: usize,
    queue_cap: usize,
    dev_modes: Vec<DevMode>,
    transient_lookup: HashMap<(usize, usize, u32), usize>,
    n_power_states: usize,
}

impl DpmStateSpace {
    /// Enumerates the device modes of `power` and fixes the indexing for
    /// `n_sr_modes` requester modes and queue lengths `0..=queue_cap`.
    #[must_use]
    pub fn new(power: &PowerModel, n_sr_modes: usize, queue_cap: usize) -> Self {
        let n_op = power.n_states();
        let mut dev_modes: Vec<DevMode> = (0..n_op).map(DevMode::Operational).collect();
        let mut transient_lookup = HashMap::new();
        for from in 0..n_op {
            for to in power.commands_from(PowerStateId::from_index(from)) {
                let spec = power
                    .transition(PowerStateId::from_index(from), to)
                    .expect("commands_from yields defined transitions");
                for remaining in 1..=spec.latency {
                    let idx = dev_modes.len();
                    dev_modes.push(DevMode::Transient {
                        from,
                        to: to.index(),
                        remaining,
                    });
                    transient_lookup.insert((from, to.index(), remaining), idx);
                }
            }
        }
        DpmStateSpace {
            n_sr_modes,
            queue_cap,
            dev_modes,
            transient_lookup,
            n_power_states: n_op,
        }
    }

    /// Number of compiled states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.n_sr_modes * self.dev_modes.len() * (self.queue_cap + 1)
    }

    /// Number of actions (= operational power states; action `a` commands
    /// the device toward power state `a`).
    #[must_use]
    pub fn n_actions(&self) -> usize {
        self.n_power_states
    }

    /// Number of device macro-modes (operational + transients).
    #[must_use]
    pub fn n_dev_modes(&self) -> usize {
        self.dev_modes.len()
    }

    /// Number of requester modes.
    #[must_use]
    pub fn n_sr_modes(&self) -> usize {
        self.n_sr_modes
    }

    /// Queue capacity baked into the indexing.
    #[must_use]
    pub fn queue_cap(&self) -> usize {
        self.queue_cap
    }

    /// Descriptor of device-mode index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn dev_mode(&self, i: usize) -> DevMode {
        self.dev_modes[i]
    }

    /// Dense index of `(sr_mode, dev_mode, queue_len)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    #[must_use]
    pub fn index(&self, sr_mode: usize, dev_mode: usize, queue_len: usize) -> usize {
        assert!(sr_mode < self.n_sr_modes, "sr mode out of range");
        assert!(dev_mode < self.dev_modes.len(), "device mode out of range");
        assert!(queue_len <= self.queue_cap, "queue length out of range");
        (sr_mode * self.dev_modes.len() + dev_mode) * (self.queue_cap + 1) + queue_len
    }

    /// Decomposes a dense index back into `(sr_mode, dev_mode, queue_len)`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn decompose(&self, state: usize) -> (usize, usize, usize) {
        assert!(state < self.n_states(), "state out of range");
        let q = state % (self.queue_cap + 1);
        let rest = state / (self.queue_cap + 1);
        let dev = rest % self.dev_modes.len();
        let sr = rest / self.dev_modes.len();
        (sr, dev, q)
    }

    /// Device-mode index of a live [`DeviceMode`] from the simulator.
    ///
    /// # Panics
    ///
    /// Panics if the mode refers to a transition this space does not know
    /// (i.e. a different power model).
    #[must_use]
    pub fn dev_index_of(&self, mode: DeviceMode) -> usize {
        match mode {
            DeviceMode::Operational(s) => s.index(),
            DeviceMode::Transitioning {
                from,
                to,
                remaining,
            } => *self
                .transient_lookup
                .get(&(from.index(), to.index(), remaining))
                .expect("unknown transient mode for this power model"),
        }
    }

    /// State index for a live simulator observation.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range for this space.
    #[must_use]
    pub fn index_of(&self, sr_mode: usize, mode: DeviceMode, queue_len: usize) -> usize {
        self.index(sr_mode, self.dev_index_of(mode), queue_len)
    }

    /// Legal actions in device-mode `dev` of `power`: all reachable
    /// operational targets plus "stay" when operational; the transition
    /// target ("stay the course") when transient.
    #[must_use]
    pub fn legal_actions(&self, power: &PowerModel, dev: usize) -> Vec<usize> {
        match self.dev_modes[dev] {
            DevMode::Operational(s) => {
                let mut acts = vec![s];
                acts.extend(
                    power
                        .commands_from(PowerStateId::from_index(s))
                        .map(PowerStateId::index),
                );
                acts.sort_unstable();
                acts
            }
            DevMode::Transient { to, .. } => vec![to],
        }
    }

    /// Resolves the device half of one slice under the shared step
    /// semantics: given the device mode index and the commanded target,
    /// returns `(energy_this_slice, can_serve_this_slice,
    /// device_mode_index_at_slice_end)`.
    ///
    /// This is the single source of truth the MDP transition rows are built
    /// from; the simulator's `Device` is tested to agree with it.
    ///
    /// # Panics
    ///
    /// Panics if `action` is not legal in `dev` (use
    /// [`DpmStateSpace::legal_actions`]).
    #[must_use]
    pub fn step_device(&self, power: &PowerModel, dev: usize, action: usize) -> (f64, bool, usize) {
        match self.dev_modes[dev] {
            DevMode::Operational(s) => {
                if action == s {
                    let spec = power.state(PowerStateId::from_index(s));
                    return (spec.power, spec.can_serve, dev);
                }
                let trans = power
                    .transition(
                        PowerStateId::from_index(s),
                        PowerStateId::from_index(action),
                    )
                    .expect("illegal action passed to step_device");
                if trans.latency == 0 {
                    // Instant switch: the device spends the slice in the
                    // target state and pays the switch energy on top.
                    let spec = power.state(PowerStateId::from_index(action));
                    (trans.energy + spec.power, spec.can_serve, action)
                } else {
                    // This slice is the first transition slice.
                    let end = if trans.latency == 1 {
                        action
                    } else {
                        self.transient_lookup[&(s, action, trans.latency - 1)]
                    };
                    (trans.energy_per_step(), false, end)
                }
            }
            DevMode::Transient {
                from,
                to,
                remaining,
            } => {
                assert_eq!(action, to, "only `stay the course` is legal in a transient");
                let trans = power
                    .transition(PowerStateId::from_index(from), PowerStateId::from_index(to))
                    .expect("transient exists only for defined transitions");
                let end = if remaining == 1 {
                    to
                } else {
                    self.transient_lookup[&(from, to, remaining - 1)]
                };
                (trans.energy_per_step(), false, end)
            }
        }
    }
}

/// A compiled DPM decision process: the [`Mdp`] plus its state indexing.
#[derive(Debug, Clone, PartialEq)]
pub struct DpmModel {
    /// The compiled decision process (energy and perf costs kept separate).
    pub mdp: Mdp,
    /// The state indexing shared with the simulator.
    pub space: DpmStateSpace,
}

/// Compiles the exact DTMDP of a DPM system.
///
/// `queue_cap` bounds the service queue (lengths `0..=queue_cap`); the
/// service model must be geometric (memoryless) for the compilation to be
/// exact. `drop_penalty` is added to the *performance* criterion for every
/// request rejected by a full queue — without it, a saturated bounded-queue
/// system is "optimally" served by sleeping forever and dropping all work,
/// which is not the DPM problem the paper studies. The simulator applies
/// the identical penalty so measured and modeled costs agree.
///
/// # Errors
///
/// Returns [`MdpError::NotMarkovian`] for a non-geometric service model,
/// [`MdpError::BadParameter`] for a zero queue or negative/non-finite
/// penalty, or an [`MdpError`] if internal validation fails (a bug).
pub fn build_dpm_mdp(
    power: &PowerModel,
    service: &ServiceModel,
    arrivals: &MarkovArrivalModel,
    queue_cap: usize,
    drop_penalty: f64,
) -> Result<DpmModel, MdpError> {
    if !(drop_penalty.is_finite() && drop_penalty >= 0.0) {
        return Err(MdpError::BadParameter(format!(
            "drop penalty {drop_penalty} must be non-negative"
        )));
    }
    let Some(serve_p) = service.completion_probability() else {
        return Err(MdpError::NotMarkovian(
            "exact compilation needs a geometric service model".into(),
        ));
    };
    if queue_cap == 0 {
        return Err(MdpError::BadParameter("queue capacity must be >= 1".into()));
    }
    let space = DpmStateSpace::new(power, arrivals.n_modes(), queue_cap);
    let n_actions = space.n_actions();
    let mut builder = Mdp::builder(space.n_states(), n_actions)?;

    for sr in 0..space.n_sr_modes() {
        for dev in 0..space.n_dev_modes() {
            for q in 0..=queue_cap {
                let s_idx = space.index(sr, dev, q);
                for a in space.legal_actions(power, dev) {
                    let (energy, serving, dev_end) = space.step_device(power, dev, a);
                    // A serving slice is spent in the operational state
                    // `dev_end` resolves to (stay, or the target of an
                    // instant switch); its operating point scales the
                    // completion probability through the same law the
                    // simulator's `Server::advance_scaled` applies, so the
                    // compiled MDP stays exact for DVFS-expanded models.
                    let serve_prob = if serving {
                        let occupied = match space.dev_mode(dev_end) {
                            DevMode::Operational(s) => PowerStateId::from_index(s),
                            DevMode::Transient { .. } => {
                                unreachable!("serving slice ends in a transient")
                            }
                        };
                        scaled_completion(serve_p, power.state(occupied).freq)
                    } else {
                        0.0
                    };
                    let arrive_p = arrivals.arrival_prob[sr];
                    // Enumerate (arrival?, service?, next sr mode) branches.
                    let mut acc: HashMap<usize, f64> = HashMap::new();
                    let mut perf = 0.0;
                    for (arrived, p_arr) in [(false, 1.0 - arrive_p), (true, arrive_p)] {
                        if p_arr == 0.0 {
                            continue;
                        }
                        let dropped = arrived && q == queue_cap;
                        let q1 = if arrived { (q + 1).min(queue_cap) } else { q };
                        let p_complete = if q1 > 0 { serve_prob } else { 0.0 };
                        for (completed, p_srv) in [(false, 1.0 - p_complete), (true, p_complete)] {
                            if p_srv == 0.0 {
                                continue;
                            }
                            let q2 = if completed { q1 - 1 } else { q1 };
                            let branch = p_arr * p_srv;
                            perf += branch * (q2 as f64 + if dropped { drop_penalty } else { 0.0 });
                            for m2 in 0..space.n_sr_modes() {
                                let p_mode = arrivals.mode_transition(sr, m2);
                                if p_mode == 0.0 {
                                    continue;
                                }
                                let next = space.index(m2, dev_end, q2);
                                *acc.entry(next).or_insert(0.0) += branch * p_mode;
                            }
                        }
                    }
                    let mut row: Vec<(usize, f64)> = acc.into_iter().collect();
                    row.sort_unstable_by_key(|&(s, _)| s);
                    builder.set_action(s_idx, a, row, energy, perf);
                }
            }
        }
    }
    Ok(DpmModel {
        mdp: builder.build()?,
        space,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::{policy_iteration, relative_value_iteration};
    use crate::CostWeights;
    use qdpm_device::presets;

    fn bernoulli(p: f64) -> MarkovArrivalModel {
        MarkovArrivalModel::bernoulli(p).unwrap()
    }

    #[test]
    fn state_space_enumeration_counts() {
        let power = presets::three_state_generic();
        let space = DpmStateSpace::new(&power, 2, 8);
        // Operational: 3. Transients: active->sleep (2) + sleep->active (4)
        // + idle->sleep (2) = 8. Total device modes 11.
        assert_eq!(space.n_dev_modes(), 11);
        assert_eq!(space.n_actions(), 3);
        assert_eq!(space.n_states(), 2 * 11 * 9);
    }

    #[test]
    fn index_decompose_round_trip() {
        let power = presets::three_state_generic();
        let space = DpmStateSpace::new(&power, 2, 5);
        for s in 0..space.n_states() {
            let (sr, dev, q) = space.decompose(s);
            assert_eq!(space.index(sr, dev, q), s);
        }
    }

    #[test]
    fn live_device_mode_maps_into_space() {
        let power = presets::three_state_generic();
        let space = DpmStateSpace::new(&power, 1, 4);
        let active = power.state_by_name("active").unwrap();
        let sleep = power.state_by_name("sleep").unwrap();
        let op = space.dev_index_of(DeviceMode::Operational(active));
        assert_eq!(op, active.index());
        let tr = space.dev_index_of(DeviceMode::Transitioning {
            from: active,
            to: sleep,
            remaining: 2,
        });
        assert!(matches!(
            space.dev_mode(tr),
            DevMode::Transient { remaining: 2, .. }
        ));
        assert!(space.index_of(0, DeviceMode::Operational(active), 3) < space.n_states());
    }

    #[test]
    fn legal_actions_shape() {
        let power = presets::three_state_generic();
        let space = DpmStateSpace::new(&power, 1, 4);
        let active = power.state_by_name("active").unwrap().index();
        let sleep = power.state_by_name("sleep").unwrap().index();
        // From active: stay, go idle, go sleep.
        assert_eq!(space.legal_actions(&power, active).len(), 3);
        // From sleep: stay or wake to active only.
        let sleep_acts = space.legal_actions(&power, sleep);
        assert_eq!(sleep_acts.len(), 2);
        assert!(sleep_acts.contains(&active));
        // Transient: single action.
        let tr = space.dev_index_of(DeviceMode::Transitioning {
            from: PowerStateId::from_index(active),
            to: PowerStateId::from_index(sleep),
            remaining: 1,
        });
        assert_eq!(space.legal_actions(&power, tr), vec![sleep]);
    }

    #[test]
    fn build_validates_and_row_sums_hold() {
        let power = presets::three_state_generic();
        let service = presets::default_service();
        let model = build_dpm_mdp(&power, &service, &bernoulli(0.1), 6, 10.0).unwrap();
        // Mdp::build already checks rows sum to 1; spot-check cost signs.
        let m = &model.mdp;
        for s in 0..m.n_states() {
            for a in m.legal_actions(s) {
                assert!(m.energy_cost(s, a) >= 0.0);
                assert!(m.perf_cost(s, a) >= 0.0);
                assert!(m.perf_cost(s, a) <= model.space.queue_cap() as f64 + 10.0);
            }
        }
    }

    #[test]
    fn rejects_deterministic_service() {
        let power = presets::three_state_generic();
        let service = ServiceModel::deterministic(3).unwrap();
        assert!(matches!(
            build_dpm_mdp(&power, &service, &bernoulli(0.1), 4, 10.0),
            Err(MdpError::NotMarkovian(_))
        ));
    }

    #[test]
    fn rejects_zero_queue() {
        let power = presets::three_state_generic();
        let service = presets::default_service();
        assert!(matches!(
            build_dpm_mdp(&power, &service, &bernoulli(0.1), 0, 10.0),
            Err(MdpError::BadParameter(_))
        ));
    }

    #[test]
    fn zero_arrivals_optimal_policy_sleeps() {
        // With no arrivals ever, the average-optimal policy parks the
        // device in its cheapest state.
        let power = presets::three_state_generic();
        let service = presets::default_service();
        let model = build_dpm_mdp(&power, &service, &bernoulli(0.0), 4, 10.0).unwrap();
        let cost = model.mdp.combined_cost(CostWeights::default());
        let sol = relative_value_iteration(&model.mdp, &cost, 1e-9, 200_000).unwrap();
        let sleep_power = 0.05;
        assert!(
            (sol.gain - sleep_power).abs() < 1e-6,
            "gain {} should equal sleep power {sleep_power}",
            sol.gain
        );
    }

    #[test]
    fn saturated_arrivals_keep_device_active() {
        // With an arrival every slice, staying active is optimal; the gain
        // approaches active power + small queue penalty.
        let power = presets::three_state_generic();
        let service = presets::default_service();
        // Drop penalty must exceed the marginal energy of serving for the
        // overloaded system to prefer staying active: with perf weight 0.1
        // and service rate 0.6, penalty 50 makes serving clearly worthwhile.
        let model = build_dpm_mdp(&power, &service, &bernoulli(1.0), 4, 50.0).unwrap();
        let cost = model.mdp.combined_cost(CostWeights::default());
        let sol = relative_value_iteration(&model.mdp, &cost, 1e-9, 200_000).unwrap();
        // Active power is 1.0; the system is overloaded (arrivals 1.0 >
        // service 0.6) so drops at rate 0.4 are unavoidable, each costing
        // 50 * 0.1 = 5 in weighted perf: gain = 1.0 + 0.4*5 + queue term.
        assert!(sol.gain >= 3.0, "gain {}", sol.gain);
        assert!(sol.gain < 4.0, "gain {}", sol.gain);
        // The optimal policy never sends the device to sleep from active
        // with a saturated queue... verify on the full-queue active state.
        let active = power.state_by_name("active").unwrap().index();
        let s = model.space.index(0, active, 4);
        assert_eq!(sol.policy.action(s), active);
    }

    #[test]
    fn step_device_energy_conservation() {
        // Walking a full multi-slice transition charges exactly the spec
        // energy.
        let power = presets::three_state_generic();
        let space = DpmStateSpace::new(&power, 1, 2);
        let active = power.state_by_name("active").unwrap();
        let sleep = power.state_by_name("sleep").unwrap();
        let spec = power.transition(active, sleep).unwrap();
        let mut dev = active.index();
        let mut total = 0.0;
        let mut slices = 0;
        loop {
            let action = if dev == active.index() {
                sleep.index()
            } else {
                match space.dev_mode(dev) {
                    DevMode::Transient { to, .. } => to,
                    DevMode::Operational(s) => s,
                }
            };
            let (e, serving, next) = space.step_device(&power, dev, action);
            assert!(!serving);
            total += e;
            slices += 1;
            dev = next;
            if matches!(space.dev_mode(dev), DevMode::Operational(s) if s == sleep.index()) {
                break;
            }
            assert!(slices < 100, "transition never completed");
        }
        assert_eq!(slices, spec.latency);
        assert!((total - spec.energy).abs() < 1e-12);
    }

    #[test]
    fn discounted_optimum_varies_with_rate() {
        // Higher arrival rates must cost at least as much as lower ones.
        let power = presets::three_state_generic();
        let service = presets::default_service();
        let mut last = 0.0;
        for p in [0.0, 0.05, 0.2, 0.6] {
            let model = build_dpm_mdp(&power, &service, &bernoulli(p), 4, 10.0).unwrap();
            let cost = model.mdp.combined_cost(CostWeights::default());
            let sol = policy_iteration(&model.mdp, &cost, 0.95).unwrap();
            let mean: f64 = sol.values.iter().sum::<f64>() / sol.values.len() as f64;
            assert!(
                mean >= last - 1e-9,
                "optimal cost should grow with rate: {mean} after {last}"
            );
            last = mean;
        }
    }
}
