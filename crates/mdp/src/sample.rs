//! Deterministic sample models for tests and benchmarks.
//!
//! Random MDPs here use an in-repo SplitMix64 stream (not `rand`) so the
//! same seed yields the same model everywhere, including in benches that
//! must not perturb the `rand` dependency graph.

use crate::{Mdp, MdpError};

/// Tiny deterministic PRNG (SplitMix64).
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn next_below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Generates a fully-connected random MDP: every action legal, each
/// transition row touching `branching` random states, costs uniform in
/// `[0, 1)`. Deterministic in `seed`.
///
/// # Errors
///
/// Returns [`MdpError::EmptyModel`] when a dimension is zero.
///
/// # Panics
///
/// Panics if `branching == 0`.
pub fn random_mdp(
    n_states: usize,
    n_actions: usize,
    branching: usize,
    seed: u64,
) -> Result<Mdp, MdpError> {
    assert!(branching > 0, "branching must be at least 1");
    let mut rng = SplitMix64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    let mut b = Mdp::builder(n_states, n_actions)?;
    for s in 0..n_states {
        for a in 0..n_actions {
            // Draw `branching` distinct-ish targets with random weights.
            let mut weights = Vec::with_capacity(branching);
            let mut total = 0.0;
            for _ in 0..branching {
                let target = rng.next_below(n_states);
                let w = rng.next_f64() + 1e-3;
                weights.push((target, w));
                total += w;
            }
            // Merge duplicates and normalize.
            weights.sort_unstable_by_key(|&(t, _)| t);
            let mut row: Vec<(usize, f64)> = Vec::with_capacity(branching);
            for (t, w) in weights {
                match row.last_mut() {
                    Some((lt, lw)) if *lt == t => *lw += w / total,
                    _ => row.push((t, w / total)),
                }
            }
            // Normalization: make the row sum exactly 1 against fp drift.
            let sum: f64 = row.iter().map(|&(_, p)| p).sum();
            if let Some(last) = row.last_mut() {
                last.1 += 1.0 - sum;
            }
            b.set_action(s, a, row, rng.next_f64(), rng.next_f64());
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::lp_solve_discounted;
    use crate::solvers::{policy_iteration, value_iteration, SolveOptions};
    use crate::CostWeights;

    #[test]
    fn random_mdp_is_deterministic_in_seed() {
        let a = random_mdp(10, 3, 4, 42).unwrap();
        let b = random_mdp(10, 3, 4, 42).unwrap();
        assert_eq!(a, b);
        let c = random_mdp(10, 3, 4, 43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn random_mdp_validates() {
        // build() inside random_mdp re-checks all row sums.
        for seed in 0..20 {
            let m = random_mdp(15, 4, 3, seed).unwrap();
            assert_eq!(m.n_states(), 15);
        }
    }

    #[test]
    fn three_solvers_agree_on_random_models() {
        for seed in 0..8 {
            let m = random_mdp(12, 3, 4, seed).unwrap();
            let cost = m.combined_cost(CostWeights::new(1.0, 0.5).unwrap());
            let vi = value_iteration(&m, &cost, SolveOptions::with_discount(0.9).unwrap()).unwrap();
            let pi = policy_iteration(&m, &cost, 0.9).unwrap();
            let lp = lp_solve_discounted(&m, &cost, 0.9).unwrap();
            for s in 0..m.n_states() {
                assert!(
                    (vi.values[s] - pi.values[s]).abs() < 1e-6,
                    "seed {seed} state {s}: vi {} pi {}",
                    vi.values[s],
                    pi.values[s]
                );
                assert!(
                    (vi.values[s] - lp.values[s]).abs() < 1e-5,
                    "seed {seed} state {s}: vi {} lp {}",
                    vi.values[s],
                    lp.values[s]
                );
            }
        }
    }
}
