//! Linear-programming policy optimization for DPM.
//!
//! Model-based DPM classically formulates policy optimization as an LP over
//! *occupation measures* (Paleologo/Benini et al.): variables `x(s,a) >= 0`
//! satisfy the discounted flow-balance constraints and minimize expected
//! cost; the constrained variant adds a performance bound and yields the
//! *randomized* policies that deterministic methods cannot express. This is
//! the "widely applied linear programming policy optimization" whose cost
//! the paper highlights — bench T1 measures exactly this module against
//! value/policy iteration and a Q-learning step.

use crate::simplex::{ConstraintOp, LinearProgram};
use crate::solvers::evaluate_policy_discounted;
use crate::{DeterministicPolicy, Mdp, MdpError, StochasticPolicy};

/// Result of the unconstrained LP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolveReport {
    /// The optimal deterministic policy extracted from the occupation
    /// measure.
    pub policy: DeterministicPolicy,
    /// LP objective: expected discounted cost under the uniform initial
    /// distribution (equals `mean(V*)`).
    pub objective: f64,
    /// Simplex pivots used (the paper's "extremely slow" cost driver).
    pub pivots: usize,
    /// Optimal discounted values, recovered by exact policy evaluation.
    pub values: Vec<f64>,
}

/// Result of the constrained LP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstrainedSolution {
    /// The (generally randomized) optimal policy.
    pub policy: StochasticPolicy,
    /// Expected discounted energy under the uniform initial distribution,
    /// normalized per slice (multiplied by `1 - beta`).
    pub energy_per_slice: f64,
    /// Expected discounted performance cost, normalized per slice.
    pub perf_per_slice: f64,
    /// Simplex pivots used.
    pub pivots: usize,
}

/// Maps legal `(s, a)` pairs to dense LP variable indices.
fn legal_index(mdp: &Mdp) -> (Vec<(usize, usize)>, Vec<Option<usize>>) {
    let mut pairs = Vec::new();
    let mut lookup = vec![None; mdp.n_states() * mdp.n_actions()];
    for s in 0..mdp.n_states() {
        for a in mdp.legal_actions(s) {
            lookup[s * mdp.n_actions() + a] = Some(pairs.len());
            pairs.push((s, a));
        }
    }
    (pairs, lookup)
}

/// Builds the flow-balance constraints shared by both LP variants:
/// for every state `s'`:  `sum_a x(s',a) - beta * sum_{s,a} P(s'|s,a) x(s,a)
/// = alpha(s')` with `alpha` uniform.
fn add_flow_constraints(
    lp: &mut LinearProgram,
    mdp: &Mdp,
    pairs: &[(usize, usize)],
    discount: f64,
) {
    let n = mdp.n_states();
    let alpha = 1.0 / n as f64;
    // Accumulate coefficient matrix rows state-by-state.
    let mut rows = vec![vec![0.0; pairs.len()]; n];
    for (var, &(s, a)) in pairs.iter().enumerate() {
        rows[s][var] += 1.0;
        for &(next, p) in mdp.transition_row(s, a) {
            rows[next][var] -= discount * p;
        }
    }
    for row in rows {
        lp.add_constraint(row, ConstraintOp::Eq, alpha);
    }
}

/// Solves the discounted MDP by the occupation-measure LP.
///
/// Equivalent to value/policy iteration (and cross-checked against them in
/// the test suite) but much more expensive — which is the point: this is
/// the model-based optimizer whose latency motivates Q-DPM.
///
/// # Errors
///
/// Returns [`MdpError::BadDiscount`] for an invalid discount, or the LP
/// error if the solver fails (which indicates a malformed model).
///
/// # Panics
///
/// Panics if `cost.len() != n_states * n_actions`.
pub fn lp_solve_discounted(
    mdp: &Mdp,
    cost: &[f64],
    discount: f64,
) -> Result<LpSolveReport, MdpError> {
    if !(discount.is_finite() && discount > 0.0 && discount < 1.0) {
        return Err(MdpError::BadDiscount(discount));
    }
    assert_eq!(
        cost.len(),
        mdp.n_states() * mdp.n_actions(),
        "cost vector length must be n_states * n_actions"
    );
    let (pairs, _) = legal_index(mdp);
    let mut lp = LinearProgram::new(pairs.len());
    lp.set_objective(
        pairs
            .iter()
            .map(|&(s, a)| cost[s * mdp.n_actions() + a])
            .collect(),
    );
    add_flow_constraints(&mut lp, mdp, &pairs, discount);
    let sol = lp.solve()?;

    // With a uniform (everywhere-positive) initial distribution every state
    // has positive occupation, so argmax extraction is total.
    let mut best = vec![(0usize, -1.0f64); mdp.n_states()];
    for (var, &(s, a)) in pairs.iter().enumerate() {
        if sol.x[var] > best[s].1 {
            best[s] = (a, sol.x[var]);
        }
    }
    let policy = DeterministicPolicy::new(best.iter().map(|&(a, _)| a).collect());
    let values = evaluate_policy_discounted(mdp, cost, &policy, discount)?;
    Ok(LpSolveReport {
        policy,
        objective: sol.objective,
        pivots: sol.iterations,
        values,
    })
}

/// Solves the discounted MDP by the *primal* (value-variable) LP:
/// `max sum_s v(s)` subject to `v(s) <= c(s,a) + beta * sum P v` for every
/// legal pair — the textbook formulation dual to
/// [`lp_solve_discounted`]'s occupation-measure program. Exposed both as an
/// alternative optimizer and as a strong-duality cross-check (their
/// objectives must agree up to the `1/n` initial-distribution factor).
///
/// Requires non-negative costs so the optimal values are non-negative
/// (the simplex solves over `x >= 0`).
///
/// # Errors
///
/// Returns [`MdpError::BadDiscount`], [`MdpError::BadParameter`] for a
/// negative cost entry, or LP solver errors.
///
/// # Panics
///
/// Panics if `cost.len() != n_states * n_actions`.
pub fn lp_solve_primal(mdp: &Mdp, cost: &[f64], discount: f64) -> Result<LpSolveReport, MdpError> {
    if !(discount.is_finite() && discount > 0.0 && discount < 1.0) {
        return Err(MdpError::BadDiscount(discount));
    }
    assert_eq!(
        cost.len(),
        mdp.n_states() * mdp.n_actions(),
        "cost vector length must be n_states * n_actions"
    );
    if cost.iter().any(|&c| c < 0.0) {
        return Err(MdpError::BadParameter(
            "primal LP needs non-negative costs (v >= 0 encoding)".into(),
        ));
    }
    let n = mdp.n_states();
    let mut lp = LinearProgram::new(n);
    // maximize sum v  ==  minimize -sum v.
    lp.set_objective(vec![-1.0; n]);
    for s in 0..n {
        for a in mdp.legal_actions(s) {
            // v(s) - beta * sum P(s'|s,a) v(s') <= c(s,a)
            let mut row = vec![0.0; n];
            row[s] += 1.0;
            for &(next, p) in mdp.transition_row(s, a) {
                row[next] -= discount * p;
            }
            lp.add_constraint(row, ConstraintOp::Le, cost[s * mdp.n_actions() + a]);
        }
    }
    let sol = lp.solve()?;
    let values = sol.x;
    // Greedy policy from the optimal values.
    let policy = crate::solvers::greedy_policy(mdp, cost, &values, discount);
    let objective = -sol.objective / n as f64; // mean optimal value
    Ok(LpSolveReport {
        policy,
        objective,
        pivots: sol.iterations,
        values,
    })
}

/// Solves the *constrained* DPM problem: minimize discounted energy subject
/// to a per-slice performance bound, yielding a randomized policy.
///
/// `perf_bound` is expressed per slice (e.g. "average queue length at most
/// 1.5"); internally it is scaled by `1/(1-beta)` to the discounted total.
///
/// # Errors
///
/// * [`MdpError::BadDiscount`] — invalid discount;
/// * [`MdpError::LpInfeasible`] — no policy meets the bound;
/// * [`MdpError::BadParameter`] — negative/non-finite bound.
pub fn lp_solve_constrained(
    mdp: &Mdp,
    discount: f64,
    perf_bound: f64,
) -> Result<ConstrainedSolution, MdpError> {
    if !(discount.is_finite() && discount > 0.0 && discount < 1.0) {
        return Err(MdpError::BadDiscount(discount));
    }
    if !(perf_bound.is_finite() && perf_bound >= 0.0) {
        return Err(MdpError::BadParameter(format!(
            "perf bound {perf_bound} must be non-negative"
        )));
    }
    let (pairs, _) = legal_index(mdp);
    let mut lp = LinearProgram::new(pairs.len());
    lp.set_objective(pairs.iter().map(|&(s, a)| mdp.energy_cost(s, a)).collect());
    add_flow_constraints(&mut lp, mdp, &pairs, discount);
    // Performance constraint: sum x * perf <= bound / (1 - beta).
    lp.add_constraint(
        pairs.iter().map(|&(s, a)| mdp.perf_cost(s, a)).collect(),
        ConstraintOp::Le,
        perf_bound / (1.0 - discount),
    );
    let sol = lp.solve()?;

    // Randomized policy: pi(a|s) = x(s,a) / sum_b x(s,b).
    let n_a = mdp.n_actions();
    let mut probs = vec![0.0; mdp.n_states() * n_a];
    let mut mass = vec![0.0; mdp.n_states()];
    for (var, &(s, a)) in pairs.iter().enumerate() {
        probs[s * n_a + a] = sol.x[var].max(0.0);
        mass[s] += sol.x[var].max(0.0);
    }
    for s in 0..mdp.n_states() {
        if mass[s] > 1e-12 {
            for a in 0..n_a {
                probs[s * n_a + a] /= mass[s];
            }
        } else {
            // Unreachable state (cannot happen with uniform alpha, kept as
            // a safety net): default to the first legal action.
            let a = mdp.legal_actions(s).next().expect("legal action exists");
            probs[s * n_a + a] = 1.0;
        }
    }
    let policy = StochasticPolicy::new(probs, n_a)?;
    let energy: f64 = pairs
        .iter()
        .enumerate()
        .map(|(var, &(s, a))| sol.x[var] * mdp.energy_cost(s, a))
        .sum();
    let perf: f64 = pairs
        .iter()
        .enumerate()
        .map(|(var, &(s, a))| sol.x[var] * mdp.perf_cost(s, a))
        .sum();
    Ok(ConstrainedSolution {
        policy,
        energy_per_slice: energy * (1.0 - discount),
        perf_per_slice: perf * (1.0 - discount),
        pivots: sol.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::{value_iteration, SolveOptions};
    use crate::CostWeights;

    fn toy() -> Mdp {
        let mut b = Mdp::builder(2, 2).unwrap();
        b.set_action(0, 0, vec![(0, 1.0)], 1.0, 0.0);
        b.set_action(0, 1, vec![(1, 1.0)], 5.0, 0.0);
        b.set_action(1, 0, vec![(1, 1.0)], 0.0, 0.0);
        b.set_action(1, 1, vec![(0, 1.0)], 2.0, 0.0);
        b.build().unwrap()
    }

    #[test]
    fn lp_matches_value_iteration() {
        let m = toy();
        let cost = m.combined_cost(CostWeights::new(1.0, 0.0).unwrap());
        let vi = value_iteration(&m, &cost, SolveOptions::with_discount(0.9).unwrap()).unwrap();
        let lp = lp_solve_discounted(&m, &cost, 0.9).unwrap();
        assert_eq!(lp.policy, vi.policy);
        let mean_v: f64 = vi.values.iter().sum::<f64>() / vi.values.len() as f64;
        assert!(
            (lp.objective - mean_v).abs() < 1e-6,
            "{} vs {mean_v}",
            lp.objective
        );
        for (a, b) in lp.values.iter().zip(&vi.values) {
            assert!((a - b).abs() < 1e-6);
        }
        assert!(lp.pivots > 0);
    }

    #[test]
    fn lp_rejects_bad_discount() {
        let m = toy();
        let cost = m.combined_cost(CostWeights::default());
        assert!(matches!(
            lp_solve_discounted(&m, &cost, 1.0),
            Err(MdpError::BadDiscount(_))
        ));
    }

    /// Two-state model with an energy/perf trade-off: action 0 is cheap but
    /// slow (perf 1), action 1 is expensive but fast (perf 0).
    fn tradeoff() -> Mdp {
        let mut b = Mdp::builder(1, 2).unwrap();
        b.set_action(0, 0, vec![(0, 1.0)], 0.2, 1.0);
        b.set_action(0, 1, vec![(0, 1.0)], 1.0, 0.0);
        b.build().unwrap()
    }

    #[test]
    fn primal_and_dual_lp_agree() {
        let m = toy();
        let cost = m.combined_cost(CostWeights::new(1.0, 0.0).unwrap());
        let dual = lp_solve_discounted(&m, &cost, 0.9).unwrap();
        let primal = lp_solve_primal(&m, &cost, 0.9).unwrap();
        // Strong duality: both report the mean optimal value.
        assert!(
            (primal.objective - dual.objective).abs() < 1e-6,
            "primal {} vs dual {}",
            primal.objective,
            dual.objective
        );
        assert_eq!(primal.policy, dual.policy);
        for (a, b) in primal.values.iter().zip(&dual.values) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn primal_rejects_negative_costs() {
        let mut b = Mdp::builder(1, 1).unwrap();
        b.set_action(0, 0, vec![(0, 1.0)], -1.0, 0.0);
        let m = b.build().unwrap();
        let cost = m.combined_cost(CostWeights::new(1.0, 0.0).unwrap());
        assert!(matches!(
            lp_solve_primal(&m, &cost, 0.9),
            Err(MdpError::BadParameter(_))
        ));
    }

    #[test]
    fn stochastic_evaluation_matches_constrained_lp_report() {
        use crate::solvers::evaluate_stochastic_discounted;
        let m = tradeoff();
        let sol = lp_solve_constrained(&m, 0.9, 0.5).unwrap();
        let v_energy =
            evaluate_stochastic_discounted(&m, m.energy_cost_vector(), &sol.policy, 0.9).unwrap();
        // Single-state model: discounted energy * (1 - beta) = per-slice.
        let per_slice = v_energy[0] * (1.0 - 0.9);
        assert!(
            (per_slice - sol.energy_per_slice).abs() < 1e-6,
            "evaluated {per_slice} vs report {}",
            sol.energy_per_slice
        );
    }

    #[test]
    fn constrained_lp_randomizes_at_binding_constraint() {
        let m = tradeoff();
        // Bound 0.5 forces a 50/50 mix of the two actions.
        let sol = lp_solve_constrained(&m, 0.9, 0.5).unwrap();
        let p_slow = sol.policy.prob(0, 0);
        assert!((p_slow - 0.5).abs() < 1e-6, "p_slow {p_slow}");
        assert!((sol.perf_per_slice - 0.5).abs() < 1e-6);
        assert!((sol.energy_per_slice - 0.6).abs() < 1e-6);
    }

    #[test]
    fn constrained_lp_loose_bound_is_unconstrained() {
        let m = tradeoff();
        let sol = lp_solve_constrained(&m, 0.9, 10.0).unwrap();
        // Loose bound: pure cheap action.
        assert!((sol.policy.prob(0, 0) - 1.0).abs() < 1e-6);
        assert!((sol.energy_per_slice - 0.2).abs() < 1e-6);
    }

    #[test]
    fn constrained_lp_infeasible_bound() {
        let m = tradeoff();
        // Even the fast action has perf 0; bound below 0 is impossible
        // to encode, use a model where min perf is 0.3.
        let mut b = Mdp::builder(1, 1).unwrap();
        b.set_action(0, 0, vec![(0, 1.0)], 0.2, 0.3);
        let m2 = b.build().unwrap();
        assert!(matches!(
            lp_solve_constrained(&m2, 0.9, 0.1),
            Err(MdpError::LpInfeasible)
        ));
        drop(m);
    }

    #[test]
    fn constrained_rejects_bad_parameters() {
        let m = tradeoff();
        assert!(matches!(
            lp_solve_constrained(&m, 0.9, -1.0),
            Err(MdpError::BadParameter(_))
        ));
        assert!(matches!(
            lp_solve_constrained(&m, 0.0, 1.0),
            Err(MdpError::BadDiscount(_))
        ));
    }
}
