//! Exact dynamic-programming solvers for [`Mdp`].
//!
//! These implement the "analytical techniques which assume model is
//! completely known in prior" against which the paper compares Q-DPM in
//! Fig. 1: discounted value iteration, Howard policy iteration (with exact
//! policy evaluation via LU), and relative value iteration for the
//! average-cost criterion. The LP formulation lives in [`crate::lp`].

use crate::linalg::Matrix;
use crate::{DeterministicPolicy, Mdp, MdpError};

/// Options shared by the iterative solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveOptions {
    /// Discount factor in `(0, 1)`.
    pub discount: f64,
    /// Convergence tolerance on the value-update sup-norm (or span for the
    /// average-cost solver).
    pub tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            discount: 0.95,
            tol: 1e-9,
            max_iter: 100_000,
        }
    }
}

impl SolveOptions {
    /// Creates options with a validated discount factor.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::BadDiscount`] unless `0 < discount < 1`.
    pub fn with_discount(discount: f64) -> Result<Self, MdpError> {
        check_discount(discount)?;
        Ok(SolveOptions {
            discount,
            ..SolveOptions::default()
        })
    }
}

fn check_discount(discount: f64) -> Result<(), MdpError> {
    if !(discount.is_finite() && discount > 0.0 && discount < 1.0) {
        return Err(MdpError::BadDiscount(discount));
    }
    Ok(())
}

fn check_cost(mdp: &Mdp, cost: &[f64]) {
    assert_eq!(
        cost.len(),
        mdp.n_states() * mdp.n_actions(),
        "cost vector length must be n_states * n_actions"
    );
}

/// Result of a discounted solve: optimal values and a greedy optimal policy.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal discounted cost-to-go per state.
    pub values: Vec<f64>,
    /// A deterministic optimal policy.
    pub policy: DeterministicPolicy,
    /// Iterations used.
    pub iterations: usize,
    /// Final update residual (sup-norm).
    pub residual: f64,
}

/// Result of an average-cost solve.
#[derive(Debug, Clone, PartialEq)]
pub struct AverageSolution {
    /// Optimal long-run average cost per slice (gain).
    pub gain: f64,
    /// Relative value (bias) per state, normalized to 0 at state 0.
    pub bias: Vec<f64>,
    /// A deterministic optimal policy.
    pub policy: DeterministicPolicy,
    /// Iterations used.
    pub iterations: usize,
}

/// One Bellman backup `min_a [ c(s,a) + beta * sum P v ]` for every state.
/// Returns the new values and the per-state argmin.
fn bellman_backup(mdp: &Mdp, cost: &[f64], v: &[f64], discount: f64) -> (Vec<f64>, Vec<usize>) {
    let n_a = mdp.n_actions();
    let mut out = vec![f64::INFINITY; mdp.n_states()];
    let mut arg = vec![0usize; mdp.n_states()];
    for s in 0..mdp.n_states() {
        for a in mdp.legal_actions(s) {
            let mut q = cost[s * n_a + a];
            for &(next, p) in mdp.transition_row(s, a) {
                q += discount * p * v[next];
            }
            if q < out[s] {
                out[s] = q;
                arg[s] = a;
            }
        }
    }
    (out, arg)
}

/// The greedy policy with respect to a value function.
#[must_use]
pub fn greedy_policy(
    mdp: &Mdp,
    cost: &[f64],
    values: &[f64],
    discount: f64,
) -> DeterministicPolicy {
    check_cost(mdp, cost);
    let (_, arg) = bellman_backup(mdp, cost, values, discount);
    DeterministicPolicy::new(arg)
}

/// Discounted value iteration.
///
/// Iterates Bellman backups until the sup-norm update falls below
/// `opts.tol`, then extracts the greedy policy.
///
/// # Errors
///
/// Returns [`MdpError::BadDiscount`] for an invalid discount or
/// [`MdpError::NoConvergence`] when `opts.max_iter` is exhausted.
///
/// # Panics
///
/// Panics if `cost.len() != n_states * n_actions`.
pub fn value_iteration(mdp: &Mdp, cost: &[f64], opts: SolveOptions) -> Result<Solution, MdpError> {
    check_discount(opts.discount)?;
    check_cost(mdp, cost);
    let mut v = vec![0.0; mdp.n_states()];
    for it in 1..=opts.max_iter {
        let (next, arg) = bellman_backup(mdp, cost, &v, opts.discount);
        let residual = v
            .iter()
            .zip(&next)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        v = next;
        if residual < opts.tol {
            return Ok(Solution {
                values: v,
                policy: DeterministicPolicy::new(arg),
                iterations: it,
                residual,
            });
        }
    }
    Err(MdpError::NoConvergence {
        solver: "value iteration",
        iterations: opts.max_iter,
    })
}

/// Exact discounted evaluation of a deterministic policy:
/// solves `(I - beta * P_pi) v = c_pi`.
///
/// # Errors
///
/// Returns [`MdpError::BadDiscount`] or [`MdpError::SingularSystem`].
///
/// # Panics
///
/// Panics on dimension mismatches or an out-of-range policy action.
pub fn evaluate_policy_discounted(
    mdp: &Mdp,
    cost: &[f64],
    policy: &DeterministicPolicy,
    discount: f64,
) -> Result<Vec<f64>, MdpError> {
    check_discount(discount)?;
    check_cost(mdp, cost);
    assert_eq!(policy.n_states(), mdp.n_states(), "policy size mismatch");
    let n = mdp.n_states();
    let mut a = Matrix::identity(n);
    let mut b = vec![0.0; n];
    for s in 0..n {
        let act = policy.action(s);
        assert!(
            mdp.is_legal(s, act),
            "policy picks illegal action {act} in state {s}"
        );
        b[s] = cost[s * mdp.n_actions() + act];
        for &(next, p) in mdp.transition_row(s, act) {
            a[(s, next)] -= discount * p;
        }
    }
    a.solve(&b)
}

/// Exact discounted evaluation of a *stochastic* policy: solves
/// `(I - beta * P_pi) v = c_pi` with the action-mixed transition kernel
/// and costs. Needed to audit the randomized policies the constrained LP
/// produces.
///
/// # Errors
///
/// Returns [`MdpError::BadDiscount`] or [`MdpError::SingularSystem`].
///
/// # Panics
///
/// Panics on dimension mismatches or when the policy puts probability on
/// an illegal action.
pub fn evaluate_stochastic_discounted(
    mdp: &Mdp,
    cost: &[f64],
    policy: &crate::StochasticPolicy,
    discount: f64,
) -> Result<Vec<f64>, MdpError> {
    check_discount(discount)?;
    check_cost(mdp, cost);
    assert_eq!(policy.n_states(), mdp.n_states(), "policy size mismatch");
    let n = mdp.n_states();
    let n_a = mdp.n_actions();
    let mut a = Matrix::identity(n);
    let mut b = vec![0.0; n];
    for s in 0..n {
        for act in 0..n_a {
            let p_a = policy.prob(s, act);
            if p_a <= 1e-15 {
                continue;
            }
            assert!(
                mdp.is_legal(s, act),
                "stochastic policy puts mass {p_a} on illegal action {act} in state {s}"
            );
            b[s] += p_a * cost[s * n_a + act];
            for &(next, p) in mdp.transition_row(s, act) {
                a[(s, next)] -= discount * p_a * p;
            }
        }
    }
    a.solve(&b)
}

/// Howard policy iteration: exact evaluation + greedy improvement.
///
/// Terminates in finitely many steps for discounted problems; typically a
/// handful of iterations even for hundreds of states.
///
/// # Errors
///
/// Returns [`MdpError::BadDiscount`], [`MdpError::SingularSystem`], or
/// [`MdpError::NoConvergence`] (iteration cap `10_000`).
///
/// # Panics
///
/// Panics if `cost.len() != n_states * n_actions`.
pub fn policy_iteration(mdp: &Mdp, cost: &[f64], discount: f64) -> Result<Solution, MdpError> {
    check_discount(discount)?;
    check_cost(mdp, cost);
    // Start from the myopic policy (cheapest immediate cost).
    let n_a = mdp.n_actions();
    let mut policy = DeterministicPolicy::new(
        (0..mdp.n_states())
            .map(|s| {
                mdp.legal_actions(s)
                    .min_by(|&x, &y| cost[s * n_a + x].total_cmp(&cost[s * n_a + y]))
                    .expect("validated mdp has a legal action")
            })
            .collect(),
    );
    for it in 1..=10_000 {
        let values = evaluate_policy_discounted(mdp, cost, &policy, discount)?;
        let improved = greedy_policy(mdp, cost, &values, discount);
        if improved == policy {
            return Ok(Solution {
                values,
                policy,
                iterations: it,
                residual: 0.0,
            });
        }
        policy = improved;
    }
    Err(MdpError::NoConvergence {
        solver: "policy iteration",
        iterations: 10_000,
    })
}

/// Relative value iteration for the long-run average-cost criterion.
///
/// Applies the aperiodicity transformation `P_tau = tau*I + (1-tau)*P`
/// (which preserves every policy's gain and the optimal policy) so the
/// iteration converges on periodic chains, and stops when the span of the
/// update falls below `tol`.
///
/// # Errors
///
/// Returns [`MdpError::NoConvergence`] when `max_iter` is exhausted.
///
/// # Panics
///
/// Panics if `cost.len() != n_states * n_actions`.
pub fn relative_value_iteration(
    mdp: &Mdp,
    cost: &[f64],
    tol: f64,
    max_iter: usize,
) -> Result<AverageSolution, MdpError> {
    check_cost(mdp, cost);
    let tau = 0.5;
    let n = mdp.n_states();
    let n_a = mdp.n_actions();
    let mut h = vec![0.0; n];
    let mut arg = vec![0usize; n];
    for it in 1..=max_iter {
        let mut th = vec![f64::INFINITY; n];
        for s in 0..n {
            for a in mdp.legal_actions(s) {
                let mut q = cost[s * n_a + a] + tau * h[s];
                for &(next, p) in mdp.transition_row(s, a) {
                    q += (1.0 - tau) * p * h[next];
                }
                if q < th[s] {
                    th[s] = q;
                    arg[s] = a;
                }
            }
        }
        // Span of the update decides convergence.
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for s in 0..n {
            let d = th[s] - h[s];
            lo = lo.min(d);
            hi = hi.max(d);
        }
        let gain = th[0] - h[0];
        let anchor = th[0];
        for (hs, ts) in h.iter_mut().zip(&th) {
            *hs = ts - anchor;
        }
        if hi - lo < tol {
            return Ok(AverageSolution {
                gain,
                bias: h,
                policy: DeterministicPolicy::new(arg),
                iterations: it,
            });
        }
    }
    Err(MdpError::NoConvergence {
        solver: "relative value iteration",
        iterations: max_iter,
    })
}

/// Exact average-cost evaluation of a deterministic policy on a unichain
/// model: solves `g + h(s) - sum P h = c(s)` with `h(0) = 0`, returning
/// `(gain, bias)`.
///
/// # Errors
///
/// Returns [`MdpError::SingularSystem`] when the policy's chain is not
/// unichain (the system is then singular).
///
/// # Panics
///
/// Panics on dimension mismatches or an out-of-range policy action.
pub fn evaluate_policy_average(
    mdp: &Mdp,
    cost: &[f64],
    policy: &DeterministicPolicy,
) -> Result<(f64, Vec<f64>), MdpError> {
    check_cost(mdp, cost);
    assert_eq!(policy.n_states(), mdp.n_states(), "policy size mismatch");
    let n = mdp.n_states();
    // Unknowns: [g, h(1), ..., h(n-1)], with h(0) fixed to 0.
    let mut a = Matrix::zeros(n, n);
    let mut b = vec![0.0; n];
    for s in 0..n {
        let act = policy.action(s);
        assert!(
            mdp.is_legal(s, act),
            "policy picks illegal action {act} in state {s}"
        );
        a[(s, 0)] = 1.0; // coefficient of g
        if s != 0 {
            a[(s, s)] += 1.0; // h(s)
        }
        for &(next, p) in mdp.transition_row(s, act) {
            if next != 0 {
                a[(s, next)] -= p;
            }
        }
        b[s] = cost[s * mdp.n_actions() + act];
    }
    let x = a.solve(&b)?;
    let gain = x[0];
    let mut bias = vec![0.0; n];
    bias[1..n].copy_from_slice(&x[1..n]);
    Ok((gain, bias))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostWeights;

    /// State 0: stay for 1/slice, or pay 5 to reach state 1 where staying is
    /// free. With beta = 0.9: V(1) = 0, V(0) = min(1/(1-0.9), 5) = 5.
    fn toy() -> Mdp {
        let mut b = Mdp::builder(2, 2).unwrap();
        b.set_action(0, 0, vec![(0, 1.0)], 1.0, 0.0);
        b.set_action(0, 1, vec![(1, 1.0)], 5.0, 0.0);
        b.set_action(1, 0, vec![(1, 1.0)], 0.0, 0.0);
        b.set_action(1, 1, vec![(0, 1.0)], 2.0, 0.0);
        b.build().unwrap()
    }

    fn toy_cost(m: &Mdp) -> Vec<f64> {
        m.combined_cost(CostWeights::new(1.0, 0.0).unwrap())
    }

    #[test]
    fn value_iteration_hand_solution() {
        let m = toy();
        let sol =
            value_iteration(&m, &toy_cost(&m), SolveOptions::with_discount(0.9).unwrap()).unwrap();
        assert!(
            (sol.values[0] - 5.0).abs() < 1e-6,
            "V(0) = {}",
            sol.values[0]
        );
        assert!(sol.values[1].abs() < 1e-6);
        assert_eq!(sol.policy.action(0), 1);
        assert_eq!(sol.policy.action(1), 0);
    }

    #[test]
    fn policy_iteration_matches_value_iteration() {
        let m = toy();
        let cost = toy_cost(&m);
        let vi = value_iteration(&m, &cost, SolveOptions::with_discount(0.9).unwrap()).unwrap();
        let pi = policy_iteration(&m, &cost, 0.9).unwrap();
        assert_eq!(pi.policy, vi.policy);
        for (a, b) in pi.values.iter().zip(&vi.values) {
            assert!((a - b).abs() < 1e-6);
        }
        assert!(pi.iterations <= 5, "pi took {} iterations", pi.iterations);
    }

    #[test]
    fn cheap_switch_changes_optimum() {
        // If switching costs 0.5 instead of 5, still optimal; if staying in
        // state 0 were free, staying would win.
        let mut b = Mdp::builder(2, 2).unwrap();
        b.set_action(0, 0, vec![(0, 1.0)], 0.0, 0.0);
        b.set_action(0, 1, vec![(1, 1.0)], 0.5, 0.0);
        b.set_action(1, 0, vec![(1, 1.0)], 0.4, 0.0);
        b.set_action(1, 1, vec![(0, 1.0)], 0.5, 0.0);
        let m = b.build().unwrap();
        let cost = toy_cost(&m);
        let sol = policy_iteration(&m, &cost, 0.9).unwrap();
        assert_eq!(sol.policy.action(0), 0, "staying free should win");
    }

    #[test]
    fn evaluation_is_bellman_fixed_point() {
        let m = toy();
        let cost = toy_cost(&m);
        let policy = DeterministicPolicy::new(vec![1, 0]);
        let v = evaluate_policy_discounted(&m, &cost, &policy, 0.9).unwrap();
        // v must satisfy v = c_pi + beta P_pi v exactly.
        for s in 0..2 {
            let a = policy.action(s);
            let mut rhs = cost[s * 2 + a];
            for &(next, p) in m.transition_row(s, a) {
                rhs += 0.9 * p * v[next];
            }
            assert!((v[s] - rhs).abs() < 1e-9);
        }
    }

    #[test]
    fn bad_discount_rejected() {
        let m = toy();
        let cost = toy_cost(&m);
        assert!(matches!(
            value_iteration(
                &m,
                &cost,
                SolveOptions {
                    discount: 1.0,
                    ..Default::default()
                }
            ),
            Err(MdpError::BadDiscount(_))
        ));
        assert!(matches!(
            policy_iteration(&m, &cost, 0.0),
            Err(MdpError::BadDiscount(_))
        ));
        assert!(SolveOptions::with_discount(1.5).is_err());
    }

    #[test]
    fn average_cost_solver_prefers_free_state() {
        let m = toy();
        let cost = toy_cost(&m);
        let sol = relative_value_iteration(&m, &cost, 1e-10, 100_000).unwrap();
        // Optimal average cost: pay 5 once (transient), then 0 forever.
        assert!(sol.gain.abs() < 1e-7, "gain {}", sol.gain);
        assert_eq!(sol.policy.action(1), 0);
    }

    #[test]
    fn average_evaluation_on_cycle() {
        // Deterministic 2-cycle paying 2 and 0 alternately: gain 1.
        let mut b = Mdp::builder(2, 1).unwrap();
        b.set_action(0, 0, vec![(1, 1.0)], 2.0, 0.0);
        b.set_action(1, 0, vec![(0, 1.0)], 0.0, 0.0);
        let m = b.build().unwrap();
        let cost = toy_cost(&m);
        let (gain, bias) =
            evaluate_policy_average(&m, &cost, &DeterministicPolicy::new(vec![0, 0])).unwrap();
        assert!((gain - 1.0).abs() < 1e-9);
        assert_eq!(bias[0], 0.0);
    }

    #[test]
    fn rvi_matches_average_evaluation_of_its_policy() {
        let m = toy();
        let cost = toy_cost(&m);
        let sol = relative_value_iteration(&m, &cost, 1e-10, 100_000).unwrap();
        let (gain, _) = evaluate_policy_average(&m, &cost, &sol.policy).unwrap();
        assert!((gain - sol.gain).abs() < 1e-6);
    }

    #[test]
    fn greedy_of_optimal_values_is_optimal() {
        let m = toy();
        let cost = toy_cost(&m);
        let sol = value_iteration(&m, &cost, SolveOptions::with_discount(0.9).unwrap()).unwrap();
        let greedy = greedy_policy(&m, &cost, &sol.values, 0.9);
        assert_eq!(greedy, sol.policy);
    }
}
