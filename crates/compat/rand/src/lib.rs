//! Vendored, API-compatible subset of the `rand` crate.
//!
//! This workspace builds in hermetic environments with no crates.io access,
//! so the handful of `rand` items the repo actually uses are provided here:
//! [`RngCore`], the object-safe [`Rng`] extension, [`SeedableRng`], and
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64 — deterministic,
//! high-quality, but *not* bit-compatible with upstream `StdRng`).
//!
//! Every seed in this repo flows through `seed_from_u64`, so determinism
//! guarantees hold within the workspace; nothing depends on matching
//! upstream rand's stream.

/// The core of a random number generator: raw integer output.
///
/// Object-safe; `&mut dyn RngCore` (and `&mut dyn Rng`) work everywhere.
pub trait RngCore {
    /// Returns the next 32 bits of randomness.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 bits of randomness.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Convenience extension over [`RngCore`], blanket-implemented so that any
/// `RngCore` (including trait objects) is an [`Rng`].
pub trait Rng: RngCore {}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type (byte array for [`rngs::StdRng`]).
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from the full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 —
    /// mirrors upstream rand's documented behaviour (distinct `u64` seeds
    /// give independent streams).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&out[..n]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not bit-compatible with upstream `rand::rngs::StdRng` (ChaCha12);
    /// all determinism in this repo is relative to this implementation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// Exports the generator's internal xoshiro256++ state, so a
        /// checkpointing caller can persist an RNG stream mid-run and
        /// later resume it bit-exactly via [`StdRng::from_state`].
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state exported by
        /// [`StdRng::state`]. An all-zero state (a fixed point of
        /// xoshiro, never produced by a seeded generator) is nudged to
        /// the same constants `from_seed` uses.
        #[must_use]
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                return <Self as SeedableRng>::from_seed([0u8; 32]);
            }
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0x6a09_e667_f3bc_c909,
                    0xbb67_ae85_84ca_a73b,
                    0x3c6e_f372_fe94_f82b,
                ];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn dyn_rng_is_usable() {
        let mut rng = StdRng::seed_from_u64(7);
        let dynrng: &mut dyn Rng = &mut rng;
        let _ = dynrng.next_u64();
        let mut buf = [0u8; 13];
        dynrng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut rng = StdRng::seed_from_u64(123);
        for _ in 0..17 {
            rng.next_u64();
        }
        let mut resumed = StdRng::from_state(rng.state());
        for _ in 0..100 {
            assert_eq!(resumed.next_u64(), rng.next_u64());
        }
    }

    #[test]
    fn zero_state_restores_like_zero_seed() {
        let mut a = StdRng::from_state([0; 4]);
        let mut b = StdRng::from_seed([0u8; 32]);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
    }
}
