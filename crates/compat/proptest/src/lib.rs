//! Vendored property-testing harness exposing the subset of the
//! `proptest` API the workspace's tests use.
//!
//! The workspace builds hermetically (no crates.io access). This shim
//! keeps the `proptest! { #[test] fn f(x in strategy, ...) { ... } }`
//! surface, numeric range strategies, `prop_assert*`, `ProptestConfig`,
//! and `TestCaseError`, but samples inputs uniformly at random (seeded
//! deterministically per test) with **no shrinking**. Failures report the
//! case number and the sampled arguments instead of a minimized input.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed (or rejected) property case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A hard failure with the given message.
    ///
    /// (Upstream's `reject`/`prop_assume` case-discarding machinery is
    /// deliberately absent — nothing in this workspace filters inputs, and
    /// a `reject` that hard-failed would invert upstream semantics.)
    pub fn fail<S: Into<String>>(message: S) -> Self {
        Self(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic source of randomness behind every strategy.
pub mod test_runner {
    /// SplitMix64 — small, fast, and plenty for input sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator.
        #[must_use]
        pub fn new(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Input strategies: how a test argument is sampled.
pub mod strategy {
    use super::test_runner::TestRng;
    use super::{Range, RangeInclusive};

    /// Samples values for one `arg in strategy` binding.
    pub trait Strategy {
        /// The type the strategy produces.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u128;
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    lo + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            // unit_f64 is half-open; fold the tiny deficit into the top end.
            let v = lo + rng.unit_f64() * (hi - lo) * (1.0 + 1e-12);
            v.min(hi)
        }
    }
}

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// FNV-1a over the test name: a stable per-test seed, independent of
/// declaration order.
#[doc(hidden)]
#[must_use]
pub fn seed_for_test(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that checks the body against `config.cases`
/// sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::new(
                    $crate::seed_for_test(concat!(module_path!(), "::", stringify!($name))),
                );
                for case in 0..config.cases {
                    $( let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng); )+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "property `{}` failed on case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err,
                            format!(
                                concat!($(stringify!($arg), " = {:?}; "),+),
                                $($arg),+
                            ),
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` for property cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// `assert_ne!` for property cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..17, b in 0.25f64..=0.75, c in 1usize..4) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((0.25..=0.75).contains(&b));
            prop_assert!((1..4).contains(&c));
        }

        #[test]
        fn assert_eq_passes(x in 0u64..100) {
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let strat = 0u64..1_000_000;
        let mut a = TestRng::new(9);
        let mut b = TestRng::new(9);
        for _ in 0..64 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(5))]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }

    #[test]
    fn test_case_error_displays_message() {
        let e = TestCaseError::fail("boom");
        assert_eq!(e.to_string(), "boom");
    }
}
