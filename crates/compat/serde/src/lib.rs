//! Vendored marker-trait subset of `serde`.
//!
//! The workspace builds hermetically (no crates.io access), and nothing in
//! the repo performs actual serialization yet — types only *derive*
//! `Serialize`/`Deserialize` so that persistence formats can be added
//! later without touching every struct. This shim supplies the two traits
//! as markers plus derive macros that emit the marker impls.
//!
//! When a real serialization backend lands, this crate is the single
//! switch-over point: replace the path dependency with upstream `serde`
//! and everything re-derives for real.

/// Marker for types that can be serialized.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(impl Serialize for $t {}
          impl Deserialize for $t {})*
    };
}

impl_markers!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<T: Deserialize> Deserialize for Box<T> {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {}
impl Serialize for &str {}
