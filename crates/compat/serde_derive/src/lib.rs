//! Derive macros for the vendored `serde` shim: emit marker-trait impls.
//!
//! No `syn`/`quote` (hermetic build) — the input item is scanned token by
//! token for the `struct`/`enum` name. Doc comments arrive as
//! `#[doc = "..."]` whose payload is a literal, so the ident scan cannot
//! be confused by prose. Generic derive targets are rejected with a
//! compile error rather than silently mis-expanded; none exist in this
//! workspace today.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum` keyword.
fn derive_target(input: TokenStream) -> Result<String, String> {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        let TokenTree::Ident(id) = &tt else { continue };
        let kw = id.to_string();
        if kw != "struct" && kw != "enum" {
            continue;
        }
        let Some(TokenTree::Ident(name)) = iter.next() else {
            return Err(format!("expected a type name after `{kw}`"));
        };
        if let Some(TokenTree::Punct(p)) = iter.next() {
            if p.as_char() == '<' {
                return Err(format!(
                    "the vendored serde shim cannot derive for generic type `{name}`"
                ));
            }
        }
        return Ok(name.to_string());
    }
    Err("expected a `struct` or `enum` item".to_string())
}

fn emit(trait_name: &str, input: TokenStream) -> TokenStream {
    match derive_target(input) {
        Ok(name) => format!("impl ::serde::{trait_name} for {name} {{}}")
            .parse()
            .expect("generated impl parses"),
        Err(msg) => format!("::core::compile_error!({msg:?});")
            .parse()
            .expect("generated error parses"),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit("Serialize", input)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit("Deserialize", input)
}
