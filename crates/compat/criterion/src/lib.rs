//! Vendored mini benchmark harness exposing the subset of the Criterion
//! API the workspace's benches use.
//!
//! The workspace builds hermetically (no crates.io access), so `cargo
//! bench` runs against this shim: each `Bencher::iter` call auto-calibrates
//! an iteration count to a small time budget, then reports mean ns/iter
//! (and derived throughput when one was declared) to stdout. No statistics,
//! plots, or baselines — swap the path dependency for upstream `criterion`
//! to get those.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form (the group name supplies the context).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Declared per-iteration workload, used to derive throughput numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures; handed to every benchmark function.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, auto-calibrating the iteration count so the
    /// measurement phase lasts roughly the time budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: grow the batch until it costs >= ~5ms.
        let mut batch: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(5) || batch >= 1 << 24 {
                break took.as_secs_f64() / batch as f64;
            }
            batch = batch.saturating_mul(4);
        };
        // Measurement: size the run to ~100ms based on calibration.
        let target = Duration::from_millis(100).as_secs_f64();
        let iters = ((target / per_iter.max(1e-12)) as u64).clamp(1, 1 << 28);
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Declares the per-iteration workload for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark.
    pub fn bench_function<N, F>(&mut self, id: N, mut f: F) -> &mut Self
    where
        N: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<N, I, F>(&mut self, id: N, input: &I, mut f: F) -> &mut Self
    where
        N: Into<BenchmarkId>,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Ends the group (upstream Criterion finalizes reports here).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let label = if self.name.is_empty() {
            id.id.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        };
        if b.iters == 0 {
            println!("{label}: no measurement (Bencher::iter never called)");
            return;
        }
        let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
        let mut line = format!("{label}: {ns_per_iter:.1} ns/iter ({} iters)", b.iters);
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 / (ns_per_iter * 1e-9);
                line.push_str(&format!(", {per_sec:.0} elem/s"));
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 / (ns_per_iter * 1e-9);
                line.push_str(&format!(", {per_sec:.0} B/s"));
            }
            None => {}
        }
        println!("{line}");
    }
}

/// Top-level benchmark context, one per `criterion_group!`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark (upstream's top-level form).
    pub fn bench_function<N, F>(&mut self, id: N, f: F) -> &mut Self
    where
        N: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("").bench_function(id, f);
        self
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[doc = concat!("Runs the `", stringify!($name), "` benchmark group.")]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(10));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2));
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn top_level_bench_function_runs() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("top_level", |b| {
            b.iter(|| std::hint::black_box(2 + 2));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 7).id, "f/7");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
        assert_eq!(BenchmarkId::from("s").id, "s");
    }
}
