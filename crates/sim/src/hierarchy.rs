//! Hierarchical coordination: racks under a power cap, clusters of racks.
//!
//! The Q-DPM paper manages one device; the energy-efficiency literature the
//! ROADMAP targets (Rizvandi & Zomaya's survey) frames datacenter DPM as a
//! *hierarchical, load-aware* coordination problem: local per-device
//! policies, a rack-level coordinator enforcing an electrical budget, and a
//! cluster-level balancer spreading the aggregate stream across racks. This
//! module supplies those two upper layers on top of the fleet machinery:
//!
//! * a [`RackCoordinator`] drives N fleet members under *online* dispatch
//!   (live [`DeviceSnapshot`]s at every aggregate arrival slice) and,
//!   optionally, a rack-wide **power cap**: a hard ceiling on the rack's
//!   summed per-slice energy draw, enforced by vetoing power-state commands
//!   the budget cannot absorb and by shedding load routed toward sleepers
//!   the budget cannot afford to wake;
//! * a [`ClusterSim`] is a fleet of fleets: one more [`DispatchPolicy`]
//!   routes each aggregate arrival slice across racks (by summed queue
//!   depth and rack wakefulness), then each rack routes its share
//!   internally — a two-level dispatch hierarchy with per-rack
//!   [`FleetStats`] and a cluster-wide ordered fold.
//!
//! # The power-cap mechanism
//!
//! The cap is enforced through a *budget of nominal draws*: the coordinator
//! tracks, per device, a conservative bound `nominal[i]` on the device's
//! per-slice energy draw, maintaining the invariant `Σ nominal <= cap` at
//! every slice. A capped rack cold-boots with every device in its lowest
//! power state (the only configuration whose feasibility can be guaranteed
//! up front; a rack whose sleeping draw already exceeds the cap is rejected
//! as [`SimError::BadConfig`]). Each device's power manager is wrapped so
//! that a commanded state change must fit the budget:
//!
//! * a command whose worst-case slice draw is within the device's own
//!   current `nominal[i]` is always allowed (and shrinks `nominal[i]` —
//!   budgets consolidate as devices power down);
//! * a command needing *more* than `nominal[i]` (a wakeup, typically) is
//!   granted only at **grant slices** — the serially-stepped slices where
//!   arrivals land and the slice immediately after (where wake decisions
//!   react to the new queue) — and only if the rack-wide sum stays under
//!   the cap; otherwise the command is vetoed and the device holds its
//!   current state ([`RackReport::vetoed_wakeups`] counts these);
//! * at every grant slice the nominals are refreshed down to each device's
//!   *actual* draw bound, releasing budget that finished transitions no
//!   longer need.
//!
//! Routing cooperates with the budget: arrivals the dispatcher aims at a
//! sleeping device whose wake the budget cannot cover are *shed* to the
//! least-loaded already-awake device instead
//! ([`RackReport::shed_arrivals`]); with the whole rack asleep and no
//! budget headroom they stay queued on the sleeper until a grant succeeds.
//!
//! # Determinism
//!
//! The hierarchy inherits the fleet determinism contract wholesale. Device
//! seeds derive from the rack seed via
//! [`derive_cell_seed`]`(seed, device_index)`; rack seeds derive from the
//! cluster seed the same way (`derive_cell_seed(seed, rack_index)`).
//! Arrival slices and grant slices are stepped serially in device order
//! (they are single slices; the arrival-free gaps between them carry the
//! parallelism), so budget arbitration has one defined order at any thread
//! count. Between grant slices a device only ever reads and writes its own
//! budget slot, so gap-slice parallelism cannot reorder budget decisions.
//! Engine modes stay *exact*: grant and arrival slices execute as ordinary
//! slices in both modes, and a quiescent device whose manager would act
//! (and could therefore touch the budget) declines to commit the stretch,
//! forcing per-slice execution at the same slices in either mode. The
//! conformance suite (`crates/sim/tests/fleet_conformance.rs`) pins
//! engine-mode equality, thread-count invariance, and the per-slice cap
//! invariant on randomized racks.

use std::sync::{Arc, Mutex};

use rand::Rng;

use qdpm_core::{Observation, PowerManager, StateError, StateReader, StateWriter, StepOutcome};
use qdpm_device::{DeviceHealth, DeviceMode, FaultKind, PowerModel, PowerStateId, Step};
use qdpm_workload::{DeviceSnapshot, DispatchPolicy, RetryQueue, SparseTrace, WorkloadDispatcher};

use crate::fleet::{
    build_policy, materialize_events, plan_faults, AvailabilityStats, FleetConfig, FleetMember,
    FleetReport, FleetStats, SharedPool,
};
use crate::parallel::{derive_cell_seed, run_indexed_mut, ScenarioWorkload};
use crate::{FaultStats, RunStats, SimConfig, SimError, Simulator};

/// Slack added to every cap comparison, absorbing the accumulated f64
/// rounding of repeated budget arithmetic (the conformance invariant uses
/// the same slack).
pub const CAP_EPS: f64 = 1e-9;

/// Re-dispatch attempts a stranded arrival batch gets before the rack
/// sheds it ([`qdpm_workload::ShedReason::RetryBudgetExhausted`]).
pub const RETRY_BUDGET: u32 = 3;

/// Slices between a crash harvest and the first re-dispatch attempt;
/// subsequent attempts double it ([`RetryQueue`]'s deterministic backoff).
pub const RETRY_BACKOFF_BASE: u64 = 8;

/// A slice where the rack must regain serial control to react to a
/// scheduled fault: harvest a crashing member's queue into the retry
/// machinery, or refresh the command budget around a health change.
#[derive(Debug, Clone, Copy, PartialEq)]
struct FaultBarrier {
    /// The slice *before* which the rack acts (the fault clock fires
    /// inside this slice).
    at: Step,
    /// What the rack does there.
    kind: BarrierKind,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum BarrierKind {
    /// A transient crash fires at this slice: move the member's queue
    /// into the retry queue before the crash drains it, and (capped
    /// racks) pin the member's nominal to the fault draw for the onset
    /// slice — the fault clock flips health *inside* the slice, after
    /// the budget refresh would otherwise have read the stale demand.
    Harvest { member: usize, draw: f64 },
    /// A fail-stop fires at this slice (capped racks only): pin the
    /// member's nominal to the fault draw for the onset slice, exactly
    /// like the harvest barrier does for crashes — without it the onset
    /// slice draws `down_power` against a budget that still accounts the
    /// pre-fault demand, and the cap can be pierced.
    Onset { member: usize, draw: f64 },
    /// A member's health changed in the previous slice: force a grant
    /// slice so [`RackCoordinator`]'s budget refresh sees the new state
    /// (reclaiming a down member's nominal, or re-flooring a revived one).
    Refresh,
}

/// Materializes the serial stops a rack needs for a fault plan: a harvest
/// barrier at every transient-crash onset, an onset barrier at every
/// fail-stop (capped racks), and — capped racks only — a budget-refresh
/// barrier on the slice after every onset and revival.
/// Sorted by slice (ties: device order, harvests first).
fn build_barriers(
    plan: &qdpm_workload::FaultPlan,
    capped: bool,
    horizon: Step,
) -> Vec<FaultBarrier> {
    let mut barriers = Vec::new();
    for member in 0..plan.n_devices() {
        for event in plan.device(member) {
            match event.kind {
                FaultKind::TransientCrash {
                    down_for,
                    down_power,
                } => {
                    barriers.push(FaultBarrier {
                        at: event.at,
                        kind: BarrierKind::Harvest {
                            member,
                            draw: down_power,
                        },
                    });
                    if capped {
                        let revival = event.at.saturating_add(down_for.max(1));
                        for t in [event.at + 1, revival.saturating_add(1)] {
                            if t < horizon {
                                barriers.push(FaultBarrier {
                                    at: t,
                                    kind: BarrierKind::Refresh,
                                });
                            }
                        }
                    }
                }
                FaultKind::FailStop { down_power } => {
                    if capped {
                        barriers.push(FaultBarrier {
                            at: event.at,
                            kind: BarrierKind::Onset {
                                member,
                                draw: down_power,
                            },
                        });
                        if event.at + 1 < horizon {
                            barriers.push(FaultBarrier {
                                at: event.at + 1,
                                kind: BarrierKind::Refresh,
                            });
                        }
                    }
                }
                // A straggler keeps serving (slowly); nothing for the
                // coordinator to do.
                FaultKind::Straggler { .. } => {}
            }
        }
    }
    barriers.sort_by_key(|b| {
        let (order, member) = match b.kind {
            BarrierKind::Harvest { member, .. } => (0, member),
            BarrierKind::Onset { member, .. } => (1, member),
            BarrierKind::Refresh => (2, usize::MAX),
        };
        (b.at, order, member)
    });
    barriers.dedup();
    barriers
}

/// Specification of one rack: a label, its member devices, and an optional
/// power cap.
#[derive(Debug, Clone)]
pub struct RackSpec {
    /// Report label.
    pub label: String,
    /// The rack's devices, in device order.
    pub members: Vec<FleetMember>,
    /// Hard ceiling on the rack's summed per-slice energy draw, or `None`
    /// for an uncapped rack. A capped rack cold-boots with every device in
    /// its lowest power state (see the [module docs](self)).
    pub power_cap: Option<f64>,
}

/// The rack-wide command budget shared by the wrapped power managers.
#[derive(Debug)]
struct Budget {
    /// The cap (validated finite and positive).
    cap: f64,
    /// Per-device bound on the slice draw; `Σ nominal <= cap` always.
    nominal: Vec<f64>,
    /// Device index currently allowed to *grow* its nominal (set only
    /// while the coordinator serially steps a grant slice).
    grant_open: Option<usize>,
    /// Commands refused for lack of budget.
    vetoed: u64,
}

impl Budget {
    fn total(&self) -> f64 {
        self.nominal.iter().sum()
    }
}

/// Worst-case per-slice energy draw of commanding `from -> to`, covering
/// the command slice, every transition slice, and residency at `to`
/// afterwards. `None` when the model has no such transition (the device
/// would ignore the command).
fn command_demand(model: &PowerModel, from: PowerStateId, to: PowerStateId) -> Option<f64> {
    let t = model.transition(from, to)?;
    let to_power = model.state(to).power;
    Some(if t.latency == 0 {
        // Instant switch: the full transition energy and the first slice of
        // residency land in the same slice.
        t.energy + to_power
    } else {
        t.energy_per_step().max(to_power)
    })
}

/// The conservative draw bound of a device's *current* mode: residency
/// power when operational, the in-flight transition's per-slice energy
/// (covering the arrival at `to` as well) when transitioning.
fn mode_demand(model: &PowerModel, mode: DeviceMode) -> f64 {
    match mode {
        DeviceMode::Operational(s) => model.state(s).power,
        DeviceMode::Transitioning { from, to, .. } => model
            .transition(from, to)
            .map(|t| t.energy_per_step())
            .unwrap_or(0.0)
            .max(model.state(to).power),
    }
}

/// A [`PowerManager`] decorator that submits every state-changing command
/// of the wrapped manager to the rack [`Budget`] and holds the current
/// state when the budget refuses (see the [module docs](self)).
#[derive(Debug)]
struct CappedPolicy {
    inner: Box<dyn PowerManager>,
    index: usize,
    model: PowerModel,
    budget: Arc<Mutex<Budget>>,
}

impl PowerManager for CappedPolicy {
    fn decide(&mut self, obs: &Observation, rng: &mut dyn Rng) -> PowerStateId {
        let target = self.inner.decide(obs, rng);
        // Mid-transition the device ignores commands, and a stay command
        // changes nothing: both are budget-neutral, which keeps the budget
        // stream identical between engine modes (per-slice stepping makes
        // extra `decide` calls exactly where the manager would stay).
        let DeviceMode::Operational(current) = obs.device_mode else {
            return target;
        };
        if target == current {
            return target;
        }
        let Some(demand) = command_demand(&self.model, current, target) else {
            return target; // no such edge: the device ignores it anyway
        };
        let mut b = self.budget.lock().expect("rack budget poisoned");
        if demand <= b.nominal[self.index] + CAP_EPS {
            // Fits the device's own slot: always allowed, and the slot
            // shrinks to the new bound (own-slot only, so gap-slice
            // parallelism cannot reorder budget decisions).
            b.nominal[self.index] = demand;
            return target;
        }
        if b.grant_open == Some(self.index) {
            let others = b.total() - b.nominal[self.index];
            if others + demand <= b.cap + CAP_EPS {
                b.nominal[self.index] = demand;
                return target;
            }
        }
        b.vetoed += 1;
        current
    }

    fn observe(&mut self, outcome: &StepOutcome, next_obs: &Observation) {
        self.inner.observe(outcome, next_obs);
    }

    fn commit_quiescent(
        &mut self,
        obs: &Observation,
        per_slice: &StepOutcome,
        max: u64,
        rng: &mut dyn Rng,
    ) -> u64 {
        // Delegation is sound: the inner manager only commits slices where
        // its `decide` would hold the current state, and a held state never
        // touches the budget.
        self.inner.commit_quiescent(obs, per_slice, max, rng)
    }

    fn save_state(&self, w: &mut StateWriter) {
        // The budget itself is rack-level state, checkpointed once by
        // [`RackCoordinator::save_state`]; the decorator only carries the
        // wrapped manager's state.
        self.inner.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.inner.load_state(r)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// Everything a finished rack run reports.
#[derive(Debug, Clone, PartialEq)]
pub struct RackReport {
    /// The rack's label.
    pub label: String,
    /// The enforced power cap, if any.
    pub power_cap: Option<f64>,
    /// The rack's fleet-level report (per-device stats, final modes, and
    /// the ordered [`FleetStats`] fold).
    pub fleet: FleetReport,
    /// Power-state commands the budget refused (0 for uncapped racks).
    pub vetoed_wakeups: u64,
    /// Arrivals rerouted away from sleepers the budget could not wake
    /// (0 for uncapped racks).
    pub shed_arrivals: u64,
    /// Each device's health at the end of the run, in device order (a
    /// fail-stopped member reports [`DeviceHealth::Down`] forever).
    pub health: Vec<DeviceHealth>,
}

/// Drives one rack of devices under online dispatch and an optional power
/// cap. See the [module docs](self) for the mechanism and determinism
/// contract.
///
/// # Example
///
/// A four-disk rack under a cap tight enough that at most one disk can
/// serve at a time — the budget vetoes surplus wakeups and the run never
/// exceeds the cap in any slice:
///
/// ```
/// use qdpm_device::presets;
/// use qdpm_sim::fleet::{FleetConfig, FleetMember, FleetPolicy};
/// use qdpm_sim::hierarchy::{RackCoordinator, RackSpec, CAP_EPS};
/// use qdpm_sim::ScenarioWorkload;
/// use qdpm_workload::{DispatchPolicy, WorkloadSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = RackSpec {
///     label: "rack-0".to_string(),
///     members: (0..4)
///         .map(|i| FleetMember {
///             label: format!("hdd-{i}"),
///             power: presets::three_state_generic(),
///             service: presets::default_service(),
///             policy: FleetPolicy::BreakEvenTimeout,
///         })
///         .collect(),
///     power_cap: Some(3.0),
/// };
/// let config = FleetConfig {
///     horizon: 2_000,
///     dispatch: DispatchPolicy::SleepAware { spill: 4 },
///     ..FleetConfig::default()
/// };
/// let aggregate = ScenarioWorkload::Stationary(WorkloadSpec::bernoulli(0.4)?);
///
/// let rack = RackCoordinator::new(&spec, &config)?;
/// let (report, per_slice) = rack.run_probed(&aggregate)?;
/// assert!(per_slice.iter().all(|&e| e <= 3.0 + CAP_EPS));
/// assert_eq!(report.fleet.stats.devices, 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RackCoordinator {
    label: String,
    sims: Vec<Simulator>,
    models: Vec<PowerModel>,
    labels: Vec<String>,
    n_states: usize,
    dispatcher: WorkloadDispatcher,
    budget: Option<Arc<Mutex<Budget>>>,
    /// Whether the slice after the last grant slice still needs granting
    /// (wake decisions react to arrivals one slice later).
    grant_pending: bool,
    shed: u64,
    has_shared: bool,
    horizon: Step,
    seed: u64,
    /// Reused per-slice assignment buffer.
    assign: Vec<u32>,
    /// Per-device lowest-state draw (the budget floor a down member keeps
    /// reserved so its revival slice is always affordable).
    floors: Vec<f64>,
    /// Transient per-member nominal override for a fault-onset slice: the
    /// fault clock flips health *inside* the slice, so the onset barrier
    /// pins the budget to the fault draw here one slice early. Consumed by
    /// the next budget refresh; always `None` between slices (never
    /// checkpointed).
    onset_draw: Vec<Option<f64>>,
    /// Serial stops of the fault plan, slice-sorted.
    barriers: Vec<FaultBarrier>,
    /// First unconsumed barrier.
    barrier_pos: usize,
    /// Arrival batches harvested off crashing members, awaiting
    /// re-dispatch with exponential slice backoff.
    retry: RetryQueue,
    /// Arrivals shed because every member was down when they arrived.
    shed_no_healthy: u64,
    /// The rack clock: slices executed so far (all member sims agree).
    now: Step,
}

impl RackCoordinator {
    /// Assembles a rack: one seeded simulator per member on a silent
    /// arrival trace (all arrivals are injected by the online dispatch
    /// loop), the configured intra-rack dispatcher, and — when
    /// `spec.power_cap` is set — the shared command budget, with every
    /// device cold-booted into its lowest power state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] for an empty member list, a
    /// non-finite or non-positive cap, a cap below the rack's all-asleep
    /// draw, clairvoyant oracle members (online dispatch has no
    /// precomputed trace for them to read), or inconsistent shared-table
    /// members; propagates simulator construction errors.
    pub fn new(spec: &RackSpec, config: &FleetConfig) -> Result<Self, SimError> {
        if spec.members.is_empty() {
            return Err(SimError::BadConfig(format!(
                "rack {} needs at least one member",
                spec.label
            )));
        }
        let dispatcher = WorkloadDispatcher::new(config.dispatch, spec.members.len())?;

        let budget = match spec.power_cap {
            None => None,
            Some(cap) => {
                if !(cap.is_finite() && cap > 0.0) {
                    return Err(SimError::BadConfig(format!(
                        "rack {}: power cap must be finite and positive, got {cap}",
                        spec.label
                    )));
                }
                let floor: Vec<f64> = spec
                    .members
                    .iter()
                    .map(|m| m.power.state(m.power.lowest_power_state()).power)
                    .collect();
                let floor_total: f64 = floor.iter().sum();
                if floor_total > cap + CAP_EPS {
                    return Err(SimError::BadConfig(format!(
                        "rack {}: cap {cap} is below the all-asleep draw {floor_total}",
                        spec.label
                    )));
                }
                Some(Arc::new(Mutex::new(Budget {
                    cap,
                    nominal: floor,
                    grant_open: None,
                    vetoed: 0,
                })))
            }
        };

        let fault_plan = plan_faults(config, spec.members.len())?;

        let mut pool: Option<SharedPool> = None;
        let mut sims = Vec::with_capacity(spec.members.len());
        for (index, member) in spec.members.iter().enumerate() {
            let mut pm = build_policy(member, None, &mut pool)?;
            if let Some(budget) = &budget {
                pm = Box::new(CappedPolicy {
                    inner: pm,
                    index,
                    model: member.power.clone(),
                    budget: Arc::clone(budget),
                });
            }
            let sim_config = SimConfig {
                queue_cap: config.queue_cap,
                weights: config.weights,
                seed: derive_cell_seed(config.seed, index as u64),
                expose_sr_mode: false,
                noise: crate::ObservationNoise::none(),
                mode: config.engine_mode,
                deadline: config.deadline,
            };
            let silent = SparseTrace::new(vec![], config.horizon)?;
            let mut sim = Simulator::new(
                member.power.clone(),
                member.service,
                Box::new(silent),
                pm,
                sim_config,
            )?;
            if budget.is_some() {
                sim.reset_device_to(member.power.lowest_power_state());
            }
            let schedule = fault_plan.device(index);
            if !schedule.is_empty() {
                sim.set_fault_schedule(schedule.to_vec());
            }
            sims.push(sim);
        }
        let barriers = build_barriers(&fault_plan, budget.is_some(), config.horizon);

        Ok(RackCoordinator {
            label: spec.label.clone(),
            models: spec.members.iter().map(|m| m.power.clone()).collect(),
            labels: spec.members.iter().map(|m| m.label.clone()).collect(),
            n_states: spec
                .members
                .iter()
                .map(|m| m.power.n_states())
                .max()
                .unwrap_or(0),
            assign: vec![0; sims.len()],
            floors: spec
                .members
                .iter()
                .map(|m| m.power.state(m.power.lowest_power_state()).power)
                .collect(),
            onset_draw: vec![None; sims.len()],
            sims,
            dispatcher,
            budget,
            grant_pending: false,
            shed: 0,
            has_shared: pool.is_some(),
            horizon: config.horizon,
            seed: config.seed,
            barriers,
            barrier_pos: 0,
            retry: RetryQueue::new(RETRY_BUDGET, RETRY_BACKOFF_BASE),
            shed_no_healthy: 0,
            now: 0,
        })
    }

    /// Number of devices in the rack.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sims.len()
    }

    /// Whether the rack has no devices (never true once constructed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sims.is_empty()
    }

    /// Whether this rack pools experience in a shared Q-table (and will
    /// therefore advance its gaps serially at any requested thread count).
    #[must_use]
    pub fn has_shared_table(&self) -> bool {
        self.has_shared
    }

    /// Live per-device snapshots for the dispatcher (a transitioning
    /// device counts as `waking` when its transition lands in a serving
    /// state; a down device is flagged so health-aware policies route
    /// around it).
    fn snapshots(&self) -> Vec<DeviceSnapshot> {
        self.sims
            .iter()
            .zip(&self.models)
            .map(|(sim, model)| {
                let obs = sim.observation();
                let down = sim.health() == DeviceHealth::Down;
                match obs.device_mode {
                    DeviceMode::Operational(s) => DeviceSnapshot {
                        queue_len: obs.queue_len,
                        awake: model.state(s).can_serve,
                        waking: false,
                        down,
                    },
                    DeviceMode::Transitioning { to, .. } => DeviceSnapshot {
                        queue_len: obs.queue_len,
                        awake: false,
                        waking: model.state(to).can_serve,
                        down,
                    },
                }
            })
            .collect()
    }

    /// One rack-level snapshot for the cluster dispatcher: summed queue
    /// depth, awake if *any* device serves, waking if any is on its way,
    /// down only if *every* device is down.
    fn snapshot(&self) -> DeviceSnapshot {
        let mut agg = DeviceSnapshot {
            queue_len: 0,
            awake: false,
            waking: false,
            down: true,
        };
        for s in self.snapshots() {
            agg.queue_len += s.queue_len;
            agg.awake |= s.awake && !s.down;
            agg.waking |= s.waking && !s.down;
            agg.down &= s.down;
        }
        agg
    }

    /// Recomputes every nominal down to the device's actual draw bound,
    /// releasing budget that finished transitions no longer hold. Only
    /// called at grant slices (serial). A *down* member's bound is its
    /// fault-specified draw — the rest of its reservation is reclaimed so
    /// capped racks consolidate onto the survivors — floored at the
    /// member's sleeping draw so the revival slice (which resets the
    /// device to its lowest state) is always pre-reserved. A fault whose
    /// `down_power` exceeds the member's normal envelope erodes the cap's
    /// slack instead: fault physics outrank the planner. A member whose
    /// fault fires *this* slice is bounded by the onset barrier's pinned
    /// draw (`onset_draw`), consumed here — its health still reads
    /// healthy until the slice executes. A member whose fault window just
    /// expired is bounded at its floor: the revival reset (to the lowest
    /// state) applies lazily inside its next step, so its observation
    /// still shows the stale pre-crash mode — trusting that would hand a
    /// revived sleeper its old active-state slot for free.
    fn refresh_nominals(&mut self) {
        let Some(budget) = &self.budget else { return };
        let mut b = budget.lock().expect("rack budget poisoned");
        for (i, sim) in self.sims.iter().enumerate() {
            b.nominal[i] = if let Some(power) = self.onset_draw[i].take() {
                power.max(self.floors[i])
            } else if sim.pending_revival() {
                self.floors[i]
            } else {
                match sim.fault_down_power() {
                    Some(power) => power.max(self.floors[i]),
                    None => mode_demand(&self.models[i], sim.observation().device_mode),
                }
            };
        }
    }

    /// Performs the serial fault work due at the current slice, *before*
    /// the slice executes: consume due barriers (harvesting a crashing
    /// member's queue into [`RetryQueue`] so the crash finds nothing to
    /// lose), then re-dispatch every retry batch whose backoff has
    /// elapsed to the least-loaded healthy member — preferring serving or
    /// waking ones — re-queueing with doubled backoff (or shedding, once
    /// the attempt budget is spent) when the whole rack is down. Any
    /// action on a capped rack forces the slice to be a grant slice, so
    /// the budget refresh sees health changes and injected batches can
    /// fund a wake.
    fn fault_barrier_slice(&mut self) {
        let mut acted = false;
        while self
            .barriers
            .get(self.barrier_pos)
            .is_some_and(|b| b.at <= self.now)
        {
            let barrier = self.barriers[self.barrier_pos];
            self.barrier_pos += 1;
            if barrier.at < self.now {
                continue; // passed while quiescent; nothing left to do
            }
            acted = true;
            match barrier.kind {
                BarrierKind::Harvest { member, draw } => {
                    let stranded = self.sims[member].harvest_stranded();
                    if stranded > 0 {
                        let count = u32::try_from(stranded).unwrap_or(u32::MAX);
                        self.retry.push(count, self.now);
                    }
                    if self.budget.is_some() {
                        self.onset_draw[member] = Some(draw);
                    }
                }
                BarrierKind::Onset { member, draw } => {
                    if self.budget.is_some() {
                        self.onset_draw[member] = Some(draw);
                    }
                }
                BarrierKind::Refresh => {}
            }
        }
        while let Some(job) = self.retry.pop_ready(self.now) {
            let snaps = self.snapshots();
            let healthy = |i: &usize| !snaps[*i].down;
            let target = (0..snaps.len())
                .filter(|&i| snaps[i].available())
                .min_by_key(|&i| (snaps[i].queue_len, i))
                .or_else(|| {
                    (0..snaps.len())
                        .filter(healthy)
                        .min_by_key(|&i| (snaps[i].queue_len, i))
                });
            match target {
                Some(t) => {
                    self.sims[t].inject_arrivals(job.jobs);
                    self.retry.mark_redispatched(&job);
                    acted = true;
                }
                // Whole rack down: back off again (sheds once the
                // budget is spent). The new ready slice is strictly in
                // the future, so this loop terminates.
                None => {
                    self.retry.requeue(job, self.now);
                }
            }
        }
        if acted && self.budget.is_some() {
            self.grant_pending = true;
        }
    }

    /// The next future slice where the rack must regain serial control
    /// for fault handling (barrier or retry re-dispatch), if any.
    fn next_fault_stop(&self) -> Option<Step> {
        let barrier = self.barriers.get(self.barrier_pos).map(|b| b.at);
        let retry = self.retry.next_ready();
        match (barrier, retry) {
            (Some(b), Some(r)) => Some(b.min(r)),
            (stop, None) | (None, stop) => stop,
        }
    }

    /// Steps every device through one *grant* slice, serially in device
    /// order, opening the budget for exactly one device at a time.
    fn grant_step_all(&mut self) -> f64 {
        self.refresh_nominals();
        let budget = Arc::clone(self.budget.as_ref().expect("grant slices need a cap"));
        let mut energy = 0.0;
        for (i, sim) in self.sims.iter_mut().enumerate() {
            budget.lock().expect("rack budget poisoned").grant_open = Some(i);
            energy += sim.step().energy;
        }
        budget.lock().expect("rack budget poisoned").grant_open = None;
        energy
    }

    /// Steps every device through one ordinary slice, serially.
    fn plain_step_all(&mut self) -> f64 {
        self.sims.iter_mut().map(|sim| sim.step().energy).sum()
    }

    /// Routes one arrival slice: snapshot, dispatch, failure- and
    /// budget-aware load shedding, and injection into the chosen members'
    /// simulators.
    fn prepare_arrivals(&mut self, count: u32) {
        let mut snaps = self.snapshots();
        if snaps.iter().all(|s| s.down) {
            // Nothing can absorb the slice: shed it with a typed reason
            // ([`qdpm_workload::ShedReason::NoHealthyDevice`]) rather
            // than queue onto devices that may never revive.
            self.shed_no_healthy += u64::from(count);
            self.assign.iter_mut().for_each(|a| *a = 0);
            return;
        }
        let pre_available: Vec<bool> = snaps.iter().map(DeviceSnapshot::available).collect();
        self.dispatcher
            .route_slice(count, &mut snaps, &mut self.assign);

        // State-blind policies route without reading snapshots: strip
        // their assignments off down members onto the least-loaded
        // healthy one (state-aware policies already skip them).
        for i in 0..self.assign.len() {
            if self.assign[i] > 0 && snaps[i].down {
                let t = (0..snaps.len())
                    .filter(|&j| !snaps[j].down)
                    .min_by_key(|&j| (snaps[j].queue_len, j))
                    .expect("a healthy device exists past the all-down check");
                let moved = self.assign[i];
                self.assign[t] += moved;
                snaps[t].queue_len += moved as usize;
                self.assign[i] = 0;
            }
        }

        if let Some(budget) = &self.budget {
            // Shed arrivals aimed at sleepers the budget cannot wake: a
            // planning pass over the nominals, reserving each affordable
            // wake so one slice's wakes are budgeted jointly.
            let b = budget.lock().expect("rack budget poisoned");
            let mut planned = b.nominal.clone();
            drop(b);
            for i in 0..self.assign.len() {
                if self.assign[i] == 0 || pre_available[i] {
                    continue;
                }
                let model = &self.models[i];
                let from = match self.sims[i].observation().device_mode {
                    DeviceMode::Operational(s) => s,
                    DeviceMode::Transitioning { to, .. } => to,
                };
                let demand = command_demand(model, from, model.serving_state())
                    .unwrap_or_else(|| model.state(model.serving_state()).power);
                let others: f64 = planned.iter().sum::<f64>() - planned[i];
                let cap = budget.lock().expect("rack budget poisoned").cap;
                if others + demand <= cap + CAP_EPS {
                    planned[i] = planned[i].max(demand);
                    continue;
                }
                // Unaffordable wake: reroute to the least-loaded device
                // that was awake before routing, if there is one.
                let target = (0..self.assign.len())
                    .filter(|&j| j != i && pre_available[j])
                    .min_by_key(|&j| (snaps[j].queue_len, j));
                if let Some(t) = target {
                    let moved = self.assign[i];
                    self.assign[t] += moved;
                    snaps[t].queue_len += moved as usize;
                    self.shed += u64::from(moved);
                    self.assign[i] = 0;
                }
                // No awake device at all: leave the arrivals queued on the
                // sleeper; vetoes delay its wake until budget frees up.
            }
        }

        for (i, sim) in self.sims.iter_mut().enumerate() {
            if self.assign[i] > 0 {
                sim.inject_arrivals(self.assign[i]);
            }
        }
    }

    /// Executes one aggregate arrival slice: route `count` arrivals, then
    /// step every device through the slice (a grant slice when capped).
    /// Arrival slices are stepped serially — they are single slices; the
    /// gaps between them carry the parallelism. Returns the rack's summed
    /// energy draw of the slice.
    ///
    /// Public so external drivers (the `qdpm-serve` daemon) can feed the
    /// rack one event at a time, interleaving checkpoints; batch callers
    /// use [`RackCoordinator::run`].
    pub fn arrival_slice(&mut self, count: u32) -> f64 {
        self.fault_barrier_slice();
        self.prepare_arrivals(count);
        let energy = if self.budget.is_some() {
            let energy = self.grant_step_all();
            self.grant_pending = true;
            energy
        } else {
            self.plain_step_all()
        };
        self.now += 1;
        energy
    }

    /// Advances every device across `gap` arrival-free slices. When a
    /// grant is pending (the slice right after arrivals, where wake
    /// decisions land) its slice is stepped serially first; the remainder
    /// runs on up to `threads` workers (budget operations in the remainder
    /// are own-slot only, so the interleaving cannot change results).
    ///
    /// The gap is internally chunked at fault stops — crash-harvest
    /// barriers, budget-refresh slices, retry-backoff expiries — where
    /// the rack regains serial control ([`RackCoordinator`] docs). Chunk
    /// boundaries depend only on the fault plan and retry state, never on
    /// `threads`, so results stay identical at any thread count.
    pub fn advance_gap(&mut self, gap: u64, threads: usize) {
        let threads = if self.has_shared { 1 } else { threads };
        let end = self.now + gap;
        while self.now < end {
            self.fault_barrier_slice();
            let stop = self
                .next_fault_stop()
                .unwrap_or(end)
                .clamp(self.now + 1, end);
            let chunk = stop - self.now;
            self.dispatcher.advance_quiet(chunk);
            let mut left = chunk;
            if self.budget.is_some() && self.grant_pending {
                self.grant_step_all();
                left -= 1;
            }
            self.grant_pending = false;
            if left > 0 {
                run_indexed_mut(&mut self.sims, threads, |_, sim| {
                    sim.run(left);
                });
            }
            self.now = stop;
        }
    }

    /// The rack's report from its current state.
    #[must_use]
    pub fn report(&self) -> RackReport {
        let per_device: Vec<RunStats> = self.sims.iter().map(|s| s.stats().clone()).collect();
        let final_modes: Vec<DeviceMode> = self
            .sims
            .iter()
            .map(|s| s.observation().device_mode)
            .collect();
        let mut stats = FleetStats::aggregate(&per_device, &final_modes, self.n_states);
        let fault_stats: Vec<FaultStats> = self.sims.iter().map(|s| *s.fault_stats()).collect();
        stats.availability = AvailabilityStats::from_device_stats(&fault_stats);
        stats.availability.retries_enqueued = self.retry.enqueued();
        stats.availability.redispatched = self.retry.redispatched();
        stats.availability.retry_pending = self.retry.pending();
        stats.availability.shed_no_healthy = self.shed_no_healthy;
        stats.availability.shed_retry_exhausted = self.retry.dropped();
        for sim in &self.sims {
            stats.deadline.merge(sim.deadline_stats());
        }
        RackReport {
            label: self.label.clone(),
            power_cap: self
                .budget
                .as_ref()
                .map(|b| b.lock().expect("rack budget poisoned").cap),
            fleet: FleetReport {
                labels: self.labels.clone(),
                per_device,
                final_modes,
                stats,
            },
            vetoed_wakeups: self
                .budget
                .as_ref()
                .map_or(0, |b| b.lock().expect("rack budget poisoned").vetoed),
            shed_arrivals: self.shed,
            health: self.sims.iter().map(Simulator::health).collect(),
        }
    }

    /// Checkpoint support: appends the rack's entire dynamic state — every
    /// member simulator ([`Simulator::save_state`], fault clock included),
    /// the intra-rack dispatcher, the command budget's nominals and veto
    /// counter, the pending-grant flag, the shed counters, the rack clock,
    /// the fault-barrier cursor, and the retry queue — to a payload.
    ///
    /// Must be called *between* slices (never mid-grant); the budget's
    /// transient `grant_open` marker is always clear there and is not
    /// persisted.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_usize(self.sims.len());
        for sim in &self.sims {
            sim.save_state(w);
        }
        self.dispatcher.save_state(w);
        match &self.budget {
            None => w.put_bool(false),
            Some(budget) => {
                let b = budget.lock().expect("rack budget poisoned");
                w.put_bool(true);
                w.put_usize(b.nominal.len());
                for &n in &b.nominal {
                    w.put_f64(n);
                }
                w.put_u64(b.vetoed);
            }
        }
        w.put_bool(self.grant_pending);
        w.put_u64(self.shed);
        w.put_u64(self.now);
        w.put_usize(self.barrier_pos);
        self.retry.save_state(w);
        w.put_u64(self.shed_no_healthy);
    }

    /// Checkpoint support: restores state written by
    /// [`RackCoordinator::save_state`] into a rack built from the same
    /// spec and config.
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] when the payload does not decode, the
    /// member count or budget shape disagrees with this rack, or a member
    /// simulator rejects its share. On error the rack may be partially
    /// restored and must be discarded, not resumed.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let n = r.get_usize()?;
        if n != self.sims.len() {
            return Err(StateError::BadValue(format!(
                "checkpoint holds {n} rack members, this rack has {}",
                self.sims.len()
            )));
        }
        for sim in &mut self.sims {
            sim.load_state(r)?;
        }
        self.dispatcher.load_state(r)?;
        let has_budget = r.get_bool()?;
        if has_budget != self.budget.is_some() {
            return Err(StateError::BadValue(format!(
                "checkpoint capped={has_budget}, this rack capped={}",
                self.budget.is_some()
            )));
        }
        if let Some(budget) = &self.budget {
            let len = r.get_usize()?;
            if len != self.sims.len() {
                return Err(StateError::BadValue(format!(
                    "budget for {len} devices does not fit rack of {}",
                    self.sims.len()
                )));
            }
            let mut nominal = Vec::with_capacity(len);
            for _ in 0..len {
                nominal.push(r.get_f64()?);
            }
            let vetoed = r.get_u64()?;
            let mut b = budget.lock().expect("rack budget poisoned");
            if nominal.iter().sum::<f64>() > b.cap + CAP_EPS {
                return Err(StateError::BadValue(
                    "restored nominals exceed the rack cap".into(),
                ));
            }
            b.nominal = nominal;
            b.vetoed = vetoed;
            b.grant_open = None;
        }
        self.grant_pending = r.get_bool()?;
        self.shed = r.get_u64()?;
        self.now = r.get_u64()?;
        let barrier_pos = r.get_usize()?;
        if barrier_pos > self.barriers.len() {
            return Err(StateError::BadValue(format!(
                "barrier cursor {barrier_pos} beyond the {}-entry fault plan",
                self.barriers.len()
            )));
        }
        self.barrier_pos = barrier_pos;
        self.retry.load_state(r)?;
        self.shed_no_healthy = r.get_u64()?;
        Ok(())
    }

    /// Runs the rack over its horizon against `aggregate`, routing every
    /// arrival slice online, on up to `threads` workers. Results are
    /// identical at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the aggregate workload fails to build.
    pub fn run(
        mut self,
        aggregate: &ScenarioWorkload,
        threads: usize,
    ) -> Result<RackReport, SimError> {
        let horizon = self.horizon;
        let events = materialize_events(aggregate, self.seed, horizon)?;
        drive_rack(&mut self, &events, horizon, threads);
        Ok(self.report())
    }

    /// Like [`RackCoordinator::run`], but executes every slice one by one
    /// (serially) and returns the rack's summed energy draw of *each*
    /// slice alongside the report — the probe the power-cap conservation
    /// tests assert `energy <= cap + `[`CAP_EPS`] on. Produces the same
    /// report as [`RackCoordinator::run`] for engine-exact policies.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the aggregate workload fails to build.
    pub fn run_probed(
        mut self,
        aggregate: &ScenarioWorkload,
    ) -> Result<(RackReport, Vec<f64>), SimError> {
        let events = materialize_events(aggregate, self.seed, self.horizon)?;
        let mut next = 0usize;
        let mut per_slice = Vec::with_capacity(self.horizon as usize);
        for slice in 0..self.horizon {
            self.fault_barrier_slice();
            let arrival = (next < events.len() && events[next].0 == slice).then(|| {
                let count = events[next].1;
                next += 1;
                count
            });
            if let Some(count) = arrival {
                self.prepare_arrivals(count);
            } else {
                self.dispatcher.advance_quiet(1);
            }
            let capped = self.budget.is_some();
            let grant = capped && (arrival.is_some() || self.grant_pending);
            self.grant_pending = capped && arrival.is_some();
            per_slice.push(if grant {
                self.grant_step_all()
            } else {
                self.plain_step_all()
            });
            self.now += 1;
        }
        Ok((self.report(), per_slice))
    }
}

/// Drives a rack across a materialized aggregate event list: arrival-free
/// gaps in parallel, each arrival slice routed and stepped at a barrier.
pub(crate) fn drive_rack(
    rack: &mut RackCoordinator,
    events: &[(Step, u32)],
    horizon: Step,
    threads: usize,
) {
    let mut now = 0;
    for &(slice, count) in events {
        rack.advance_gap(slice - now, threads);
        rack.arrival_slice(count);
        now = slice + 1;
    }
    rack.advance_gap(horizon - now, threads);
}

/// Cluster-wide simulation parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// How aggregate arrival slices are routed *across racks* (rack-level
    /// snapshots: summed queue depth, any-awake, any-waking).
    pub rack_dispatch: DispatchPolicy,
    /// Per-rack fleet parameters. `fleet.seed` is the cluster master seed
    /// (rack `r` derives [`derive_cell_seed`]`(seed, r)`); `fleet.dispatch`
    /// routes within each rack; `fleet.horizon` is the cluster horizon.
    pub fleet: FleetConfig,
}

/// Cluster-level aggregate statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterStats {
    /// Number of racks.
    pub racks: usize,
    /// Each rack's [`FleetStats`], in rack order.
    pub per_rack: Vec<FleetStats>,
    /// Left fold of the rack totals in rack order via [`RunStats::merge`]
    /// — reproducible bit-for-bit at any thread count.
    pub total: RunStats,
}

/// Everything a finished cluster run reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Rack labels, in rack order.
    pub rack_labels: Vec<String>,
    /// Per-rack reports (fleet stats, veto and shed counters).
    pub racks: Vec<RackReport>,
    /// The cluster aggregate.
    pub stats: ClusterStats,
}

/// A fleet of fleets: racks under one aggregate stream, with a two-level
/// online dispatch hierarchy (cluster dispatcher across racks, each rack's
/// own dispatcher within it) and per-rack power caps.
///
/// # Example
///
/// ```
/// use qdpm_device::presets;
/// use qdpm_sim::fleet::{FleetConfig, FleetMember, FleetPolicy};
/// use qdpm_sim::hierarchy::{ClusterConfig, ClusterSim, RackSpec};
/// use qdpm_sim::ScenarioWorkload;
/// use qdpm_workload::{DispatchPolicy, WorkloadSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rack = |r: usize| RackSpec {
///     label: format!("rack-{r}"),
///     members: (0..3)
///         .map(|i| FleetMember {
///             label: format!("hdd-{r}-{i}"),
///             power: presets::three_state_generic(),
///             service: presets::default_service(),
///             policy: FleetPolicy::BreakEvenTimeout,
///         })
///         .collect(),
///     power_cap: Some(4.0),
/// };
/// let cluster = ClusterSim::new(
///     &[rack(0), rack(1)],
///     &ScenarioWorkload::Stationary(WorkloadSpec::bernoulli(0.5)?),
///     &ClusterConfig {
///         rack_dispatch: DispatchPolicy::JoinShortestQueue,
///         fleet: FleetConfig {
///             horizon: 2_000,
///             dispatch: DispatchPolicy::SleepAware { spill: 4 },
///             ..FleetConfig::default()
///         },
///     },
/// )?;
/// let report = cluster.run(2);
/// assert_eq!(report.stats.racks, 2);
/// assert_eq!(report.stats.total.steps, 2 * 3 * 2_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ClusterSim {
    racks: Vec<RackCoordinator>,
    rack_dispatcher: WorkloadDispatcher,
    events: Vec<(Step, u32)>,
    horizon: Step,
    aggregate_arrivals: u64,
}

impl ClusterSim {
    /// Assembles a cluster: materializes the aggregate event stream from
    /// the cluster seed and builds every rack with its derived seed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] for an empty rack list and
    /// propagates rack construction and workload errors.
    pub fn new(
        specs: &[RackSpec],
        aggregate: &ScenarioWorkload,
        config: &ClusterConfig,
    ) -> Result<Self, SimError> {
        if specs.is_empty() {
            return Err(SimError::BadConfig(
                "a cluster needs at least one rack".to_string(),
            ));
        }
        let events = materialize_events(aggregate, config.fleet.seed, config.fleet.horizon)?;
        let aggregate_arrivals = events.iter().map(|&(_, c)| u64::from(c)).sum();
        let rack_dispatcher = WorkloadDispatcher::new(config.rack_dispatch, specs.len())?;
        let racks: Vec<RackCoordinator> = specs
            .iter()
            .enumerate()
            .map(|(r, spec)| {
                RackCoordinator::new(
                    spec,
                    &FleetConfig {
                        seed: derive_cell_seed(config.fleet.seed, r as u64),
                        ..config.fleet.clone()
                    },
                )
            })
            .collect::<Result<_, _>>()?;
        Ok(ClusterSim {
            racks,
            rack_dispatcher,
            events,
            horizon: config.fleet.horizon,
            aggregate_arrivals,
        })
    }

    /// Number of racks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.racks.len()
    }

    /// Whether the cluster has no racks (never true once constructed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.racks.is_empty()
    }

    /// Total arrivals in the materialized aggregate stream (the
    /// conservation tests compare this against the cluster total).
    #[must_use]
    pub fn dispatched_arrivals(&self) -> u64 {
        self.aggregate_arrivals
    }

    /// Runs the cluster on up to `threads` workers — racks advance their
    /// gaps in parallel and every arrival slice is routed serially at a
    /// barrier, so results are identical at any thread count.
    #[must_use]
    pub fn run(mut self, threads: usize) -> ClusterReport {
        let n = self.racks.len();
        let mut snaps = vec![
            DeviceSnapshot {
                queue_len: 0,
                awake: false,
                waking: false,
                down: false,
            };
            n
        ];
        let mut assign = vec![0u32; n];
        let mut now = 0;
        let gap_all = |racks: &mut Vec<RackCoordinator>, gap: u64| {
            if gap > 0 {
                run_indexed_mut(racks, threads, |_, rack| rack.advance_gap(gap, 1));
            }
        };
        for &(slice, count) in &self.events.clone() {
            gap_all(&mut self.racks, slice - now);
            for (r, rack) in self.racks.iter().enumerate() {
                snaps[r] = rack.snapshot();
            }
            self.rack_dispatcher
                .route_slice(count, &mut snaps, &mut assign);
            let assign_now = assign.clone();
            // Every rack steps the arrival slice (possibly with zero
            // arrivals) so the cluster stays slice-aligned.
            run_indexed_mut(&mut self.racks, threads, |r, rack| {
                rack.arrival_slice(assign_now[r]);
            });
            now = slice + 1;
        }
        gap_all(&mut self.racks, self.horizon - now);

        let racks: Vec<RackReport> = self.racks.iter().map(RackCoordinator::report).collect();
        let per_rack: Vec<FleetStats> = racks.iter().map(|r| r.fleet.stats.clone()).collect();
        let mut total = RunStats::new();
        for stats in &per_rack {
            total.merge(&stats.total);
        }
        ClusterReport {
            rack_labels: racks.iter().map(|r| r.label.clone()).collect(),
            stats: ClusterStats {
                racks: racks.len(),
                per_rack,
                total,
            },
            racks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetPolicy;
    use crate::EngineMode;
    use qdpm_core::QDpmConfig;
    use qdpm_device::presets;
    use qdpm_workload::WorkloadSpec;

    fn bernoulli(p: f64) -> ScenarioWorkload {
        ScenarioWorkload::Stationary(WorkloadSpec::bernoulli(p).unwrap())
    }

    fn rack(n: usize, cap: Option<f64>) -> RackSpec {
        RackSpec {
            label: "rack".to_string(),
            members: (0..n)
                .map(|i| FleetMember {
                    label: format!("dev-{i}"),
                    power: presets::three_state_generic(),
                    service: presets::default_service(),
                    policy: FleetPolicy::BreakEvenTimeout,
                })
                .collect(),
            power_cap: cap,
        }
    }

    fn config(horizon: Step, dispatch: DispatchPolicy) -> FleetConfig {
        FleetConfig {
            horizon,
            dispatch,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn empty_rack_rejected() {
        let err = RackCoordinator::new(&rack(0, None), &FleetConfig::default()).unwrap_err();
        assert!(matches!(err, SimError::BadConfig(_)));
    }

    #[test]
    fn infeasible_and_invalid_caps_rejected() {
        for cap in [0.0, -1.0, f64::NAN, f64::INFINITY, 1e-6] {
            let err =
                RackCoordinator::new(&rack(4, Some(cap)), &FleetConfig::default()).unwrap_err();
            assert!(matches!(err, SimError::BadConfig(_)), "cap={cap}");
        }
    }

    #[test]
    fn capped_rack_never_exceeds_its_cap_in_any_slice() {
        let cap = 3.0;
        let spec = rack(4, Some(cap));
        let cfg = config(3_000, DispatchPolicy::SleepAware { spill: 3 });
        let (report, per_slice) = RackCoordinator::new(&spec, &cfg)
            .unwrap()
            .run_probed(&bernoulli(0.5))
            .unwrap();
        assert_eq!(per_slice.len(), 3_000);
        let max = per_slice.iter().cloned().fold(0.0, f64::max);
        assert!(max <= cap + CAP_EPS, "max slice draw {max} > cap {cap}");
        // The cap binds: an uncapped run of the same rack draws more at
        // peak, and the capped run actually had to intervene.
        assert!(report.vetoed_wakeups + report.shed_arrivals > 0);
        // Conservation: every aggregate arrival is accounted for.
        let (uncapped, _) = RackCoordinator::new(&rack(4, None), &cfg)
            .unwrap()
            .run_probed(&bernoulli(0.5))
            .unwrap();
        assert_eq!(
            report.fleet.stats.total.arrivals,
            uncapped.fleet.stats.total.arrivals
        );
    }

    #[test]
    fn probed_run_matches_segmented_run() {
        for cap in [None, Some(3.0)] {
            let spec = rack(4, cap);
            let cfg = config(2_000, DispatchPolicy::SleepAware { spill: 3 });
            let probed = RackCoordinator::new(&spec, &cfg)
                .unwrap()
                .run_probed(&bernoulli(0.4))
                .unwrap()
                .0;
            let segmented = RackCoordinator::new(&spec, &cfg)
                .unwrap()
                .run(&bernoulli(0.4), 3)
                .unwrap();
            assert_eq!(probed, segmented, "cap={cap:?}");
        }
    }

    /// Checkpointing a rack mid-stream and restoring into a freshly built
    /// rack must finish with a report bit-identical to never having
    /// stopped — capped and uncapped, learning members included.
    #[test]
    fn rack_save_load_resumes_bit_identically() {
        for cap in [None, Some(3.5)] {
            let mut spec = rack(4, cap);
            spec.members[1].policy = FleetPolicy::QDpm(QDpmConfig::default());
            spec.members[2].policy = FleetPolicy::AdaptiveTimeout;
            let cfg = config(3_000, DispatchPolicy::SleepAware { spill: 3 });
            let workload = bernoulli(0.4);
            let events = materialize_events(&workload, cfg.seed, cfg.horizon).unwrap();
            let split = events.len() / 2;

            let reference = RackCoordinator::new(&spec, &cfg)
                .unwrap()
                .run(&workload, 2)
                .unwrap();

            let mut first = RackCoordinator::new(&spec, &cfg).unwrap();
            let mut now = 0;
            for &(slice, count) in &events[..split] {
                first.advance_gap(slice - now, 2);
                first.arrival_slice(count);
                now = slice + 1;
            }
            let mut w = StateWriter::new();
            first.save_state(&mut w);
            let bytes = w.into_bytes();

            let mut resumed = RackCoordinator::new(&spec, &cfg).unwrap();
            resumed.load_state(&mut StateReader::new(&bytes)).unwrap();
            for &(slice, count) in &events[split..] {
                resumed.advance_gap(slice - now, 2);
                resumed.arrival_slice(count);
                now = slice + 1;
            }
            resumed.advance_gap(cfg.horizon - now, 2);
            assert_eq!(reference, resumed.report(), "cap={cap:?}");
        }
    }

    /// Rack checkpoints refuse shape mismatches instead of resuming into
    /// the wrong topology.
    #[test]
    fn rack_load_rejects_mismatched_shapes() {
        let cfg = config(1_000, DispatchPolicy::RoundRobin);
        let mut donor = RackCoordinator::new(&rack(3, None), &cfg).unwrap();
        donor.advance_gap(10, 1);
        let mut w = StateWriter::new();
        donor.save_state(&mut w);
        let bytes = w.into_bytes();
        // Wrong member count.
        let mut wrong_n = RackCoordinator::new(&rack(4, None), &cfg).unwrap();
        assert!(wrong_n.load_state(&mut StateReader::new(&bytes)).is_err());
        // Capped rack fed an uncapped checkpoint.
        let mut capped = RackCoordinator::new(&rack(3, Some(5.0)), &cfg).unwrap();
        assert!(capped.load_state(&mut StateReader::new(&bytes)).is_err());
    }

    #[test]
    fn capped_rack_is_engine_mode_and_thread_exact() {
        let spec = rack(5, Some(4.0));
        let run = |mode, threads| {
            let cfg = FleetConfig {
                engine_mode: mode,
                ..config(2_500, DispatchPolicy::JoinShortestQueue)
            };
            RackCoordinator::new(&spec, &cfg)
                .unwrap()
                .run(&bernoulli(0.3), threads)
                .unwrap()
        };
        let reference = run(EngineMode::PerSlice, 1);
        assert_eq!(reference, run(EngineMode::PerSlice, 4));
        assert_eq!(reference, run(EngineMode::EventSkip, 1));
        assert_eq!(reference, run(EngineMode::EventSkip, 4));
    }

    #[test]
    fn capped_rack_cold_boots_asleep() {
        let spec = rack(3, Some(10.0));
        let rack = RackCoordinator::new(&spec, &FleetConfig::default()).unwrap();
        for (sim, model) in rack.sims.iter().zip(&rack.models) {
            assert_eq!(
                sim.observation().device_mode,
                DeviceMode::Operational(model.lowest_power_state())
            );
        }
    }

    #[test]
    fn oracle_members_rejected_in_racks() {
        let mut spec = rack(2, None);
        spec.members[1].policy = FleetPolicy::Oracle;
        let err = RackCoordinator::new(&spec, &FleetConfig::default()).unwrap_err();
        assert!(matches!(err, SimError::BadConfig(_)));
    }

    #[test]
    fn cluster_conserves_arrivals_and_folds_in_rack_order() {
        let specs = vec![rack(3, Some(4.0)), rack(2, None), rack(4, Some(5.0))];
        let cfg = ClusterConfig {
            rack_dispatch: DispatchPolicy::JoinShortestQueue,
            fleet: config(2_000, DispatchPolicy::SleepAware { spill: 4 }),
        };
        let cluster = ClusterSim::new(&specs, &bernoulli(0.6), &cfg).unwrap();
        assert_eq!(cluster.len(), 3);
        let dispatched = cluster.dispatched_arrivals();
        assert!(dispatched > 0);
        let report = cluster.run(2);
        assert_eq!(report.stats.racks, 3);
        assert_eq!(report.stats.total.arrivals, dispatched);
        assert_eq!(report.stats.total.steps, (3 + 2 + 4) * 2_000);
        let mut manual = RunStats::new();
        for stats in &report.stats.per_rack {
            manual.merge(&stats.total);
        }
        assert_eq!(report.stats.total, manual);
        assert_eq!(report.rack_labels.len(), 3);
    }

    #[test]
    fn cluster_is_thread_count_invariant() {
        let specs = vec![rack(3, Some(4.0)), rack(3, None)];
        let cfg = ClusterConfig {
            rack_dispatch: DispatchPolicy::SleepAware { spill: 6 },
            fleet: config(1_500, DispatchPolicy::JoinShortestQueue),
        };
        let reference = ClusterSim::new(&specs, &bernoulli(0.5), &cfg)
            .unwrap()
            .run(1);
        for threads in [2, 4] {
            let report = ClusterSim::new(&specs, &bernoulli(0.5), &cfg)
                .unwrap()
                .run(threads);
            assert_eq!(reference, report, "threads={threads}");
        }
    }

    #[test]
    fn empty_cluster_rejected() {
        let cfg = ClusterConfig {
            rack_dispatch: DispatchPolicy::RoundRobin,
            fleet: FleetConfig::default(),
        };
        let err = ClusterSim::new(&[], &bernoulli(0.1), &cfg).unwrap_err();
        assert!(matches!(err, SimError::BadConfig(_)));
    }

    #[test]
    fn command_demand_covers_instant_and_latent_transitions() {
        let model = presets::three_state_generic();
        let high = model.highest_power_state();
        let low = model.lowest_power_state();
        let t = model.transition(high, low).unwrap();
        let expected = if t.latency == 0 {
            t.energy + model.state(low).power
        } else {
            t.energy_per_step().max(model.state(low).power)
        };
        assert_eq!(command_demand(&model, high, low), Some(expected));
        // Self-transitions are free, so their demand is pure residency.
        assert_eq!(
            command_demand(&model, high, high),
            Some(model.state(high).power)
        );
    }
}
