use std::fmt;

use qdpm_core::CoreError;
use qdpm_device::DeviceError;
use qdpm_mdp::MdpError;
use qdpm_workload::WorkloadError;

/// Errors produced while assembling or running simulations.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A device-model error.
    Device(DeviceError),
    /// A workload error.
    Workload(WorkloadError),
    /// An MDP construction/solve error (model-based baselines).
    Mdp(MdpError),
    /// A Q-DPM configuration error.
    Core(CoreError),
    /// A simulation parameter was invalid.
    BadConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Device(e) => write!(f, "device: {e}"),
            SimError::Workload(e) => write!(f, "workload: {e}"),
            SimError::Mdp(e) => write!(f, "mdp: {e}"),
            SimError::Core(e) => write!(f, "core: {e}"),
            SimError::BadConfig(msg) => write!(f, "bad simulation config: {msg}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Device(e) => Some(e),
            SimError::Workload(e) => Some(e),
            SimError::Mdp(e) => Some(e),
            SimError::Core(e) => Some(e),
            SimError::BadConfig(_) => None,
        }
    }
}

impl From<DeviceError> for SimError {
    fn from(e: DeviceError) -> Self {
        SimError::Device(e)
    }
}

impl From<WorkloadError> for SimError {
    fn from(e: WorkloadError) -> Self {
        SimError::Workload(e)
    }
}

impl From<MdpError> for SimError {
    fn from(e: MdpError) -> Self {
        SimError::Mdp(e)
    }
}

impl From<CoreError> for SimError {
    fn from(e: CoreError) -> Self {
        SimError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: SimError = DeviceError::NoStates.into();
        assert!(matches!(e, SimError::Device(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e: SimError = WorkloadError::EmptyTrace.into();
        assert!(e.to_string().contains("workload"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<SimError>();
    }
}
