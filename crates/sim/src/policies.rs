//! Baseline power managers: the heuristics and model-based controllers the
//! paper's Q-DPM is measured against.

use rand::Rng;

use qdpm_core::rng_util::uniform;
use qdpm_core::{Observation, PowerManager, StateError, StateReader, StateWriter, StepOutcome};
use qdpm_device::{DeviceMode, PowerModel, PowerStateId, Step};
use qdpm_mdp::{DeterministicPolicy, DpmStateSpace, StochasticPolicy};

/// Keeps the device in its serving state forever: the energy-reduction
/// reference ("0% reduction" line of Fig. 1/2) and latency gold standard.
#[derive(Debug, Clone)]
pub struct AlwaysOn {
    serve: PowerStateId,
}

impl AlwaysOn {
    /// Creates the policy for a device model.
    #[must_use]
    pub fn new(power: &PowerModel) -> Self {
        AlwaysOn {
            serve: power.serving_state(),
        }
    }
}

impl PowerManager for AlwaysOn {
    fn decide(&mut self, _obs: &Observation, _rng: &mut dyn Rng) -> PowerStateId {
        self.serve
    }

    fn commit_quiescent(
        &mut self,
        obs: &Observation,
        _per_slice: &StepOutcome,
        max: u64,
        _rng: &mut dyn Rng,
    ) -> u64 {
        match obs.device_mode {
            // Commands are ignored mid-transition; the command is `serve`
            // only once resident there.
            DeviceMode::Transitioning { .. } => max,
            DeviceMode::Operational(here) if here == self.serve => max,
            DeviceMode::Operational(_) => 0,
        }
    }

    fn name(&self) -> &str {
        "always-on"
    }
}

/// Sleeps the instant the queue is empty and wakes on work: the aggressive
/// greedy heuristic (optimal only when transitions are free).
#[derive(Debug, Clone)]
pub struct GreedyOff {
    serve: PowerStateId,
    sleep: PowerStateId,
}

impl GreedyOff {
    /// Creates the policy using the device's serving and lowest-power
    /// states.
    #[must_use]
    pub fn new(power: &PowerModel) -> Self {
        GreedyOff {
            serve: power.serving_state(),
            sleep: power.lowest_power_state(),
        }
    }
}

impl PowerManager for GreedyOff {
    fn decide(&mut self, obs: &Observation, _rng: &mut dyn Rng) -> PowerStateId {
        match obs.device_mode {
            DeviceMode::Transitioning { to, .. } => to,
            DeviceMode::Operational(_) => {
                if obs.queue_len > 0 {
                    self.serve
                } else {
                    self.sleep
                }
            }
        }
    }

    fn commit_quiescent(
        &mut self,
        obs: &Observation,
        _per_slice: &StepOutcome,
        max: u64,
        _rng: &mut dyn Rng,
    ) -> u64 {
        match obs.device_mode {
            DeviceMode::Transitioning { .. } => max,
            DeviceMode::Operational(here) if here == self.sleep && obs.queue_len == 0 => max,
            DeviceMode::Operational(_) => 0,
        }
    }

    fn name(&self) -> &str {
        "greedy-off"
    }
}

/// Classic fixed-timeout policy: sleep after `timeout` idle slices, wake on
/// work — the heuristic every DPM survey starts from.
#[derive(Debug, Clone)]
pub struct FixedTimeout {
    timeout: u64,
    serve: PowerStateId,
    sleep: PowerStateId,
}

impl FixedTimeout {
    /// Creates the policy with an explicit timeout in slices.
    #[must_use]
    pub fn new(power: &PowerModel, timeout: u64) -> Self {
        FixedTimeout {
            timeout,
            serve: power.serving_state(),
            sleep: power.lowest_power_state(),
        }
    }

    /// Creates the 2-competitive variant: timeout = break-even time
    /// (Karlin's ski-rental argument).
    #[must_use]
    pub fn break_even(power: &PowerModel) -> Self {
        let serve = power.serving_state();
        let sleep = power.lowest_power_state();
        let timeout = power.break_even_steps(serve, sleep).unwrap_or(u64::MAX);
        FixedTimeout {
            timeout,
            serve,
            sleep,
        }
    }

    /// The configured timeout in slices.
    #[must_use]
    pub fn timeout(&self) -> u64 {
        self.timeout
    }
}

impl PowerManager for FixedTimeout {
    fn decide(&mut self, obs: &Observation, _rng: &mut dyn Rng) -> PowerStateId {
        match obs.device_mode {
            DeviceMode::Transitioning { to, .. } => to,
            DeviceMode::Operational(here) => {
                if obs.queue_len > 0 {
                    self.serve
                } else if obs.idle_slices >= self.timeout {
                    self.sleep
                } else {
                    here
                }
            }
        }
    }

    fn commit_quiescent(
        &mut self,
        obs: &Observation,
        _per_slice: &StepOutcome,
        max: u64,
        _rng: &mut dyn Rng,
    ) -> u64 {
        match obs.device_mode {
            DeviceMode::Transitioning { .. } => max,
            DeviceMode::Operational(here) => {
                if obs.queue_len > 0 {
                    0
                } else if here == self.sleep {
                    // Both branches of `decide` command sleep.
                    max
                } else {
                    // Stays put until idle time reaches the timeout: the
                    // decide at idle `timeout` is a real decision epoch.
                    max.min(self.timeout.saturating_sub(obs.idle_slices))
                }
            }
        }
    }

    fn name(&self) -> &str {
        "fixed-timeout"
    }
}

/// Adaptive timeout (Douglis-style): multiplicative increase when a sleep
/// proves premature (woken before break-even), gentle decrease otherwise.
#[derive(Debug, Clone)]
pub struct AdaptiveTimeout {
    timeout: u64,
    min_timeout: u64,
    max_timeout: u64,
    break_even: u64,
    serve: PowerStateId,
    sleep: PowerStateId,
    sleep_started: Option<Step>,
    now: Step,
}

impl AdaptiveTimeout {
    /// Creates the policy; the initial timeout is the break-even time.
    #[must_use]
    pub fn new(power: &PowerModel) -> Self {
        let serve = power.serving_state();
        let sleep = power.lowest_power_state();
        let break_even = power.break_even_steps(serve, sleep).unwrap_or(16).max(1);
        AdaptiveTimeout {
            timeout: break_even,
            min_timeout: 1,
            max_timeout: break_even.saturating_mul(16).max(16),
            break_even,
            serve,
            sleep,
            sleep_started: None,
            now: 0,
        }
    }

    /// The current (adapted) timeout.
    #[must_use]
    pub fn timeout(&self) -> u64 {
        self.timeout
    }
}

impl PowerManager for AdaptiveTimeout {
    fn decide(&mut self, obs: &Observation, _rng: &mut dyn Rng) -> PowerStateId {
        match obs.device_mode {
            DeviceMode::Transitioning { to, .. } => to,
            DeviceMode::Operational(here) => {
                if obs.queue_len > 0 {
                    // Waking: judge the sleep episode that now ends.
                    // Multiplicative in both directions so the expected
                    // log-drift is non-positive under memoryless arrivals
                    // (additive decrease lets rare premature sleeps ratchet
                    // the timeout up until the policy stops sleeping).
                    if let Some(started) = self.sleep_started.take() {
                        let slept = self.now.saturating_sub(started);
                        if slept < self.break_even {
                            self.timeout =
                                (self.timeout * 2).clamp(self.min_timeout, self.max_timeout);
                        } else {
                            self.timeout =
                                (self.timeout * 3 / 4).clamp(self.min_timeout, self.max_timeout);
                        }
                    }
                    self.serve
                } else if obs.idle_slices >= self.timeout {
                    if here != self.sleep && self.sleep_started.is_none() {
                        self.sleep_started = Some(self.now);
                    }
                    self.sleep
                } else {
                    here
                }
            }
        }
    }

    fn observe(&mut self, _outcome: &StepOutcome, _next_obs: &Observation) {
        self.now += 1;
    }

    fn commit_quiescent(
        &mut self,
        obs: &Observation,
        _per_slice: &StepOutcome,
        max: u64,
        _rng: &mut dyn Rng,
    ) -> u64 {
        let k = match obs.device_mode {
            DeviceMode::Transitioning { .. } => max,
            DeviceMode::Operational(here) => {
                if obs.queue_len > 0 {
                    0
                } else if here == self.sleep {
                    // Asleep with an empty queue: decide commands sleep and
                    // touches no episode bookkeeping (the `sleep_started`
                    // stamp only fires when entering sleep from elsewhere).
                    max
                } else {
                    // Stays put below the (current) timeout; the decide at
                    // the timeout starts a sleep episode — a decision
                    // epoch.
                    max.min(self.timeout.saturating_sub(obs.idle_slices))
                }
            }
        };
        // `observe` only advances the local clock; replay it for the
        // committed slices.
        self.now += k;
        k
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.put_u64(self.timeout);
        match self.sleep_started {
            None => w.put_bool(false),
            Some(started) => {
                w.put_bool(true);
                w.put_u64(started);
            }
        }
        w.put_u64(self.now);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let timeout = r.get_u64()?;
        if !(self.min_timeout..=self.max_timeout).contains(&timeout) {
            return Err(StateError::BadValue(format!(
                "adaptive timeout {timeout} outside [{}, {}]",
                self.min_timeout, self.max_timeout
            )));
        }
        self.timeout = timeout;
        self.sleep_started = if r.get_bool()? {
            Some(r.get_u64()?)
        } else {
            None
        };
        self.now = r.get_u64()?;
        Ok(())
    }

    fn name(&self) -> &str {
        "adaptive-timeout"
    }
}

/// Clairvoyant per-idle-period oracle: knows every future arrival and
/// sleeps only through gaps longer than break-even.
///
/// Two wake disciplines:
///
/// * **reactive** (default) — wakes when work arrives; this is the classic
///   *energy*-optimal per-gap lower bound of the DPM literature (no online
///   policy without future knowledge beats it on energy);
/// * **pre-wake** ([`Oracle::with_prewake`]) — starts the wake transition
///   exactly `wake_latency` slices before the next arrival, eliminating
///   wake-up latency at the cost of those extra powered slices (the
///   latency-free oracle).
#[derive(Debug, Clone)]
pub struct Oracle {
    /// Sorted slice indices at which arrivals occur.
    arrivals: Vec<Step>,
    cursor: usize,
    serve: PowerStateId,
    sleep: PowerStateId,
    /// Gap threshold when pre-waking (round trip inside the gap).
    break_even_prewake: u64,
    /// Gap threshold when waking reactively (only spin-down in the gap).
    break_even_reactive: u64,
    wake_latency: u64,
    prewake: bool,
    now: Step,
}

impl Oracle {
    /// Builds the (reactive, energy-optimal) oracle from a per-slice
    /// arrival trace — the same trace the simulation will replay.
    #[must_use]
    pub fn from_trace(power: &PowerModel, trace: &[u32]) -> Self {
        let serve = power.serving_state();
        let sleep = power.lowest_power_state();
        let break_even_prewake = power.break_even_steps(serve, sleep).unwrap_or(u64::MAX);
        let break_even_reactive = power
            .reactive_break_even_steps(serve, sleep)
            .unwrap_or(u64::MAX);
        let wake_latency = power
            .transition(sleep, serve)
            .map(|t| u64::from(t.latency))
            .unwrap_or(0);
        let arrivals = trace
            .iter()
            .enumerate()
            .filter(|(_, &a)| a > 0)
            .map(|(i, _)| i as Step)
            .collect();
        Oracle {
            arrivals,
            cursor: 0,
            serve,
            sleep,
            break_even_prewake,
            break_even_reactive,
            wake_latency,
            prewake: false,
            now: 0,
        }
    }

    /// Switches to the latency-free pre-waking discipline.
    #[must_use]
    pub fn with_prewake(mut self) -> Self {
        self.prewake = true;
        self
    }

    fn next_arrival_at_or_after(&mut self, t: Step) -> Option<Step> {
        while self.cursor < self.arrivals.len() && self.arrivals[self.cursor] < t {
            self.cursor += 1;
        }
        self.arrivals.get(self.cursor).copied()
    }
}

impl PowerManager for Oracle {
    fn decide(&mut self, obs: &Observation, _rng: &mut dyn Rng) -> PowerStateId {
        let now = self.now;
        match obs.device_mode {
            DeviceMode::Transitioning { to, .. } => to,
            DeviceMode::Operational(here) => {
                if obs.queue_len > 0 {
                    return self.serve;
                }
                let Some(next) = self.next_arrival_at_or_after(now) else {
                    return self.sleep; // silence forever
                };
                let gap = next.saturating_sub(now);
                if here == self.sleep {
                    if self.prewake && gap <= self.wake_latency {
                        // Pre-wake exactly in time to serve the arrival.
                        self.serve
                    } else {
                        self.sleep
                    }
                } else {
                    let threshold = if self.prewake {
                        self.break_even_prewake.max(self.wake_latency + 1)
                    } else {
                        self.break_even_reactive
                    };
                    if gap >= threshold {
                        self.sleep
                    } else {
                        here
                    }
                }
            }
        }
    }

    fn observe(&mut self, _outcome: &StepOutcome, _next_obs: &Observation) {
        self.now += 1;
    }

    fn commit_quiescent(
        &mut self,
        obs: &Observation,
        _per_slice: &StepOutcome,
        max: u64,
        _rng: &mut dyn Rng,
    ) -> u64 {
        let now = self.now;
        let k = match obs.device_mode {
            DeviceMode::Transitioning { .. } => max,
            DeviceMode::Operational(here) => {
                if obs.queue_len > 0 {
                    0
                } else {
                    match self.next_arrival_at_or_after(now) {
                        // Silence forever: decide commands sleep throughout.
                        None => {
                            if here == self.sleep {
                                max
                            } else {
                                0
                            }
                        }
                        Some(next) => {
                            let gap = next.saturating_sub(now);
                            if here == self.sleep {
                                if self.prewake {
                                    // Asleep until the pre-wake point.
                                    max.min(gap.saturating_sub(self.wake_latency))
                                } else {
                                    // Reactive: asleep until work arrives.
                                    max
                                }
                            } else {
                                let threshold = if self.prewake {
                                    self.break_even_prewake.max(self.wake_latency + 1)
                                } else {
                                    self.break_even_reactive
                                };
                                if gap >= threshold {
                                    0 // about to command sleep
                                } else {
                                    // Gap too short to sleep through — and
                                    // it only shrinks — so stays put until
                                    // the arrival.
                                    max.min(gap)
                                }
                            }
                        }
                    }
                }
            }
        };
        self.now += k;
        k
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.put_usize(self.cursor);
        w.put_u64(self.now);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let cursor = r.get_usize()?;
        if cursor > self.arrivals.len() {
            return Err(StateError::BadValue(format!(
                "oracle cursor {cursor} out of range for {} arrivals",
                self.arrivals.len()
            )));
        }
        self.cursor = cursor;
        self.now = r.get_u64()?;
        Ok(())
    }

    fn name(&self) -> &str {
        "oracle"
    }
}

/// Executes a precomputed MDP policy (the paper's "optimal policy derived
/// by analytical techniques", Fig. 1's reference curve).
///
/// White-box: requires `sr_mode_hint` when the workload has more than one
/// hidden mode (enable `expose_sr_mode` in the sim config).
#[derive(Debug, Clone)]
pub struct MdpPolicyController {
    space: DpmStateSpace,
    policy: PolicyKind,
    name: String,
}

#[derive(Debug, Clone)]
enum PolicyKind {
    Deterministic(DeterministicPolicy),
    Stochastic(StochasticPolicy),
}

impl MdpPolicyController {
    /// Wraps a deterministic optimal policy.
    #[must_use]
    pub fn deterministic(space: DpmStateSpace, policy: DeterministicPolicy) -> Self {
        MdpPolicyController {
            space,
            policy: PolicyKind::Deterministic(policy),
            name: "mdp-optimal".to_string(),
        }
    }

    /// Wraps a randomized (constrained-optimal) policy.
    #[must_use]
    pub fn stochastic(space: DpmStateSpace, policy: StochasticPolicy) -> Self {
        MdpPolicyController {
            space,
            policy: PolicyKind::Stochastic(policy),
            name: "mdp-constrained".to_string(),
        }
    }

    /// Renames the controller for reports.
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl PowerManager for MdpPolicyController {
    fn decide(&mut self, obs: &Observation, rng: &mut dyn Rng) -> PowerStateId {
        let sr = obs
            .sr_mode_hint
            .unwrap_or(0)
            .min(self.space.n_sr_modes() - 1);
        let q = obs.queue_len.min(self.space.queue_cap());
        let s = self.space.index_of(sr, obs.device_mode, q);
        let a = match &self.policy {
            PolicyKind::Deterministic(p) => p.action(s),
            PolicyKind::Stochastic(p) => p.sample(s, uniform(rng)),
        };
        PowerStateId::from_index(a)
    }

    fn commit_quiescent(
        &mut self,
        obs: &Observation,
        _per_slice: &StepOutcome,
        max: u64,
        _rng: &mut dyn Rng,
    ) -> u64 {
        match obs.device_mode {
            // Mid-transition any command (even a sampled one) is ignored;
            // skipping a stochastic policy's draws only shifts an i.i.d.
            // uniform stream.
            DeviceMode::Transitioning { .. } => max,
            DeviceMode::Operational(here) => {
                // The encoded state is constant over the stretch only with
                // an empty queue and no (possibly changing) mode hint; a
                // randomized policy redraws per slice and cannot commit.
                if obs.queue_len > 0 || obs.sr_mode_hint.is_some() {
                    return 0;
                }
                let PolicyKind::Deterministic(p) = &self.policy else {
                    return 0;
                };
                let s = self.space.index_of(0, obs.device_mode, 0);
                if p.action(s) == here.index() {
                    max
                } else {
                    0
                }
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Commands a uniformly random power state every slice — legal or not.
///
/// A fault-injection policy for robustness testing: the device must ignore
/// whatever its state machine forbids and every simulator invariant
/// (conservation, energy floor, power caps) must survive the hostile
/// command stream. It draws from the policy RNG each slice, so it is *not*
/// engine-exact (event-skip compresses idle slices and consumes fewer
/// draws) and is excluded from the conformance populations.
#[derive(Debug, Clone)]
pub struct ChaosMonkey {
    n_states: usize,
}

impl ChaosMonkey {
    /// Creates the policy for a device model.
    #[must_use]
    pub fn new(power: &PowerModel) -> Self {
        ChaosMonkey {
            n_states: power.n_states(),
        }
    }
}

impl PowerManager for ChaosMonkey {
    fn decide(&mut self, _obs: &Observation, rng: &mut dyn Rng) -> PowerStateId {
        let u = uniform(rng);
        PowerStateId::from_index(((u * self.n_states as f64) as usize).min(self.n_states - 1))
    }

    fn name(&self) -> &str {
        "chaos-monkey"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdpm_device::presets;
    use qdpm_workload::MarkovArrivalModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn obs(power: &PowerModel, state: &str, q: usize, idle: u64) -> Observation {
        Observation {
            device_mode: DeviceMode::Operational(power.state_by_name(state).unwrap()),
            queue_len: q,
            idle_slices: idle,
            sr_mode_hint: None,
        }
    }

    #[test]
    fn always_on_never_moves() {
        let power = presets::three_state_generic();
        let mut pm = AlwaysOn::new(&power);
        let mut rng = StdRng::seed_from_u64(0);
        let active = power.state_by_name("active").unwrap();
        assert_eq!(pm.decide(&obs(&power, "sleep", 0, 100), &mut rng), active);
    }

    #[test]
    fn greedy_off_sleeps_immediately() {
        let power = presets::three_state_generic();
        let mut pm = GreedyOff::new(&power);
        let mut rng = StdRng::seed_from_u64(0);
        let sleep = power.state_by_name("sleep").unwrap();
        let active = power.state_by_name("active").unwrap();
        assert_eq!(pm.decide(&obs(&power, "active", 0, 0), &mut rng), sleep);
        assert_eq!(pm.decide(&obs(&power, "sleep", 2, 0), &mut rng), active);
    }

    #[test]
    fn fixed_timeout_waits_for_threshold() {
        let power = presets::three_state_generic();
        let mut pm = FixedTimeout::new(&power, 5);
        let mut rng = StdRng::seed_from_u64(0);
        let active = power.state_by_name("active").unwrap();
        let sleep = power.state_by_name("sleep").unwrap();
        assert_eq!(pm.decide(&obs(&power, "active", 0, 4), &mut rng), active);
        assert_eq!(pm.decide(&obs(&power, "active", 0, 5), &mut rng), sleep);
        // Work always wakes.
        assert_eq!(pm.decide(&obs(&power, "sleep", 1, 9), &mut rng), active);
    }

    #[test]
    fn break_even_timeout_uses_model() {
        let power = presets::three_state_generic();
        let pm = FixedTimeout::break_even(&power);
        assert_eq!(pm.timeout(), 6);
    }

    #[test]
    fn adaptive_timeout_grows_on_premature_sleep() {
        let power = presets::three_state_generic();
        let mut pm = AdaptiveTimeout::new(&power);
        let mut rng = StdRng::seed_from_u64(0);
        let t0 = pm.timeout();
        // Simulate: idle long enough to sleep at slice 0...
        let _ = pm.decide(&obs(&power, "active", 0, t0), &mut rng);
        // ...then a request arrives immediately (premature sleep).
        let dummy = StepOutcome {
            energy: 0.0,
            queue_len: 0,
            dropped: 0,
            completed: 0,
            arrivals: 0,
            deadline_misses: 0,
        };
        pm.observe(&dummy, &obs(&power, "sleep", 0, 0));
        let _ = pm.decide(&obs(&power, "sleep", 1, 0), &mut rng);
        assert!(pm.timeout() > t0, "timeout {} should grow", pm.timeout());
    }

    #[test]
    fn oracle_sleeps_through_long_gap_only() {
        let power = presets::three_state_generic();
        // Arrivals at slices 2 and 30: short gap then long gap.
        let mut trace = vec![0u32; 40];
        trace[2] = 1;
        trace[30] = 1;
        let mut pm = Oracle::from_trace(&power, &trace).with_prewake();
        let mut rng = StdRng::seed_from_u64(0);
        let active = power.state_by_name("active").unwrap();
        let sleep = power.state_by_name("sleep").unwrap();
        // At slice 0, gap to arrival@2 is 2 < break-even 6: stay active.
        assert_eq!(pm.decide(&obs(&power, "active", 0, 0), &mut rng), active);
        let dummy = StepOutcome {
            energy: 0.0,
            queue_len: 0,
            dropped: 0,
            completed: 0,
            arrivals: 0,
            deadline_misses: 0,
        };
        pm.observe(&dummy, &obs(&power, "active", 0, 0)); // now = 1
        pm.observe(&dummy, &obs(&power, "active", 0, 0)); // now = 2
        pm.observe(&dummy, &obs(&power, "active", 0, 0)); // now = 3
                                                          // At slice 3 the next arrival is 30: gap 27 >= 6 -> sleep.
        assert_eq!(pm.decide(&obs(&power, "active", 0, 1), &mut rng), sleep);
        // Jump to slice 26: gap 4 <= wake latency 4 -> wake.
        for _ in 3..26 {
            pm.observe(&dummy, &obs(&power, "sleep", 0, 0));
        }
        assert_eq!(pm.decide(&obs(&power, "sleep", 0, 20), &mut rng), active);
    }

    #[test]
    fn mdp_controller_follows_policy() {
        let power = presets::three_state_generic();
        let service = presets::default_service();
        let arrivals = MarkovArrivalModel::bernoulli(0.1).unwrap();
        let model = qdpm_mdp::build_dpm_mdp(&power, &service, &arrivals, 4, 20.0).unwrap();
        let cost = model.mdp.combined_cost(qdpm_mdp::CostWeights::default());
        let sol = qdpm_mdp::solvers::policy_iteration(&model.mdp, &cost, 0.95).unwrap();
        let mut pm = MdpPolicyController::deterministic(model.space.clone(), sol.policy.clone());
        let mut rng = StdRng::seed_from_u64(0);
        let o = obs(&power, "active", 2, 0);
        let s = model.space.index_of(0, o.device_mode, 2);
        assert_eq!(pm.decide(&o, &mut rng).index(), sol.policy.action(s));
    }

    #[test]
    fn stochastic_controller_samples_distribution() {
        let power = presets::two_state(1.0, 0.1, 1, 0.2);
        let space = DpmStateSpace::new(&power, 1, 2);
        // 50/50 between actions 0 and 1 everywhere.
        let probs = vec![0.5; space.n_states() * 2];
        let policy = StochasticPolicy::new(probs, 2).unwrap();
        let mut pm = MdpPolicyController::stochastic(space, policy);
        let mut rng = StdRng::seed_from_u64(12);
        let o = obs(&power, "on", 0, 0);
        let mut counts = [0usize; 2];
        for _ in 0..1000 {
            counts[pm.decide(&o, &mut rng).index()] += 1;
        }
        assert!(counts[0] > 350 && counts[1] > 350, "{counts:?}");
    }

    #[test]
    fn names_are_stable() {
        let power = presets::three_state_generic();
        assert_eq!(AlwaysOn::new(&power).name(), "always-on");
        assert_eq!(GreedyOff::new(&power).name(), "greedy-off");
        assert_eq!(FixedTimeout::new(&power, 3).name(), "fixed-timeout");
        assert_eq!(AdaptiveTimeout::new(&power).name(), "adaptive-timeout");
    }
}
