//! The model-based adaptive DPM pipeline — the "existing methods" baseline
//! of the paper's Fig. 2.
//!
//! "In contrast to Q-DPM that directly learns optimal state-action mapping,
//! existing methods need to detect parameter change, perform [estimation],
//! and then perform time consuming policy optimization. The significant
//! time overhead is removed in Q-DPM."
//!
//! [`ModelBasedAdaptive`] assembles that pipeline explicitly:
//! a sliding-window ML *parameter estimator* over the arrival stream, a
//! Page–Hinkley *mode-switch controller* that decides when the model has
//! drifted, and an exact *policy optimizer* (policy iteration, value
//! iteration, or the LP — configurable) over the re-estimated DTMDP. The
//! optimization latency is modeled explicitly: for `optimization_delay`
//! slices after a detected switch the stale policy keeps running, which is
//! precisely the lag Fig. 2 visualizes. Real wall-clock solve time is also
//! accumulated for the T1/T3 overhead tables.

use std::time::{Duration, Instant};

use rand::Rng;

use qdpm_core::{Observation, PowerManager, RewardWeights, StepOutcome};
use qdpm_device::{PowerModel, PowerStateId, ServiceModel};
use qdpm_mdp::{
    build_dpm_mdp, lp::lp_solve_discounted, solvers, CostWeights, DeterministicPolicy,
    DpmStateSpace,
};
use qdpm_workload::{MarkovArrivalModel, PageHinkley, RateEstimator};

use crate::SimError;

/// Which exact optimizer the pipeline re-runs after a detected switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptiveSolver {
    /// Howard policy iteration (the fast exact choice).
    PolicyIteration,
    /// Value iteration to tolerance `1e-9`.
    ValueIteration,
    /// The occupation-measure LP via the dense simplex — the widely applied
    /// (and slow) 2005-era choice the paper calls out.
    Lp,
}

/// Configuration of [`ModelBasedAdaptive`].
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Sliding-window length of the rate estimator, in slices.
    pub estimator_window: usize,
    /// Page–Hinkley drift tolerance.
    pub ph_delta: f64,
    /// Page–Hinkley alarm threshold.
    pub ph_threshold: f64,
    /// Simulated optimization latency: slices between detection and the new
    /// policy taking effect (the stale-policy window of Fig. 2).
    pub optimization_delay: u64,
    /// Discount factor of the re-solve.
    pub discount: f64,
    /// Queue capacity of the compiled model (match the simulator's).
    pub queue_cap: usize,
    /// Cost weights (match the simulator's reward weights).
    pub weights: RewardWeights,
    /// Arrival-rate estimate used for the initial policy.
    pub initial_rate: f64,
    /// Lower clamp on rate estimates (avoids degenerate all-sleep models).
    pub min_rate: f64,
    /// The optimizer to run.
    pub solver: AdaptiveSolver,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            estimator_window: 200,
            // Detector tuned to flag genuine rate switches without
            // thrashing on Bernoulli noise.
            ph_delta: 0.01,
            ph_threshold: 8.0,
            // ~2005-era policy-optimization latency on an embedded node,
            // in slices (the paper's "time consuming policy optimization").
            optimization_delay: 2_000,
            discount: 0.95,
            queue_cap: 8,
            weights: RewardWeights::default(),
            initial_rate: 0.1,
            min_rate: 0.005,
            solver: AdaptiveSolver::PolicyIteration,
        }
    }
}

/// The model-based adaptive power manager (estimator + detector +
/// re-optimizer).
#[derive(Debug)]
pub struct ModelBasedAdaptive {
    power: PowerModel,
    service: ServiceModel,
    config: AdaptiveConfig,
    space: DpmStateSpace,
    policy: DeterministicPolicy,
    estimator: RateEstimator,
    detector: PageHinkley,
    /// Slices until the pending re-solve completes.
    resolve_countdown: Option<u64>,
    /// Diagnostics: completed re-optimizations.
    pub n_resolves: u64,
    /// Diagnostics: detector alarms raised.
    pub n_alarms: u64,
    /// Diagnostics: cumulative wall-clock time inside the optimizer.
    pub solve_wall_time: Duration,
    last_estimate: f64,
    name: String,
}

impl ModelBasedAdaptive {
    /// Builds the pipeline and solves the initial policy from
    /// `config.initial_rate`.
    ///
    /// # Errors
    ///
    /// Propagates model-construction or solver errors.
    pub fn new(
        power: &PowerModel,
        service: &ServiceModel,
        config: AdaptiveConfig,
    ) -> Result<Self, SimError> {
        if config.estimator_window == 0 {
            return Err(SimError::BadConfig(
                "estimator window must be positive".into(),
            ));
        }
        let (space, policy, _) = solve_for_rate(power, service, &config, config.initial_rate)?;
        Ok(ModelBasedAdaptive {
            power: power.clone(),
            service: *service,
            estimator: RateEstimator::new(config.estimator_window),
            detector: PageHinkley::new(config.ph_delta, config.ph_threshold),
            space,
            policy,
            resolve_countdown: None,
            n_resolves: 0,
            n_alarms: 0,
            solve_wall_time: Duration::ZERO,
            last_estimate: config.initial_rate,
            config,
            name: "model-based-adaptive".to_string(),
        })
    }

    /// The most recent rate estimate driving the installed policy.
    #[must_use]
    pub fn last_estimate(&self) -> f64 {
        self.last_estimate
    }

    /// Whether a re-solve is pending (stale-policy window).
    #[must_use]
    pub fn resolving(&self) -> bool {
        self.resolve_countdown.is_some()
    }

    fn finish_resolve(&mut self) {
        let rate = self.estimator.estimate().clamp(self.config.min_rate, 1.0);
        let started = Instant::now();
        match solve_for_rate(&self.power, &self.service, &self.config, rate) {
            Ok((space, policy, _)) => {
                self.space = space;
                self.policy = policy;
                self.last_estimate = rate;
                self.n_resolves += 1;
            }
            Err(_) => {
                // Keep the stale policy; a later alarm will retry. This can
                // only happen on a numerically degenerate estimate.
            }
        }
        self.solve_wall_time += started.elapsed();
    }
}

/// Compiles and solves the DTMDP for a Bernoulli rate estimate.
fn solve_for_rate(
    power: &PowerModel,
    service: &ServiceModel,
    config: &AdaptiveConfig,
    rate: f64,
) -> Result<(DpmStateSpace, DeterministicPolicy, f64), SimError> {
    let arrivals =
        MarkovArrivalModel::bernoulli(rate.clamp(0.0, 1.0)).map_err(SimError::Workload)?;
    let model = build_dpm_mdp(
        power,
        service,
        &arrivals,
        config.queue_cap,
        config.weights.drop_penalty,
    )?;
    let cost = model.mdp.combined_cost(
        CostWeights::new(config.weights.energy, config.weights.perf).map_err(SimError::Mdp)?,
    );
    let (policy, objective) = match config.solver {
        AdaptiveSolver::PolicyIteration => {
            let sol = solvers::policy_iteration(&model.mdp, &cost, config.discount)?;
            let mean = sol.values.iter().sum::<f64>() / sol.values.len() as f64;
            (sol.policy, mean)
        }
        AdaptiveSolver::ValueIteration => {
            let sol = solvers::value_iteration(
                &model.mdp,
                &cost,
                solvers::SolveOptions::with_discount(config.discount).map_err(SimError::Mdp)?,
            )?;
            let mean = sol.values.iter().sum::<f64>() / sol.values.len() as f64;
            (sol.policy, mean)
        }
        AdaptiveSolver::Lp => {
            let sol = lp_solve_discounted(&model.mdp, &cost, config.discount)?;
            (sol.policy, sol.objective)
        }
    };
    Ok((model.space, policy, objective))
}

impl PowerManager for ModelBasedAdaptive {
    fn decide(&mut self, obs: &Observation, _rng: &mut dyn Rng) -> PowerStateId {
        let q = obs.queue_len.min(self.space.queue_cap());
        let s = self.space.index_of(0, obs.device_mode, q);
        PowerStateId::from_index(self.policy.action(s))
    }

    fn observe(&mut self, outcome: &StepOutcome, _next_obs: &Observation) {
        // Parameter estimator (always-on overhead of the pipeline).
        self.estimator.observe(outcome.arrivals.min(1));
        // Mode-switch controller.
        let alarmed = self.detector.observe(f64::from(outcome.arrivals.min(1)));
        if alarmed {
            self.n_alarms += 1;
            if self.resolve_countdown.is_none() {
                self.resolve_countdown = Some(self.config.optimization_delay);
            }
        }
        // Pending policy optimization completes after the modeled delay.
        if let Some(c) = self.resolve_countdown.as_mut() {
            if *c == 0 {
                self.resolve_countdown = None;
                self.finish_resolve();
            } else {
                *c -= 1;
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdpm_device::presets;
    use qdpm_device::DeviceMode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pipeline(delay: u64) -> ModelBasedAdaptive {
        let power = presets::three_state_generic();
        ModelBasedAdaptive::new(
            &power,
            &presets::default_service(),
            AdaptiveConfig {
                optimization_delay: delay,
                estimator_window: 50,
                ph_delta: 0.002,
                ph_threshold: 2.0,
                ..AdaptiveConfig::default()
            },
        )
        .unwrap()
    }

    fn obs(power: &PowerModel, q: usize) -> Observation {
        Observation {
            device_mode: DeviceMode::Operational(power.serving_state()),
            queue_len: q,
            idle_slices: 0,
            sr_mode_hint: None,
        }
    }

    #[test]
    fn initial_policy_is_installed() {
        let power = presets::three_state_generic();
        let mut pm = pipeline(10);
        let mut rng = StdRng::seed_from_u64(0);
        let cmd = pm.decide(&obs(&power, 3), &mut rng);
        assert!(cmd.index() < power.n_states());
        assert_eq!(pm.n_resolves, 0);
    }

    #[test]
    fn detects_and_resolves_after_delay() {
        let power = presets::three_state_generic();
        let mut pm = pipeline(20);
        // Quiet phase then a hard jump to saturation.
        let feed = |pm: &mut ModelBasedAdaptive, arrivals: u32, n: usize| {
            for _ in 0..n {
                let o = obs(&power, 0);
                pm.observe(
                    &StepOutcome {
                        energy: 1.0,
                        queue_len: 0,
                        dropped: 0,
                        completed: 0,
                        arrivals,
                        deadline_misses: 0,
                    },
                    &o,
                );
            }
        };
        feed(&mut pm, 0, 400);
        assert_eq!(pm.n_alarms, 0, "no false alarm in silence");
        feed(&mut pm, 1, 100);
        assert!(pm.n_alarms >= 1, "jump to saturation must alarm");
        // After the alarm the resolve completes within delay + a few slices.
        assert!(pm.n_resolves >= 1, "resolve should have completed");
        assert!(pm.last_estimate() > 0.3, "estimate {}", pm.last_estimate());
    }

    #[test]
    fn stale_policy_window_respected() {
        let power = presets::three_state_generic();
        let mut pm = pipeline(1000);
        let feed = |pm: &mut ModelBasedAdaptive, arrivals: u32, n: usize| {
            for _ in 0..n {
                let o = obs(&power, 0);
                pm.observe(
                    &StepOutcome {
                        energy: 1.0,
                        queue_len: 0,
                        dropped: 0,
                        completed: 0,
                        arrivals,
                        deadline_misses: 0,
                    },
                    &o,
                );
            }
        };
        feed(&mut pm, 0, 400);
        feed(&mut pm, 1, 200); // alarm fires, but delay is 1000
        assert!(pm.resolving(), "re-solve should still be pending");
        assert_eq!(pm.n_resolves, 0);
    }

    #[test]
    fn lp_solver_variant_works() {
        let power = presets::three_state_generic();
        let pm = ModelBasedAdaptive::new(
            &power,
            &presets::default_service(),
            AdaptiveConfig {
                solver: AdaptiveSolver::Lp,
                queue_cap: 3,
                ..AdaptiveConfig::default()
            },
        );
        assert!(pm.is_ok());
    }

    #[test]
    fn rejects_zero_window() {
        let power = presets::three_state_generic();
        let r = ModelBasedAdaptive::new(
            &power,
            &presets::default_service(),
            AdaptiveConfig {
                estimator_window: 0,
                ..AdaptiveConfig::default()
            },
        );
        assert!(matches!(r, Err(SimError::BadConfig(_))));
    }
}
