use serde::{Deserialize, Serialize};

use qdpm_core::{RewardWeights, StepOutcome};
use qdpm_device::Step;

/// Aggregate statistics of a simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Slices simulated.
    pub steps: Step,
    /// Total energy consumed.
    pub total_energy: f64,
    /// Total weighted cost (energy + weighted perf, the learner's
    /// negated-reward).
    pub total_cost: f64,
    /// Requests that arrived.
    pub arrivals: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests dropped by a full queue.
    pub dropped: u64,
    /// Sum of end-of-slice queue lengths (for the average).
    pub queue_len_sum: f64,
    /// Sum of per-request waiting times of completed requests, in slices.
    pub total_wait: u64,
}

/// Availability accounting of one simulated device under fault injection:
/// counters the fault clock moves alongside the per-slice [`RunStats`].
/// All-zero for fault-free runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Fault events applied to the device (crash, fail-stop or straggler
    /// onsets — expiries are not counted).
    pub faults_injected: u64,
    /// Slices spent down (serving nothing, drawing fault power).
    pub downtime_slices: u64,
    /// Requests lost from the queue at crash onsets (already-admitted
    /// arrivals that were neither served nor dropped at admission). A
    /// coordinator that harvests the queue for retry before the onset
    /// slice leaves this at zero and accounts the strands itself.
    pub queue_lost: u64,
}

impl FaultStats {
    /// Folds another device's counters into these (fleet aggregation).
    pub fn merge(&mut self, other: &FaultStats) {
        self.faults_injected += other.faults_injected;
        self.downtime_slices += other.downtime_slices;
        self.queue_lost += other.queue_lost;
    }
}

impl RunStats {
    /// Creates zeroed statistics.
    #[must_use]
    pub fn new() -> Self {
        RunStats::default()
    }

    /// Folds one slice's outcome into the totals. `wait_of_completed` is
    /// the waiting time recorded when a request completed this slice.
    #[inline]
    pub fn record(
        &mut self,
        outcome: &StepOutcome,
        weights: &RewardWeights,
        wait_of_completed: u64,
    ) {
        self.steps += 1;
        self.total_energy += outcome.energy;
        self.total_cost += -weights.reward(outcome);
        self.arrivals += u64::from(outcome.arrivals);
        self.completed += u64::from(outcome.completed);
        self.dropped += u64::from(outcome.dropped);
        self.queue_len_sum += outcome.queue_len as f64;
        self.total_wait += wait_of_completed;
    }

    /// Folds `slices` identical quiescent slices into the totals — the
    /// closed-form accounting of the event-skipping engine. The outcome
    /// must carry no arrivals, completions or drops (a quiescent slice
    /// moves nothing but energy and time).
    ///
    /// The float totals are accumulated with one addition per slice rather
    /// than a single multiply-add, so the result is bit-identical to
    /// having called [`RunStats::record`] `slices` times (the exact-
    /// equality gate of the event-skip engine depends on this); the
    /// zero-valued queue and wait contributions are exact no-ops and are
    /// skipped.
    pub fn record_quiescent(
        &mut self,
        outcome: &StepOutcome,
        weights: &RewardWeights,
        slices: u64,
    ) {
        debug_assert_eq!(
            (outcome.arrivals, outcome.completed, outcome.dropped),
            (0, 0, 0),
            "quiescent slices move nothing but energy"
        );
        debug_assert_eq!(outcome.queue_len, 0, "quiescent slices have empty queues");
        self.steps += slices;
        let cost = -weights.reward(outcome);
        for _ in 0..slices {
            self.total_energy += outcome.energy;
            self.total_cost += cost;
        }
    }

    /// Folds another run's totals into these, field by field — the
    /// aggregate accounting of the fleet layer. A left fold of per-device
    /// stats in device order is the *defined* aggregation order, so fleet
    /// totals are reproducible bit-for-bit (float addition is not
    /// associative; re-ordering the fold would drift the low bits).
    pub fn merge(&mut self, other: &RunStats) {
        self.steps += other.steps;
        self.total_energy += other.total_energy;
        self.total_cost += other.total_cost;
        self.arrivals += other.arrivals;
        self.completed += other.completed;
        self.dropped += other.dropped;
        self.queue_len_sum += other.queue_len_sum;
        self.total_wait += other.total_wait;
    }

    /// Mean energy per slice (average power).
    #[must_use]
    pub fn avg_power(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.total_energy / self.steps as f64
        }
    }

    /// Mean weighted cost per slice (the quantity the optimal gain bounds).
    #[must_use]
    pub fn avg_cost(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.total_cost / self.steps as f64
        }
    }

    /// Mean end-of-slice queue length.
    #[must_use]
    pub fn avg_queue_len(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.queue_len_sum / self.steps as f64
        }
    }

    /// Mean waiting time of completed requests, in slices.
    #[must_use]
    pub fn mean_wait(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.total_wait as f64 / self.completed as f64
        }
    }

    /// Fraction of arrivals dropped.
    #[must_use]
    pub fn drop_rate(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.dropped as f64 / self.arrivals as f64
        }
    }

    /// Energy reduction relative to an always-on baseline drawing
    /// `always_on_power` per slice — the paper's headline y-axis.
    #[must_use]
    pub fn energy_reduction_vs(&self, always_on_power: f64) -> f64 {
        let baseline = always_on_power * self.steps as f64;
        if baseline <= 0.0 {
            0.0
        } else {
            (baseline - self.total_energy) / baseline
        }
    }
}

/// One point of a windowed time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowPoint {
    /// Slice index at the window's end (exclusive).
    pub end: Step,
    /// Mean energy per slice within the window.
    pub energy_per_slice: f64,
    /// Mean weighted cost per slice within the window.
    pub cost_per_slice: f64,
    /// Mean queue length within the window.
    pub avg_queue: f64,
    /// Requests dropped within the window.
    pub dropped: u64,
    /// Energy reduction vs always-on within the window.
    pub energy_reduction: f64,
}

/// Records fixed-width windowed series during a run — the data behind the
/// paper's Fig. 1 and Fig. 2 curves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesRecorder {
    window: Step,
    always_on_power: f64,
    points: Vec<WindowPoint>,
    // accumulators of the open window
    acc_steps: Step,
    acc_energy: f64,
    acc_cost: f64,
    acc_queue: f64,
    acc_dropped: u64,
    now: Step,
}

impl SeriesRecorder {
    /// Creates a recorder with the given window width (slices) and the
    /// always-on reference power for reduction computation.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    #[must_use]
    pub fn new(window: Step, always_on_power: f64) -> Self {
        assert!(window > 0, "window must be positive");
        SeriesRecorder {
            window,
            always_on_power,
            points: Vec::new(),
            acc_steps: 0,
            acc_energy: 0.0,
            acc_cost: 0.0,
            acc_queue: 0.0,
            acc_dropped: 0,
            now: 0,
        }
    }

    /// Folds one slice's outcome into the open window.
    pub fn record(&mut self, outcome: &StepOutcome, weights: &RewardWeights) {
        self.now += 1;
        self.acc_steps += 1;
        self.acc_energy += outcome.energy;
        self.acc_cost += -weights.reward(outcome);
        self.acc_queue += outcome.queue_len as f64;
        self.acc_dropped += u64::from(outcome.dropped);
        if self.acc_steps == self.window {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.acc_steps == 0 {
            return;
        }
        let n = self.acc_steps as f64;
        let baseline = self.always_on_power * n;
        self.points.push(WindowPoint {
            end: self.now,
            energy_per_slice: self.acc_energy / n,
            cost_per_slice: self.acc_cost / n,
            avg_queue: self.acc_queue / n,
            dropped: self.acc_dropped,
            energy_reduction: if baseline > 0.0 {
                (baseline - self.acc_energy) / baseline
            } else {
                0.0
            },
        });
        self.acc_steps = 0;
        self.acc_energy = 0.0;
        self.acc_cost = 0.0;
        self.acc_queue = 0.0;
        self.acc_dropped = 0;
    }

    /// Completed windows so far.
    #[must_use]
    pub fn points(&self) -> &[WindowPoint] {
        &self.points
    }

    /// Flushes any partial window and returns all points.
    #[must_use]
    pub fn finish(mut self) -> Vec<WindowPoint> {
        self.flush();
        self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(energy: f64, q: usize, dropped: u32) -> StepOutcome {
        StepOutcome {
            energy,
            queue_len: q,
            dropped,
            completed: 0,
            arrivals: 1,
            deadline_misses: 0,
        }
    }

    #[test]
    fn stats_accumulate() {
        let w = RewardWeights::default();
        let mut s = RunStats::new();
        s.record(&outcome(2.0, 3, 0), &w, 0);
        s.record(&outcome(1.0, 1, 1), &w, 5);
        assert_eq!(s.steps, 2);
        assert!((s.avg_power() - 1.5).abs() < 1e-12);
        assert!((s.avg_queue_len() - 2.0).abs() < 1e-12);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.arrivals, 2);
        assert_eq!(s.total_wait, 5);
    }

    #[test]
    fn energy_reduction_formula() {
        let w = RewardWeights::default();
        let mut s = RunStats::new();
        for _ in 0..10 {
            s.record(&outcome(0.25, 0, 0), &w, 0);
        }
        // always-on at 1.0: reduction = (10 - 2.5) / 10 = 0.75.
        assert!((s.energy_reduction_vs(1.0) - 0.75).abs() < 1e-12);
        assert_eq!(s.energy_reduction_vs(0.0), 0.0);
    }

    #[test]
    fn mean_wait_and_drop_rate() {
        let w = RewardWeights::default();
        let mut s = RunStats::new();
        let done = StepOutcome {
            energy: 1.0,
            queue_len: 0,
            dropped: 0,
            completed: 1,
            arrivals: 0,
            deadline_misses: 0,
        };
        s.record(&done, &w, 4);
        s.record(&done, &w, 2);
        assert!((s.mean_wait() - 3.0).abs() < 1e-12);
        assert_eq!(s.drop_rate(), 0.0);
    }

    #[test]
    fn recorder_windows_align() {
        let w = RewardWeights::default();
        let mut r = SeriesRecorder::new(5, 1.0);
        for i in 0..12 {
            r.record(&outcome(if i < 5 { 1.0 } else { 0.5 }, 0, 0), &w);
        }
        let pts = r.finish();
        assert_eq!(pts.len(), 3); // two full windows + partial flush
        assert_eq!(pts[0].end, 5);
        assert!((pts[0].energy_per_slice - 1.0).abs() < 1e-12);
        assert!((pts[0].energy_reduction - 0.0).abs() < 1e-12);
        assert!((pts[1].energy_per_slice - 0.5).abs() < 1e-12);
        assert!((pts[1].energy_reduction - 0.5).abs() < 1e-12);
        assert_eq!(pts[2].end, 12);
    }

    #[test]
    fn record_quiescent_is_bit_identical_to_repeated_record() {
        let w = RewardWeights::default();
        let quiet = StepOutcome {
            energy: 0.05, // a power that is not exactly representable-sum-friendly
            queue_len: 0,
            dropped: 0,
            completed: 0,
            arrivals: 0,
            deadline_misses: 0,
        };
        let mut folded = RunStats::new();
        // Interleave with a non-trivial starting state.
        folded.record(&outcome(1.7, 2, 0), &w, 3);
        let mut stepped = folded.clone();
        folded.record_quiescent(&quiet, &w, 10_007);
        for _ in 0..10_007 {
            stepped.record(&quiet, &w, 0);
        }
        assert_eq!(folded, stepped);
        assert_eq!(
            folded.total_energy.to_bits(),
            stepped.total_energy.to_bits()
        );
        assert_eq!(folded.total_cost.to_bits(), stepped.total_cost.to_bits());
    }

    #[test]
    fn merge_is_the_field_by_field_fold() {
        let w = RewardWeights::default();
        let mut a = RunStats::new();
        a.record(&outcome(1.7, 2, 0), &w, 3);
        a.record(&outcome(0.3, 1, 1), &w, 0);
        let mut b = RunStats::new();
        b.record(&outcome(0.05, 0, 0), &w, 5);
        // Recording b's slices directly after a's must equal merging.
        let mut direct = a.clone();
        direct.record(&outcome(0.05, 0, 0), &w, 5);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, direct);
        assert_eq!(merged.total_energy.to_bits(), direct.total_energy.to_bits());
        assert_eq!(merged.steps, 3);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = RunStats::new();
        assert_eq!(s.avg_power(), 0.0);
        assert_eq!(s.avg_cost(), 0.0);
        assert_eq!(s.mean_wait(), 0.0);
        assert_eq!(s.drop_rate(), 0.0);
    }
}
